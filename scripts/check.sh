#!/bin/sh
# Pre-PR gate: build, test, lint, and check formatting for the whole
# workspace. Entirely offline — the workspace has no external
# dependencies, so no network or registry access is ever needed.
#
# Usage: scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace --all-targets"
cargo build --release --workspace --all-targets

echo "==> cargo test --workspace"
NICSIM_QUICK=1 cargo test --workspace --quiet

echo "==> kernel equivalence (release: dense vs event-driven)"
# The quick-mode test run above already covers these in debug; the
# release run guards against optimization-dependent divergence in the
# skip/gating fast paths.
cargo test --release --quiet -p nicsim --test kernel_equivalence

echo "==> simspeed smoke (event kernel sanity, ~2 s)"
NICSIM_SIMSPEED_SMOKE=1 ./target/release/simspeed

echo "==> cargo clippy (deny warnings)"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets --quiet -- -D warnings
else
    echo "    clippy not installed; skipping"
fi

echo "==> cargo fmt --check"
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all --check
else
    echo "    rustfmt not installed; skipping"
fi

echo "all checks passed"
