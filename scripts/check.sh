#!/bin/sh
# Pre-PR gate: build, test, lint, and check formatting for the whole
# workspace. Entirely offline — the workspace has no external
# dependencies, so no network or registry access is ever needed.
#
# Usage: scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace --all-targets"
cargo build --release --workspace --all-targets

echo "==> cargo test --workspace"
NICSIM_QUICK=1 cargo test --workspace --quiet

echo "==> kernel equivalence (release: dense vs event vs parallel, both dispatch modes)"
# The quick-mode test run above already covers these in debug; the
# release run guards against optimization-dependent divergence in the
# skip/gating fast paths. The suite asserts dense/event bit-identity in
# interrupt dispatch, domain-parallel bit-identity (stats and skip
# decisions) in both dispatch modes, and polling-vs-interrupt identity
# of the delivered frame/descriptor record under a live fault plan.
# The sysdef matrix rides in the same suite: the default derived
# SysDef must be bit-identical to the hand-wired baseline (RunStats
# and frame-lifecycle probe streams, both dispatch modes), and
# non-default topologies (2 DMA pairs, 2 MACs) must agree across
# dense, event, and domain-parallel kernels.
cargo test --release --quiet -p nicsim --test kernel_equivalence

echo "==> sysdef smoke (non-default topologies end-to-end, ~3 s)"
# Drives declaratively composed non-default topologies through the
# experiment engine: archsweep recomposes the SoC per point (crossbar
# ports, memory map, dispatch sources, clock domains) and every run
# asserts end-to-end frame validation. A composition regression —
# a bad port assignment, a broken memory-map append, a mis-routed
# completion tag — fails here even when the default system is intact.
NICSIM_QUICK=1 NICSIM_QUIET=1 NICSIM_RESULTS_DIR=target \
    ./target/release/archsweep >/dev/null
rm -f target/archsweep.json

echo "==> simspeed smoke (event kernel sanity, ~2 s)"
NICSIM_SIMSPEED_SMOKE=1 ./target/release/simspeed

echo "==> simspeed floors + probe overhead guard (full windows, ~5 s)"
# The full-window run enforces each point's speedup floor — including
# the >=3x interrupt-dispatch point at moderate load, the simspeed
# regression gate for this feature — and re-asserts stats identity on
# every kernel. The baseline comparison proves the disabled-probe
# (NullProbe) path is free: cycles/host-second is checked against the
# committed results/BENCH_simspeed.json (NICSIM_BASELINE_TOL
# overrides the tolerance). Full windows match the baseline's
# methodology — smoke windows would pay a fixed per-run cost the
# committed numbers amortize away. The default tolerance is wide
# because absolute cycles/second on a shared single-hardware-thread
# CI host swings ~30% run to run (measured); this guard exists to
# catch structural overhead — an accidentally-enabled probe path
# costs integer factors, not 35%. The per-point speedup floors above
# are the tight gates: they compare two kernels timed in the same
# process, so host noise cancels.
NICSIM_QUICK=0 NICSIM_SIMSPEED_SMOKE=0 NICSIM_RESULTS_DIR=target \
NICSIM_SIMSPEED_BASELINE=results/BENCH_simspeed.json \
NICSIM_BASELINE_TOL="${NICSIM_BASELINE_TOL:-0.35}" \
    ./target/release/simspeed --quiet

echo "==> bench_compare vs committed baseline (informational)"
# Point-by-point diff of the run above against the committed results:
# surfaces per-row speedup and throughput drift (and the parallel
# row's rendezvous accounting) in the check log without gating on it —
# the floors inside simspeed are the gates; this is the trend readout.
sh scripts/bench_compare.sh results/BENCH_simspeed.json target/BENCH_simspeed.json
rm -f target/BENCH_simspeed.json

echo "==> fleet smoke (sharded multi-NIC determinism + incast drops, ~2 s)"
# fleetbench asserts its own contracts in-process: per-NIC stats, the
# fabric's order-sensitive delivery/drop digest, per-port counters and
# skip decisions must be bit-identical at shard counts {1, 2, 4}, and
# the incast section must actually overflow its shallow egress buffer.
# Its faulted section re-checks shard-invariance under a live
# all-classes fault plan and requires at least one completed NIC
# crash/reset cycle. A nonzero exit is the gate. The wall-clock scaling table it prints
# is informational here — the speedup floor only binds on a host with
# at least 4 hardware threads running full windows.
NICSIM_QUICK=1 NICSIM_RESULTS_DIR=target ./target/release/fleetbench

echo "==> fleet fault plane (faulted shard-invariance, crash/reset, reliable delivery)"
# The release re-run of the fleet fault suite guards the fault plane's
# determinism contract against optimization-dependent divergence, the
# same reason kernel_equivalence re-runs in release: a fully faulted
# fleet (fabric corruption, flaps, squeezes, NIC crash/reset cycles,
# reliable-mode retransmission) must be bit-identical across shard
# counts {1, 2, 4} and both dispatch modes; crashed NICs must come
# back and their lost frames be accounted; reliable mode must deliver
# exactly-once under loss. The suite's zero-rate case is the fast-path
# guard: an all-zeros plan must leave the run bit-identical to a
# plan-free one (including the fabric digest), proving the armed-plan
# hooks are free when every probability is zero.
cargo test --release --quiet -p nicsim-fleet --test fault_determinism

echo "==> fault smoke (injection + recovery + zero-fault bit-identity)"
# The fault_sweep binary asserts its own contracts: the zero-rate armed
# run must be bit-identical to the plan-free baseline, nonzero rates
# must inject (and the goodput curve must not rise), and every run must
# terminate cleanly — a hang here would trip the test harness timeout.
# Its fleet_fault section sweeps fabric corruption over a reliable-mode
# fleet: 100% delivery on the low rungs, monotone delivery throughout.
NICSIM_QUICK=1 NICSIM_QUIET=1 NICSIM_RESULTS_DIR=target \
    ./target/release/fault_sweep >/dev/null
rm -f target/fault_sweep.json

echo "==> trace smoke (Chrome trace_event + latency percentiles)"
# The trace binary validates its own output: lifecycle violations
# panic, and the written file must round-trip as non-empty JSON.
NICSIM_QUICK=1 NICSIM_RESULTS_DIR=target ./target/release/trace \
    --trace target/trace_smoke.json >/dev/null
rm -f target/trace_smoke.json target/BENCH_trace.json

echo "==> cargo clippy (deny warnings)"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets --quiet -- -D warnings
else
    echo "    clippy not installed; skipping"
fi

echo "==> cargo fmt --check"
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all --check
else
    echo "    rustfmt not installed; skipping"
fi

echo "all checks passed"
