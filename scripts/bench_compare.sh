#!/bin/sh
# Diff two BENCH_simspeed.json result files point by point: kernel
# speedups, absolute cycles-per-host-second, and the skip/rendezvous
# accounting the parallel kernel reports. Informational by default;
# pass --strict[=TOL] as the third argument to fail on a speedup drop
# beyond TOL (same-host A/B runs only — cross-host absolute numbers
# are not comparable at gate precision).
#
# Usage: scripts/bench_compare.sh <baseline.json> <candidate.json> [--strict[=TOL]]
set -eu

cd "$(dirname "$0")/.."

if [ ! -x target/release/bench_compare ]; then
    cargo build --release --quiet -p nicsim-bench --bin bench_compare
fi
exec target/release/bench_compare "$@"
