//! Quickstart: build the paper's headline NIC configuration — six
//! single-issue cores and a four-bank scratchpad at 166 MHz with the
//! RMW-enhanced firmware — and drive full-duplex line-rate streams of
//! maximum-sized UDP datagrams through it.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nicsim::{NicConfig, NicSystem};
use nicsim_sim::Ps;

fn main() {
    let cfg = NicConfig::rmw_166();
    println!(
        "configuration: {} cores @ {} MHz, {} scratchpad banks, {:?} firmware",
        cfg.cores, cfg.cpu_mhz, cfg.banks, cfg.mode
    );
    let mut sys = NicSystem::new(cfg);

    // Warm the pipeline up, then measure a steady-state window.
    let stats = sys.run_measured(Ps::from_ms(2), Ps::from_ms(4));
    stats.assert_clean(); // every frame validated byte-for-byte, in order

    println!(
        "transmit:  {:7.2} Gb/s UDP payload ({} frames)",
        stats.tx_udp_gbps, stats.tx_frames
    );
    println!(
        "receive:   {:7.2} Gb/s UDP payload ({} frames)",
        stats.rx_udp_gbps, stats.rx_frames
    );
    println!(
        "total:     {:7.2} Gb/s of the 19.15 Gb/s duplex Ethernet limit",
        stats.total_udp_gbps()
    );
    println!("per-core IPC: {:.2} (paper: 0.72)", stats.ipc());
    println!(
        "scratchpad bandwidth: {:.1} Gb/s; frame memory: {:.1} Gb/s",
        stats.scratchpad_gbps, stats.frame_mem_gbps
    );
}
