//! Quickstart: build the paper's headline NIC configuration — six
//! single-issue cores and a four-bank scratchpad at 166 MHz with the
//! RMW-enhanced firmware — and drive full-duplex line-rate streams of
//! maximum-sized UDP datagrams through it.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nicsim_repro::{Experiment, NicConfig};

fn main() {
    let cfg = NicConfig::rmw_166();
    println!(
        "configuration: {} cores @ {} MHz, {} scratchpad banks, {:?} firmware",
        cfg.cores, cfg.cpu_mhz, cfg.banks, cfg.mode
    );

    // Warm the pipeline up, then measure a steady-state window. The
    // engine validates every frame byte-for-byte and in order.
    let exp = Experiment::new("quickstart").quiet();
    let run = exp.run(cfg);
    let stats = &run.stats;

    println!(
        "transmit:  {:7.2} Gb/s UDP payload ({} frames)",
        stats.tx_udp_gbps, stats.tx_frames
    );
    println!(
        "receive:   {:7.2} Gb/s UDP payload ({} frames)",
        stats.rx_udp_gbps, stats.rx_frames
    );
    println!(
        "total:     {:7.2} Gb/s of the 19.15 Gb/s duplex Ethernet limit",
        stats.total_udp_gbps()
    );
    println!("per-core IPC: {:.2} (paper: 0.72)", stats.ipc());
    println!(
        "scratchpad bandwidth: {:.1} Gb/s; frame memory: {:.1} Gb/s",
        stats.scratchpad_gbps, stats.frame_mem_gbps
    );
}
