//! A compact version of the Figure 3 coherence study: would per-core
//! coherent caches have worked instead of the scratchpad?
//!
//! Captures the metadata access trace of a real 6-core line-rate run
//! (driven through the experiment engine), replays it through the MESI
//! simulator at several cache sizes, and shows why the paper chose a
//! program-managed scratchpad.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example cache_study
//! ```

use nicsim_coherence::{sweep_sizes, Access};
use nicsim_mem::{AccessKind, AccessTrace};
use nicsim_repro::{Experiment, NicConfig};

/// The paper filters traces "to include only frame metadata". Locks,
/// progress counters, statistics, and the per-core event scratch are
/// synchronization/queue state, not metadata; what remains is the
/// descriptor rings, BD caches and pools, frame slots, status bits, and
/// return-descriptor staging.
fn is_frame_metadata(m: &nicsim_firmware::MemMap, addr: u32) -> bool {
    addr >= m.dmard_ring && addr < m.stats
}

fn main() {
    let exp = Experiment::new("cache_study").windows_ms(1, 1).quiet();
    let cfg = NicConfig::default();
    let (_, sys) = exp.run_with_probe("trace", cfg, AccessTrace::with_limit(500_000));
    let cores = sys.config().cores;

    let m = sys.map();
    let trace = sys.unwrap_probe();
    // SMPCache models at most 8 caches: merge the DMA engines into one
    // requester and the MAC units into another, like the paper.
    let merged = trace.merge_requesters(|r| {
        if r < cores {
            r
        } else if r < cores + 2 {
            cores
        } else {
            cores + 1
        }
    });
    let accesses: Vec<Access> = merged
        .records()
        .iter()
        .filter(|r| is_frame_metadata(&m, r.addr))
        .map(|r| Access {
            requester: r.requester,
            addr: r.addr as u64,
            write: r.kind == AccessKind::Write,
        })
        .collect();
    println!(
        "captured {} metadata accesses from a line-rate run ({} requester caches)",
        accesses.len(),
        cores + 2
    );
    println!("{:>10} {:>12}", "cache size", "hit ratio %");
    for (size, ratio, _) in sweep_sizes(cores + 2, 16, &[64, 512, 4096, 32768], &accesses) {
        println!("{size:>10} {ratio:>12.1}");
    }
    println!();
    println!(
        "the flat, low curve is the paper's point: NIC metadata is \
         migratory and single-use, so caches waste area that a banked \
         scratchpad spends better"
    );
}
