//! A compact version of Figure 7: how throughput scales with the number
//! of cores and the clock frequency — the motivation for "multiple
//! simple in-order cores" over one fast core.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example parallel_scaling
//! ```

use nicsim::{FwMode, NicConfig, NicSystem};
use nicsim_sim::Ps;

fn throughput(cores: usize, mhz: u64) -> f64 {
    let cfg = NicConfig {
        cores,
        cpu_mhz: mhz,
        mode: FwMode::SoftwareOnly,
        ..NicConfig::default()
    };
    let mut sys = NicSystem::new(cfg);
    let s = sys.run_measured(Ps::from_ms(1), Ps::from_ms(2));
    s.assert_clean();
    s.total_udp_gbps()
}

fn main() {
    println!("full-duplex UDP throughput (Gb/s); Ethernet limit = 19.15");
    println!("{:>6} {:>8} {:>8} {:>8}", "MHz", "2 cores", "4 cores", "6 cores");
    for mhz in [100u64, 150, 200] {
        println!(
            "{:>6} {:>8.2} {:>8.2} {:>8.2}",
            mhz,
            throughput(2, mhz),
            throughput(4, mhz),
            throughput(6, mhz)
        );
    }
    println!();
    println!("one fast core vs many slow ones:");
    let one = throughput(1, 800);
    let many = throughput(6, 200);
    println!("  1 core  @ 800 MHz: {one:.2} Gb/s  (a frequency no embedded NIC core can afford)");
    println!("  6 cores @ 200 MHz: {many:.2} Gb/s");
    println!(
        "the paper's conclusion: a single core needs ~800 MHz for line rate, \
         while six simple 166-200 MHz cores get there within the area and \
         power budget of a server NIC (parallelization costs ~25% extra \
         aggregate cycles — cheap compared to quadrupling the clock)"
    );
}
