//! A compact version of Figure 7: how throughput scales with the number
//! of cores and the clock frequency — the motivation for "multiple
//! simple in-order cores" over one fast core.
//!
//! The eleven runs are dispatched through the experiment engine and
//! execute in parallel across worker threads (`--jobs N` to override).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example parallel_scaling
//! ```

use nicsim_repro::{Experiment, FwMode, NicConfig, RunSpec, Sweep};

fn main() {
    let exp = Experiment::from_args("parallel_scaling").windows_ms(1, 2);
    let base = NicConfig::builder()
        .mode(FwMode::SoftwareOnly)
        .build()
        .unwrap();
    let freqs = [100u64, 150, 200];
    let cores = [2usize, 4, 6];
    let sweep = Sweep::new(base)
        .axis("cpu_mhz", freqs, |cfg, v| cfg.cpu_mhz = v)
        .axis("cores", cores, |cfg, v| cfg.cores = v);
    let mut specs = sweep.runs().expect("valid sweep");
    specs.push(RunSpec::single(
        "cpu_mhz=800,cores=1",
        base.to_builder().cpu_mhz(800).cores(1).build().unwrap(),
    ));
    specs.push(RunSpec::single(
        "cpu_mhz=200,cores=6",
        base.to_builder().cpu_mhz(200).cores(6).build().unwrap(),
    ));
    let report = exp.run_specs(specs);

    println!("full-duplex UDP throughput (Gb/s); Ethernet limit = 19.15");
    println!(
        "{:>6} {:>8} {:>8} {:>8}",
        "MHz", "2 cores", "4 cores", "6 cores"
    );
    // Row-major over (cpu_mhz, cores): the cores axis varies fastest.
    for (fi, mhz) in freqs.iter().enumerate() {
        print!("{mhz:>6}");
        for ci in 0..cores.len() {
            print!(
                " {:>8.2}",
                report.runs[fi * cores.len() + ci].stats.total_udp_gbps()
            );
        }
        println!();
    }
    println!();
    println!("one fast core vs many slow ones:");
    let one = report.runs[freqs.len() * cores.len()]
        .stats
        .total_udp_gbps();
    let many = report.runs[freqs.len() * cores.len() + 1]
        .stats
        .total_udp_gbps();
    println!("  1 core  @ 800 MHz: {one:.2} Gb/s  (a frequency no embedded NIC core can afford)");
    println!("  6 cores @ 200 MHz: {many:.2} Gb/s");
    println!(
        "the paper's conclusion: a single core needs ~800 MHz for line rate, \
         while six simple 166-200 MHz cores get there within the area and \
         power budget of a server NIC (parallelization costs ~25% extra \
         aggregate cycles — cheap compared to quadrupling the clock)"
    );
    exp.write(&report).expect("write results");
}
