//! An annotated walkthrough of the send and receive paths — Figures 1
//! and 2 of the paper reproduced as a live event log.
//!
//! The example runs a small system for a few microseconds at a time and
//! narrates the hardware progress pointers in the scratchpad as frames
//! move through the steps:
//!
//! send:    mailbox -> BD fetch DMA -> frame DMA -> MAC TX -> host notify
//! receive: buffer post -> MAC RX -> frame DMA to host -> return ring
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example send_receive_walkthrough
//! ```

use nicsim::{NicConfig, NicSystem};
use nicsim_sim::Ps;

fn main() {
    let cfg = NicConfig::builder().cores(2).cpu_mhz(500).build().unwrap();
    let mut sys = NicSystem::build(cfg).finish().unwrap();
    let m = sys.map();

    println!("=== Figure 1/2 walkthrough: hardware progress pointers over time ===");
    println!(
        "{:>6} | {:>7} {:>7} {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} {:>7}",
        "us",
        "sb_mbox",
        "bd_dma",
        "frm_dma",
        "mac_tx",
        "notify",
        "rb_mbox",
        "mac_rx",
        "to_host",
        "returns"
    );
    for step in 1..=12u64 {
        sys.run_until(Ps::from_us(step * 5));
        let sp = sys.scratchpad();
        println!(
            "{:>6} | {:>7} {:>7} {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} {:>7}",
            step * 5,
            sp.peek(m.sb_mailbox_prod), // step 2: driver rings the mailbox (BDs)
            sp.peek(m.sb_fetched),      // step 3: BD fetch DMAs issued
            sp.peek(m.sbd_cons) / 2,    // step 4: frames whose data DMA started
            sp.peek(m.mactx_done),      // step 5: frames transmitted by the MAC
            sp.peek(m.send_txdone_commit), // step 6: completions returned to host
            sp.peek(m.rb_mailbox_prod), // receive buffers posted (BDs)
            sp.peek(m.macrx_prod),      // step 1: frames arrived from the wire
            sp.peek(m.recv_claim),      // step 2: frame DMAs to host buffers
            sp.peek(m.recv_commit),     // steps 3-4: return descriptors produced
        );
    }
    println!();
    println!("Reading the table:");
    println!(" * send counters flow left to right as Figure 1's steps 2 -> 6;");
    println!(" * receive counters flow as Figure 2's steps 1 -> 4;");
    println!(
        " * every frame is validated end-to-end, so the pipeline shown is real data movement."
    );
    let stats = sys.collect();
    stats.assert_clean();
    println!(
        "after 60us: {} frames sent, {} received, zero errors/reordering",
        stats.tx_frames, stats.rx_frames
    );
}
