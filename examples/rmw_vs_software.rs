//! The paper's headline firmware comparison: lock-based frame ordering
//! at 200 MHz vs the `set`/`update` atomic RMW instructions at 166 MHz.
//!
//! Both configurations saturate full-duplex 10 GbE on maximum-sized
//! frames — which is exactly the point: the RMW instructions buy a 17%
//! clock (and power) reduction at equal service.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example rmw_vs_software
//! ```

use nicsim_cpu::FwFunc;
use nicsim_repro::{Experiment, NicConfig, RunReport};

fn run(exp: &Experiment, label: &str, cfg: NicConfig) -> RunReport {
    let run = exp.run_labeled(label, cfg);
    println!(
        "{label}: {:.2} Gb/s duplex at {} MHz x {} cores",
        run.stats.total_udp_gbps(),
        run.config.cpu_mhz,
        run.config.cores
    );
    run
}

fn main() {
    let exp = Experiment::new("rmw_vs_software").quiet();
    let sw = run(&exp, "software-only", NicConfig::software_only_200()).stats;
    let rmw = run(&exp, "RMW-enhanced ", NicConfig::rmw_166()).stats;

    println!();
    println!("send-side ordering overhead per frame (instructions):");
    let swd = sw.instr_per_frame(FwFunc::SendDispatch, sw.tx_frames);
    let rmwd = rmw.instr_per_frame(FwFunc::SendDispatch, rmw.tx_frames);
    println!("  software-only: {swd:6.1}   (lock, scan, clear loops)");
    println!("  RMW-enhanced:  {rmwd:6.1}   (single `set` / `update` instructions)");
    println!(
        "  reduction:     {:6.1}% (paper: 51.5%)",
        100.0 * (1.0 - rmwd / swd)
    );

    println!();
    println!("receive-side ordering overhead per frame (instructions):");
    let swr = sw.instr_per_frame(FwFunc::RecvDispatch, sw.rx_frames);
    let rmwr = rmw.instr_per_frame(FwFunc::RecvDispatch, rmw.rx_frames);
    println!("  software-only: {swr:6.1}");
    println!("  RMW-enhanced:  {rmwr:6.1}");
    println!(
        "  reduction:     {:6.1}% (paper: 30.8%)",
        100.0 * (1.0 - rmwr / swr)
    );

    println!();
    println!(
        "both saturate the link, so the RMW instructions translate into a \
         {} -> {} MHz clock reduction at equal throughput",
        200, 166
    );
}
