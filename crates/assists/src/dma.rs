//! The DMA read and DMA write engines.
//!
//! Firmware drives each engine through a command ring in the scratchpad
//! plus a producer doorbell; the engine reports progress through a
//! monotonic *done* counter it writes back to the scratchpad — one of the
//! hardware-maintained pointers the frame-parallel dispatch loop inspects
//! (Figure 5). Commands complete out of order internally (scratchpad
//! copies vs. frame-memory bursts), but the done counter only advances
//! over the contiguous prefix, so firmware can attribute completions by
//! ring index.
//!
//! Per the paper's methodology (§5), the host-side interconnect is not
//! modeled: the host-memory end of a transfer is instantaneous, and all
//! timed cost is on the NIC side (scratchpad transactions through the
//! crossbar, frame-memory bursts over the shared bus).

use crate::cmd::{DmaCmd, DMA_CMD_WORDS};
use crate::port::SpPort;
use nicsim_fault::{CmdOutcome, DmaFaults};
use nicsim_host::HostMemory;
use nicsim_mem::{Crossbar, FrameMemory, Scratchpad, SpOp, SpRequest, StreamId, XbarPort};
use nicsim_obs::{DmaDir, Event, FaultKind, FaultUnit, NullProbe, Probe, RecoveryKind};
use nicsim_sim::{NextEvent, Ps};

const TAG_CMD0: u32 = 1; // ..=4 for the four command words
const TAG_DATA: u32 = 5;
const TAG_DONE: u32 = 6;
const TAG_SRC: u32 = 7;

/// Configuration of one DMA engine.
#[derive(Debug, Clone, Copy)]
pub struct DmaConfig {
    /// Crossbar port of this engine.
    pub port: usize,
    /// Scratchpad byte address of the command ring.
    pub cmd_ring: u32,
    /// Number of commands in the ring.
    pub cmd_entries: u32,
    /// Scratchpad word holding the firmware's producer count (doorbell).
    pub prod_addr: u32,
    /// Scratchpad word the engine writes its done count to.
    pub done_addr: u32,
    /// Engine id within the topology. Encoded into the high 32 bits of
    /// frame-memory burst tags so completions on the shared per-stream
    /// queue route back to the issuing engine; engine 0's tags are the
    /// bare ring index, bit-identical to the single-engine layout.
    pub engine: u32,
}

/// Pack a frame-memory burst tag from an engine id and ring index.
pub fn dma_tag(engine: u32, idx: u32) -> u64 {
    ((engine as u64) << 32) | idx as u64
}

/// The engine id a frame-memory completion tag routes to.
pub fn dma_tag_engine(tag: u64) -> usize {
    (tag >> 32) as usize
}

/// Completion tracking shared by both engines.
#[derive(Debug)]
struct DoneTracker {
    done: u32,
    done_written: u32,
    write_inflight: bool,
    completed: Vec<bool>,
}

impl DoneTracker {
    fn new(entries: u32) -> DoneTracker {
        DoneTracker {
            done: 0,
            done_written: 0,
            write_inflight: false,
            completed: vec![false; entries as usize],
        }
    }

    fn complete(&mut self, idx: u32) {
        let n = self.completed.len() as u32;
        self.completed[(idx % n) as usize] = true;
        while self.completed[(self.done % n) as usize] {
            self.completed[(self.done % n) as usize] = false;
            self.done += 1;
        }
    }

    /// Queue a done-counter write if the value advanced.
    fn flush(&mut self, sp_port: &mut SpPort, done_addr: u32) {
        if !self.write_inflight && self.done != self.done_written {
            sp_port.push(
                SpRequest {
                    addr: done_addr,
                    op: SpOp::Write(self.done),
                },
                TAG_DONE,
            );
            self.done_written = self.done;
            self.write_inflight = true;
        }
    }
}

/// State of the in-progress command fetch.
#[derive(Debug, Default)]
struct Fetch {
    words: [u32; 4],
    got: u8,
    active: bool,
}

/// A payload command held back by the fault plan: it resolves (executes
/// or aborts) once the injected stall/backoff delay has elapsed. One
/// slot per engine — a deferred command blocks further fetches, exactly
/// like a real engine serialising on a wedged PCI transaction.
#[derive(Debug)]
struct Deferred {
    cmd: DmaCmd,
    idx: u32,
    resolve_at: Ps,
    attempts: u32,
    abort: bool,
}

/// The DMA **read** engine: host memory → NIC.
#[derive(Debug)]
pub struct DmaRead {
    cfg: DmaConfig,
    sp: SpPort,
    fetched: u32,
    fetch: Fetch,
    tracker: DoneTracker,
    /// Scratchpad-destination command being executed (BD fetches).
    sp_exec: Option<(u32, u32)>, // (cmd idx, remaining word writes)
    sdram_outstanding: u32,
    faults: Option<DmaFaults>,
    deferred: Option<Deferred>,
}

impl DmaRead {
    /// Create the engine.
    pub fn new(cfg: DmaConfig) -> DmaRead {
        DmaRead {
            cfg,
            sp: SpPort::new(cfg.port),
            fetched: 0,
            fetch: Fetch::default(),
            tracker: DoneTracker::new(cfg.cmd_entries),
            sp_exec: None,
            sdram_outstanding: 0,
            faults: None,
            deferred: None,
        }
    }

    /// The crossbar port this engine owns.
    pub fn port(&self) -> usize {
        self.cfg.port
    }

    /// Scratchpad accesses performed (Table 4 accounting).
    pub fn sp_accesses(&self) -> u64 {
        self.sp.accesses()
    }

    /// Zero counters.
    pub fn reset_stats(&mut self) {
        self.sp.reset_stats();
    }

    /// Enable fault injection on this engine.
    pub fn set_faults(&mut self, f: DmaFaults) {
        self.faults = Some(f);
    }

    /// Fault-site state, when injection is enabled.
    pub fn faults(&self) -> Option<&DmaFaults> {
        self.faults.as_ref()
    }

    /// Mutable fault-site state (the watchdog in `NicSystem` drives the
    /// stuck/reset bookkeeping from outside the engine).
    pub fn faults_mut(&mut self) -> Option<&mut DmaFaults> {
        self.faults.as_mut()
    }

    /// A frame-memory burst tagged `tag` completed.
    pub fn on_sdram_complete(&mut self, tag: u64) {
        self.on_sdram_complete_probed(tag, Ps::ZERO, &mut NullProbe);
    }

    /// Probed variant of [`DmaRead::on_sdram_complete`].
    pub fn on_sdram_complete_probed<P: Probe>(&mut self, tag: u64, now: Ps, probe: &mut P) {
        self.sdram_outstanding -= 1;
        self.tracker.complete(tag as u32);
        if P::ENABLED {
            probe.emit(Event::DmaDone {
                dir: DmaDir::Read,
                idx: tag as u32,
                at: now,
            });
        }
    }

    fn start_command<P: Probe>(
        &mut self,
        cmd: DmaCmd,
        idx: u32,
        host: &HostMemory,
        fm: &mut FrameMemory,
        now: Ps,
        probe: &mut P,
    ) {
        if P::ENABLED {
            probe.emit(Event::DmaStart {
                dir: DmaDir::Read,
                idx,
                bytes: cmd.len,
                at: now,
            });
        }
        let data = host.read(cmd.w0, cmd.len).to_vec();
        if cmd.is_scratchpad() {
            // Copy descriptor words into the scratchpad, one word-write
            // per crossbar transaction.
            let words = cmd.len.div_ceil(4);
            for k in 0..words {
                let b = (k * 4) as usize;
                let mut w = [0u8; 4];
                let n = (cmd.len as usize - b).min(4);
                w[..n].copy_from_slice(&data[b..b + n]);
                self.sp.push(
                    SpRequest {
                        addr: cmd.w1 + k * 4,
                        op: SpOp::Write(u32::from_le_bytes(w)),
                    },
                    TAG_DATA,
                );
            }
            self.sp_exec = Some((idx, words));
        } else {
            fm.submit_write(
                StreamId::DmaRead,
                cmd.w1,
                &data,
                dma_tag(self.cfg.engine, idx),
                now,
            );
            self.sdram_outstanding += 1;
        }
    }

    /// Route a freshly fetched command through the fault plan: payload
    /// commands (frame transfers, never descriptor/control traffic) may
    /// be stalled, retried, or aborted. Clean commands start immediately.
    fn launch<P: Probe>(
        &mut self,
        cmd: DmaCmd,
        idx: u32,
        host: &HostMemory,
        fm: &mut FrameMemory,
        now: Ps,
        probe: &mut P,
    ) {
        if let Some(f) = self.faults.as_mut() {
            if f.commands_faulty() && !cmd.is_scratchpad() {
                let o = f.draw_command();
                if P::ENABLED {
                    if o.stalled {
                        probe.emit(Event::Fault {
                            kind: FaultKind::PciStall,
                            unit: FaultUnit::DmaRead,
                            info: idx,
                            at: now,
                        });
                    }
                    if o.attempts > 0 {
                        probe.emit(Event::Fault {
                            kind: FaultKind::DmaError,
                            unit: FaultUnit::DmaRead,
                            info: o.attempts,
                            at: now,
                        });
                    }
                }
                if o != CmdOutcome::CLEAN {
                    self.deferred = Some(Deferred {
                        cmd,
                        idx,
                        resolve_at: now + o.delay,
                        attempts: o.attempts,
                        abort: o.abort,
                    });
                    return;
                }
            }
        }
        self.start_command(cmd, idx, host, fm, now, probe);
    }

    /// Resolve a deferred command whose stall/backoff delay has elapsed:
    /// either execute it (a successful retry) or abort it — the frame-
    /// memory destination is poisoned so the stale frame cannot later
    /// validate as goodput, and the ring slot retires so firmware's
    /// pipeline keeps moving.
    fn resolve_deferred<P: Probe>(
        &mut self,
        host: &HostMemory,
        fm: &mut FrameMemory,
        now: Ps,
        probe: &mut P,
    ) {
        if self.deferred.as_ref().is_none_or(|d| now < d.resolve_at) {
            return;
        }
        let d = self.deferred.take().expect("checked above");
        if d.abort {
            fm.poison(d.cmd.w1, d.cmd.len);
            self.tracker.complete(d.idx);
            if P::ENABLED {
                probe.emit(Event::Recovery {
                    kind: RecoveryKind::FrameAbort,
                    unit: FaultUnit::DmaRead,
                    info: d.idx,
                    at: now,
                });
            }
        } else {
            if d.attempts > 0 && P::ENABLED {
                probe.emit(Event::Recovery {
                    kind: RecoveryKind::DmaRetried,
                    unit: FaultUnit::DmaRead,
                    info: d.attempts,
                    at: now,
                });
            }
            self.start_command(d.cmd, d.idx, host, fm, now, probe);
        }
    }

    /// Advance one CPU cycle.
    pub fn tick(
        &mut self,
        now: Ps,
        xbar: &mut Crossbar,
        sp_mem: &Scratchpad,
        host: &HostMemory,
        fm: &mut FrameMemory,
    ) {
        let port = self.sp.port();
        self.tick_probed(now, &mut xbar.port(port), sp_mem, host, fm, &mut NullProbe);
    }

    /// Probed variant of [`DmaRead::tick`]: emits [`Event::DmaStart`]
    /// when a command begins moving data and [`Event::DmaDone`] when a
    /// scratchpad-destination copy retires (frame-memory completions are
    /// reported through [`DmaRead::on_sdram_complete_probed`]).
    pub fn tick_probed<X: XbarPort, P: Probe>(
        &mut self,
        now: Ps,
        xbar: &mut X,
        sp_mem: &Scratchpad,
        host: &HostMemory,
        fm: &mut FrameMemory,
        probe: &mut P,
    ) {
        if self.faults.is_some() {
            if self.faults.as_mut().expect("checked").hang_active(now) {
                // Wedged: the unit freezes until the watchdog resets it.
                // Pending work keeps `busy()` true, so both kernels step
                // densely and the watchdog counts identical cycles.
                return;
            }
            self.resolve_deferred(host, fm, now, probe);
        }
        if let Some((tag, value)) = self.sp.tick(xbar) {
            match tag {
                TAG_CMD0..=4 => {
                    self.fetch.words[(tag - TAG_CMD0) as usize] = value;
                    self.fetch.got += 1;
                    if self.fetch.got == 4 {
                        self.fetch.active = false;
                        self.fetch.got = 0;
                        let idx = self.fetched;
                        self.fetched += 1;
                        let cmd = DmaCmd::decode(self.fetch.words);
                        self.launch(cmd, idx, host, fm, now, probe);
                    }
                }
                TAG_DATA => {
                    if let Some((idx, remaining)) = self.sp_exec {
                        if remaining == 1 {
                            self.sp_exec = None;
                            self.tracker.complete(idx);
                            if P::ENABLED {
                                probe.emit(Event::DmaDone {
                                    dir: DmaDir::Read,
                                    idx,
                                    at: now,
                                });
                            }
                        } else {
                            self.sp_exec = Some((idx, remaining - 1));
                        }
                    }
                }
                TAG_DONE => self.tracker.write_inflight = false,
                _ => unreachable!("unknown tag {tag}"),
            }
        }
        // Fetch the next command when capacity allows. The producer
        // doorbell is a register visible without a crossbar transaction.
        let prod = sp_mem.peek(self.cfg.prod_addr);
        if !self.fetch.active
            && self.fetched != prod
            && self.sp_exec.is_none()
            && self.deferred.is_none()
            && self.sdram_outstanding < 2
        {
            self.fetch.active = true;
            let base =
                self.cfg.cmd_ring + (self.fetched % self.cfg.cmd_entries) * DMA_CMD_WORDS * 4;
            for k in 0..4 {
                self.sp.push(
                    SpRequest {
                        addr: base + k * 4,
                        op: SpOp::Read,
                    },
                    TAG_CMD0 + k,
                );
            }
        }
        self.tracker.flush(&mut self.sp, self.cfg.done_addr);
    }

    /// Whether the next [`DmaRead::tick`] could do real work. Mirrors
    /// every gate in `tick` exactly: a scratchpad transaction queued or
    /// in flight, a done-counter update pending, or a command fetch
    /// ready to issue. When false, the engine only reacts to external
    /// input (a doorbell write or an SDRAM completion).
    pub fn busy(&self, sp_mem: &Scratchpad) -> bool {
        self.sp.backlog() > 0
            || self.deferred.is_some()
            || self.tracker.done != self.tracker.done_written
            || (!self.fetch.active
                && self.fetched != sp_mem.peek(self.cfg.prod_addr)
                && self.sp_exec.is_none()
                && self.sdram_outstanding < 2)
    }
}

impl NextEvent for DmaRead {
    /// The DMA engines have no self-timed events: everything they do is
    /// triggered by crossbar responses, doorbells, or SDRAM completions
    /// (all bounded elsewhere by the kernel).
    fn next_event(&self) -> Ps {
        Ps::MAX
    }
}

/// The DMA **write** engine: NIC → host memory.
#[derive(Debug)]
pub struct DmaWrite {
    cfg: DmaConfig,
    sp: SpPort,
    fetched: u32,
    fetch: Fetch,
    tracker: DoneTracker,
    /// Scratchpad-source command in progress: (idx, host addr, bytes
    /// collected, total words).
    sp_src: Option<(u32, u32, Vec<u8>, u32)>,
    /// SDRAM-source commands in flight: host destination per tag.
    sdram_dst: Vec<Option<u32>>,
    sdram_outstanding: u32,
    faults: Option<DmaFaults>,
    deferred: Option<Deferred>,
    /// Debug: (src, dst, len) of every SDRAM-source command (capped).
    pub dbg_payloads: Vec<(u32, u32, u32)>,
}

impl DmaWrite {
    /// Create the engine.
    pub fn new(cfg: DmaConfig) -> DmaWrite {
        DmaWrite {
            cfg,
            sp: SpPort::new(cfg.port),
            fetched: 0,
            fetch: Fetch::default(),
            tracker: DoneTracker::new(cfg.cmd_entries),
            sp_src: None,
            sdram_dst: vec![None; cfg.cmd_entries as usize],
            sdram_outstanding: 0,
            faults: None,
            deferred: None,
            dbg_payloads: Vec::new(),
        }
    }

    /// The crossbar port this engine owns.
    pub fn port(&self) -> usize {
        self.cfg.port
    }

    /// Scratchpad accesses performed.
    pub fn sp_accesses(&self) -> u64 {
        self.sp.accesses()
    }

    /// Zero counters.
    pub fn reset_stats(&mut self) {
        self.sp.reset_stats();
    }

    /// Enable fault injection on this engine.
    pub fn set_faults(&mut self, f: DmaFaults) {
        self.faults = Some(f);
    }

    /// Fault-site state, when injection is enabled.
    pub fn faults(&self) -> Option<&DmaFaults> {
        self.faults.as_ref()
    }

    /// Mutable fault-site state (see [`DmaRead::faults_mut`]).
    pub fn faults_mut(&mut self) -> Option<&mut DmaFaults> {
        self.faults.as_mut()
    }

    /// A frame-memory read burst completed; write its data to the host.
    pub fn on_sdram_complete(&mut self, tag: u64, data: &[u8], host: &mut HostMemory) {
        self.on_sdram_complete_probed(tag, data, host, Ps::ZERO, &mut NullProbe);
    }

    /// Probed variant of [`DmaWrite::on_sdram_complete`].
    pub fn on_sdram_complete_probed<P: Probe>(
        &mut self,
        tag: u64,
        data: &[u8],
        host: &mut HostMemory,
        now: Ps,
        probe: &mut P,
    ) {
        let idx = tag as u32;
        let dst = self.sdram_dst[(idx % self.cfg.cmd_entries) as usize]
            .take()
            .expect("sdram completion for unknown command");
        let poison = self.faults.as_mut().and_then(|f| f.draw_poison(data.len()));
        if let Some(off) = poison {
            let mut bad = data.to_vec();
            bad[off] ^= 0xff;
            host.write(dst, &bad);
            if P::ENABLED {
                probe.emit(Event::Fault {
                    kind: FaultKind::HostPoison,
                    unit: FaultUnit::DmaWrite,
                    info: off as u32,
                    at: now,
                });
            }
        } else {
            host.write(dst, data);
        }
        self.sdram_outstanding -= 1;
        self.tracker.complete(idx);
        if P::ENABLED {
            probe.emit(Event::DmaDone {
                dir: DmaDir::Write,
                idx,
                at: now,
            });
        }
    }

    fn start_command<P: Probe>(
        &mut self,
        cmd: DmaCmd,
        idx: u32,
        host: &mut HostMemory,
        fm: &mut FrameMemory,
        now: Ps,
        probe: &mut P,
    ) {
        if P::ENABLED {
            probe.emit(Event::DmaStart {
                dir: DmaDir::Write,
                idx,
                bytes: cmd.len,
                at: now,
            });
        }
        if cmd.is_immediate() {
            host.write_u32(cmd.w1, cmd.w0);
            self.tracker.complete(idx);
            if P::ENABLED {
                probe.emit(Event::DmaDone {
                    dir: DmaDir::Write,
                    idx,
                    at: now,
                });
            }
        } else if cmd.is_scratchpad() {
            let words = cmd.len.div_ceil(4);
            for k in 0..words {
                self.sp.push(
                    SpRequest {
                        addr: cmd.w0 + k * 4,
                        op: SpOp::Read,
                    },
                    TAG_SRC,
                );
            }
            self.sp_src = Some((idx, cmd.w1, Vec::with_capacity(cmd.len as usize), cmd.len));
        } else {
            if self.dbg_payloads.len() < 8192 {
                self.dbg_payloads.push((cmd.w0, cmd.w1, cmd.len));
            }
            self.sdram_dst[(idx % self.cfg.cmd_entries) as usize] = Some(cmd.w1);
            fm.submit_read(
                StreamId::DmaWrite,
                cmd.w0,
                cmd.len,
                dma_tag(self.cfg.engine, idx),
                now,
            );
            self.sdram_outstanding += 1;
        }
    }

    /// Fault-plan gate for fetched commands; see [`DmaRead::launch`].
    /// Only payload transfers (frame memory → host buffer) are faulted —
    /// immediate and scratchpad-source commands carry control state.
    fn launch<P: Probe>(
        &mut self,
        cmd: DmaCmd,
        idx: u32,
        host: &mut HostMemory,
        fm: &mut FrameMemory,
        now: Ps,
        probe: &mut P,
    ) {
        if let Some(f) = self.faults.as_mut() {
            if f.commands_faulty() && !cmd.is_immediate() && !cmd.is_scratchpad() {
                let o = f.draw_command();
                if P::ENABLED {
                    if o.stalled {
                        probe.emit(Event::Fault {
                            kind: FaultKind::PciStall,
                            unit: FaultUnit::DmaWrite,
                            info: idx,
                            at: now,
                        });
                    }
                    if o.attempts > 0 {
                        probe.emit(Event::Fault {
                            kind: FaultKind::DmaError,
                            unit: FaultUnit::DmaWrite,
                            info: o.attempts,
                            at: now,
                        });
                    }
                }
                if o != CmdOutcome::CLEAN {
                    self.deferred = Some(Deferred {
                        cmd,
                        idx,
                        resolve_at: now + o.delay,
                        attempts: o.attempts,
                        abort: o.abort,
                    });
                    return;
                }
            }
        }
        self.start_command(cmd, idx, host, fm, now, probe);
    }

    /// Resolve a deferred command (see [`DmaRead::resolve_deferred`]).
    /// An abort zeroes the host destination buffer — the frame bytes
    /// never left the NIC, so stale host memory must not validate — and
    /// retires the ring slot.
    fn resolve_deferred<P: Probe>(
        &mut self,
        host: &mut HostMemory,
        fm: &mut FrameMemory,
        now: Ps,
        probe: &mut P,
    ) {
        if self.deferred.as_ref().is_none_or(|d| now < d.resolve_at) {
            return;
        }
        let d = self.deferred.take().expect("checked above");
        if d.abort {
            host.write(d.cmd.w1, &vec![0u8; d.cmd.len as usize]);
            self.tracker.complete(d.idx);
            if P::ENABLED {
                probe.emit(Event::Recovery {
                    kind: RecoveryKind::FrameAbort,
                    unit: FaultUnit::DmaWrite,
                    info: d.idx,
                    at: now,
                });
            }
        } else {
            if d.attempts > 0 && P::ENABLED {
                probe.emit(Event::Recovery {
                    kind: RecoveryKind::DmaRetried,
                    unit: FaultUnit::DmaWrite,
                    info: d.attempts,
                    at: now,
                });
            }
            self.start_command(d.cmd, d.idx, host, fm, now, probe);
        }
    }

    /// Advance one CPU cycle.
    pub fn tick(
        &mut self,
        now: Ps,
        xbar: &mut Crossbar,
        sp_mem: &Scratchpad,
        host: &mut HostMemory,
        fm: &mut FrameMemory,
    ) {
        let port = self.sp.port();
        self.tick_probed(now, &mut xbar.port(port), sp_mem, host, fm, &mut NullProbe);
    }

    /// Probed variant of [`DmaWrite::tick`]: emits [`Event::DmaStart`]
    /// when a command begins and [`Event::DmaDone`] when an immediate or
    /// scratchpad-source command retires (frame-memory completions are
    /// reported through [`DmaWrite::on_sdram_complete_probed`]).
    pub fn tick_probed<X: XbarPort, P: Probe>(
        &mut self,
        now: Ps,
        xbar: &mut X,
        sp_mem: &Scratchpad,
        host: &mut HostMemory,
        fm: &mut FrameMemory,
        probe: &mut P,
    ) {
        if self.faults.is_some() {
            if self.faults.as_mut().expect("checked").hang_active(now) {
                return; // wedged until the watchdog resets the unit
            }
            self.resolve_deferred(host, fm, now, probe);
        }
        if let Some((tag, value)) = self.sp.tick(xbar) {
            match tag {
                TAG_CMD0..=4 => {
                    self.fetch.words[(tag - TAG_CMD0) as usize] = value;
                    self.fetch.got += 1;
                    if self.fetch.got == 4 {
                        self.fetch.active = false;
                        self.fetch.got = 0;
                        let idx = self.fetched;
                        self.fetched += 1;
                        let cmd = DmaCmd::decode(self.fetch.words);
                        self.launch(cmd, idx, host, fm, now, probe);
                    }
                }
                TAG_SRC => {
                    let (idx, dst, mut buf, len) =
                        self.sp_src.take().expect("source read without command");
                    buf.extend_from_slice(&value.to_le_bytes());
                    if buf.len() >= len as usize {
                        buf.truncate(len as usize);
                        host.write(dst, &buf);
                        self.tracker.complete(idx);
                        if P::ENABLED {
                            probe.emit(Event::DmaDone {
                                dir: DmaDir::Write,
                                idx,
                                at: now,
                            });
                        }
                    } else {
                        self.sp_src = Some((idx, dst, buf, len));
                    }
                }
                TAG_DONE => self.tracker.write_inflight = false,
                _ => unreachable!("unknown tag {tag}"),
            }
        }
        let prod = sp_mem.peek(self.cfg.prod_addr);
        if !self.fetch.active
            && self.fetched != prod
            && self.sp_src.is_none()
            && self.deferred.is_none()
            && self.sdram_outstanding < 2
        {
            self.fetch.active = true;
            let base =
                self.cfg.cmd_ring + (self.fetched % self.cfg.cmd_entries) * DMA_CMD_WORDS * 4;
            for k in 0..4 {
                self.sp.push(
                    SpRequest {
                        addr: base + k * 4,
                        op: SpOp::Read,
                    },
                    TAG_CMD0 + k,
                );
            }
        }
        self.tracker.flush(&mut self.sp, self.cfg.done_addr);
    }

    /// Whether the next [`DmaWrite::tick`] could do real work (see
    /// [`DmaRead::busy`]).
    pub fn busy(&self, sp_mem: &Scratchpad) -> bool {
        self.sp.backlog() > 0
            || self.deferred.is_some()
            || self.tracker.done != self.tracker.done_written
            || (!self.fetch.active
                && self.fetched != sp_mem.peek(self.cfg.prod_addr)
                && self.sp_src.is_none()
                && self.sdram_outstanding < 2)
    }
}

impl NextEvent for DmaWrite {
    /// See [`DmaRead::next_event`]: nothing self-timed.
    fn next_event(&self) -> Ps {
        Ps::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::{FLAG_IMM, FLAG_SP};
    use nicsim_mem::FrameMemoryConfig;

    struct Rig {
        sp: Scratchpad,
        xbar: Crossbar,
        host: HostMemory,
        fm: FrameMemory,
        now: Ps,
    }

    impl Rig {
        fn new() -> Rig {
            Rig {
                sp: Scratchpad::new(64 * 1024, 4),
                xbar: Crossbar::new(2, 4),
                host: HostMemory::new(1 << 20),
                fm: FrameMemory::new(FrameMemoryConfig::default()),
                now: Ps::ZERO,
            }
        }

        fn write_cmd(&mut self, ring: u32, idx: u32, cmd: DmaCmd) {
            let base = ring + idx * 16;
            for (k, w) in cmd.encode().iter().enumerate() {
                self.sp.poke(base + k as u32 * 4, *w);
            }
        }
    }

    fn cfg() -> DmaConfig {
        DmaConfig {
            port: 0,
            cmd_ring: 0x1000,
            cmd_entries: 16,
            prod_addr: 0x100,
            done_addr: 0x104,
            engine: 0,
        }
    }

    #[test]
    fn read_engine_copies_descriptors_to_scratchpad() {
        let mut rig = Rig::new();
        let mut eng = DmaRead::new(cfg());
        rig.host.write(0x500, &[1, 2, 3, 4, 5, 6, 7, 8]);
        rig.write_cmd(
            0x1000,
            0,
            DmaCmd {
                w0: 0x500,
                w1: 0x2000,
                len: 8,
                flags: FLAG_SP,
                tag: 0,
            },
        );
        rig.sp.poke(0x100, 1); // doorbell
        for _ in 0..100 {
            rig.now += Ps(5000);
            rig.xbar.tick(&mut rig.sp);
            eng.tick(rig.now, &mut rig.xbar, &rig.sp, &rig.host, &mut rig.fm);
            for c in rig.fm.advance(rig.now) {
                eng.on_sdram_complete(c.tag);
            }
        }
        assert_eq!(rig.sp.peek(0x2000), 0x0403_0201);
        assert_eq!(rig.sp.peek(0x2004), 0x0807_0605);
        assert_eq!(rig.sp.peek(0x104), 1, "done counter advanced");
    }

    #[test]
    fn read_engine_moves_frame_data_to_sdram() {
        let mut rig = Rig::new();
        let mut eng = DmaRead::new(cfg());
        let payload: Vec<u8> = (0..200u8).collect();
        rig.host.write(0x800, &payload);
        rig.write_cmd(
            0x1000,
            0,
            DmaCmd {
                w0: 0x800,
                w1: 0x4000,
                len: 200,
                flags: 0,
                tag: 0,
            },
        );
        rig.sp.poke(0x100, 1);
        for _ in 0..200 {
            rig.now += Ps(5000);
            rig.xbar.tick(&mut rig.sp);
            eng.tick(rig.now, &mut rig.xbar, &rig.sp, &rig.host, &mut rig.fm);
            for c in rig.fm.advance(rig.now) {
                eng.on_sdram_complete(c.tag);
            }
        }
        assert_eq!(rig.fm.peek(0x4000, 200), &payload[..]);
        assert_eq!(rig.sp.peek(0x104), 1);
    }

    #[test]
    fn write_engine_immediate_and_scratchpad_sources() {
        let mut rig = Rig::new();
        let wcfg = DmaConfig { port: 1, ..cfg() };
        let mut eng = DmaWrite::new(wcfg);
        // Command 0: immediate write of 0xabcd to host 0x900.
        rig.write_cmd(
            0x1000,
            0,
            DmaCmd {
                w0: 0xabcd,
                w1: 0x900,
                len: 4,
                flags: FLAG_IMM,
                tag: 0,
            },
        );
        // Command 1: copy 8 bytes from scratchpad 0x3000 to host 0x910.
        rig.sp.poke(0x3000, 0x1111_2222);
        rig.sp.poke(0x3004, 0x3333_4444);
        rig.write_cmd(
            0x1000,
            1,
            DmaCmd {
                w0: 0x3000,
                w1: 0x910,
                len: 8,
                flags: FLAG_SP,
                tag: 0,
            },
        );
        rig.sp.poke(0x100, 2);
        for _ in 0..200 {
            rig.now += Ps(5000);
            rig.xbar.tick(&mut rig.sp);
            eng.tick(rig.now, &mut rig.xbar, &rig.sp, &mut rig.host, &mut rig.fm);
            let comps = rig.fm.advance(rig.now);
            for c in comps {
                eng.on_sdram_complete(c.tag, c.data.as_deref().unwrap(), &mut rig.host);
            }
        }
        assert_eq!(rig.host.read_u32(0x900), 0xabcd);
        assert_eq!(rig.host.read_u32(0x910), 0x1111_2222);
        assert_eq!(rig.host.read_u32(0x914), 0x3333_4444);
        assert_eq!(rig.sp.peek(0x104), 2);
    }

    #[test]
    fn write_engine_moves_sdram_to_host() {
        let mut rig = Rig::new();
        let mut eng = DmaWrite::new(cfg());
        let frame: Vec<u8> = (0..255u8).cycle().take(1518).collect();
        rig.fm
            .submit_write(StreamId::MacRx, 0x6000, &frame, 99, Ps::ZERO);
        rig.fm.advance(Ps::from_us(2));
        rig.write_cmd(
            0x1000,
            0,
            DmaCmd {
                w0: 0x6000,
                w1: 0xa000,
                len: 1518,
                flags: 0,
                tag: 0,
            },
        );
        rig.sp.poke(0x100, 1);
        rig.now = Ps::from_us(2);
        for _ in 0..400 {
            rig.now += Ps(5000);
            rig.xbar.tick(&mut rig.sp);
            eng.tick(rig.now, &mut rig.xbar, &rig.sp, &mut rig.host, &mut rig.fm);
            let comps = rig.fm.advance(rig.now);
            for c in comps {
                eng.on_sdram_complete(c.tag, c.data.as_deref().unwrap(), &mut rig.host);
            }
        }
        assert_eq!(rig.host.read(0xa000, 1518), &frame[..]);
        assert_eq!(rig.sp.peek(0x104), 1);
    }

    #[test]
    fn read_engine_abort_poisons_destination_and_retires_slot() {
        use nicsim_fault::{DmaFaults, FaultPlan, SITE_DMA_READ};
        let mut rig = Rig::new();
        let mut eng = DmaRead::new(cfg());
        let plan = FaultPlan {
            dma_error: 1.0,
            max_retries: 0,
            backoff_ns: 10,
            ..FaultPlan::default()
        };
        eng.set_faults(DmaFaults::new(&plan, SITE_DMA_READ));
        // Stale bytes at the destination must not survive the abort.
        rig.fm
            .submit_write(StreamId::DmaRead, 0x4000, &[0xff; 200], 99, Ps::ZERO);
        rig.fm.advance(Ps::from_us(1));
        rig.host.write(0x800, &(0..200u8).collect::<Vec<_>>());
        rig.write_cmd(
            0x1000,
            0,
            DmaCmd {
                w0: 0x800,
                w1: 0x4000,
                len: 200,
                flags: 0,
                tag: 0,
            },
        );
        rig.sp.poke(0x100, 1);
        rig.now = Ps::from_us(1);
        for _ in 0..400 {
            rig.now += Ps(5000);
            rig.xbar.tick(&mut rig.sp);
            eng.tick(rig.now, &mut rig.xbar, &rig.sp, &rig.host, &mut rig.fm);
            for c in rig.fm.advance(rig.now) {
                eng.on_sdram_complete(c.tag);
            }
        }
        assert_eq!(rig.sp.peek(0x104), 1, "aborted command still retires");
        assert!(
            rig.fm.peek(0x4000, 200).iter().all(|&b| b == 0),
            "destination poisoned"
        );
        let f = eng.faults().unwrap();
        assert_eq!(f.aborts, 1);
        assert_eq!(f.transient_errors, 1);
    }

    #[test]
    fn write_engine_stall_delays_but_delivers() {
        use nicsim_fault::{DmaFaults, FaultPlan, SITE_DMA_WRITE};
        let mut rig = Rig::new();
        let mut eng = DmaWrite::new(cfg());
        let plan = FaultPlan {
            dma_stall: 1.0,
            stall_ns: 500,
            ..FaultPlan::default()
        };
        eng.set_faults(DmaFaults::new(&plan, SITE_DMA_WRITE));
        let frame: Vec<u8> = (0..255u8).cycle().take(600).collect();
        rig.fm
            .submit_write(StreamId::MacRx, 0x6000, &frame, 99, Ps::ZERO);
        rig.fm.advance(Ps::from_us(2));
        rig.write_cmd(
            0x1000,
            0,
            DmaCmd {
                w0: 0x6000,
                w1: 0xa000,
                len: 600,
                flags: 0,
                tag: 0,
            },
        );
        rig.sp.poke(0x100, 1);
        rig.now = Ps::from_us(2);
        for _ in 0..600 {
            rig.now += Ps(5000);
            rig.xbar.tick(&mut rig.sp);
            eng.tick(rig.now, &mut rig.xbar, &rig.sp, &mut rig.host, &mut rig.fm);
            for c in rig.fm.advance(rig.now) {
                eng.on_sdram_complete(c.tag, c.data.as_deref().unwrap(), &mut rig.host);
            }
        }
        assert_eq!(rig.host.read(0xa000, 600), &frame[..], "stalled, not lost");
        assert_eq!(rig.sp.peek(0x104), 1);
        assert_eq!(eng.faults().unwrap().stalls, 1);
        assert_eq!(eng.faults().unwrap().aborts, 0);
    }

    #[test]
    fn done_counter_is_contiguous_prefix() {
        let mut t = DoneTracker::new(8);
        t.complete(1);
        assert_eq!(t.done, 0, "command 0 still outstanding");
        t.complete(0);
        assert_eq!(t.done, 2, "both now contiguous");
        t.complete(2);
        assert_eq!(t.done, 3);
    }
}
