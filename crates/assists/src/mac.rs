//! The medium-access-control assists: MAC TX and MAC RX.
//!
//! "The MAC unit is responsible for implementing the link-level protocol"
//! (paper §2.1). The transmit side drains a scratchpad ring of
//! `(frame-memory address, length)` entries in order, reads each frame
//! from the frame memory (buffering up to two frames, as the paper's
//! assists do), appends the FCS, and occupies the wire for the frame's
//! real Ethernet time (preamble + frame + interframe gap). The receive
//! side accepts the generator's line-rate stream, allocates space in a
//! circular receive region of the frame memory, and produces receive
//! descriptors plus a producer count for the firmware. When either the
//! descriptor ring or the receive buffer is full, arriving frames are
//! dropped — a receiver overrun, exactly what happens to a real NIC whose
//! firmware cannot keep up.

use crate::port::SpPort;
use nicsim_fault::LinkFault;
use nicsim_mem::{Crossbar, FrameMemory, Scratchpad, SpOp, SpRequest, StreamId, XbarPort};
use nicsim_net::frame::fcs_valid;
use nicsim_net::link::{wire_time, RxGenerator, TxMonitor};
use nicsim_obs::{Event, FaultKind, FaultUnit, NullProbe, Probe, RecoveryKind};
use nicsim_sim::{NextEvent, Ps};
use std::collections::VecDeque;

const TAG_ENTRY0: u32 = 1;
const TAG_ENTRY1: u32 = 2;
const TAG_ENTRY2: u32 = 3;
const TAG_ENTRY3: u32 = 4;
const TAG_DONE: u32 = 5;
const TAG_DESC: u32 = 6;
const TAG_PROD: u32 = 7;

/// MAC TX configuration.
#[derive(Debug, Clone, Copy)]
pub struct MacTxConfig {
    /// Crossbar port.
    pub port: usize,
    /// Transmit ring base (4 words per entry: addr, len, flags, seq).
    pub ring: u32,
    /// Entries in the transmit ring.
    pub entries: u32,
    /// Firmware producer doorbell (scratchpad word).
    pub prod_addr: u32,
    /// Done counter the MAC writes back.
    pub done_addr: u32,
    /// MAC id within the topology, used as the frame-memory burst tag
    /// so completions on the shared TX stream route back to this MAC.
    pub mac: u32,
}

/// The transmit MAC.
#[derive(Debug)]
pub struct MacTx {
    cfg: MacTxConfig,
    sp: SpPort,
    /// Link monitor validating and accounting every transmitted frame.
    pub monitor: TxMonitor,
    fetched: u32,
    fetch_active: bool,
    entry_addr: u32,
    entry_len: u32,
    reads_outstanding: u32,
    wire_busy_until: Ps,
    /// Frames in flight on the wire: completion time and bytes.
    tx_done: VecDeque<(Ps, Vec<u8>)>,
    done: u32,
    done_written: u32,
    done_inflight: bool,
    frames_sent: u64,
    /// Observability only (maintained when the probe is enabled): frame
    /// sequence numbers whose frame-memory read is in flight. Reads
    /// complete in ring order, so a FIFO pairs fetches to completions.
    obs_fetch_seq: VecDeque<u32>,
    /// Observability only: sequence numbers on the wire, parallel to
    /// `tx_done`.
    obs_wire_seq: VecDeque<u32>,
    /// Fleet mode: when enabled, every frame leaving the wire is also
    /// retained as `(wire-done time, bytes)` for the fabric to collect
    /// at the next epoch barrier.
    egress: Option<Vec<(Ps, Vec<u8>)>>,
}

impl MacTx {
    /// Create the transmit MAC.
    pub fn new(cfg: MacTxConfig) -> MacTx {
        MacTx {
            cfg,
            sp: SpPort::new(cfg.port),
            monitor: TxMonitor::new(),
            fetched: 0,
            fetch_active: false,
            entry_addr: 0,
            entry_len: 0,
            reads_outstanding: 0,
            wire_busy_until: Ps::ZERO,
            tx_done: VecDeque::new(),
            done: 0,
            done_written: 0,
            done_inflight: false,
            frames_sent: 0,
            obs_fetch_seq: VecDeque::new(),
            obs_wire_seq: VecDeque::new(),
            egress: None,
        }
    }

    /// Start retaining transmitted frames for an external fabric
    /// (fleet mode). Until this is called, the capture path costs
    /// nothing.
    pub fn capture_egress(&mut self) {
        self.egress = Some(Vec::new());
    }

    /// Take the frames that left the wire since the last call:
    /// `(wire-done time, frame bytes)` in transmit order.
    ///
    /// # Panics
    ///
    /// Panics if [`MacTx::capture_egress`] was never called.
    pub fn take_egress(&mut self) -> Vec<(Ps, Vec<u8>)> {
        std::mem::take(self.egress.as_mut().expect("egress capture enabled"))
    }

    /// The crossbar port this MAC owns.
    pub fn port(&self) -> usize {
        self.cfg.port
    }

    /// Frames fully transmitted.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Scratchpad accesses performed.
    pub fn sp_accesses(&self) -> u64 {
        self.sp.accesses()
    }

    /// Zero counters (keeps ring state).
    pub fn reset_stats(&mut self) {
        self.sp.reset_stats();
        self.frames_sent = 0;
    }

    /// A frame-memory read completed: the frame goes on the wire.
    /// Reads complete in ring order (per-stream FIFO), preserving the
    /// in-order transmit guarantee.
    pub fn on_sdram_complete(&mut self, now: Ps, data: &[u8]) {
        self.on_sdram_complete_probed(now, data, &mut NullProbe);
    }

    /// Probed variant of [`MacTx::on_sdram_complete`]: emits
    /// [`Event::MacTxWireStart`] at the moment the frame starts
    /// occupying the wire (which may be later than `now` when the wire
    /// is busy).
    pub fn on_sdram_complete_probed<P: Probe>(&mut self, now: Ps, data: &[u8], probe: &mut P) {
        self.reads_outstanding -= 1;
        let mut frame = data.to_vec();
        frame.extend_from_slice(&[0u8; 4]); // MAC appends the FCS
        let start = now.max(self.wire_busy_until);
        let done = start + wire_time(frame.len());
        self.wire_busy_until = done;
        self.tx_done.push_back((done, frame));
        if P::ENABLED {
            let seq = self
                .obs_fetch_seq
                .pop_front()
                .expect("sdram completion without fetched seq");
            probe.emit(Event::MacTxWireStart { seq, at: start });
            self.obs_wire_seq.push_back(seq);
        }
    }

    /// Advance one CPU cycle.
    pub fn tick(
        &mut self,
        now: Ps,
        xbar: &mut Crossbar,
        sp_mem: &Scratchpad,
        fm: &mut FrameMemory,
    ) {
        let port = self.sp.port();
        self.tick_probed(now, &mut xbar.port(port), sp_mem, fm, &mut NullProbe);
    }

    /// Probed variant of [`MacTx::tick`]: emits [`Event::MacTxFetch`]
    /// when a ring entry has been read (the entry's fourth word is the
    /// frame sequence number the firmware stored there) and
    /// [`Event::MacTxWireDone`] as each frame leaves the wire.
    pub fn tick_probed<X: XbarPort, P: Probe>(
        &mut self,
        now: Ps,
        xbar: &mut X,
        sp_mem: &Scratchpad,
        fm: &mut FrameMemory,
        probe: &mut P,
    ) {
        if let Some((tag, value)) = self.sp.tick(xbar) {
            match tag {
                TAG_ENTRY0 => self.entry_addr = value,
                TAG_ENTRY1 => self.entry_len = value,
                TAG_ENTRY2 => {} // flags (unused by this MAC revision)
                TAG_ENTRY3 => {
                    self.fetch_active = false;
                    self.fetched += 1;
                    fm.submit_read(
                        StreamId::MacTx,
                        self.entry_addr,
                        self.entry_len,
                        self.cfg.mac as u64,
                        now,
                    );
                    self.reads_outstanding += 1;
                    if P::ENABLED {
                        probe.emit(Event::MacTxFetch {
                            seq: value,
                            at: now,
                        });
                        self.obs_fetch_seq.push_back(value);
                    }
                }
                TAG_DONE => self.done_inflight = false,
                _ => unreachable!("unknown tag {tag}"),
            }
        }
        // Wire completions advance the done counter (in order); the
        // frame is validated and accounted as it leaves the wire.
        while self.tx_done.front().is_some_and(|(t, _)| *t <= now) {
            let (t, frame) = self.tx_done.pop_front().expect("nonempty");
            self.monitor.on_frame(&frame);
            self.done += 1;
            self.frames_sent += 1;
            if P::ENABLED {
                let seq = self
                    .obs_wire_seq
                    .pop_front()
                    .expect("wire completion without seq");
                probe.emit(Event::MacTxWireDone { seq, at: t });
            }
            if let Some(egress) = &mut self.egress {
                egress.push((t, frame));
            }
        }
        // Fetch the next ring entry; the MAC buffers at most two frames
        // (paper: "enough buffering for two maximum-sized frames in each
        // assist").
        let prod = sp_mem.peek(self.cfg.prod_addr);
        let buffered = self.reads_outstanding as usize + self.tx_done.len();
        if !self.fetch_active && self.fetched != prod && buffered < 2 {
            self.fetch_active = true;
            let base = self.cfg.ring + (self.fetched % self.cfg.entries) * 16;
            for (k, tag) in [TAG_ENTRY0, TAG_ENTRY1, TAG_ENTRY2, TAG_ENTRY3]
                .into_iter()
                .enumerate()
            {
                self.sp.push(
                    SpRequest {
                        addr: base + k as u32 * 4,
                        op: SpOp::Read,
                    },
                    tag,
                );
            }
        }
        if !self.done_inflight && self.done != self.done_written {
            self.sp.push(
                SpRequest {
                    addr: self.cfg.done_addr,
                    op: SpOp::Write(self.done),
                },
                TAG_DONE,
            );
            self.done_written = self.done;
            self.done_inflight = true;
        }
    }

    /// Whether the next [`MacTx::tick`] could do real work. Mirrors the
    /// tick's gates: scratchpad traffic pending, a done-counter update
    /// owed, or a ring-entry fetch ready to issue. Wire completions are
    /// time-driven and reported via [`NextEvent`] instead.
    pub fn busy(&self, sp_mem: &Scratchpad) -> bool {
        self.sp.backlog() > 0
            || self.done != self.done_written
            || (!self.fetch_active
                && self.fetched != sp_mem.peek(self.cfg.prod_addr)
                && (self.reads_outstanding as usize + self.tx_done.len()) < 2)
    }
}

impl NextEvent for MacTx {
    /// The next wire completion: `tick` pops `tx_done` entries whose
    /// time has come, so the clock must not jump past the head.
    fn next_event(&self) -> Ps {
        self.tx_done.front().map_or(Ps::MAX, |(t, _)| *t)
    }
}

/// MAC RX configuration.
#[derive(Debug, Clone, Copy)]
pub struct MacRxConfig {
    /// Crossbar port.
    pub port: usize,
    /// Receive descriptor ring base (4 words per entry: addr, len,
    /// status, checksum info).
    pub ring: u32,
    /// Entries in the descriptor ring.
    pub entries: u32,
    /// Producer count the MAC writes (frames delivered to firmware).
    pub prod_addr: u32,
    /// Firmware's claim counter (frames taken), read as a register to
    /// bound descriptor-ring occupancy.
    pub claim_addr: u32,
    /// Ring entries held back from the occupancy check: the firmware
    /// reads a descriptor *after* claiming it, so the MAC must not
    /// overwrite entries the claim counter already covers. Must be at
    /// least the cores' aggregate in-flight claim batch.
    pub claim_slack: u32,
    /// Receive region base in the frame memory.
    pub buf_base: u32,
    /// Receive region size in bytes (circular).
    pub buf_bytes: u32,
    /// Firmware-advanced free pointer (bytes retired, monotonic).
    pub tail_addr: u32,
    /// MAC id within the topology, used as the frame-memory burst tag
    /// so completions on the shared RX stream route back to this MAC.
    pub mac: u32,
}

/// The receive MAC.
#[derive(Debug)]
pub struct MacRx {
    cfg: MacRxConfig,
    sp: SpPort,
    /// The inbound traffic source.
    pub generator: RxGenerator,
    /// Bytes allocated in the receive region (monotonic, wrapping u32 —
    /// matching the firmware's 32-bit tail counter).
    head: u32,
    writes_outstanding: u32,
    /// Descriptors awaiting publication, in arrival order. Good frames
    /// wait for their SDRAM write; CRC-dropped frames carry an error
    /// status and no buffer, but still publish in order behind any
    /// in-flight predecessors.
    pending_desc: VecDeque<PendingDesc>,
    /// Observability only (maintained when the probe is enabled): wire
    /// sequence numbers parallel to `pending_desc`.
    obs_pending_seq: VecDeque<u32>,
    prod: u32,
    drops: u64,
    frames_received: u64,
    /// Whether the MAC verifies the CRC32 FCS of arriving frames
    /// (enabled only under a fault plan; fault-free generators leave the
    /// FCS bytes zero, which would never verify).
    crc_check: bool,
    crc_dropped: u64,
    /// Debug: wire sequence number of each accepted frame, in
    /// acceptance order (capped).
    pub dbg_accepted: Vec<u32>,
}

/// One receive descriptor queued for in-order publication.
#[derive(Debug)]
struct PendingDesc {
    addr: u32,
    len: u32,
    /// Descriptor status word: 1 = OK, 2 = CRC error (no buffer).
    status: u32,
    /// The frame's SDRAM write is still in flight.
    write_pending: bool,
}

/// Pad to the next 8-byte boundary (frames land at a +2 offset, so both
/// ends of the burst are misaligned, as §6.2 describes).
fn align8(n: u32) -> u32 {
    (n + 7) & !7
}

impl MacRx {
    /// Create the receive MAC over an inbound generator.
    pub fn new(cfg: MacRxConfig, generator: RxGenerator) -> MacRx {
        MacRx {
            cfg,
            sp: SpPort::new(cfg.port),
            generator,
            head: 0,
            writes_outstanding: 0,
            pending_desc: VecDeque::new(),
            obs_pending_seq: VecDeque::new(),
            prod: 0,
            drops: 0,
            frames_received: 0,
            crc_check: false,
            crc_dropped: 0,
            dbg_accepted: Vec::new(),
        }
    }

    /// The crossbar port this MAC owns.
    pub fn port(&self) -> usize {
        self.cfg.port
    }

    /// Frames dropped because the descriptor ring or buffer was full.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Enable FCS verification of arriving frames (fault plans only).
    pub fn set_crc_check(&mut self, on: bool) {
        self.crc_check = on;
    }

    /// Frames the CRC check caught and dropped (each one published an
    /// error descriptor instead of a payload).
    pub fn crc_dropped(&self) -> u64 {
        self.crc_dropped
    }

    /// Frames accepted off the wire.
    pub fn frames_received(&self) -> u64 {
        self.frames_received
    }

    /// Scratchpad accesses performed.
    pub fn sp_accesses(&self) -> u64 {
        self.sp.accesses()
    }

    /// Zero counters.
    pub fn reset_stats(&mut self) {
        self.sp.reset_stats();
        self.drops = 0;
        self.frames_received = 0;
    }

    /// An SDRAM write completed: the frame is visible, produce its
    /// descriptor (writes complete in arrival order).
    pub fn on_sdram_complete(&mut self) {
        self.on_sdram_complete_probed(Ps::ZERO, &mut NullProbe);
    }

    /// Probed variant of [`MacRx::on_sdram_complete`]: emits
    /// [`Event::MacRxDescPublish`] as each descriptor is produced.
    pub fn on_sdram_complete_probed<P: Probe>(&mut self, now: Ps, probe: &mut P) {
        self.writes_outstanding -= 1;
        // Writes complete in submission order: retire the oldest one.
        self.pending_desc
            .iter_mut()
            .find(|d| d.write_pending)
            .expect("sdram completion without pending frame")
            .write_pending = false;
        self.publish_ready(now, probe);
    }

    /// Publish descriptors from the front of the queue whose frames are
    /// settled (write done, or an error descriptor with no write).
    fn publish_ready<P: Probe>(&mut self, now: Ps, probe: &mut P) {
        while self.pending_desc.front().is_some_and(|d| !d.write_pending) {
            let d = self.pending_desc.pop_front().expect("nonempty");
            if P::ENABLED {
                let seq = self
                    .obs_pending_seq
                    .pop_front()
                    .expect("publication without pending seq");
                probe.emit(Event::MacRxDescPublish { seq, at: now });
            }
            let base = self.cfg.ring + (self.prod % self.cfg.entries) * 16;
            // addr, len, status, checksum info.
            for (k, val) in [(0, d.addr), (1, d.len), (2, d.status), (3, 0)] {
                self.sp.push(
                    SpRequest {
                        addr: base + k * 4,
                        op: SpOp::Write(val),
                    },
                    TAG_DESC,
                );
            }
            self.prod += 1;
            self.sp.push(
                SpRequest {
                    addr: self.cfg.prod_addr,
                    op: SpOp::Write(self.prod),
                },
                TAG_PROD,
            );
        }
    }

    /// Advance one CPU cycle.
    pub fn tick(
        &mut self,
        now: Ps,
        xbar: &mut Crossbar,
        sp_mem: &Scratchpad,
        fm: &mut FrameMemory,
    ) {
        let port = self.sp.port();
        self.tick_probed(now, &mut xbar.port(port), sp_mem, fm, &mut NullProbe);
    }

    /// Probed variant of [`MacRx::tick`]: emits [`Event::MacRxArrival`]
    /// for every frame taken off the wire, accepted or dropped.
    pub fn tick_probed<X: XbarPort, P: Probe>(
        &mut self,
        now: Ps,
        xbar: &mut X,
        sp_mem: &Scratchpad,
        fm: &mut FrameMemory,
        probe: &mut P,
    ) {
        let _ = self.sp.tick(xbar);
        // Accept arrivals whose time has come.
        while self.writes_outstanding < 2 {
            let Some((_, frame)) = self.generator.poll(now) else {
                break;
            };
            let len = frame.len() as u32;
            if self.crc_check {
                let injected = self.generator.take_injection();
                if P::ENABLED {
                    if let Some(f) = injected {
                        probe.emit(Event::Fault {
                            kind: match f {
                                LinkFault::Corrupt => FaultKind::LinkCorrupt,
                                LinkFault::Truncate => FaultKind::LinkTruncate,
                            },
                            unit: FaultUnit::Link,
                            info: len,
                            at: now,
                        });
                    }
                }
                if !fcs_valid(&frame) {
                    // Truncated frames may not even carry a sequence word.
                    let seq = if frame.len() >= 46 {
                        u32::from_be_bytes([frame[42], frame[43], frame[44], frame[45]])
                    } else {
                        0
                    };
                    if P::ENABLED {
                        probe.emit(Event::MacRxArrival {
                            seq,
                            len,
                            dropped: true,
                            at: now,
                        });
                    }
                    let ring_full = self.prod.wrapping_sub(sp_mem.peek(self.cfg.claim_addr))
                        >= self.cfg.entries - self.cfg.claim_slack;
                    if ring_full {
                        self.drops += 1;
                        continue;
                    }
                    self.crc_dropped += 1;
                    if P::ENABLED {
                        probe.emit(Event::Recovery {
                            kind: RecoveryKind::CrcDrop,
                            unit: FaultUnit::MacRx,
                            info: seq,
                            at: now,
                        });
                        self.obs_pending_seq.push_back(seq);
                    }
                    // An error descriptor: no buffer, no SDRAM write —
                    // but it still publishes in arrival order.
                    self.pending_desc.push_back(PendingDesc {
                        addr: 0,
                        len,
                        status: 2,
                        write_pending: false,
                    });
                    self.publish_ready(now, probe);
                    continue;
                }
            }
            let tail = sp_mem.peek(self.cfg.tail_addr);
            // Compute the candidate allocation (a wrap bump keeps each
            // frame contiguous in the region).
            let mut head = self.head;
            let off = head % self.cfg.buf_bytes;
            if off + 2 + len > self.cfg.buf_bytes {
                head = head.wrapping_add(self.cfg.buf_bytes - off);
            }
            let new_head = head.wrapping_add(align8(2 + len));
            let ring_full = self.prod.wrapping_sub(sp_mem.peek(self.cfg.claim_addr))
                >= self.cfg.entries - self.cfg.claim_slack;
            if new_head.wrapping_sub(tail) > self.cfg.buf_bytes || ring_full {
                self.drops += 1;
                if P::ENABLED {
                    let seq = u32::from_be_bytes([frame[42], frame[43], frame[44], frame[45]]);
                    probe.emit(Event::MacRxArrival {
                        seq,
                        len,
                        dropped: true,
                        at: now,
                    });
                }
                continue;
            }
            let addr = self.cfg.buf_base + head % self.cfg.buf_bytes + 2;
            if self.dbg_accepted.len() < 4096 {
                let seq = u32::from_be_bytes([frame[42], frame[43], frame[44], frame[45]]);
                self.dbg_accepted.push(seq);
            }
            if P::ENABLED {
                let seq = u32::from_be_bytes([frame[42], frame[43], frame[44], frame[45]]);
                probe.emit(Event::MacRxArrival {
                    seq,
                    len,
                    dropped: false,
                    at: now,
                });
                self.obs_pending_seq.push_back(seq);
            }
            fm.submit_write(StreamId::MacRx, addr, &frame, self.cfg.mac as u64, now);
            self.head = new_head;
            self.writes_outstanding += 1;
            self.pending_desc.push_back(PendingDesc {
                addr,
                len,
                status: 1,
                write_pending: true,
            });
            self.frames_received += 1;
        }
    }

    /// Whether the next [`MacRx::tick`] could do real work besides
    /// accepting an arrival (arrivals are time-driven, see
    /// [`NextEvent`]): descriptor or producer writes pending on the
    /// scratchpad port.
    pub fn busy(&self) -> bool {
        self.sp.backlog() > 0
    }
}

impl NextEvent for MacRx {
    /// The next frame arrival — but only while the MAC has buffer
    /// capacity to accept it. At two writes outstanding the accept loop
    /// cannot run regardless of arrivals (overdue frames wait, without
    /// being dropped, exactly as in the dense kernel); the wake then
    /// comes from the SDRAM completion that frees a buffer.
    fn next_event(&self) -> Ps {
        if self.writes_outstanding < 2 {
            self.generator.next_arrival()
        } else {
            Ps::MAX
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nicsim_mem::FrameMemoryConfig;
    use nicsim_net::frame::build_udp_frame;

    fn fm() -> FrameMemory {
        FrameMemory::new(FrameMemoryConfig::default())
    }

    #[test]
    fn mac_tx_transmits_ring_in_order() {
        let mut sp = Scratchpad::new(64 * 1024, 4);
        let mut xbar = Crossbar::new(1, 4);
        let mut fmem = fm();
        let cfg = MacTxConfig {
            port: 0,
            ring: 0x1000,
            entries: 16,
            prod_addr: 0x100,
            done_addr: 0x104,
            mac: 0,
        };
        let mut mac = MacTx::new(cfg);
        // Stage two frames in SDRAM and two ring entries.
        for i in 0..2u32 {
            let f = build_udp_frame(i, 1472);
            let eth = &f[..f.len() - 4];
            fmem.submit_write(StreamId::DmaRead, 0x8000 + i * 2048, eth, 0, Ps::ZERO);
            sp.poke(0x1000 + i * 16, 0x8000 + i * 2048);
            sp.poke(0x1000 + i * 16 + 4, eth.len() as u32);
            sp.poke(0x1000 + i * 16 + 12, i);
        }
        fmem.advance(Ps::from_us(2));
        sp.poke(0x100, 2); // producer doorbell
        let mut now = Ps::from_us(2);
        for _ in 0..2000 {
            now += Ps(5000);
            xbar.tick(&mut sp);
            mac.tick(now, &mut xbar, &sp, &mut fmem);
            for c in fmem.advance(now) {
                mac.on_sdram_complete(c.at, c.data.as_deref().unwrap());
            }
        }
        assert_eq!(mac.frames_sent(), 2);
        assert_eq!(mac.monitor.frames(), 2);
        assert_eq!(mac.monitor.out_of_order(), 0);
        assert!(mac.monitor.errors().is_empty());
        assert_eq!(sp.peek(0x104), 2, "done counter");
    }

    #[test]
    fn mac_rx_delivers_descriptors() {
        let mut sp = Scratchpad::new(64 * 1024, 4);
        let mut xbar = Crossbar::new(1, 4);
        let mut fmem = fm();
        let cfg = MacRxConfig {
            port: 0,
            ring: 0x2000,
            entries: 64,
            prod_addr: 0x200,
            claim_addr: 0x204,
            claim_slack: 0,
            buf_base: 0x10_0000,
            buf_bytes: 0x10_0000,
            tail_addr: 0x208,
            mac: 0,
        };
        let mut mac = MacRx::new(cfg, RxGenerator::new(1472));
        let mut now = Ps::ZERO;
        for _ in 0..3000 {
            now += Ps(5000);
            xbar.tick(&mut sp);
            mac.tick(now, &mut xbar, &sp, &mut fmem);
            for _ in fmem.advance(now) {
                mac.on_sdram_complete();
            }
            if sp.peek(0x200) >= 3 {
                break;
            }
        }
        let prod = sp.peek(0x200);
        assert!(prod >= 3, "producer advanced to {prod}");
        // First descriptor points at a valid stored frame.
        let addr = sp.peek(0x2000);
        let len = sp.peek(0x2004);
        assert_eq!(len, 1518);
        let stored = fmem.peek(addr, len);
        let info = nicsim_net::frame::validate_frame(stored).unwrap();
        assert_eq!(info.seq, 0);
        assert_eq!(mac.drops(), 0);
        assert_eq!(addr % 8, 2, "frames land at the +2 IP-align offset");
    }

    #[test]
    fn mac_rx_drops_when_ring_full() {
        let mut sp = Scratchpad::new(64 * 1024, 4);
        let mut xbar = Crossbar::new(1, 4);
        let mut fmem = fm();
        let cfg = MacRxConfig {
            port: 0,
            ring: 0x2000,
            entries: 4, // tiny ring, firmware never claims
            prod_addr: 0x200,
            claim_addr: 0x204,
            claim_slack: 0,
            buf_base: 0x10_0000,
            buf_bytes: 0x10_0000,
            tail_addr: 0x208,
            mac: 0,
        };
        let mut mac = MacRx::new(cfg, RxGenerator::new(1472));
        let mut now = Ps::ZERO;
        for _ in 0..5000 {
            now += Ps(5000);
            xbar.tick(&mut sp);
            mac.tick(now, &mut xbar, &sp, &mut fmem);
            for _ in fmem.advance(now) {
                mac.on_sdram_complete();
            }
        }
        assert!(mac.drops() > 0, "overrun must drop");
        assert_eq!(sp.peek(0x200), 4, "only ring-many frames delivered");
    }

    #[test]
    fn mac_rx_crc_drops_publish_error_descriptors() {
        use nicsim_fault::{FaultPlan, LinkFaults};
        let mut sp = Scratchpad::new(64 * 1024, 4);
        let mut xbar = Crossbar::new(1, 4);
        let mut fmem = fm();
        let cfg = MacRxConfig {
            port: 0,
            ring: 0x2000,
            entries: 64,
            prod_addr: 0x200,
            claim_addr: 0x204,
            claim_slack: 0,
            buf_base: 0x10_0000,
            buf_bytes: 0x10_0000,
            tail_addr: 0x208,
            mac: 0,
        };
        let plan = FaultPlan {
            link_corrupt: 1.0,
            ..FaultPlan::default()
        };
        let mut generator = RxGenerator::new(1472);
        generator.set_faults(LinkFaults::new(&plan));
        let mut mac = MacRx::new(cfg, generator);
        mac.set_crc_check(true);
        let mut now = Ps::ZERO;
        for _ in 0..3000 {
            now += Ps(5000);
            xbar.tick(&mut sp);
            mac.tick(now, &mut xbar, &sp, &mut fmem);
            for _ in fmem.advance(now) {
                mac.on_sdram_complete();
            }
            if sp.peek(0x200) >= 3 {
                break;
            }
        }
        assert!(sp.peek(0x200) >= 3, "error descriptors still produce");
        assert!(mac.crc_dropped() >= 3);
        assert_eq!(mac.frames_received(), 0, "no corrupt frame accepted");
        assert_eq!(sp.peek(0x2000), 0, "error descriptor carries no buffer");
        assert_eq!(sp.peek(0x2008), 2, "status marks the CRC error");
    }

    #[test]
    fn align8_pads_up() {
        assert_eq!(align8(0), 0);
        assert_eq!(align8(1), 8);
        assert_eq!(align8(8), 8);
        assert_eq!(align8(1520), 1520);
        assert_eq!(align8(1521), 1528);
    }
}
