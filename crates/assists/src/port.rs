//! An assist's crossbar port: a FIFO of scratchpad transactions.
//!
//! Assists, like cores, have a single outstanding transaction on the
//! crossbar. `SpPort` queues the transactions an assist wants to perform
//! and issues them in order, returning each completion (tagged by the
//! assist) as it arrives.

use nicsim_mem::{SpRequest, XbarPort};
use std::collections::VecDeque;

/// A FIFO scratchpad-access port for a hardware assist.
#[derive(Debug)]
pub struct SpPort {
    port: usize,
    queue: VecDeque<(SpRequest, u32)>,
    inflight: Option<u32>,
    accesses: u64,
}

impl SpPort {
    /// Create a port bound to crossbar requester `port`.
    pub fn new(port: usize) -> SpPort {
        SpPort {
            port,
            queue: VecDeque::new(),
            inflight: None,
            accesses: 0,
        }
    }

    /// The crossbar requester index.
    pub fn port(&self) -> usize {
        self.port
    }

    /// Enqueue a transaction with an assist-defined tag.
    pub fn push(&mut self, req: SpRequest, tag: u32) {
        self.queue.push_back((req, tag));
    }

    /// Transactions not yet completed (queued + in flight).
    pub fn backlog(&self) -> usize {
        self.queue.len() + usize::from(self.inflight.is_some())
    }

    /// Total transactions completed (the assists' share of scratchpad
    /// bandwidth in Table 4).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Zero the access counter.
    pub fn reset_stats(&mut self) {
        self.accesses = 0;
    }

    /// Advance one cycle: collect the completed transaction (if any) and
    /// issue the next queued one. Returns `(tag, response)` on
    /// completion. Generic over the crossbar port view so assists run
    /// against both the sequential and domain-parallel kernels.
    pub fn tick<X: XbarPort>(&mut self, xbar: &mut X) -> Option<(u32, u32)> {
        let mut done = None;
        if let Some(tag) = self.inflight {
            if let Some(v) = xbar.take_response() {
                self.inflight = None;
                self.accesses += 1;
                done = Some((tag, v));
            }
        }
        if self.inflight.is_none() && xbar.idle() {
            if let Some((req, tag)) = self.queue.pop_front() {
                xbar.submit(req);
                self.inflight = Some(tag);
            }
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nicsim_mem::{Crossbar, Scratchpad, SpOp};

    #[test]
    fn fifo_order_preserved() {
        let mut sp = Scratchpad::new(1024, 4);
        let mut xbar = Crossbar::new(1, 4);
        let mut port = SpPort::new(0);
        for i in 0..5u32 {
            port.push(
                SpRequest {
                    addr: i * 4,
                    op: SpOp::Write(i + 100),
                },
                i,
            );
        }
        let mut tags = Vec::new();
        for _ in 0..40 {
            xbar.tick(&mut sp);
            if let Some((tag, _)) = port.tick(&mut xbar.port(0)) {
                tags.push(tag);
            }
        }
        assert_eq!(tags, vec![0, 1, 2, 3, 4]);
        for i in 0..5u32 {
            assert_eq!(sp.peek(i * 4), i + 100);
        }
        assert_eq!(port.accesses(), 5);
        assert_eq!(port.backlog(), 0);
    }

    #[test]
    fn read_returns_value() {
        let mut sp = Scratchpad::new(64, 4);
        sp.poke(8, 77);
        let mut xbar = Crossbar::new(1, 4);
        let mut port = SpPort::new(0);
        port.push(
            SpRequest {
                addr: 8,
                op: SpOp::Read,
            },
            9,
        );
        let mut got = None;
        for _ in 0..10 {
            xbar.tick(&mut sp);
            if let Some(r) = port.tick(&mut xbar.port(0)) {
                got = Some(r);
            }
        }
        assert_eq!(got, Some((9, 77)));
    }
}
