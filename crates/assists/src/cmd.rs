//! The hardware/firmware contract: command and descriptor formats.
//!
//! Everything the firmware and the assists exchange lives in scratchpad
//! rings with these layouts. All counters are free-running (monotonic
//! `u32`); ring indices are `count % entries`.

/// Words per DMA command.
pub const DMA_CMD_WORDS: u32 = 4;
/// Words per MAC TX ring entry (`sdram_addr`, `len`).
pub const MACTX_ENTRY_WORDS: u32 = 2;
/// Words per MAC RX descriptor (`sdram_addr`, `len`).
pub const MACRX_ENTRY_WORDS: u32 = 2;

/// Flag in the DMA command `len` word: the NIC-side address is in the
/// scratchpad (otherwise it is in the frame memory).
pub const FLAG_SP: u32 = 1 << 31;
/// Flag in the DMA command `len` word (DMA write only): word 0 of the
/// command is an immediate 32-bit value to write to the host address.
pub const FLAG_IMM: u32 = 1 << 30;
/// Mask extracting the byte length from the `len` word.
pub const LEN_MASK: u32 = 0x00ff_ffff;

/// A decoded DMA command.
///
/// Layout in the ring (4 words):
///
/// | word | DMA read             | DMA write                     |
/// |------|----------------------|-------------------------------|
/// | 0    | host source address  | NIC source address / immediate|
/// | 1    | NIC dest address     | host destination address      |
/// | 2    | `len \| flags`       | `len \| flags`                |
/// | 3    | firmware tag         | firmware tag                  |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaCmd {
    /// Word 0: host address (read) or NIC source / immediate (write).
    pub w0: u32,
    /// Word 1: NIC destination (read) or host destination (write).
    pub w1: u32,
    /// Byte length.
    pub len: u32,
    /// `FLAG_SP` / `FLAG_IMM` bits.
    pub flags: u32,
    /// Firmware tag (opaque to hardware).
    pub tag: u32,
}

impl DmaCmd {
    /// Decode from the four ring words.
    pub fn decode(words: [u32; 4]) -> DmaCmd {
        DmaCmd {
            w0: words[0],
            w1: words[1],
            len: words[2] & LEN_MASK,
            flags: words[2] & !LEN_MASK,
            tag: words[3],
        }
    }

    /// Encode into the four ring words.
    pub fn encode(&self) -> [u32; 4] {
        [self.w0, self.w1, self.len | self.flags, self.tag]
    }

    /// Whether the NIC-side address is a scratchpad address.
    pub fn is_scratchpad(&self) -> bool {
        self.flags & FLAG_SP != 0
    }

    /// Whether word 0 is an immediate value (DMA write only).
    pub fn is_immediate(&self) -> bool {
        self.flags & FLAG_IMM != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let c = DmaCmd {
            w0: 0x1000,
            w1: 0x2000,
            len: 1518,
            flags: FLAG_SP,
            tag: 42,
        };
        assert_eq!(DmaCmd::decode(c.encode()), c);
        assert!(c.is_scratchpad());
        assert!(!c.is_immediate());
    }

    #[test]
    fn flags_do_not_clobber_len() {
        let words = [0, 0, 512 | FLAG_IMM, 7];
        let c = DmaCmd::decode(words);
        assert_eq!(c.len, 512);
        assert!(c.is_immediate());
        assert!(!c.is_scratchpad());
    }
}
