//! The NIC's hardware assist units (paper §4, Figure 6).
//!
//! Four assists surround the processor complex and are "solely
//! responsible for all frame data transfers" while also sharing control
//! information with the cores through the scratchpad:
//!
//! * **DMA read** — moves data from host memory into the NIC: buffer
//!   descriptors into the scratchpad, frame contents into the transmit
//!   region of the frame memory.
//! * **DMA write** — moves data from the NIC to host memory: received
//!   frame contents from the frame memory, return descriptors and status
//!   words from the scratchpad (or as immediate values).
//! * **MAC TX** — drains the transmit ring: reads frame bytes from the
//!   frame memory and puts them on the wire with Ethernet timing.
//! * **MAC RX** — accepts frames from the wire into the receive region of
//!   the frame memory and produces receive descriptors for the firmware.
//!
//! Each assist owns one crossbar port (the paper's "P+4 × S+1 crossbar")
//! and interacts with firmware exclusively through scratchpad-resident
//! command rings and monotonic progress counters — the hardware pointers
//! that the frame-parallel firmware's dispatch loop inspects (Figure 5).

pub mod cmd;
pub mod dma;
pub mod mac;
pub mod port;

pub use dma::{dma_tag, dma_tag_engine, DmaConfig, DmaRead, DmaWrite};
pub use mac::{MacRx, MacRxConfig, MacTx, MacTxConfig};
pub use port::SpPort;
