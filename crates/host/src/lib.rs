//! Host system model: main memory and the device driver.
//!
//! The paper's simulator "models the behavior of the host and the
//! network. The host model emulates the real device driver" (§5). This
//! crate provides:
//!
//! * [`HostMemory`] — the server's main memory as seen over DMA;
//! * [`Driver`] — the device driver: it builds frames into host buffers,
//!   posts send/receive buffer descriptors, rings the NIC's mailbox
//!   registers, consumes completions, and validates every received frame
//!   end-to-end (bytes, ordering, IP checksum).
//!
//! Following the paper's methodology, the I/O interconnect's bandwidth
//! and latency are **not** modeled: DMA reads/writes against host memory
//! are functionally instantaneous, and mailbox writes land immediately.

pub mod driver;
pub mod memory;

pub use driver::{Driver, DriverConfig, DriverStats, HostLayout, Mailbox, MailboxWrite};
pub use memory::HostMemory;
