//! Host main memory as seen by the NIC's DMA engines.

/// A flat byte-addressable model of the host's main memory.
///
/// Word accessors use little-endian layout (the paper's firmware does the
/// byte swapping a real PCI NIC would; our descriptors are plain LE
/// words).
#[derive(Debug, Clone)]
pub struct HostMemory {
    bytes: Vec<u8>,
}

impl HostMemory {
    /// Allocate `size` bytes of zeroed host memory.
    pub fn new(size: usize) -> HostMemory {
        HostMemory {
            bytes: vec![0; size],
        }
    }

    /// Capacity in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the memory is empty (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Read `len` bytes at `addr` (a DMA read from the NIC's viewpoint).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn read(&self, addr: u32, len: u32) -> &[u8] {
        &self.bytes[addr as usize..(addr + len) as usize]
    }

    /// Write `data` at `addr` (a DMA write from the NIC's viewpoint).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn write(&mut self, addr: u32, data: &[u8]) {
        self.bytes[addr as usize..addr as usize + data.len()].copy_from_slice(data);
    }

    /// Read a little-endian 32-bit word.
    pub fn read_u32(&self, addr: u32) -> u32 {
        let b = self.read(addr, 4);
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Write a little-endian 32-bit word.
    pub fn write_u32(&mut self, addr: u32, val: u32) {
        self.write(addr, &val.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_roundtrip() {
        let mut m = HostMemory::new(1024);
        m.write(100, &[1, 2, 3]);
        assert_eq!(m.read(100, 3), &[1, 2, 3]);
        assert_eq!(m.read(103, 1), &[0]);
    }

    #[test]
    fn word_roundtrip_is_little_endian() {
        let mut m = HostMemory::new(64);
        m.write_u32(8, 0x0403_0201);
        assert_eq!(m.read(8, 4), &[1, 2, 3, 4]);
        assert_eq!(m.read_u32(8), 0x0403_0201);
    }

    #[test]
    #[should_panic]
    fn out_of_range_read_panics() {
        let m = HostMemory::new(16);
        let _ = m.read(12, 8);
    }
}
