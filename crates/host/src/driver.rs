//! The device-driver model.
//!
//! Reproduces the driver behavior of paper §2.1 / Figures 1–2:
//!
//! * **Send** (Figure 1): the driver writes the frame into host buffers —
//!   two discontiguous regions, a 42-byte header and the payload — builds
//!   two buffer descriptors, and writes the NIC's send mailbox with the
//!   new producer index. Completion is observed through a status word the
//!   NIC DMA-writes back.
//! * **Receive** (Figure 2): the driver preallocates a pool of
//!   main-memory buffers, continually posts them to the NIC as receive
//!   buffer descriptors, and consumes return descriptors the NIC
//!   DMA-writes into the return ring, validating every frame's bytes and
//!   its in-order delivery.

use crate::memory::HostMemory;
use nicsim_net::frame::{build_udp_frame, set_endpoints, validate_frame};
use nicsim_net::workload::TxPacket;
use nicsim_obs::{Event, FaultUnit, NullProbe, Probe, RecoveryKind};
use nicsim_sim::Ps;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// Number of buffer descriptors in the send ring (two per frame).
pub const SEND_BD_RING_ENTRIES: u32 = 1024;
/// Maximum send frames in flight (limited by the BD ring).
pub const SEND_FRAME_WINDOW: u32 = SEND_BD_RING_ENTRIES / 2;
/// Number of receive buffer descriptors in the ring.
pub const RX_BD_RING_ENTRIES: u32 = 1024;
/// Number of preallocated receive buffers.
pub const RX_BUF_COUNT: u32 = 1024;
/// Entries in the receive return ring.
pub const RETURN_RING_ENTRIES: u32 = 1024;
/// Bytes per buffer descriptor.
pub const BD_BYTES: u32 = 16;
/// Bytes per receive buffer.
pub const RX_BUF_BYTES: u32 = 2048;
/// Flag: descriptor is the first (header) fragment of a frame.
pub const BD_FLAG_FIRST: u32 = 1;
/// Flag: descriptor is the last (payload) fragment of a frame.
pub const BD_FLAG_LAST: u32 = 2;
/// Length of the header fragment of every frame.
pub const HEADER_LEN: u32 = 42;

/// Where the driver's rings and buffers live in host memory.
#[derive(Debug, Clone, Copy)]
pub struct HostLayout {
    /// Send BD ring base.
    pub send_bd_ring: u32,
    /// Send header buffers (64 B each, one per window slot).
    pub send_hdr_bufs: u32,
    /// Send payload buffers (2 KB each, one per window slot).
    pub send_pay_bufs: u32,
    /// Receive BD ring base.
    pub rx_bd_ring: u32,
    /// Receive buffers (2 KB each).
    pub rx_bufs: u32,
    /// Receive return ring base.
    pub return_ring: u32,
    /// Status block: `+0` send consumer (BDs), `+4` return producer.
    pub status: u32,
}

impl Default for HostLayout {
    fn default() -> Self {
        HostLayout {
            send_bd_ring: 0x0000_0000,
            send_hdr_bufs: 0x0001_0000,
            send_pay_bufs: 0x0002_0000,
            rx_bd_ring: 0x0013_0000,
            rx_bufs: 0x0014_0000,
            return_ring: 0x0034_0000,
            status: 0x0035_0000,
        }
    }
}

impl HostLayout {
    /// Host memory size needed for this layout.
    pub fn memory_size(&self) -> usize {
        (self.status + 64) as usize
    }
}

/// A mailbox register on the NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mailbox {
    /// Send BD producer index (counts BDs).
    SendBdProd,
    /// Receive BD producer index (counts BDs).
    RxBdProd,
}

/// One memory-mapped register write performed by the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MailboxWrite {
    /// Which register.
    pub reg: Mailbox,
    /// The value written.
    pub value: u32,
}

/// Driver configuration.
#[derive(Debug, Clone, Copy)]
pub struct DriverConfig {
    /// UDP datagram size for transmitted frames.
    pub udp_payload: usize,
    /// Offered transmit load in frames/s; `None` saturates the window.
    pub offered_fps: Option<f64>,
    /// Whether the host transmits at all.
    pub send_enabled: bool,
    /// Maximum frames posted per driver invocation.
    pub post_burst: u32,
    /// Whether the NIC runs under a fault plan: the driver then honors
    /// error-flagged return descriptors (recycling the buffer instead of
    /// validating it) and re-posts transmit frames the NIC aborted,
    /// reading the cumulative abort count from `status + 8`.
    pub fault_aware: bool,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            udp_payload: 1472,
            offered_fps: None,
            send_enabled: true,
            post_burst: 32,
            fault_aware: false,
        }
    }
}

/// Driver-side statistics (the receive half of the throughput numbers;
/// transmit throughput is measured by the link's `TxMonitor`).
#[derive(Debug, Clone, Copy, Default)]
pub struct DriverStats {
    /// Frames posted for transmit.
    pub tx_posted: u64,
    /// Transmit frames completed by the NIC.
    pub tx_completed: u64,
    /// Frames received and validated.
    pub rx_frames: u64,
    /// UDP payload bytes received in the current window.
    pub rx_udp_payload_bytes: u64,
    /// Sequence gaps observed (frames dropped by the NIC).
    pub rx_dropped: u64,
    /// Frames received out of order — must stay 0 (the paper's firmware
    /// guarantees in-order delivery).
    pub rx_out_of_order: u64,
    /// Frames failing byte-level validation.
    pub rx_corrupt: u64,
    /// Error-flagged return descriptors consumed (CRC-dropped frames
    /// whose buffers were recycled without validation).
    pub rx_error_returns: u64,
    /// Transmit frames re-posted after the NIC aborted their DMA.
    pub tx_retries: u64,
    /// Reliable mode: frames retransmitted on timeout.
    pub tx_retransmits: u64,
    /// Reliable mode: duplicate deliveries suppressed by the receiver.
    pub rx_duplicates: u64,
}

/// Reliable-delivery state (fleet mode only): the sender half tracks
/// unacked frames and retransmits on timeout with exponential backoff;
/// the receiver half deduplicates and generates acknowledgements.
///
/// Acks travel out of band: the fleet engine drains
/// [`Driver::take_acks`] at each epoch barrier and delivers them to the
/// source driver via [`Driver::deliver_ack`] one fabric round-trip after
/// the original delivery — the protocol costs latency, not bandwidth,
/// and stays off the simulated wire (in-band ack frames would perturb
/// the firmware and MAC models this crate is calibrated against).
#[derive(Debug)]
struct Reliable {
    /// Retransmit timeout base; attempt `n` waits `rto << min(n, 6)`.
    rto: Ps,
    /// Sender: unacked frames by namespaced sequence. A `BTreeMap` so
    /// the retransmit scan walks in deterministic sequence order.
    unacked: BTreeMap<u32, Unacked>,
    /// Receiver-generated acks awaiting the fleet engine:
    /// `(source NIC of the data frame, seq, delivered_at)`.
    acks_out: Vec<(u16, u32, Ps)>,
    /// Sender: acks in flight toward this driver, `(arrival, seq)`.
    acks_in: Vec<(Ps, u32)>,
    /// Receiver: delivered sequence sets per source, for exactly-once
    /// accounting under retransmission.
    seen: HashMap<u16, HashSet<u32>>,
}

/// One unacked transmit frame (enough to rebuild it bit-identically).
#[derive(Debug)]
struct Unacked {
    dst: u16,
    udp_payload: usize,
    last_sent: Ps,
    attempts: u32,
}

/// Fleet-mode transmit state: a pre-computed schedule of addressed
/// packets replaces the legacy saturating stream.
#[derive(Debug)]
struct FleetTx {
    /// This host's NIC id; sequence numbers are namespaced `src << 24`
    /// so they are globally unique across the fleet.
    src: u16,
    /// Time-sorted packets to post.
    schedule: Vec<TxPacket>,
    /// Next un-posted schedule index.
    next: usize,
}

/// The device driver.
#[derive(Debug)]
pub struct Driver {
    cfg: DriverConfig,
    layout: HostLayout,
    tx_seq_next: u32,
    /// Frames staged into the send rings (schedule posts plus reliable
    /// retransmits). Equal to `tx_seq_next` outside reliable mode; ring
    /// slots and the in-flight window run off this counter.
    tx_slot_next: u32,
    tx_bd_prod: u32,
    rx_bd_prod: u32,
    rx_frames_returned: u32,
    rx_free_bufs: VecDeque<u32>,
    ret_cons: u32,
    rx_expected_seq: Option<u32>,
    /// First few (expected, got, ret_cons, fw_seq) tuples of
    /// out-of-order deliveries, for debugging ordering violations.
    ooo_samples: Vec<(u32, u32, u32, u32)>,
    /// Debug: posting state per buffer (true = outstanding at the NIC).
    dbg_outstanding: Vec<bool>,
    /// Debug: count of returns for buffers that were not outstanding.
    pub dbg_bad_returns: u64,
    /// Cumulative NIC abort count already folded into `tx_retries`.
    aborts_seen: u32,
    mailbox: Vec<MailboxWrite>,
    stats: DriverStats,
    window_start: Ps,
    /// Fleet mode, entered via [`Driver::set_fleet`]; `None` preserves
    /// the legacy single-link behavior bit-for-bit.
    fleet: Option<FleetTx>,
    /// Fleet mode: expected next sequence per source NIC (frames from
    /// different sources interleave arbitrarily at the receiver, so
    /// ordering is only meaningful per source).
    rx_expected: HashMap<u16, u32>,
    /// Reliable-delivery state, entered via [`Driver::set_reliable`].
    reliable: Option<Reliable>,
}

impl Driver {
    /// Create a driver over the given layout.
    pub fn new(cfg: DriverConfig, layout: HostLayout) -> Driver {
        Driver {
            cfg,
            layout,
            tx_seq_next: 0,
            tx_slot_next: 0,
            tx_bd_prod: 0,
            rx_bd_prod: 0,
            rx_frames_returned: 0,
            rx_free_bufs: (0..RX_BUF_COUNT).collect(),
            ret_cons: 0,
            rx_expected_seq: None,
            ooo_samples: Vec::new(),
            dbg_outstanding: vec![false; RX_BUF_COUNT as usize],
            dbg_bad_returns: 0,
            aborts_seen: 0,
            mailbox: Vec::new(),
            stats: DriverStats::default(),
            window_start: Ps::ZERO,
            fleet: None,
            rx_expected: HashMap::new(),
            reliable: None,
        }
    }

    /// Enter fleet mode: post the given addressed schedule instead of
    /// the legacy stream (sequence numbers become `src << 24 + n`, the
    /// destination NIC id is stamped into each frame's MAC bytes), and
    /// track receive ordering per source NIC. Every NIC in a fleet
    /// enters this mode, senders and silent receivers alike.
    pub fn set_fleet(&mut self, src: u16, schedule: Vec<TxPacket>) {
        debug_assert!(schedule.windows(2).all(|p| p[0].at <= p[1].at));
        self.fleet = Some(FleetTx {
            src,
            schedule,
            next: 0,
        });
    }

    /// Enter reliable-delivery mode (requires fleet mode): unacked
    /// frames retransmit after `rto << attempts` (backoff capped at six
    /// doublings), and the receive path deduplicates per source.
    pub fn set_reliable(&mut self, rto: Ps) {
        debug_assert!(self.fleet.is_some(), "reliable mode rides on fleet mode");
        debug_assert!(rto > Ps::ZERO);
        self.reliable = Some(Reliable {
            rto,
            unacked: BTreeMap::new(),
            acks_out: Vec::new(),
            acks_in: Vec::new(),
            seen: HashMap::new(),
        });
    }

    /// Deliver one acknowledgement to this (sending) driver: the frame
    /// it posted as `seq` was delivered, and the ack arrives at `at`.
    /// Applied at the first poll at or after `at`.
    pub fn deliver_ack(&mut self, at: Ps, seq: u32) {
        if let Some(r) = self.reliable.as_mut() {
            r.acks_in.push((at, seq));
        }
    }

    /// Drain receiver-generated acknowledgements:
    /// `(source NIC of the acked frame, seq, delivered_at)`. The fleet
    /// engine routes each to its source driver one fabric round-trip
    /// after `delivered_at`.
    pub fn take_acks(&mut self) -> Vec<(u16, u32, Ps)> {
        self.reliable
            .as_mut()
            .map(|r| std::mem::take(&mut r.acks_out))
            .unwrap_or_default()
    }

    /// Unacked frames currently tracked by the reliable sender.
    pub fn unacked_frames(&self) -> usize {
        self.reliable.as_ref().map_or(0, |r| r.unacked.len())
    }

    /// Fleet-schedule frames posted so far (the sequence counter), for
    /// resuming a replacement driver after a NIC reset.
    pub fn fleet_seq_next(&self) -> u32 {
        self.tx_seq_next
    }

    /// Resume the fleet sequence counter at `n` (replacement driver
    /// after a NIC reset): receivers see a sequence gap, never a
    /// regression. The ring slot counter stays fresh — the replacement
    /// NIC's rings are empty.
    pub fn resume_fleet_seq(&mut self, n: u32) {
        debug_assert_eq!(self.tx_slot_next, 0, "resume only on a fresh driver");
        self.tx_seq_next = n;
    }

    /// Transmit frames staged into the NIC rings and not yet completed
    /// (the in-flight window, counting retransmits).
    pub fn tx_in_flight(&self) -> u32 {
        self.tx_slot_next - self.stats.tx_completed as u32
    }

    /// Whether the next invocation's behavior depends on `now` even
    /// with unchanged host memory: offered-load pacing, un-posted
    /// fleet schedule entries, or reliable-mode timers (pending acks
    /// and retransmit deadlines). The event kernel must not elide polls
    /// while this holds.
    pub fn time_sensitive(&self) -> bool {
        self.cfg.offered_fps.is_some()
            || self
                .fleet
                .as_ref()
                .is_some_and(|f| f.next < f.schedule.len())
            || self
                .reliable
                .as_ref()
                .is_some_and(|r| !r.unacked.is_empty() || !r.acks_in.is_empty())
    }

    /// Fleet-schedule packets not yet posted.
    pub fn fleet_pending(&self) -> usize {
        self.fleet.as_ref().map_or(0, |f| f.schedule.len() - f.next)
    }

    /// The host-memory layout in use.
    pub fn layout(&self) -> HostLayout {
        self.layout
    }

    /// Statistics so far.
    pub fn stats(&self) -> DriverStats {
        self.stats
    }

    /// Received UDP payload throughput in Gb/s over the window ending
    /// at `now`.
    pub fn rx_udp_gbps(&self, now: Ps) -> f64 {
        let elapsed = now.saturating_sub(self.window_start);
        if elapsed == Ps::ZERO {
            return 0.0;
        }
        self.stats.rx_udp_payload_bytes as f64 * 8.0 / elapsed.as_secs_f64() / 1e9
    }

    /// Restart the receive measurement window at `now` (discard
    /// warm-up): frame/byte counters restart, error counters persist.
    pub fn reset_window(&mut self, now: Ps) {
        self.stats.rx_udp_payload_bytes = 0;
        self.stats.rx_frames = 0;
        self.window_start = now;
    }

    /// Out-of-order samples collected (expected, got, ret_cons, fw_seq).
    pub fn ooo_samples(&self) -> &[(u32, u32, u32, u32)] {
        &self.ooo_samples
    }

    /// Drain pending mailbox writes (the system applies them to the NIC's
    /// memory-mapped registers).
    pub fn take_mailbox_writes(&mut self) -> Vec<MailboxWrite> {
        std::mem::take(&mut self.mailbox)
    }

    fn post_send_frames<P: Probe>(&mut self, now: Ps, mem: &mut HostMemory, probe: &mut P) -> bool {
        if !self.cfg.send_enabled {
            return false;
        }
        let completed_bds = mem.read_u32(self.layout.status);
        let completed_frames = completed_bds / 2;
        let completed_changed = self.stats.tx_completed != completed_frames as u64;
        if P::ENABLED && completed_changed {
            probe.emit(Event::HostTxComplete {
                upto: completed_frames,
                at: now,
            });
        }
        self.stats.tx_completed = completed_frames as u64;
        let in_flight = self.tx_slot_next - completed_frames;
        let mut budget = (SEND_FRAME_WINDOW - in_flight).min(self.cfg.post_burst);
        if let Some(fps) = self.cfg.offered_fps {
            let allowed = (now.as_secs_f64() * fps) as u64;
            budget = budget.min((allowed.saturating_sub(self.tx_seq_next as u64)) as u32);
        }
        if self.cfg.fault_aware {
            // Frames whose payload DMA the NIC aborted never reached the
            // wire: grant extra posting credit on top of the paced
            // budget so the offered load is made good.
            let aborts = mem.read_u32(self.layout.status + 8);
            let lost = aborts.wrapping_sub(self.aborts_seen);
            if lost > 0 {
                self.aborts_seen = aborts;
                self.stats.tx_retries += lost as u64;
                budget = (budget + lost).min(SEND_FRAME_WINDOW - in_flight);
                if P::ENABLED {
                    probe.emit(Event::Recovery {
                        kind: RecoveryKind::TxRetry,
                        unit: FaultUnit::Driver,
                        info: lost,
                        at: now,
                    });
                }
            }
        }
        if budget == 0 {
            return completed_changed;
        }
        if self.fleet.is_some() {
            let mut posted = false;
            // Reliable mode first applies due acks, then spends budget
            // on overdue retransmits before new schedule entries —
            // recovery traffic ahead of fresh offered load.
            if self.reliable.is_some() {
                self.apply_due_acks(now);
                posted |= self.retransmit_due(now, mem, &mut budget, probe);
            }
            while budget > 0 {
                let fleet = self.fleet.as_ref().expect("fleet mode");
                let (src, pkt) = match fleet.schedule.get(fleet.next) {
                    Some(p) if p.at <= now => (fleet.src, *p),
                    _ => break,
                };
                // Namespaced sequence: globally unique across the
                // fleet, recoverable to the source via `seq >> 24`.
                debug_assert!(self.tx_seq_next < 1 << 24, "fleet seq namespace overflow");
                let seq = ((src as u32) << 24) | self.tx_seq_next;
                let mut frame = build_udp_frame(seq, pkt.udp_payload);
                set_endpoints(&mut frame, src, pkt.dst);
                self.write_frame(now, mem, &frame, seq, probe);
                self.tx_seq_next += 1;
                if let Some(r) = self.reliable.as_mut() {
                    r.unacked.insert(
                        seq,
                        Unacked {
                            dst: pkt.dst,
                            udp_payload: pkt.udp_payload,
                            last_sent: now,
                            attempts: 0,
                        },
                    );
                }
                self.fleet.as_mut().expect("fleet mode").next += 1;
                budget -= 1;
                posted = true;
            }
            if posted {
                self.mailbox.push(MailboxWrite {
                    reg: Mailbox::SendBdProd,
                    value: self.tx_bd_prod,
                });
            }
            return completed_changed || posted;
        }
        for _ in 0..budget {
            let seq = self.tx_seq_next;
            let frame = build_udp_frame(seq, self.cfg.udp_payload);
            self.write_frame(now, mem, &frame, seq, probe);
            self.tx_seq_next += 1;
        }
        self.mailbox.push(MailboxWrite {
            reg: Mailbox::SendBdProd,
            value: self.tx_bd_prod,
        });
        true
    }

    /// Apply acknowledgements that have arrived by `now`: each removes
    /// its frame from the unacked map. Arrival order across senders is
    /// irrelevant — removal from a set commutes — so the fleet engine
    /// may append acks in any deterministic order.
    fn apply_due_acks(&mut self, now: Ps) {
        let r = self.reliable.as_mut().expect("reliable mode");
        let mut i = 0;
        while i < r.acks_in.len() {
            if r.acks_in[i].0 <= now {
                let (_, seq) = r.acks_in.swap_remove(i);
                r.unacked.remove(&seq);
            } else {
                i += 1;
            }
        }
    }

    /// Retransmit frames whose timeout expired, oldest sequence first,
    /// within `budget`. Attempt `n` waits `rto << min(n, 6)` after its
    /// last transmission — exponential backoff with a bounded exponent
    /// so a long-unreachable peer cannot overflow the shift.
    fn retransmit_due<P: Probe>(
        &mut self,
        now: Ps,
        mem: &mut HostMemory,
        budget: &mut u32,
        probe: &mut P,
    ) -> bool {
        let src = self.fleet.as_ref().expect("fleet mode").src;
        let r = self.reliable.as_mut().expect("reliable mode");
        let mut due: Vec<u32> = Vec::new();
        for (seq, u) in r.unacked.iter() {
            if due.len() as u32 >= *budget {
                break;
            }
            if now >= u.last_sent + Ps(r.rto.0 << u.attempts.min(6)) {
                due.push(*seq);
            }
        }
        let sent = !due.is_empty();
        for seq in due {
            let r = self.reliable.as_mut().expect("reliable mode");
            let u = r.unacked.get_mut(&seq).expect("due seq tracked");
            u.last_sent = now;
            u.attempts += 1;
            let (dst, payload) = (u.dst, u.udp_payload);
            let mut frame = build_udp_frame(seq, payload);
            set_endpoints(&mut frame, src, dst);
            self.write_frame(now, mem, &frame, seq, probe);
            self.stats.tx_retransmits += 1;
            *budget -= 1;
            if P::ENABLED {
                probe.emit(Event::Recovery {
                    kind: RecoveryKind::Retransmit,
                    unit: FaultUnit::Driver,
                    info: seq,
                    at: now,
                });
            }
        }
        sent
    }

    /// Stage one frame into the send buffers and its two BDs into the
    /// ring; `seq` is the wire sequence (stored in the BDs for the
    /// firmware to carry through to the transmit ring). The caller owns
    /// the sequence counter; this advances only the ring slot.
    fn write_frame<P: Probe>(
        &mut self,
        now: Ps,
        mem: &mut HostMemory,
        frame: &[u8],
        seq: u32,
        probe: &mut P,
    ) {
        let slot = self.tx_slot_next % SEND_FRAME_WINDOW;
        let eth_len = (frame.len() - 4) as u32; // MAC appends the FCS
        let hdr_addr = self.layout.send_hdr_bufs + slot * 64 + 2;
        let pay_addr = self.layout.send_pay_bufs + slot * 2048;
        mem.write(hdr_addr, &frame[..HEADER_LEN as usize]);
        mem.write(pay_addr, &frame[HEADER_LEN as usize..eth_len as usize]);
        // Two BDs: header (FIRST) then payload (LAST).
        let bd0 = self.layout.send_bd_ring + (self.tx_bd_prod % SEND_BD_RING_ENTRIES) * BD_BYTES;
        mem.write_u32(bd0, hdr_addr);
        mem.write_u32(bd0 + 4, HEADER_LEN);
        mem.write_u32(bd0 + 8, BD_FLAG_FIRST);
        mem.write_u32(bd0 + 12, seq);
        let bd1 =
            self.layout.send_bd_ring + ((self.tx_bd_prod + 1) % SEND_BD_RING_ENTRIES) * BD_BYTES;
        mem.write_u32(bd1, pay_addr);
        mem.write_u32(bd1 + 4, eth_len - HEADER_LEN);
        mem.write_u32(bd1 + 8, BD_FLAG_LAST);
        mem.write_u32(bd1 + 12, seq);
        self.tx_bd_prod += 2;
        self.tx_slot_next += 1;
        self.stats.tx_posted += 1;
        if P::ENABLED {
            probe.emit(Event::HostTxPost { seq, at: now });
        }
    }

    fn post_rx_buffers(&mut self, mem: &mut HostMemory) -> bool {
        let outstanding = self.rx_bd_prod - self.rx_frames_returned;
        let room = RX_BD_RING_ENTRIES - outstanding;
        let mut posted = 0;
        for _ in 0..room.min(self.cfg.post_burst * 2) {
            let Some(buf) = self.rx_free_bufs.pop_front() else {
                break;
            };
            self.dbg_outstanding[buf as usize] = true;
            let addr = self.layout.rx_bufs + buf * RX_BUF_BYTES + 2;
            let bd = self.layout.rx_bd_ring + (self.rx_bd_prod % RX_BD_RING_ENTRIES) * BD_BYTES;
            mem.write_u32(bd, addr);
            mem.write_u32(bd + 4, RX_BUF_BYTES - 2);
            mem.write_u32(bd + 8, 0);
            mem.write_u32(bd + 12, buf);
            self.rx_bd_prod += 1;
            posted += 1;
        }
        if posted > 0 {
            self.mailbox.push(MailboxWrite {
                reg: Mailbox::RxBdProd,
                value: self.rx_bd_prod,
            });
        }
        posted > 0
    }

    fn consume_returns<P: Probe>(&mut self, now: Ps, mem: &mut HostMemory, probe: &mut P) -> bool {
        let prod = mem.read_u32(self.layout.status + 4);
        let consumed = self.ret_cons != prod;
        while self.ret_cons != prod {
            let d = self.layout.return_ring + (self.ret_cons % RETURN_RING_ENTRIES) * BD_BYTES;
            let addr = mem.read_u32(d);
            let len = mem.read_u32(d + 4);
            if self.cfg.fault_aware && mem.read_u32(d + 12) != 0 {
                // Error return: the MAC dropped the frame at the CRC
                // check, so the buffer carries no payload — recycle it
                // without validating and account the drop.
                self.stats.rx_error_returns += 1;
                if P::ENABLED {
                    probe.emit(Event::Recovery {
                        kind: RecoveryKind::RxErrorReturn,
                        unit: FaultUnit::Driver,
                        info: len,
                        at: now,
                    });
                }
                self.recycle(addr);
                self.ret_cons += 1;
                continue;
            }
            let frame = mem.read(addr, len).to_vec();
            match validate_frame(&frame) {
                Ok(info) if self.reliable.is_some() => {
                    // Reliable mode: deduplicate per source and ack
                    // every delivery, duplicates included (the re-ack
                    // covers a lost ack). Gap/regression accounting is
                    // meaningless under retransmission and stays off.
                    let src_nic = (info.seq >> 24) as u16;
                    let r = self.reliable.as_mut().expect("reliable mode");
                    let first = r.seen.entry(src_nic).or_default().insert(info.seq);
                    r.acks_out.push((src_nic, info.seq, now));
                    if first {
                        self.stats.rx_frames += 1;
                        self.stats.rx_udp_payload_bytes += info.udp_payload as u64;
                        if P::ENABLED {
                            probe.emit(Event::HostRxDeliver {
                                seq: info.seq,
                                udp_payload: info.udp_payload as u32,
                                at: now,
                            });
                        }
                    } else {
                        self.stats.rx_duplicates += 1;
                    }
                }
                Ok(info) => {
                    // In fleet mode ordering is tracked per source NIC
                    // (recovered from the sequence namespace); frames
                    // from different sources interleave freely.
                    let expected = if self.fleet.is_some() {
                        self.rx_expected.get(&((info.seq >> 24) as u16)).copied()
                    } else {
                        self.rx_expected_seq
                    };
                    if let Some(e) = expected {
                        if info.seq > e {
                            self.stats.rx_dropped += (info.seq - e) as u64;
                            if info.seq - e > 40 && self.ooo_samples.len() < 16 {
                                let buf = (addr - 2 - self.layout.rx_bufs) / RX_BUF_BYTES;
                                self.ooo_samples.push((e, info.seq, self.ret_cons, buf));
                            }
                        } else if info.seq < e {
                            self.stats.rx_out_of_order += 1;
                            if self.ooo_samples.len() < 16 {
                                let fw_seq = mem.read_u32(d + 8);
                                self.ooo_samples.push((e, info.seq, self.ret_cons, fw_seq));
                            }
                        }
                    }
                    if self.fleet.is_some() {
                        self.rx_expected
                            .insert((info.seq >> 24) as u16, info.seq.wrapping_add(1));
                    } else {
                        self.rx_expected_seq = Some(info.seq.wrapping_add(1));
                    }
                    self.stats.rx_frames += 1;
                    self.stats.rx_udp_payload_bytes += info.udp_payload as u64;
                    if P::ENABLED {
                        probe.emit(Event::HostRxDeliver {
                            seq: info.seq,
                            udp_payload: info.udp_payload as u32,
                            at: now,
                        });
                    }
                }
                Err(_) => self.stats.rx_corrupt += 1,
            }
            self.recycle(addr);
            self.ret_cons += 1;
        }
        consumed
    }

    /// Return a buffer to the free pool by its posted address.
    fn recycle(&mut self, addr: u32) {
        let buf = (addr - 2 - self.layout.rx_bufs) / RX_BUF_BYTES;
        if !self.dbg_outstanding[buf as usize] {
            self.dbg_bad_returns += 1;
        }
        self.dbg_outstanding[buf as usize] = false;
        self.rx_free_bufs.push_back(buf);
        self.rx_frames_returned += 1;
    }

    /// Run one driver invocation: replenish rings, consume completions.
    ///
    /// Returns whether the invocation changed any state (a return
    /// consumed, a send or receive buffer posted, or the completion
    /// count advanced). When it returns `false`, an identical invocation
    /// with the same host-memory contents is a provable no-op — except
    /// under offered-load pacing, where the send budget also depends on
    /// `now`. The event-driven kernel uses this to elide polls while the
    /// NIC leaves host memory untouched.
    pub fn tick(&mut self, now: Ps, mem: &mut HostMemory) -> bool {
        self.tick_probed(now, mem, &mut NullProbe)
    }

    /// [`Driver::tick`] with probe instrumentation: emits
    /// [`Event::HostTxPost`] per frame posted, [`Event::HostTxComplete`]
    /// when the NIC's completion count advances, and
    /// [`Event::HostRxDeliver`] per validated frame delivered.
    pub fn tick_probed<P: Probe>(&mut self, now: Ps, mem: &mut HostMemory, probe: &mut P) -> bool {
        let consumed = self.consume_returns(now, mem, probe);
        let sent = self.post_send_frames(now, mem, probe);
        let posted = self.post_rx_buffers(mem);
        consumed || sent || posted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Driver, HostMemory) {
        let layout = HostLayout::default();
        let mem = HostMemory::new(layout.memory_size());
        (Driver::new(DriverConfig::default(), layout), mem)
    }

    #[test]
    fn posts_send_bd_pairs_and_mailbox() {
        let (mut d, mut mem) = setup();
        d.tick(Ps::ZERO, &mut mem);
        assert_eq!(d.stats().tx_posted, 32);
        let writes = d.take_mailbox_writes();
        assert!(writes
            .iter()
            .any(|w| w.reg == Mailbox::SendBdProd && w.value == 64));
        // First BD pair: header FIRST then payload LAST.
        let l = d.layout();
        assert_eq!(mem.read_u32(l.send_bd_ring + 4), HEADER_LEN);
        assert_eq!(mem.read_u32(l.send_bd_ring + 8), BD_FLAG_FIRST);
        assert_eq!(mem.read_u32(l.send_bd_ring + 16 + 8), BD_FLAG_LAST);
        // Header + payload reassemble into a valid frame (sans FCS).
        let hdr_addr = mem.read_u32(l.send_bd_ring);
        let pay_addr = mem.read_u32(l.send_bd_ring + 16);
        let pay_len = mem.read_u32(l.send_bd_ring + 16 + 4);
        let mut frame = mem.read(hdr_addr, HEADER_LEN).to_vec();
        frame.extend_from_slice(mem.read(pay_addr, pay_len));
        frame.extend_from_slice(&[0; 4]); // FCS
        let info = validate_frame(&frame).unwrap();
        assert_eq!(info.seq, 0);
        assert_eq!(info.udp_payload, 1472);
    }

    #[test]
    fn window_limits_outstanding_sends() {
        let (mut d, mut mem) = setup();
        for _ in 0..100 {
            d.tick(Ps::ZERO, &mut mem);
        }
        assert_eq!(d.stats().tx_posted, SEND_FRAME_WINDOW as u64);
        // Completing frames opens the window.
        mem.write_u32(d.layout().status, 20); // 10 frames done
        d.tick(Ps::ZERO, &mut mem);
        assert_eq!(d.stats().tx_posted, SEND_FRAME_WINDOW as u64 + 10);
    }

    #[test]
    fn offered_load_paces_posting() {
        let layout = HostLayout::default();
        let mut mem = HostMemory::new(layout.memory_size());
        let cfg = DriverConfig {
            offered_fps: Some(1_000_000.0),
            ..DriverConfig::default()
        };
        let mut d = Driver::new(cfg, layout);
        d.tick(Ps::from_us(10), &mut mem); // 10us at 1Mfps = 10 frames
        assert_eq!(d.stats().tx_posted, 10);
    }

    #[test]
    fn posts_rx_buffers() {
        let (mut d, mut mem) = setup();
        d.tick(Ps::ZERO, &mut mem);
        let writes = d.take_mailbox_writes();
        let rx = writes.iter().find(|w| w.reg == Mailbox::RxBdProd).unwrap();
        assert_eq!(rx.value, 64);
        // BD 0 points into the buffer region with the +2 IP-align offset.
        let addr = mem.read_u32(d.layout().rx_bd_ring);
        assert_eq!(addr, d.layout().rx_bufs + 2);
    }

    #[test]
    fn consumes_returns_and_validates() {
        let (mut d, mut mem) = setup();
        d.tick(Ps::ZERO, &mut mem);
        let l = d.layout();
        // Simulate the NIC: put a valid frame in rx buffer 0 and a return
        // descriptor for it.
        let frame = build_udp_frame(0, 1472);
        let addr = l.rx_bufs + 2;
        mem.write(addr, &frame);
        mem.write_u32(l.return_ring, addr);
        mem.write_u32(l.return_ring + 4, frame.len() as u32);
        mem.write_u32(l.status + 4, 1); // return producer
        d.tick(Ps::from_us(1), &mut mem);
        let s = d.stats();
        assert_eq!(s.rx_frames, 1);
        assert_eq!(s.rx_udp_payload_bytes, 1472);
        assert_eq!(s.rx_corrupt, 0);
    }

    #[test]
    fn detects_drops_via_seq_gap() {
        let (mut d, mut mem) = setup();
        d.tick(Ps::ZERO, &mut mem);
        let l = d.layout();
        for (i, seq) in [0u32, 3].iter().enumerate() {
            let frame = build_udp_frame(*seq, 100);
            let addr = l.rx_bufs + (i as u32) * RX_BUF_BYTES + 2;
            mem.write(addr, &frame);
            let dsc = l.return_ring + i as u32 * BD_BYTES;
            mem.write_u32(dsc, addr);
            mem.write_u32(dsc + 4, frame.len() as u32);
        }
        mem.write_u32(l.status + 4, 2);
        d.tick(Ps::from_us(1), &mut mem);
        assert_eq!(d.stats().rx_frames, 2);
        assert_eq!(d.stats().rx_dropped, 2, "frames 1 and 2 were dropped");
        assert_eq!(d.stats().rx_out_of_order, 0);
    }

    #[test]
    fn recycles_rx_buffers() {
        let (mut d, mut mem) = setup();
        // Drain the free list entirely.
        for _ in 0..40 {
            d.tick(Ps::ZERO, &mut mem);
        }
        assert_eq!(d.rx_bd_prod, RX_BUF_COUNT);
        // Return one frame; its buffer must be reusable.
        let l = d.layout();
        let frame = build_udp_frame(0, 100);
        mem.write(l.rx_bufs + 2, &frame);
        mem.write_u32(l.return_ring, l.rx_bufs + 2);
        mem.write_u32(l.return_ring + 4, frame.len() as u32);
        mem.write_u32(l.status + 4, 1);
        d.tick(Ps::from_us(1), &mut mem);
        assert_eq!(d.rx_bd_prod, RX_BUF_COUNT + 1, "buffer 0 reposted");
    }

    #[test]
    fn error_returns_recycle_without_validation() {
        let layout = HostLayout::default();
        let mut mem = HostMemory::new(layout.memory_size());
        let cfg = DriverConfig {
            fault_aware: true,
            ..DriverConfig::default()
        };
        let mut d = Driver::new(cfg, layout);
        d.tick(Ps::ZERO, &mut mem);
        let l = d.layout();
        // Error return for buffer 0: flags word nonzero, no payload.
        mem.write_u32(l.return_ring, l.rx_bufs + 2);
        mem.write_u32(l.return_ring + 4, 64);
        mem.write_u32(l.return_ring + 12, 1);
        mem.write_u32(l.status + 4, 1);
        d.tick(Ps::from_us(1), &mut mem);
        let s = d.stats();
        assert_eq!(s.rx_error_returns, 1);
        assert_eq!(s.rx_corrupt, 0, "error returns bypass validation");
        assert_eq!(s.rx_frames, 0);
        assert_eq!(d.dbg_bad_returns, 0, "the buffer was recycled");
    }

    #[test]
    fn nic_aborts_grant_tx_retry_credit() {
        let layout = HostLayout::default();
        let mut mem = HostMemory::new(layout.memory_size());
        let cfg = DriverConfig {
            fault_aware: true,
            offered_fps: Some(1_000_000.0),
            ..DriverConfig::default()
        };
        let mut d = Driver::new(cfg, layout);
        d.tick(Ps::from_us(10), &mut mem); // 10 us at 1 Mfps = 10 frames
        assert_eq!(d.stats().tx_posted, 10);
        mem.write_u32(layout.status + 8, 3); // NIC aborted 3 of them
        d.tick(Ps::from_us(10), &mut mem);
        let s = d.stats();
        assert_eq!(s.tx_retries, 3);
        assert_eq!(s.tx_posted, 13, "aborted frames re-posted beyond pacing");
    }

    #[test]
    fn fleet_schedule_posts_addressed_namespaced_frames() {
        use nicsim_net::frame::endpoints;
        let (mut d, mut mem) = setup();
        d.set_fleet(
            3,
            vec![
                TxPacket {
                    at: Ps::ZERO,
                    dst: 1,
                    udp_payload: 256,
                },
                TxPacket {
                    at: Ps::from_us(5),
                    dst: 2,
                    udp_payload: 1472,
                },
            ],
        );
        assert!(d.time_sensitive());
        d.tick(Ps::ZERO, &mut mem);
        // Only the first packet is due.
        assert_eq!(d.stats().tx_posted, 1);
        assert_eq!(d.fleet_pending(), 1);
        let l = d.layout();
        let seq = mem.read_u32(l.send_bd_ring + 12);
        assert_eq!(seq, 3 << 24);
        // Reassemble and check addressing + validity.
        let hdr_addr = mem.read_u32(l.send_bd_ring);
        let pay_addr = mem.read_u32(l.send_bd_ring + 16);
        let pay_len = mem.read_u32(l.send_bd_ring + 16 + 4);
        let mut frame = mem.read(hdr_addr, HEADER_LEN).to_vec();
        frame.extend_from_slice(mem.read(pay_addr, pay_len));
        frame.extend_from_slice(&[0; 4]);
        assert_eq!(endpoints(&frame), (3, 1));
        assert_eq!(validate_frame(&frame).unwrap().seq, 3 << 24);
        // The second packet posts once its time comes; then the
        // schedule is drained and time sensitivity ends.
        d.tick(Ps::from_us(5), &mut mem);
        assert_eq!(d.stats().tx_posted, 2);
        assert!(!d.time_sensitive());
        assert_eq!(d.fleet_pending(), 0);
    }

    #[test]
    fn fleet_rx_tracks_ordering_per_source() {
        let (mut d, mut mem) = setup();
        d.set_fleet(0, Vec::new());
        d.tick(Ps::ZERO, &mut mem);
        let l = d.layout();
        // Interleaved sources 1 and 2; source 2 has a one-frame gap.
        let seqs = [1u32 << 24, 2 << 24, (1 << 24) + 1, (2 << 24) + 2];
        for (i, seq) in seqs.iter().enumerate() {
            let frame = build_udp_frame(*seq, 100);
            let addr = l.rx_bufs + (i as u32) * RX_BUF_BYTES + 2;
            mem.write(addr, &frame);
            let dsc = l.return_ring + i as u32 * BD_BYTES;
            mem.write_u32(dsc, addr);
            mem.write_u32(dsc + 4, frame.len() as u32);
        }
        mem.write_u32(l.status + 4, 4);
        d.tick(Ps::from_us(1), &mut mem);
        let s = d.stats();
        assert_eq!(s.rx_frames, 4);
        assert_eq!(
            s.rx_out_of_order, 0,
            "interleaving across sources is in-order"
        );
        assert_eq!(s.rx_dropped, 1, "source 2's gap is a drop");
    }

    #[test]
    fn reliable_sender_retransmits_with_backoff_until_acked() {
        let (mut d, mut mem) = setup();
        d.set_fleet(
            0,
            vec![TxPacket {
                at: Ps::ZERO,
                dst: 1,
                udp_payload: 256,
            }],
        );
        d.set_reliable(Ps::from_us(10));
        d.tick(Ps::ZERO, &mut mem);
        assert_eq!(d.stats().tx_posted, 1);
        assert_eq!(d.unacked_frames(), 1);
        assert!(d.time_sensitive(), "unacked frames keep the driver hot");
        // Before the timeout: no retransmit.
        d.tick(Ps::from_us(9), &mut mem);
        assert_eq!(d.stats().tx_retransmits, 0);
        // At the timeout: one retransmit of the same seq into slot 1.
        d.tick(Ps::from_us(10), &mut mem);
        assert_eq!(d.stats().tx_retransmits, 1);
        assert_eq!(mem.read_u32(d.layout().send_bd_ring + BD_BYTES * 2 + 12), 0);
        // Backoff doubles: the next attempt waits 20 us, not 10.
        d.tick(Ps::from_us(25), &mut mem);
        assert_eq!(d.stats().tx_retransmits, 1);
        d.tick(Ps::from_us(30), &mut mem);
        assert_eq!(d.stats().tx_retransmits, 2);
        // An ack in the past applies at the next poll and stops the
        // retransmission.
        d.deliver_ack(Ps::from_us(31), 0);
        d.tick(Ps::from_us(32), &mut mem);
        assert_eq!(d.unacked_frames(), 0);
        assert!(!d.time_sensitive());
        d.tick(Ps::from_us(200), &mut mem);
        assert_eq!(d.stats().tx_retransmits, 2, "acked frames stay quiet");
    }

    #[test]
    fn reliable_receiver_dedups_and_acks() {
        let (mut d, mut mem) = setup();
        d.set_fleet(0, Vec::new());
        d.set_reliable(Ps::from_us(10));
        d.tick(Ps::ZERO, &mut mem);
        let l = d.layout();
        // The same frame from source 1 returned twice (a retransmit
        // racing its original), plus a distinct one.
        let seqs = [1u32 << 24, 1 << 24, (1 << 24) + 1];
        for (i, seq) in seqs.iter().enumerate() {
            let frame = build_udp_frame(*seq, 100);
            let addr = l.rx_bufs + (i as u32) * RX_BUF_BYTES + 2;
            mem.write(addr, &frame);
            let dsc = l.return_ring + i as u32 * BD_BYTES;
            mem.write_u32(dsc, addr);
            mem.write_u32(dsc + 4, frame.len() as u32);
        }
        mem.write_u32(l.status + 4, 3);
        d.tick(Ps::from_us(1), &mut mem);
        let s = d.stats();
        assert_eq!(s.rx_frames, 2, "exactly-once delivery");
        assert_eq!(s.rx_duplicates, 1);
        assert_eq!(s.rx_dropped, 0, "no gap accounting in reliable mode");
        // Every return was acked, duplicates included.
        let acks = d.take_acks();
        assert_eq!(acks.len(), 3);
        assert!(acks
            .iter()
            .all(|(src, _, at)| *src == 1 && *at == Ps::from_us(1)));
        assert!(d.take_acks().is_empty(), "acks drain once");
    }

    #[test]
    fn resume_fleet_seq_leaves_a_gap_not_a_regression() {
        let (mut d, mut mem) = setup();
        d.set_fleet(
            2,
            vec![TxPacket {
                at: Ps::ZERO,
                dst: 1,
                udp_payload: 64,
            }],
        );
        d.resume_fleet_seq(7);
        d.tick(Ps::ZERO, &mut mem);
        assert_eq!(d.fleet_seq_next(), 8);
        let seq = mem.read_u32(d.layout().send_bd_ring + 12);
        assert_eq!(seq, (2 << 24) | 7);
        assert_eq!(d.tx_in_flight(), 1);
    }

    #[test]
    fn throughput_window_resets() {
        let (mut d, _mem) = setup();
        d.stats.rx_udp_payload_bytes = 1250;
        assert!(d.rx_udp_gbps(Ps::from_us(1)) > 9.9);
        d.reset_window(Ps::from_us(1));
        assert_eq!(d.rx_udp_gbps(Ps::from_us(2)), 0.0);
    }
}
