//! Output-queued switch/fabric model for multi-NIC fleet simulation.
//!
//! N NICs attach to one switch. A transmitted frame leaves its source
//! NIC at wire-done time `w`, crosses the ingress link (one
//! [`FabricConfig::link_latency`] hop), queues at the egress port for
//! its destination, serializes onto the egress link at
//! [`FabricConfig::link_gbps`], and arrives `link_latency` after its
//! departure. Egress ports have finite buffers: a frame whose arrival
//! would overflow [`FabricConfig::port_buffer_bytes`] is dropped — the
//! incast-congestion behavior the fleet experiments measure.
//!
//! The model is deterministic and order-insensitive in a specific,
//! load-bearing way: callers present frames in a canonical global order
//! (non-decreasing wire-done time, ties broken by source id — the fleet
//! engine sorts each epoch's union this way), and every queueing
//! decision depends only on that order and the accumulated port state.
//! Because each egress port serializes (its `busy_until` is monotone)
//! and the egress hop latency is constant, per-destination delivery
//! times are non-decreasing — the property the destination NIC's
//! injection queue asserts.
//!
//! Every delivery and drop folds into an FNV-1a running digest, so two
//! runs can be compared for identical fabric behavior (order included)
//! with a single `u64`.

use crate::frame::{endpoints, write_fcs, CRC_BYTES, HEADER_BYTES};
use crate::link::ETH_OVERHEAD_BYTES;
use nicsim_fault::FabricFaults;
use nicsim_sim::Ps;
use std::collections::VecDeque;

/// Switch/fabric parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricConfig {
    /// Per-port link bandwidth, Gb/s.
    pub link_gbps: f64,
    /// One-hop propagation latency (NIC→switch and switch→NIC each pay
    /// one). The fleet epoch length is bounded by this: a frame leaving
    /// a NIC during an epoch cannot arrive anywhere before the next
    /// epoch boundary, because the path costs at least two hops.
    pub link_latency: Ps,
    /// Egress-port buffer capacity in bytes. Frames that would overflow
    /// it are dropped at ingress.
    pub port_buffer_bytes: u64,
}

impl Default for FabricConfig {
    /// 10 Gb/s ports (matching the NIC MACs), 1 µs hop latency, 128 KB
    /// of buffering per egress port — a shallow-buffered datacenter
    /// switch, small enough that incast visibly drops.
    fn default() -> FabricConfig {
        FabricConfig {
            link_gbps: 10.0,
            link_latency: Ps::from_us(1),
            port_buffer_bytes: 128 * 1024,
        }
    }
}

/// Per-egress-port accumulated counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortStats {
    /// Frames delivered to this port's NIC.
    pub delivered: u64,
    /// Frames dropped at this port (buffer overflow).
    pub dropped: u64,
    /// Delivered frame bytes (including FCS).
    pub delivered_bytes: u64,
    /// Dropped frame bytes.
    pub dropped_bytes: u64,
    /// High-water mark of buffered bytes.
    pub max_occupancy: u64,
}

/// Fleet-level fabric counters (sum of the ports plus the order
/// digest).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Frames offered to the fabric.
    pub offered: u64,
    /// Frames delivered.
    pub delivered: u64,
    /// Frames dropped.
    pub dropped: u64,
    /// Delivered frame bytes.
    pub delivered_bytes: u64,
    /// Dropped frame bytes.
    pub dropped_bytes: u64,
    /// Frames bit-corrupted on a fabric link (fault plane; the frame is
    /// still delivered and the receiver's CRC check catches it).
    pub corrupted: u64,
    /// Frames dropped because the source link was flapped down.
    pub flap_drops: u64,
    /// Frames dropped by a transient port-buffer squeeze that the full
    /// buffer would have admitted.
    pub squeeze_drops: u64,
    /// FNV-1a digest over every delivery and drop in processing order:
    /// `(kind, src, dst, seq, time)` with kind 0 = delivery, 1 =
    /// overflow drop, 2 = flap drop, 3 = squeeze drop, 4 = a corruption
    /// marker folded before the delivery it taints. Identical digests
    /// mean identical fabric behavior, ordering and faults included.
    pub digest: u64,
}

/// One frame the fabric will hand to a destination NIC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Destination NIC index.
    pub dst: usize,
    /// Arrival time at the destination's MAC RX.
    pub at: Ps,
    /// The frame bytes, unchanged in flight.
    pub frame: Vec<u8>,
}

#[derive(Debug, Default)]
struct Port {
    busy_until: Ps,
    occupancy: u64,
    /// Frames in the buffer: `(departure time, length)`. Drained lazily
    /// as later frames arrive.
    queued: VecDeque<(Ps, u64)>,
    stats: PortStats,
}

/// The switch: per-destination egress ports plus global accounting.
#[derive(Debug)]
pub struct Fabric {
    cfg: FabricConfig,
    /// Egress serialization cost per byte, picoseconds (pre-computed so
    /// the hot path is pure integer math).
    ps_per_byte: u64,
    ports: Vec<Port>,
    stats: FabricStats,
    /// Fleet fault-plane policy (fabric link corruption, flaps, port
    /// squeeze). `None` on clean runs: the offer path then never
    /// branches on fault state beyond one `is_some` check.
    faults: Option<FabricFaults>,
}

impl Fabric {
    /// A fabric with one egress port per NIC.
    ///
    /// # Panics
    ///
    /// Panics if `link_gbps` is not positive or the hop latency is
    /// zero (a zero-latency fabric admits no conservative epoch).
    pub fn new(nics: usize, cfg: FabricConfig) -> Fabric {
        assert!(
            cfg.link_gbps > 0.0,
            "fabric link bandwidth must be positive"
        );
        assert!(
            cfg.link_latency > Ps::ZERO,
            "fabric hop latency must be positive"
        );
        Fabric {
            cfg,
            // 1 Gb/s = 8000 ps per byte.
            ps_per_byte: (8000.0 / cfg.link_gbps) as u64,
            ports: (0..nics).map(|_| Port::default()).collect(),
            stats: FabricStats {
                digest: FNV_OFFSET,
                ..FabricStats::default()
            },
            faults: None,
        }
    }

    /// The configuration the fabric was built with.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Arm the fabric fault plane. When armed, every offered frame gets
    /// a real FCS stamped before any fault decision, so receivers that
    /// check CRC pass clean frames and catch the corrupted ones.
    pub fn set_faults(&mut self, faults: FabricFaults) {
        self.faults = Some(faults);
    }

    /// The minimum source-to-destination path latency: two hops plus
    /// the serialization of a minimum-size frame. Any epoch no longer
    /// than this is conservative — frames sent within an epoch cannot
    /// arrive before it ends.
    pub fn min_path_latency(&self) -> Ps {
        Ps(self.cfg.link_latency.0 * 2)
    }

    /// Wire occupancy of `frame_len` bytes on a fabric port (preamble +
    /// frame + interframe gap, like the NIC link model).
    fn serialization(&self, frame_len: u64) -> Ps {
        Ps((frame_len + ETH_OVERHEAD_BYTES) * self.ps_per_byte)
    }

    /// Offer one transmitted frame to the fabric: `src` finished
    /// putting it on the wire at `w`. Returns its delivery, or `None`
    /// if the egress buffer overflowed. Callers must present frames in
    /// canonical order — non-decreasing `w`, ties broken by `src` —
    /// for run-to-run identical behavior.
    ///
    /// # Panics
    ///
    /// Panics if the frame addresses a destination the fabric has no
    /// port for.
    pub fn offer(&mut self, w: Ps, src: usize, mut frame: Vec<u8>) -> Option<Delivery> {
        let (_, dst) = endpoints(&frame);
        let dst = dst as usize;
        assert!(
            dst < self.ports.len(),
            "frame addressed to NIC {dst} of {}",
            self.ports.len()
        );
        let len = frame.len() as u64;
        let seq = u32::from_be_bytes([frame[42], frame[43], frame[44], frame[45]]);
        self.stats.offered += 1;
        let t_in = w + self.cfg.link_latency;
        // Fault plane, in a fixed order so the per-site streams advance
        // identically for every shard count: the (draw-free, time-pure)
        // flap check first — a down source link consumes no draws — then
        // one corruption draw on the source's link stream, then one
        // squeeze draw on the fabric-wide stream.
        let mut squeezed = false;
        if let Some(f) = self.faults.as_mut().filter(|f| f.armed()) {
            write_fcs(&mut frame);
            if f.link_down(src, w) {
                let port = &mut self.ports[dst];
                port.stats.dropped += 1;
                port.stats.dropped_bytes += len;
                self.stats.dropped += 1;
                self.stats.dropped_bytes += len;
                self.stats.flap_drops += 1;
                self.stats.digest = fnv_fold(self.stats.digest, 2, src, dst, seq, t_in);
                return None;
            }
            let body_bits = (frame.len() - CRC_BYTES) as u64 * 8;
            if let Some(bit) = f.draw_corrupt(src, body_bits) {
                frame[(bit / 8) as usize] ^= 1 << (bit % 8);
                self.stats.corrupted += 1;
                self.stats.digest = fnv_fold(self.stats.digest, 4, src, dst, seq, t_in);
            }
            squeezed = f.draw_squeeze();
        }
        let serialization = self.serialization(len);
        let cap = if squeezed {
            self.cfg.port_buffer_bytes / 4
        } else {
            self.cfg.port_buffer_bytes
        };
        let port = &mut self.ports[dst];
        // Drain frames that departed before this one arrived.
        while port.queued.front().is_some_and(|(dep, _)| *dep <= t_in) {
            let (_, gone) = port.queued.pop_front().expect("front checked");
            port.occupancy -= gone;
        }
        if port.occupancy + len > cap {
            let squeeze_drop = squeezed && port.occupancy + len <= self.cfg.port_buffer_bytes;
            port.stats.dropped += 1;
            port.stats.dropped_bytes += len;
            self.stats.dropped += 1;
            self.stats.dropped_bytes += len;
            let kind = if squeeze_drop {
                self.stats.squeeze_drops += 1;
                3
            } else {
                1
            };
            self.stats.digest = fnv_fold(self.stats.digest, kind, src, dst, seq, t_in);
            return None;
        }
        let start = t_in.max(port.busy_until);
        let departure = start + serialization;
        port.busy_until = departure;
        port.occupancy += len;
        port.stats.max_occupancy = port.stats.max_occupancy.max(port.occupancy);
        port.queued.push_back((departure, len));
        port.stats.delivered += 1;
        port.stats.delivered_bytes += len;
        self.stats.delivered += 1;
        self.stats.delivered_bytes += len;
        let at = departure + self.cfg.link_latency;
        self.stats.digest = fnv_fold(self.stats.digest, 0, src, dst, seq, at);
        Some(Delivery { dst, at, frame })
    }

    /// Global counters and the order digest.
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// Per-port counters, indexed by destination NIC.
    pub fn port_stats(&self) -> Vec<PortStats> {
        self.ports.iter().map(|p| p.stats).collect()
    }

    /// Zero the counters and restart the digest, keeping queue state —
    /// the fleet engine calls this at the warm-up/measure boundary so
    /// stats cover the measurement window only.
    pub fn reset_stats(&mut self) {
        self.stats = FabricStats {
            digest: FNV_OFFSET,
            ..FabricStats::default()
        };
        for port in &mut self.ports {
            port.stats = PortStats::default();
        }
    }
}

/// Frame length (including FCS) for a UDP payload of `udp_payload`
/// bytes — the fabric-side mirror of the frame builder's padding rule.
pub fn frame_len_for_payload(udp_payload: usize) -> usize {
    (HEADER_BYTES + udp_payload).max(crate::frame::MIN_FRAME - CRC_BYTES) + CRC_BYTES
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(mut h: u64, kind: u8, src: usize, dst: usize, seq: u32, t: Ps) -> u64 {
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    };
    eat(kind);
    for b in (src as u32).to_le_bytes() {
        eat(b);
    }
    for b in (dst as u32).to_le_bytes() {
        eat(b);
    }
    for b in seq.to_le_bytes() {
        eat(b);
    }
    for b in t.0.to_le_bytes() {
        eat(b);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{build_udp_frame, set_endpoints};

    fn addressed(seq: u32, payload: usize, src: u16, dst: u16) -> Vec<u8> {
        let mut f = build_udp_frame(seq, payload);
        set_endpoints(&mut f, src, dst);
        f
    }

    #[test]
    fn single_frame_pays_two_hops_plus_serialization() {
        let cfg = FabricConfig::default();
        let mut fab = Fabric::new(2, cfg);
        let f = addressed(0, 1472, 0, 1);
        let len = f.len() as u64;
        let d = fab.offer(Ps::ZERO, 0, f).unwrap();
        assert_eq!(d.dst, 1);
        // hop + serialization + hop.
        let expect = cfg.link_latency + Ps((len + ETH_OVERHEAD_BYTES) * 800) + cfg.link_latency;
        assert_eq!(d.at, expect);
    }

    #[test]
    fn port_serializes_and_deliveries_are_monotone() {
        let mut fab = Fabric::new(3, FabricConfig::default());
        // Two sources hit NIC 2 at the same instant: the second in
        // canonical order queues behind the first.
        let a = fab.offer(Ps::ZERO, 0, addressed(1, 1472, 0, 2)).unwrap();
        let b = fab.offer(Ps::ZERO, 1, addressed(2, 1472, 1, 2)).unwrap();
        assert!(b.at > a.at, "egress port must serialize");
        assert_eq!(b.at - a.at, Ps((1518 + ETH_OVERHEAD_BYTES) * 800));
    }

    #[test]
    fn incast_overflows_the_port_buffer() {
        let cfg = FabricConfig {
            port_buffer_bytes: 4000,
            ..FabricConfig::default()
        };
        let mut fab = Fabric::new(9, cfg);
        let mut delivered = 0;
        for src in 0..8u16 {
            // All sources burst a max frame at t=0 toward NIC 8.
            if fab
                .offer(Ps::ZERO, src as usize, addressed(src as u32, 1472, src, 8))
                .is_some()
            {
                delivered += 1;
            }
        }
        // 4000 bytes of buffer holds two 1518-byte frames.
        assert_eq!(delivered, 2);
        let s = fab.stats();
        assert_eq!(s.offered, 8);
        assert_eq!(s.delivered, 2);
        assert_eq!(s.dropped, 6);
        assert_eq!(fab.port_stats()[8].dropped, 6);
    }

    #[test]
    fn buffer_drains_as_frames_depart() {
        let cfg = FabricConfig {
            port_buffer_bytes: 2000,
            ..FabricConfig::default()
        };
        let mut fab = Fabric::new(2, cfg);
        let first = fab.offer(Ps::ZERO, 0, addressed(0, 1472, 0, 1)).unwrap();
        // Offered long after the first departs: the buffer is empty again.
        let late = first.at + Ps::from_us(100);
        assert!(fab.offer(late, 0, addressed(1, 1472, 0, 1)).is_some());
        assert_eq!(fab.stats().dropped, 0);
    }

    #[test]
    fn identical_sequences_produce_identical_digests() {
        let run = || {
            let mut fab = Fabric::new(4, FabricConfig::default());
            for i in 0..50u32 {
                let src = (i % 3) as u16;
                fab.offer(Ps(i as u64 * 1000), src as usize, addressed(i, 256, src, 3));
            }
            fab.stats()
        };
        assert_eq!(run(), run());
        // A different order produces a different digest.
        let mut fab = Fabric::new(4, FabricConfig::default());
        for i in (0..50u32).rev() {
            let src = (i % 3) as u16;
            fab.offer(Ps(49_000), src as usize, addressed(i, 256, src, 3));
        }
        assert_ne!(fab.stats().digest, run().digest);
    }

    #[test]
    fn armed_fabric_stamps_fcs_and_corrupts_deterministically() {
        use nicsim_fault::FaultPlan;
        let plan = FaultPlan {
            fabric_corrupt: 0.3,
            ..FaultPlan::default()
        };
        let run = || {
            let mut fab = Fabric::new(2, FabricConfig::default());
            fab.set_faults(FabricFaults::new(&plan, 2));
            let mut good = 0;
            let mut bad = 0;
            for i in 0..100u32 {
                let d = fab
                    .offer(Ps(i as u64 * 2_000_000), 0, addressed(i, 256, 0, 1))
                    .unwrap();
                if crate::frame::fcs_valid(&d.frame) {
                    good += 1;
                } else {
                    bad += 1;
                }
            }
            (good, bad, fab.stats())
        };
        let (good, bad, stats) = run();
        assert!(good > 0 && bad > 0, "good={good} bad={bad}");
        assert_eq!(bad as u64, stats.corrupted);
        assert_eq!(run().2, stats, "faulted fabric must replay exactly");
    }

    #[test]
    fn flapped_link_drops_into_the_digest() {
        use nicsim_fault::FaultPlan;
        let plan = FaultPlan {
            flap_period_us: 50,
            flap_down_us: 25,
            ..FaultPlan::default()
        };
        let mut fab = Fabric::new(2, FabricConfig::default());
        fab.set_faults(FabricFaults::new(&plan, 2));
        let clean_digest = Fabric::new(2, FabricConfig::default()).stats().digest;
        let mut dropped = 0;
        for i in 0..100u32 {
            if fab
                .offer(Ps::from_us(i as u64), 0, addressed(i, 256, 0, 1))
                .is_none()
            {
                dropped += 1;
            }
        }
        let s = fab.stats();
        assert_eq!(s.flap_drops, dropped);
        // Half the time down, and every drop folded into the digest.
        assert!((40..=60).contains(&dropped), "dropped = {dropped}");
        assert_ne!(s.digest, clean_digest);
    }

    #[test]
    fn squeeze_drops_frames_the_full_buffer_would_admit() {
        use nicsim_fault::FaultPlan;
        let cfg = FabricConfig {
            port_buffer_bytes: 8000,
            ..FabricConfig::default()
        };
        let plan = FaultPlan {
            squeeze: 1.0,
            ..FaultPlan::default()
        };
        let mut fab = Fabric::new(3, cfg);
        fab.set_faults(FabricFaults::new(&plan, 3));
        // A squeezed admission sees 2000 bytes of capacity: the second
        // back-to-back 1518-byte frame is a squeeze drop.
        assert!(fab.offer(Ps::ZERO, 0, addressed(0, 1472, 0, 2)).is_some());
        assert!(fab.offer(Ps::ZERO, 1, addressed(1, 1472, 1, 2)).is_none());
        let s = fab.stats();
        assert_eq!(s.squeeze_drops, 1);
        assert_eq!(s.dropped, 1);
    }

    #[test]
    fn unarmed_fault_state_changes_nothing() {
        use nicsim_fault::FaultPlan;
        let mut clean = Fabric::new(2, FabricConfig::default());
        let mut armed = Fabric::new(2, FabricConfig::default());
        // An all-zeros plan: armed() is false, so the offer path must
        // not even stamp the FCS.
        armed.set_faults(FabricFaults::new(&FaultPlan::default(), 2));
        for i in 0..20u32 {
            let a = clean.offer(Ps(i as u64 * 1000), 0, addressed(i, 256, 0, 1));
            let b = armed.offer(Ps(i as u64 * 1000), 0, addressed(i, 256, 0, 1));
            assert_eq!(a, b);
        }
        assert_eq!(clean.stats(), armed.stats());
    }

    #[test]
    fn frame_len_matches_builder() {
        for payload in [4usize, 18, 100, 1472] {
            assert_eq!(
                frame_len_for_payload(payload),
                build_udp_frame(0, payload).len()
            );
        }
    }
}
