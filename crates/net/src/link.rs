//! 10 Gb/s Ethernet wire timing, the receive-side traffic generator, and
//! the transmit-side monitor.
//!
//! Wire occupancy per frame is preamble (8 B) + frame (including FCS) +
//! interframe gap (12 B) at 0.8 ns per byte. For maximum-sized frames
//! that is (1518 + 20) * 0.8 ns = 1230.4 ns, i.e. the paper's 812,744
//! frames per second per direction.

use crate::frame::{build_udp_frame, validate_frame, write_fcs, FrameError};
use nicsim_fault::{LinkFault, LinkFaults};
use nicsim_sim::Ps;
use std::collections::VecDeque;

/// Preamble + interframe gap, in bytes of wire time.
pub const ETH_OVERHEAD_BYTES: u64 = 8 + 12;

/// Wire occupancy of a frame of `frame_len` bytes (including FCS) on a
/// 10 Gb/s link.
pub fn wire_time(frame_len: usize) -> Ps {
    // 10 Gb/s = 1 bit per 100 ps = 800 ps per byte.
    Ps((frame_len as u64 + ETH_OVERHEAD_BYTES) * 800)
}

/// Line rate in frames per second for a given frame length.
pub fn line_rate_fps(frame_len: usize) -> f64 {
    1e12 / wire_time(frame_len).0 as f64
}

/// The maximum achievable UDP payload throughput (Gb/s, one direction)
/// for a given datagram size — the "Ethernet Limit" curves of
/// Figures 7 and 8.
pub fn max_udp_throughput_gbps(udp_payload: usize) -> f64 {
    let frame = build_udp_frame(0, udp_payload.max(4)).len();
    line_rate_fps(frame) * (udp_payload as f64) * 8.0 / 1e9
}

/// Generates the inbound frame stream at up to line rate.
///
/// Frames are produced with consecutive sequence numbers; the driver
/// checks ordering and integrity end-to-end.
#[derive(Debug)]
pub struct RxGenerator {
    udp_payload: usize,
    next_at: Ps,
    seq: u32,
    period: Ps,
    enabled: bool,
    /// Link-level fault injection (None = clean link: frames leave with
    /// the zeroed FCS placeholder, exactly as before the fault plane
    /// existed).
    faults: Option<LinkFaults>,
    /// What happened to the most recently polled frame, for the MAC RX
    /// side to label its probe events.
    last_injection: Option<LinkFault>,
    /// External-feed mode: instead of synthesizing frames, serve the
    /// queue filled by [`RxGenerator::inject`] (fleet fabric
    /// deliveries). Arrival times are required to be non-decreasing.
    external: bool,
    injections: VecDeque<(Ps, Vec<u8>)>,
}

impl RxGenerator {
    /// Generate `udp_payload`-byte datagrams at line rate.
    pub fn new(udp_payload: usize) -> RxGenerator {
        let frame_len = build_udp_frame(0, udp_payload.max(4)).len();
        RxGenerator {
            udp_payload,
            next_at: Ps::ZERO,
            seq: 0,
            period: wire_time(frame_len),
            enabled: true,
            faults: None,
            last_injection: None,
            external: false,
            injections: VecDeque::new(),
        }
    }

    /// Generate at a fixed rate instead of line rate.
    pub fn with_fps(udp_payload: usize, fps: f64) -> RxGenerator {
        let mut g = RxGenerator::new(udp_payload);
        g.period = Ps((1e12 / fps) as u64);
        g
    }

    /// Disable the generator (receive-idle experiments).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Switch to external-feed mode: synthetic generation stops and the
    /// link delivers exactly the frames queued via
    /// [`RxGenerator::inject`], at their queued arrival times. The
    /// fleet fabric uses this to drive a NIC's receive path with frames
    /// transmitted by other NICs.
    pub fn set_external(&mut self) {
        self.enabled = false;
        self.external = true;
    }

    /// Queue a frame for delivery at `at` (external-feed mode).
    /// Arrival times must be non-decreasing — the fabric's per-port
    /// serialization guarantees this for each destination.
    pub fn inject(&mut self, at: Ps, frame: Vec<u8>) {
        debug_assert!(self.external, "inject on a synthesizing generator");
        debug_assert!(
            self.injections.back().is_none_or(|(last, _)| *last <= at),
            "injections must arrive in non-decreasing time order"
        );
        self.injections.push_back((at, frame));
    }

    /// Frames queued but not yet delivered (external-feed mode).
    pub fn pending_injections(&self) -> usize {
        self.injections.len()
    }

    /// Sequence number of the next frame to be generated.
    pub fn next_seq(&self) -> u32 {
        self.seq
    }

    /// Arrival time of the next frame ([`Ps::MAX`] when disabled) — the
    /// event-driven kernel's bound on how far it may skip while the
    /// receive path is otherwise idle.
    pub fn next_arrival(&self) -> Ps {
        if self.external {
            return self.injections.front().map_or(Ps::MAX, |(at, _)| *at);
        }
        if self.enabled {
            self.next_at
        } else {
            Ps::MAX
        }
    }

    /// Attach link-level fault injection. Every generated frame is then
    /// stamped with a real CRC32 FCS, and the plan's per-frame draws may
    /// flip a bit or truncate the frame in flight.
    pub fn set_faults(&mut self, faults: LinkFaults) {
        self.faults = Some(faults);
    }

    /// What the fault plane did to the most recently polled frame
    /// (cleared by the read), for the receiver to label probe events.
    pub fn take_injection(&mut self) -> Option<LinkFault> {
        self.last_injection.take()
    }

    /// `(corrupted, truncated)` frame counts injected so far.
    pub fn injected(&self) -> (u64, u64) {
        self.faults
            .as_ref()
            .map_or((0, 0), |f| (f.injected_corrupt, f.injected_truncate))
    }

    /// Produce the next frame if its arrival time has come.
    pub fn poll(&mut self, now: Ps) -> Option<(Ps, Vec<u8>)> {
        if self.external {
            if self.injections.front().is_some_and(|(at, _)| *at <= now) {
                return self.injections.pop_front();
            }
            return None;
        }
        if !self.enabled || now < self.next_at {
            return None;
        }
        let at = self.next_at;
        let mut f = build_udp_frame(self.seq, self.udp_payload);
        if let Some(st) = &mut self.faults {
            write_fcs(&mut f);
            let injected = st.draw();
            match injected {
                Some(LinkFault::Corrupt) => {
                    // Flip one bit somewhere in the frame body (never the
                    // FCS itself, so the damage is real payload/header
                    // corruption the CRC check must catch).
                    let body_bits = (f.len() - crate::frame::CRC_BYTES) as u64 * 8;
                    let bit = st.pick(body_bits) as usize;
                    f[bit / 8] ^= 1 << (bit % 8);
                }
                Some(LinkFault::Truncate) => {
                    // Cut the frame anywhere past the Ethernet header;
                    // the result is shorter than its stamped FCS claims.
                    let keep = 14 + st.pick((f.len() - 14) as u64) as usize;
                    f.truncate(keep);
                }
                None => {}
            }
            self.last_injection = injected;
        }
        self.seq = self.seq.wrapping_add(1);
        self.next_at += self.period;
        Some((at, f))
    }
}

/// Observes frames leaving the MAC transmitter: validates bytes, enforces
/// ordering, and accumulates throughput.
#[derive(Debug, Default)]
pub struct TxMonitor {
    frames: u64,
    udp_payload_bytes: u64,
    wire_bytes: u64,
    next_seq: Option<u32>,
    errors: Vec<FrameError>,
    out_of_order: u64,
    window_start: Ps,
}

impl TxMonitor {
    /// Create a monitor.
    pub fn new() -> TxMonitor {
        TxMonitor::default()
    }

    /// Record a transmitted frame.
    pub fn on_frame(&mut self, bytes: &[u8]) {
        match validate_frame(bytes) {
            Ok(info) => {
                if let Some(expect) = self.next_seq {
                    if info.seq != expect {
                        self.out_of_order += 1;
                    }
                }
                self.next_seq = Some(info.seq.wrapping_add(1));
                self.frames += 1;
                self.udp_payload_bytes += info.udp_payload as u64;
                self.wire_bytes += bytes.len() as u64 + ETH_OVERHEAD_BYTES;
            }
            Err(e) => self.errors.push(e),
        }
    }

    /// Frames validated.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// UDP payload throughput over the window ending at `now`, in Gb/s.
    pub fn udp_gbps(&self, now: Ps) -> f64 {
        let elapsed = now.saturating_sub(self.window_start);
        if elapsed == Ps::ZERO {
            return 0.0;
        }
        self.udp_payload_bytes as f64 * 8.0 / elapsed.as_secs_f64() / 1e9
    }

    /// Frames transmitted out of expected sequence order.
    pub fn out_of_order(&self) -> u64 {
        self.out_of_order
    }

    /// Validation failures observed.
    pub fn errors(&self) -> &[FrameError] {
        &self.errors
    }

    /// Restart the measurement window at `now` (discard warm-up).
    pub fn reset(&mut self, now: Ps) {
        self.frames = 0;
        self.udp_payload_bytes = 0;
        self.wire_bytes = 0;
        self.out_of_order = 0;
        self.errors.clear();
        self.window_start = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_frame_rate_matches_paper() {
        // "A full-duplex 10 Gb/s link can deliver maximum-sized 1518-byte
        // frames at the rate of 812,744 frames per second in each
        // direction."
        let fps = line_rate_fps(1518);
        assert!((fps - 812_744.0).abs() < 1.0, "fps = {fps}");
    }

    #[test]
    fn wire_time_of_min_frame() {
        // 64 + 20 bytes at 0.8ns/byte = 67.2 ns.
        assert_eq!(wire_time(64), Ps(67_200));
    }

    #[test]
    fn udp_limit_for_max_datagrams() {
        // 1472 * 8 * 812744 = 9.57 Gb/s per direction.
        let g = max_udp_throughput_gbps(1472);
        assert!((g - 9.575).abs() < 0.01, "limit = {g}");
    }

    #[test]
    fn generator_paces_at_line_rate() {
        let mut g = RxGenerator::new(1472);
        let mut n = 0;
        let horizon = Ps::from_us(100);
        let mut now = Ps::ZERO;
        while now <= horizon {
            if let Some((_, f)) = g.poll(now) {
                assert_eq!(f.len(), 1518);
                n += 1;
            } else {
                now += Ps(100);
            }
        }
        // 100us at 812744 fps = 81.27 frames.
        assert!((80..=83).contains(&n), "generated {n}");
    }

    #[test]
    fn generator_seq_is_consecutive() {
        let mut g = RxGenerator::new(100);
        let (_, a) = g.poll(Ps::from_ms(1)).unwrap();
        let (_, b) = g.poll(Ps::from_ms(1)).unwrap();
        assert_eq!(
            validate_frame(&a).unwrap().seq + 1,
            validate_frame(&b).unwrap().seq
        );
    }

    #[test]
    fn monitor_counts_and_orders() {
        let mut m = TxMonitor::new();
        m.on_frame(&build_udp_frame(0, 1472));
        m.on_frame(&build_udp_frame(1, 1472));
        m.on_frame(&build_udp_frame(5, 1472)); // gap
        assert_eq!(m.frames(), 3);
        assert_eq!(m.out_of_order(), 1);
        assert!(m.errors().is_empty());
    }

    #[test]
    fn monitor_flags_corruption() {
        let mut m = TxMonitor::new();
        let mut f = build_udp_frame(0, 1472);
        f[50] ^= 1;
        m.on_frame(&f);
        assert_eq!(m.frames(), 0);
        assert_eq!(m.errors().len(), 1);
    }

    #[test]
    fn monitor_throughput_math() {
        let mut m = TxMonitor::new();
        for s in 0..10 {
            m.on_frame(&build_udp_frame(s, 1472));
        }
        // 10 frames * 1472B over 12.304us = 9.57 Gb/s.
        let t = wire_time(1518);
        let gbps = m.udp_gbps(Ps(t.0 * 10));
        assert!((gbps - 9.575).abs() < 0.01, "gbps = {gbps}");
    }

    #[test]
    fn disabled_generator_produces_nothing() {
        let mut g = RxGenerator::new(100);
        g.disable();
        assert!(g.poll(Ps::from_ms(5)).is_none());
    }

    #[test]
    fn external_generator_serves_injections_in_order() {
        let mut g = RxGenerator::new(100);
        g.set_external();
        assert_eq!(g.next_arrival(), Ps::MAX);
        assert!(g.poll(Ps::from_ms(1)).is_none());
        g.inject(Ps(500), build_udp_frame(7, 100));
        g.inject(Ps(900), build_udp_frame(8, 100));
        assert_eq!(g.next_arrival(), Ps(500));
        assert_eq!(g.pending_injections(), 2);
        assert!(g.poll(Ps(499)).is_none());
        let (at, f) = g.poll(Ps(500)).unwrap();
        assert_eq!(at, Ps(500));
        assert_eq!(validate_frame(&f).unwrap().seq, 7);
        let (at, f) = g.poll(Ps(2000)).unwrap();
        assert_eq!(at, Ps(900));
        assert_eq!(validate_frame(&f).unwrap().seq, 8);
        assert_eq!(g.next_arrival(), Ps::MAX);
    }

    #[test]
    fn faulted_generator_stamps_fcs_and_injects() {
        use crate::frame::fcs_valid;
        use nicsim_fault::FaultPlan;
        let plan = FaultPlan {
            link_corrupt: 0.5,
            link_truncate: 0.2,
            ..FaultPlan::default()
        };
        let mut g = RxGenerator::new(256);
        g.set_faults(LinkFaults::new(&plan));
        let (mut clean, mut bad) = (0u32, 0u32);
        for _ in 0..200 {
            let (_, f) = g.poll(Ps::from_ms(10)).unwrap();
            match g.take_injection() {
                None => {
                    assert!(fcs_valid(&f), "untouched frame must carry a valid FCS");
                    clean += 1;
                }
                Some(_) => {
                    assert!(!fcs_valid(&f), "injected damage must break the FCS");
                    bad += 1;
                }
            }
        }
        let (c, t) = g.injected();
        assert_eq!(c + t, bad as u64);
        assert!(clean > 0 && bad > 0, "clean={clean} bad={bad}");
    }

    #[test]
    fn clean_generator_replays_identically_with_zero_prob_plan() {
        use nicsim_fault::FaultPlan;
        let mut a = RxGenerator::new(100);
        let mut b = RxGenerator::new(100);
        b.set_faults(LinkFaults::new(&FaultPlan::default()));
        let (_, fa) = a.poll(Ps::from_ms(1)).unwrap();
        let (_, fb) = b.poll(Ps::from_ms(1)).unwrap();
        // Identical except the stamped FCS tail.
        assert_eq!(fa[..fa.len() - 4], fb[..fb.len() - 4]);
        assert!(b.take_injection().is_none());
    }
}
