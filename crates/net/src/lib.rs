//! Ethernet/UDP frame model, 10 Gb/s link timing, and workload generation.
//!
//! The paper evaluates the NIC with full-duplex streams of UDP datagrams
//! of various sizes (Figures 7 and 8). This crate builds real frame bytes
//! (Ethernet + IPv4 + UDP headers, deterministic payload, valid IP header
//! checksum), models the wire timing of 10 Gigabit Ethernet — preamble,
//! frame, CRC, interframe gap — and provides the traffic generator and
//! transmit-side monitor that the simulator's "network model" is made of.

pub mod fabric;
pub mod frame;
pub mod link;
pub mod workload;

pub use fabric::{Delivery, Fabric, FabricConfig, FabricStats, PortStats};
pub use frame::{build_udp_frame, endpoints, set_endpoints, validate_frame, FrameError, FrameInfo};
pub use link::{line_rate_fps, max_udp_throughput_gbps, wire_time, RxGenerator, TxMonitor};
pub use nicsim_fault::FabricFaults;
pub use workload::{Arrivals, Pattern, SizeMix, TxPacket, Workload};
