//! Ethernet/IPv4/UDP frame construction and validation.
//!
//! Frames carry a 42-byte header stack (14 Ethernet + 20 IPv4 + 8 UDP —
//! the same split the paper uses: "each sent frame typically requires two
//! buffer descriptors ... one for the frame headers and one for the
//! payload", header = 42 bytes) followed by the UDP payload and 4 bytes
//! of frame check sequence. The payload is a deterministic byte pattern
//! derived from a 32-bit sequence number embedded at its head, so every
//! consumer (the transmit-side link monitor, the receive-side driver) can
//! verify end-to-end integrity and in-order delivery byte-for-byte.

/// Length of the Ethernet + IPv4 + UDP header stack.
pub const HEADER_BYTES: usize = 14 + 20 + 8;
/// Frame check sequence length.
pub const CRC_BYTES: usize = 4;
/// Minimum Ethernet frame length including FCS.
pub const MIN_FRAME: usize = 64;
/// Maximum standard Ethernet frame length including FCS.
pub const MAX_FRAME: usize = 1518;
/// Maximum UDP payload that fits a standard frame (the paper's 1472).
pub const MAX_UDP_PAYLOAD: usize = MAX_FRAME - CRC_BYTES - HEADER_BYTES;

/// Parsed summary of a valid frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameInfo {
    /// The 32-bit sequence number embedded at the head of the payload.
    pub seq: u32,
    /// UDP payload length in bytes.
    pub udp_payload: usize,
    /// Total frame length including FCS.
    pub frame_len: usize,
}

/// Why a frame failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Shorter than the minimum frame.
    TooShort,
    /// Not an IPv4/UDP frame.
    BadHeaders,
    /// IPv4 header checksum mismatch.
    BadIpChecksum,
    /// Lengths in the headers are inconsistent with the frame length.
    BadLength,
    /// Payload bytes do not match the deterministic pattern for the seq.
    CorruptPayload,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            FrameError::TooShort => "frame shorter than 64 bytes",
            FrameError::BadHeaders => "not an IPv4/UDP frame",
            FrameError::BadIpChecksum => "IPv4 header checksum mismatch",
            FrameError::BadLength => "header lengths inconsistent with frame",
            FrameError::CorruptPayload => "payload does not match its sequence pattern",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for FrameError {}

fn ip_checksum(header: &[u8]) -> u16 {
    let mut sum = 0u32;
    for chunk in header.chunks(2) {
        let word = u16::from_be_bytes([chunk[0], *chunk.get(1).unwrap_or(&0)]);
        sum += word as u32;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// The deterministic payload byte at offset `i` for sequence `seq`
/// (excluding the 4-byte embedded sequence number itself).
fn pattern_byte(seq: u32, i: usize) -> u8 {
    // The multiply-and-take-high-byte mix depends on every bit of `seq`,
    // so damage anywhere in the embedded sequence number changes the
    // expected pattern.
    ((seq.wrapping_mul(0x9e37_79b1) >> 24) as usize)
        .wrapping_add(i.wrapping_mul(31))
        .wrapping_add(i >> 5) as u8
}

/// Build a complete frame carrying `udp_payload` bytes of UDP data and
/// the given sequence number. Returns the frame bytes including a zeroed
/// 4-byte FCS placeholder (the MAC model treats FCS as opaque).
///
/// # Panics
///
/// Panics if `udp_payload` exceeds [`MAX_UDP_PAYLOAD`] or is smaller
/// than 4 (the embedded sequence number needs 4 bytes).
///
/// # Example
///
/// ```
/// use nicsim_net::frame::{build_udp_frame, validate_frame};
///
/// let f = build_udp_frame(7, 1472);
/// assert_eq!(f.len(), 1518);
/// assert_eq!(validate_frame(&f).unwrap().seq, 7);
/// ```
pub fn build_udp_frame(seq: u32, udp_payload: usize) -> Vec<u8> {
    assert!(udp_payload >= 4, "payload must hold the 4-byte sequence");
    assert!(udp_payload <= MAX_UDP_PAYLOAD, "payload exceeds 1472 bytes");
    let wire_payload = udp_payload;
    let len_no_pad = HEADER_BYTES + wire_payload;
    let eth_len = len_no_pad.max(MIN_FRAME - CRC_BYTES);
    let mut f = vec![0u8; eth_len + CRC_BYTES];

    // Ethernet: dst, src, ethertype IPv4.
    f[0..6].copy_from_slice(&[0x02, 0, 0, 0, 0, 0x01]);
    f[6..12].copy_from_slice(&[0x02, 0, 0, 0, 0, 0x02]);
    f[12..14].copy_from_slice(&0x0800u16.to_be_bytes());

    // IPv4 header.
    let ip_total = (20 + 8 + wire_payload) as u16;
    let ip = &mut f[14..34];
    ip[0] = 0x45;
    ip[2..4].copy_from_slice(&ip_total.to_be_bytes());
    ip[8] = 64; // TTL
    ip[9] = 17; // UDP
    ip[12..16].copy_from_slice(&[10, 0, 0, 1]);
    ip[16..20].copy_from_slice(&[10, 0, 0, 2]);
    let csum = ip_checksum(&f[14..34]);
    f[24..26].copy_from_slice(&csum.to_be_bytes());

    // UDP header.
    let udp_len = (8 + wire_payload) as u16;
    f[34..36].copy_from_slice(&9000u16.to_be_bytes());
    f[36..38].copy_from_slice(&9001u16.to_be_bytes());
    f[38..40].copy_from_slice(&udp_len.to_be_bytes());
    // UDP checksum left zero (optional over IPv4).

    // Payload: embedded sequence + deterministic pattern.
    f[42..46].copy_from_slice(&seq.to_be_bytes());
    for i in 0..wire_payload.saturating_sub(4) {
        f[46 + i] = pattern_byte(seq, i);
    }
    f
}

/// Stamp fleet endpoint ids into the Ethernet MAC addresses: `dst` into
/// the low two bytes of the destination MAC, `src` into the low two
/// bytes of the source MAC. [`validate_frame`] never inspects MAC
/// addresses, so an addressed frame still validates end-to-end — the
/// fabric and the receiving driver read the ids back with
/// [`endpoints`].
///
/// # Panics
///
/// Panics if the frame is shorter than an Ethernet header.
pub fn set_endpoints(frame: &mut [u8], src: u16, dst: u16) {
    frame[4..6].copy_from_slice(&dst.to_be_bytes());
    frame[10..12].copy_from_slice(&src.to_be_bytes());
}

/// Read back the `(src, dst)` endpoint ids stamped by
/// [`set_endpoints`]. Frames built by [`build_udp_frame`] without
/// addressing report `(2, 1)` — the default MAC address tails.
///
/// # Panics
///
/// Panics if the frame is shorter than an Ethernet header.
pub fn endpoints(frame: &[u8]) -> (u16, u16) {
    let dst = u16::from_be_bytes([frame[4], frame[5]]);
    let src = u16::from_be_bytes([frame[10], frame[11]]);
    (src, dst)
}

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `data`,
/// computed with a compile-time 256-entry table. The MAC RX path checks
/// this when a fault plan is active; clean-path runs never compute it.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut n = 0;
        while n < 256 {
            let mut c = n as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[n] = c;
            n += 1;
        }
        table
    };
    let mut crc = 0xffff_ffffu32;
    for &b in data {
        crc = TABLE[((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Stamp the frame's 4-byte FCS with the CRC32 of everything before it.
///
/// # Panics
///
/// Panics if the frame is shorter than the FCS itself.
pub fn write_fcs(frame: &mut [u8]) {
    let body = frame.len() - CRC_BYTES;
    let c = crc32(&frame[..body]);
    frame[body..].copy_from_slice(&c.to_le_bytes());
}

/// Whether the frame's FCS matches its contents. Frames shorter than the
/// minimum carry no trustworthy FCS and always fail.
pub fn fcs_valid(frame: &[u8]) -> bool {
    if frame.len() < MIN_FRAME {
        return false;
    }
    let body = frame.len() - CRC_BYTES;
    crc32(&frame[..body]).to_le_bytes() == frame[body..]
}

/// Validate a frame end-to-end: header structure, IP checksum, length
/// consistency, and the deterministic payload pattern.
///
/// # Errors
///
/// Returns the first [`FrameError`] encountered.
pub fn validate_frame(f: &[u8]) -> Result<FrameInfo, FrameError> {
    if f.len() < MIN_FRAME {
        return Err(FrameError::TooShort);
    }
    if f[12..14] != 0x0800u16.to_be_bytes() || f[14] != 0x45 || f[23] != 17 {
        return Err(FrameError::BadHeaders);
    }
    if ip_checksum(&f[14..34]) != 0 {
        return Err(FrameError::BadIpChecksum);
    }
    let ip_total = u16::from_be_bytes([f[16], f[17]]) as usize;
    let udp_len = u16::from_be_bytes([f[38], f[39]]) as usize;
    if ip_total != udp_len + 20 || 14 + ip_total + CRC_BYTES > f.len() || udp_len < 8 + 4 {
        return Err(FrameError::BadLength);
    }
    // The generator uses fixed ports and a zero UDP checksum; anything
    // else means the UDP header was damaged in flight.
    if f[34..36] != 9000u16.to_be_bytes()
        || f[36..38] != 9001u16.to_be_bytes()
        || f[40..42] != [0, 0]
    {
        return Err(FrameError::BadHeaders);
    }
    let payload = udp_len - 8;
    let seq = u32::from_be_bytes([f[42], f[43], f[44], f[45]]);
    for i in 0..payload - 4 {
        if f[46 + i] != pattern_byte(seq, i) {
            return Err(FrameError::CorruptPayload);
        }
    }
    Ok(FrameInfo {
        seq,
        udp_payload: payload,
        frame_len: f.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_frame_is_1518() {
        let f = build_udp_frame(0, 1472);
        assert_eq!(f.len(), MAX_FRAME);
    }

    #[test]
    fn small_payload_pads_to_min_frame() {
        let f = build_udp_frame(0, 4);
        assert_eq!(f.len(), MIN_FRAME);
        let info = validate_frame(&f).unwrap();
        assert_eq!(info.udp_payload, 4);
    }

    #[test]
    fn roundtrip_various_sizes() {
        for payload in [4, 18, 100, 200, 400, 800, 1000, 1472] {
            let f = build_udp_frame(payload as u32, payload);
            let info = validate_frame(&f).unwrap();
            assert_eq!(info.seq, payload as u32);
            assert_eq!(info.udp_payload, payload);
        }
    }

    #[test]
    fn corruption_detected() {
        let mut f = build_udp_frame(42, 1472);
        f[100] ^= 0xff;
        assert_eq!(validate_frame(&f), Err(FrameError::CorruptPayload));
    }

    #[test]
    fn ip_checksum_corruption_detected() {
        let mut f = build_udp_frame(42, 1472);
        f[18] ^= 0x10; // mangle IP id field
        assert_eq!(validate_frame(&f), Err(FrameError::BadIpChecksum));
    }

    #[test]
    fn short_frame_rejected() {
        assert_eq!(validate_frame(&[0u8; 32]), Err(FrameError::TooShort));
    }

    #[test]
    fn distinct_seqs_have_distinct_payloads() {
        let a = build_udp_frame(1, 256);
        let b = build_udp_frame(2, 256);
        assert_ne!(a[46..], b[46..]);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_payload_panics() {
        build_udp_frame(0, 1473);
    }

    #[test]
    fn endpoints_roundtrip_without_breaking_validation() {
        let mut f = build_udp_frame(9, 600);
        assert_eq!(endpoints(&f), (2, 1));
        set_endpoints(&mut f, 37, 1001);
        assert_eq!(endpoints(&f), (37, 1001));
        assert_eq!(validate_frame(&f).unwrap().seq, 9);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fcs_roundtrip_and_detection() {
        let mut f = build_udp_frame(5, 1472);
        assert!(!fcs_valid(&f), "zeroed FCS placeholder must not verify");
        write_fcs(&mut f);
        assert!(fcs_valid(&f));
        // Any bit flip anywhere in the body breaks the FCS.
        f[200] ^= 0x04;
        assert!(!fcs_valid(&f));
        f[200] ^= 0x04;
        assert!(fcs_valid(&f));
        // Truncation breaks it too (the FCS bytes move).
        assert!(!fcs_valid(&f[..f.len() - 10]));
        assert!(!fcs_valid(&f[..30]));
        // Stamping does not disturb validation (FCS is opaque to it).
        assert_eq!(validate_frame(&f).unwrap().seq, 5);
    }
}
