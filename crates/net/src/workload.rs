//! Flow-level workload generation for fleet runs.
//!
//! The paper's evaluation drives one NIC with fixed-size full-duplex
//! UDP streams; a fleet needs richer offered load. A [`Workload`]
//! describes who talks to whom (traffic matrix), how big the datagrams
//! are (fixed, bimodal, or bounded-Pareto heavy tail), and when they
//! leave (constant-rate, Poisson, or bursty arrivals). From it,
//! [`Workload::schedule`] derives a per-NIC transmit schedule — a
//! time-sorted list of [`TxPacket`]s — that the host driver posts
//! instead of the legacy back-to-back stream.
//!
//! Everything is deterministic in `(seed, nic)`: each NIC draws from
//! its own `XorShift64` stream, so schedules are identical however the
//! fleet is sharded and whatever order NICs are built in.

use crate::frame::MAX_UDP_PAYLOAD;
use nicsim_fault::XorShift64;
use nicsim_sim::Ps;

/// Who each NIC sends to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Every packet picks a uniform-random destination (never self).
    Uniform,
    /// NIC `i` sends only to NIC `(i + shift) mod n` — a permutation
    /// matrix with no egress contention at the fabric.
    Permutation {
        /// Destination offset (0 is remapped to 1: self-traffic is
        /// meaningless).
        shift: usize,
    },
    /// A fraction of traffic converges on one hot NIC; the rest is
    /// uniform.
    Hotspot {
        /// The hot destination.
        target: usize,
        /// Probability each packet goes to the target.
        fraction: f64,
    },
    /// All other NICs send to `target`; the target sends nothing. The
    /// classic incast drop experiment.
    Incast {
        /// The victim NIC.
        target: usize,
    },
}

/// Datagram size distribution (UDP payload bytes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeMix {
    /// Every datagram carries the same payload size.
    Fixed(usize),
    /// Small/large mix: `small_frac` of packets are `small` bytes, the
    /// rest `large` — the bimodal shape of real datacenter traces.
    Bimodal {
        /// Small payload size.
        small: usize,
        /// Large payload size.
        large: usize,
        /// Fraction of packets that are small.
        small_frac: f64,
    },
    /// Bounded Pareto: heavy-tailed sizes `min / (1-u)^(1/alpha)`
    /// clamped to `[min, 1472]`.
    Pareto {
        /// Minimum payload size (also the distribution scale).
        min: usize,
        /// Tail index; smaller is heavier.
        alpha: f64,
    },
}

/// Packet departure process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrivals {
    /// Constant bit rate: evenly spaced at the offered rate.
    Cbr,
    /// Poisson: exponential inter-arrival gaps at the offered rate.
    Poisson,
    /// On/off bursts: `burst` back-to-back packets (wire-spaced), then
    /// an exponential gap sized so the long-run rate matches.
    Bursty {
        /// Packets per burst.
        burst: usize,
    },
}

/// A complete fleet workload description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Traffic matrix.
    pub pattern: Pattern,
    /// Datagram size distribution.
    pub sizes: SizeMix,
    /// Departure process.
    pub arrivals: Arrivals,
    /// Offered load per sending NIC, frames per second.
    pub fps: f64,
    /// Master seed; NIC `i` draws from site `i`.
    pub seed: u64,
    /// Reliable delivery: the driver tracks per-flow unacked frames and
    /// retransmits on timeout with exponential backoff, and receivers
    /// deduplicate — goodput then counts delivered-exactly-once frames.
    pub reliable: bool,
    /// Retransmit timeout base, microseconds (attempt `n` waits
    /// `rto_us << n`, capped). Only meaningful with `reliable`.
    pub rto_us: u64,
}

impl Default for Workload {
    /// Uniform pattern, fixed 1472-byte datagrams, CBR at 100k fps.
    fn default() -> Workload {
        Workload {
            pattern: Pattern::Uniform,
            sizes: SizeMix::Fixed(MAX_UDP_PAYLOAD),
            arrivals: Arrivals::Cbr,
            fps: 100_000.0,
            seed: 1,
            reliable: false,
            rto_us: 50,
        }
    }
}

/// One scheduled transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxPacket {
    /// Earliest time the driver may post it.
    pub at: Ps,
    /// Destination NIC id.
    pub dst: u16,
    /// UDP payload bytes.
    pub udp_payload: usize,
}

impl Workload {
    /// Parse a workload spec: comma-separated `key=value` pairs.
    ///
    /// Keys: `pattern` (`uniform` | `permutation` | `hotspot` |
    /// `incast`), `target` (hotspot/incast destination, default 0),
    /// `shift` (permutation offset, default 1), `fraction` (hotspot
    /// share, default 0.5), `size` (fixed payload bytes), `small` /
    /// `large` / `small_frac` (bimodal mix), `pareto_min` / `alpha`
    /// (bounded Pareto), `arrivals` (`cbr` | `poisson` | `bursty`),
    /// `burst` (packets per burst, default 16), `fps`, `seed`,
    /// `reliable` (`0` | `1`), `rto_us` (retransmit timeout base,
    /// default 50).
    ///
    /// Example: `pattern=incast,target=0,fps=400000,size=1472,seed=7`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed pair.
    pub fn parse(spec: &str) -> Result<Workload, String> {
        let mut w = Workload::default();
        let mut bimodal = (64usize, MAX_UDP_PAYLOAD, 0.9f64);
        let mut pareto = (64usize, 1.2f64);
        for pair in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, val) = pair
                .split_once('=')
                .ok_or_else(|| format!("workload: expected key=value, got '{pair}'"))?;
            let num = |v: &str| -> Result<f64, String> { v.parse().map_err(|_| bad(key, v)) };
            let int = |v: &str| -> Result<usize, String> { v.parse().map_err(|_| bad(key, v)) };
            match key {
                "pattern" => {
                    w.pattern = match val {
                        "uniform" => Pattern::Uniform,
                        "permutation" => Pattern::Permutation { shift: 1 },
                        "hotspot" => Pattern::Hotspot {
                            target: 0,
                            fraction: 0.5,
                        },
                        "incast" => Pattern::Incast { target: 0 },
                        _ => return Err(bad(key, val)),
                    }
                }
                "target" => {
                    let t = int(val)?;
                    match &mut w.pattern {
                        Pattern::Hotspot { target, .. } | Pattern::Incast { target } => {
                            *target = t;
                        }
                        _ => return Err("workload: target needs hotspot/incast".into()),
                    }
                }
                "shift" => match &mut w.pattern {
                    Pattern::Permutation { shift } => *shift = int(val)?,
                    _ => return Err("workload: shift needs pattern=permutation".into()),
                },
                "fraction" => match &mut w.pattern {
                    Pattern::Hotspot { fraction, .. } => *fraction = num(val)?,
                    _ => return Err("workload: fraction needs pattern=hotspot".into()),
                },
                "size" => w.sizes = SizeMix::Fixed(int(val)?),
                "small" => {
                    bimodal.0 = int(val)?;
                    w.sizes = SizeMix::Bimodal {
                        small: bimodal.0,
                        large: bimodal.1,
                        small_frac: bimodal.2,
                    };
                }
                "large" => {
                    bimodal.1 = int(val)?;
                    w.sizes = SizeMix::Bimodal {
                        small: bimodal.0,
                        large: bimodal.1,
                        small_frac: bimodal.2,
                    };
                }
                "small_frac" => {
                    bimodal.2 = num(val)?;
                    w.sizes = SizeMix::Bimodal {
                        small: bimodal.0,
                        large: bimodal.1,
                        small_frac: bimodal.2,
                    };
                }
                "pareto_min" => {
                    pareto.0 = int(val)?;
                    w.sizes = SizeMix::Pareto {
                        min: pareto.0,
                        alpha: pareto.1,
                    };
                }
                "alpha" => {
                    pareto.1 = num(val)?;
                    w.sizes = SizeMix::Pareto {
                        min: pareto.0,
                        alpha: pareto.1,
                    };
                }
                "arrivals" => {
                    w.arrivals = match val {
                        "cbr" => Arrivals::Cbr,
                        "poisson" => Arrivals::Poisson,
                        "bursty" => Arrivals::Bursty { burst: 16 },
                        _ => return Err(bad(key, val)),
                    }
                }
                "burst" => match &mut w.arrivals {
                    Arrivals::Bursty { burst } => *burst = int(val)?.max(1),
                    _ => return Err("workload: burst needs arrivals=bursty".into()),
                },
                "fps" => w.fps = num(val)?,
                "seed" => w.seed = val.parse().map_err(|_| bad(key, val))?,
                "reliable" => {
                    w.reliable = match val {
                        "1" | "true" => true,
                        "0" | "false" => false,
                        _ => return Err(bad(key, val)),
                    }
                }
                "rto_us" => w.rto_us = val.parse().map_err(|_| bad(key, val))?,
                _ => return Err(format!("workload: unknown key '{key}'")),
            }
        }
        w.validate()?;
        Ok(w)
    }

    /// Check internal consistency against a fleet of `nics` NICs.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn check(&self, nics: usize) -> Result<(), String> {
        self.validate()?;
        if nics < 2 {
            return Err("workload: a fleet needs at least 2 NICs".into());
        }
        let target = match self.pattern {
            Pattern::Hotspot { target, .. } | Pattern::Incast { target } => Some(target),
            _ => None,
        };
        if let Some(t) = target {
            if t >= nics {
                return Err(format!("workload: target {t} out of range for {nics} NICs"));
            }
        }
        Ok(())
    }

    fn validate(&self) -> Result<(), String> {
        // NaN must fail too, so the comparison is kept exclusionary.
        if self.fps.is_nan() || self.fps <= 0.0 {
            return Err("workload: fps must be positive".into());
        }
        let ok_size = |s: usize| (4..=MAX_UDP_PAYLOAD).contains(&s);
        let sizes_ok = match self.sizes {
            SizeMix::Fixed(s) => ok_size(s),
            SizeMix::Bimodal {
                small,
                large,
                small_frac,
            } => ok_size(small) && ok_size(large) && (0.0..=1.0).contains(&small_frac),
            SizeMix::Pareto { min, alpha } => ok_size(min) && alpha > 0.0,
        };
        if !sizes_ok {
            return Err("workload: payload sizes must be 4..=1472".into());
        }
        if let Pattern::Hotspot { fraction, .. } = self.pattern {
            if !(0.0..=1.0).contains(&fraction) {
                return Err("workload: hotspot fraction must be in [0,1]".into());
            }
        }
        if self.reliable && self.rto_us == 0 {
            return Err("workload: reliable mode needs rto_us >= 1".into());
        }
        Ok(())
    }

    /// Whether `nic` transmits at all under this workload (the incast
    /// victim does not).
    pub fn sends(&self, nic: usize) -> bool {
        !matches!(self.pattern, Pattern::Incast { target } if target == nic)
    }

    /// The transmit schedule for `nic` in a fleet of `nics`, covering
    /// `[0, horizon)`. Deterministic in `(seed, nic)` and independent
    /// of every other NIC's draw.
    ///
    /// # Panics
    ///
    /// Panics if the workload fails [`Workload::check`] for this fleet
    /// size.
    pub fn schedule(&self, nic: usize, nics: usize, horizon: Ps) -> Vec<TxPacket> {
        self.check(nics).expect("workload consistent with fleet");
        let mut out = Vec::new();
        if !self.sends(nic) {
            return out;
        }
        let mut rng = XorShift64::for_site(self.seed, nic as u64);
        let mean_gap = 1e12 / self.fps; // ps
        let mut t = Ps::ZERO;
        // Stagger NIC start phases under CBR so the fleet's aggregate
        // isn't a lockstep impulse train (Poisson/bursty already
        // de-phase naturally).
        if matches!(self.arrivals, Arrivals::Cbr) {
            t = Ps((uniform(&mut rng) * mean_gap) as u64);
        }
        let mut burst_left = 0usize;
        while t < horizon {
            let dst = self.pick_dst(&mut rng, nic, nics);
            let udp_payload = self.pick_size(&mut rng);
            out.push(TxPacket {
                at: t,
                dst: dst as u16,
                udp_payload,
            });
            let gap = match self.arrivals {
                Arrivals::Cbr => mean_gap,
                Arrivals::Poisson => exp_gap(&mut rng, mean_gap),
                Arrivals::Bursty { burst } => {
                    if burst_left == 0 {
                        burst_left = burst;
                    }
                    burst_left -= 1;
                    if burst_left > 0 {
                        // Back-to-back within the burst: one wire time.
                        crate::link::wire_time(crate::fabric::frame_len_for_payload(udp_payload)).0
                            as f64
                    } else {
                        // The off period carries the rest of the
                        // burst's share of the mean spacing.
                        exp_gap(&mut rng, mean_gap * burst as f64)
                    }
                }
            };
            t += Ps((gap.max(1.0)) as u64);
        }
        out
    }

    fn pick_dst(&self, rng: &mut XorShift64, nic: usize, nics: usize) -> usize {
        match self.pattern {
            Pattern::Uniform => uniform_peer(rng, nic, nics),
            Pattern::Permutation { shift } => {
                let s = if shift % nics == 0 { 1 } else { shift % nics };
                (nic + s) % nics
            }
            Pattern::Hotspot { target, fraction } => {
                if uniform(rng) < fraction && target != nic {
                    target
                } else {
                    uniform_peer(rng, nic, nics)
                }
            }
            Pattern::Incast { target } => target,
        }
    }

    fn pick_size(&self, rng: &mut XorShift64) -> usize {
        match self.sizes {
            SizeMix::Fixed(s) => s,
            SizeMix::Bimodal {
                small,
                large,
                small_frac,
            } => {
                if uniform(rng) < small_frac {
                    small
                } else {
                    large
                }
            }
            SizeMix::Pareto { min, alpha } => {
                let u = uniform(rng);
                let x = min as f64 / (1.0 - u).powf(1.0 / alpha);
                (x as usize).clamp(min, MAX_UDP_PAYLOAD)
            }
        }
    }
}

fn bad(key: &str, val: &str) -> String {
    format!("workload: bad value '{val}' for '{key}'")
}

/// Uniform draw in [0, 1) from the top 53 bits of the stream.
fn uniform(rng: &mut XorShift64) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Exponential inter-arrival gap with the given mean (ps).
fn exp_gap(rng: &mut XorShift64, mean: f64) -> f64 {
    let u = uniform(rng);
    -(1.0 - u).ln() * mean
}

/// A uniform destination that is never `nic` itself.
fn uniform_peer(rng: &mut XorShift64, nic: usize, nics: usize) -> usize {
    let d = rng.below(nics as u64 - 1) as usize;
    if d >= nic {
        d + 1
    } else {
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_per_nic_independent() {
        let w = Workload {
            arrivals: Arrivals::Poisson,
            sizes: SizeMix::Pareto {
                min: 64,
                alpha: 1.3,
            },
            ..Workload::default()
        };
        let a = w.schedule(3, 8, Ps::from_ms(2));
        let b = w.schedule(3, 8, Ps::from_ms(2));
        assert_eq!(a, b);
        assert_ne!(a, w.schedule(4, 8, Ps::from_ms(2)));
    }

    #[test]
    fn cbr_rate_is_respected() {
        let w = Workload {
            fps: 200_000.0,
            ..Workload::default()
        };
        let s = w.schedule(0, 4, Ps::from_ms(1));
        // 1 ms at 200k fps = 200 packets (±1 for the phase stagger).
        assert!((199..=201).contains(&s.len()), "{} packets", s.len());
        assert!(s.windows(2).all(|p| p[0].at < p[1].at));
    }

    #[test]
    fn incast_victim_is_silent_and_others_converge() {
        let w = Workload {
            pattern: Pattern::Incast { target: 2 },
            ..Workload::default()
        };
        assert!(w.schedule(2, 4, Ps::from_ms(1)).is_empty());
        let s = w.schedule(0, 4, Ps::from_ms(1));
        assert!(!s.is_empty());
        assert!(s.iter().all(|p| p.dst == 2));
    }

    #[test]
    fn uniform_never_targets_self() {
        let w = Workload::default();
        for nic in 0..4 {
            assert!(w
                .schedule(nic, 4, Ps::from_ms(1))
                .iter()
                .all(|p| p.dst as usize != nic));
        }
    }

    #[test]
    fn pareto_sizes_are_bounded_and_varied() {
        let w = Workload {
            sizes: SizeMix::Pareto {
                min: 64,
                alpha: 1.1,
            },
            arrivals: Arrivals::Poisson,
            ..Workload::default()
        };
        let s = w.schedule(0, 4, Ps::from_ms(4));
        assert!(s.iter().all(|p| (64..=1472).contains(&p.udp_payload)));
        let smalls = s.iter().filter(|p| p.udp_payload < 128).count();
        let bigs = s.iter().filter(|p| p.udp_payload > 512).count();
        assert!(smalls > 0 && bigs > 0, "smalls={smalls} bigs={bigs}");
    }

    #[test]
    fn parse_round_trips_the_interesting_specs() {
        let w = Workload::parse("pattern=incast,target=3,fps=400000,size=256,seed=9").unwrap();
        assert_eq!(w.pattern, Pattern::Incast { target: 3 });
        assert_eq!(w.fps, 400_000.0);
        assert_eq!(w.sizes, SizeMix::Fixed(256));
        assert_eq!(w.seed, 9);
        let w = Workload::parse("pattern=hotspot,target=1,fraction=0.8,arrivals=bursty,burst=8")
            .unwrap();
        assert_eq!(
            w.pattern,
            Pattern::Hotspot {
                target: 1,
                fraction: 0.8
            }
        );
        assert_eq!(w.arrivals, Arrivals::Bursty { burst: 8 });
        let w = Workload::parse("pareto_min=64,alpha=1.5,arrivals=poisson").unwrap();
        assert_eq!(
            w.sizes,
            SizeMix::Pareto {
                min: 64,
                alpha: 1.5
            }
        );
        assert!(Workload::parse("pattern=starlight").is_err());
        assert!(Workload::parse("shift=2").is_err());
        assert!(Workload::parse("nonsense").is_err());
    }

    #[test]
    fn parse_reliable_mode_and_rto() {
        let w = Workload::parse("reliable=1,rto_us=30").unwrap();
        assert!(w.reliable);
        assert_eq!(w.rto_us, 30);
        let w = Workload::parse("reliable=0").unwrap();
        assert!(!w.reliable);
        assert_eq!(w.rto_us, 50, "default rto");
        assert!(Workload::parse("reliable=maybe").is_err());
        assert!(Workload::parse("reliable=1,rto_us=0").is_err());
        assert!(Workload::parse("rto_us=bogus").is_err());
    }

    #[test]
    fn check_rejects_out_of_range_targets() {
        let w = Workload::parse("pattern=incast,target=9").unwrap();
        assert!(w.check(4).is_err());
        assert!(w.check(16).is_ok());
    }

    #[test]
    fn bursty_long_run_rate_is_close() {
        let w = Workload {
            arrivals: Arrivals::Bursty { burst: 8 },
            fps: 100_000.0,
            sizes: SizeMix::Fixed(256),
            ..Workload::default()
        };
        let s = w.schedule(1, 4, Ps::from_ms(20));
        // 20 ms at 100k fps = 2000 packets; allow generous slack for
        // the stochastic off periods.
        assert!((1200..=2800).contains(&s.len()), "{} packets", s.len());
    }
}
