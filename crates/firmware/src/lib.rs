//! The NIC firmware (paper §3): frame-level parallel Ethernet processing
//! with software-maintained total frame ordering.
//!
//! The firmware is written as `async` Rust against [`nicsim_cpu::CoreCtx`]
//! — every load, store, ALU batch, branch, and atomic RMW is charged on
//! the simulated core it runs on, so the execution profiles of Tables 1,
//! 5 and 6 fall out of real runs.
//!
//! ## Organization (Figure 5)
//!
//! Every core runs the same **dispatch loop**. It inspects the
//! hardware-maintained progress pointers (DMA done counters, MAC
//! producer/done counters, mailbox registers), *claims* a bundle of work
//! units under a short lock — the event structure of the frame-level
//! parallel design — and runs the matching handler. Any core can process
//! any event type concurrently with any other, so idle time occurs only
//! when there is no work at all.
//!
//! ## Frame ordering (§3.3)
//!
//! Work units complete out of order (DMA completions interleave across
//! frames), but frames must be delivered in order. Each stage that needs
//! ordering marks a per-frame **status bit**; a commit pass scans for
//! consecutive set bits from the commit pointer, clears them, and
//! performs the in-order action (enqueue to MAC, return to host). The
//! scan/clear runs in one of three modes:
//!
//! * [`FwMode::SoftwareOnly`] — lock-based: the status word is read,
//!   scanned bit by bit, and written back under the commit lock.
//! * [`FwMode::RmwEnhanced`] — the paper's `set`/`update` atomic
//!   instructions replace the looping accesses.
//! * [`FwMode::Ideal`] — single-core, all synchronization elided; used to
//!   measure the intrinsic per-function costs of Table 1.

pub mod dispatch;
pub mod handlers;
pub mod map;
pub mod mode;

pub use dispatch::dispatch_loop;
pub use map::{DmaIf, MacIf, MemMap, MAX_DMA_ENGINES, MAX_MACS};
pub use mode::{DispatchMode, FwMode};
