//! The NIC-processing handlers (Figures 1 and 2, steps as labeled).
//!
//! Handlers are grouped by the paper's Table 1/5 functions:
//!
//! * **Fetch Send BD** — issue the 32-descriptor DMA for newly mailboxed
//!   send BDs (Fig. 1 step 3) and parse each arrived BD into the pool.
//! * **Send Frame** — turn BD pairs into frame slots, DMA the header and
//!   payload into the transmit buffer (step 4), hand ready frames to the
//!   MAC in order (step 5), and notify the host on completion (step 6).
//! * **Fetch Receive BD** — the 16-descriptor receive-buffer fetch and
//!   parse.
//! * **Receive Frame** — pair arrived frames with preallocated host
//!   buffers, DMA the contents to the host (Fig. 2 step 2), and produce
//!   in-order return descriptors and the status update (steps 3–4).
//! * **Dispatch and Ordering / Locking** — the claim machinery, status
//!   bits, commit scans, and spinlocks, charged separately so the
//!   RMW-vs-software comparison of Tables 5/6 falls out.
//!
//! ALU charges model the straight-line arithmetic (address generation,
//! field packing, validation) the Tigon-II-derived handlers perform
//! around each memory access.

use crate::map::{
    info, BD_CACHE, DMA_RING, MACRX_RING, MACTX_RING, RECV_BD_BATCH, RXBUF_BYTES, SEND_BD_BATCH,
    SLOTS, STAGING, TXBUF_BASE, TX_SLOT_BYTES,
};
use crate::mode::{claim_range, commit_scan, mark_bit, sync_lock, sync_unlock, Fw};
use nicsim_assists::cmd::{FLAG_IMM, FLAG_SP};
use nicsim_cpu::FwFunc;

/// Work units claimed per completion-processing pass.
pub const CLAIM_BATCH: u32 = 8;
/// BD-cache entries held back by the fetch guard. A handler claims pool
/// entries under the claim lock but reads them afterwards; the slack
/// keeps the parser from overwriting a claimed-but-not-yet-read entry
/// (it must cover every core's in-flight claim: `FRAME_BATCH x cores`).
pub const BD_POOL_SLACK: u32 = 64;
/// Frames claimed per send/receive frame pass.
pub const FRAME_BATCH: u32 = 4;

// Straight-line instruction weights of the Tigon-II-derived handler
// bodies (validation, byte swapping, field extraction, statistics),
// calibrated so the idealized per-function profile reproduces Table 1's
// anchors: ~282 instructions per sent frame and ~253 per received frame
// (229 / 206 MIPS at 812,744 frames/s). See EXPERIMENTS.md.
/// Per-BD validation/swap work when parsing send BDs.
pub const CAL_PARSE_SBD: u32 = 16;
/// Per-BD work when parsing receive BDs.
pub const CAL_PARSE_RBD: u32 = 22;
/// Per-frame work preparing a send frame (fragment split, checks).
pub const CAL_SEND_PREP: u32 = 42;
/// Per-frame work when a send frame's data is ready.
pub const CAL_SEND_READY: u32 = 10;
/// Per-frame work at transmit completion.
pub const CAL_SEND_DONE: u32 = 26;
/// Per-frame work preparing a receive frame.
pub const CAL_RECV_PREP: u32 = 50;
/// Per-frame work at receive commit (return descriptor construction).
pub const CAL_RECV_COMMIT: u32 = 42;

/// Host-memory addresses the firmware needs (programmed by the driver at
/// initialization on real hardware).
#[derive(Debug, Clone, Copy)]
pub struct HostRegs {
    /// Host send BD ring base.
    pub send_bd_ring: u32,
    /// Host receive BD ring base.
    pub rx_bd_ring: u32,
    /// Host return ring base.
    pub return_ring: u32,
    /// Status word: send consumer index (BDs).
    pub status_send_cons: u32,
    /// Status word: return ring producer.
    pub status_ret_prod: u32,
}

/// One DMA command to push: encoded words plus the firmware info word.
type Cmd = ([u32; 4], u32);

impl Fw {
    /// The tag for send-side dispatch/ordering work. In ideal mode this
    /// work belongs to Send Frame itself (Table 1 has no dispatch rows).
    fn send_dispatch_tag(&self) -> FwFunc {
        if self.mode == crate::mode::FwMode::Ideal {
            FwFunc::SendFrame
        } else {
            FwFunc::SendDispatch
        }
    }

    /// The tag for receive-side dispatch/ordering work.
    fn recv_dispatch_tag(&self) -> FwFunc {
        if self.mode == crate::mode::FwMode::Ideal {
            FwFunc::RecvFrame
        } else {
            FwFunc::RecvDispatch
        }
    }

    /// Push commands onto a DMA ring, spinning (briefly) if the ring is
    /// full. Ring space is measured against the firmware's *claim*
    /// counter, not the hardware done counter: an entry (and its info
    /// word) may only be reused once its completion has been consumed.
    /// The spin cannot deadlock, because completions are eventually
    /// claimed by whichever core polls the source.
    async fn dma_push(
        &self,
        ring: u32,
        info_ring: u32,
        prod_addr: u32,
        claim_addr: u32,
        lock: u32,
        cmds: &[Cmd],
    ) {
        let ctx = &self.ctx;
        // Field packing and address generation happen before the lock is
        // taken, keeping the critical section to the ring stores only.
        ctx.alu(3 * cmds.len() as u32 + 2).await;
        sync_lock(ctx, self.mode, lock).await;
        loop {
            let prod = ctx.load(prod_addr).await;
            let claimed = ctx.load(claim_addr).await;
            ctx.alu(2).await;
            if prod.wrapping_sub(claimed) + cmds.len() as u32 <= DMA_RING {
                ctx.branch().await;
                let mut p = prod;
                for (w, inf) in cmds {
                    let base = ring + (p % DMA_RING) * 16;
                    for (k, word) in w.iter().enumerate() {
                        ctx.store(base + k as u32 * 4, *word).await;
                    }
                    ctx.store(info_ring + (p % DMA_RING) * 4, *inf).await;
                    p = p.wrapping_add(1);
                }
                ctx.store(prod_addr, p).await; // doorbell
                break;
            }
            // Ring full: retry until the engine drains.
            ctx.branch_miss().await;
            ctx.alu(2).await;
        }
        sync_unlock(ctx, self.mode, lock).await;
    }

    /// Pick the DMA engine for work unit `x` (a fetch counter or frame
    /// sequence number). Striping is address decoding — part of the
    /// command construction already charged — so it costs no cycles,
    /// and with one engine it always resolves to engine 0, keeping the
    /// default topology bit-identical.
    fn stripe(&self, x: u32) -> usize {
        (x % self.m.n_dma) as usize
    }

    async fn dmard_push(&self, eng: usize, cmds: &[Cmd]) {
        let d = *self.m.dmard(eng);
        self.dma_push(d.ring, d.info, d.prod, d.claim, d.lock, cmds)
            .await;
    }

    async fn dmawr_push(&self, eng: usize, cmds: &[Cmd]) {
        let d = *self.m.dmawr(eng);
        self.dma_push(d.ring, d.info, d.prod, d.claim, d.lock, cmds)
            .await;
    }

    // ------------------------------------------------------------------
    // Send path
    // ------------------------------------------------------------------

    /// Fetch Send BD, issue side: DMA up to 32 new send BDs from the host
    /// ring into the raw cache (Fig. 1 step 3).
    pub async fn fetch_send_bds(&self, host: &HostRegs) -> bool {
        let ctx = &self.ctx;
        ctx.set_func(FwFunc::FetchSendBd);
        let m = &self.m;
        sync_lock(ctx, self.mode, m.lock_sb_fetch).await;
        let prod = ctx.load(m.sb_mailbox_prod).await;
        let fetched = ctx.load(m.sb_fetched).await;
        let cons = ctx.load(m.sbd_cons).await;
        ctx.alu(5).await; // available/capacity arithmetic
        let avail = prod.wrapping_sub(fetched);
        // A raw/pool entry may be reused only after its BD is consumed
        // AND read; the slack covers claimed-but-unread entries.
        let cache_free = (BD_CACHE - BD_POOL_SLACK).saturating_sub(fetched.wrapping_sub(cons));
        let ring_space = BD_CACHE - fetched % BD_CACHE;
        let batch = avail.min(SEND_BD_BATCH).min(cache_free).min(ring_space);
        if batch == 0 {
            ctx.branch_miss().await;
            sync_unlock(ctx, self.mode, m.lock_sb_fetch).await;
            return false;
        }
        ctx.branch().await;
        ctx.alu(6).await; // host/destination address generation
        let idx = fetched % BD_CACHE;
        let cmd = [
            host.send_bd_ring + idx * 16,
            m.sbd_raw + idx * 16,
            (batch * 16) | FLAG_SP,
            0,
        ];
        self.dmard_push(
            self.stripe(fetched),
            &[(
                cmd,
                info::pack(info::SEND_BD_BATCH, info::pack_batch(fetched, batch)),
            )],
        )
        .await;
        ctx.set_func(FwFunc::FetchSendBd);
        ctx.store(m.sb_fetched, fetched.wrapping_add(batch)).await;
        sync_unlock(ctx, self.mode, m.lock_sb_fetch).await;
        true
    }

    /// Fetch Send BD, arrival side: parse a batch of raw BDs into the
    /// pool (validation and byte order, as the Tigon firmware does).
    /// Batches are parsed in BD-index order: if an earlier batch is
    /// still being parsed by another core, spin until it finishes.
    async fn parse_send_bds(&self, start18: u32, count: u32) {
        let ctx = &self.ctx;
        ctx.set_func(FwFunc::FetchSendBd);
        let m = &self.m;
        sync_lock(ctx, self.mode, m.lock_sbd_parse).await;
        let mut parsed = ctx.load(m.sbd_parsed).await;
        while parsed & 0x3ffff != start18 {
            // An earlier batch has not been parsed yet: yield the lock.
            sync_unlock(ctx, self.mode, m.lock_sbd_parse).await;
            ctx.alu(3).await;
            ctx.branch_miss().await;
            sync_lock(ctx, self.mode, m.lock_sbd_parse).await;
            parsed = ctx.load(m.sbd_parsed).await;
        }
        ctx.alu(2).await;
        for k in 0..count {
            let i = (parsed.wrapping_add(k)) % BD_CACHE;
            let addr = ctx.load(m.sbd_raw + i * 16).await;
            let len = ctx.load(m.sbd_raw + i * 16 + 4).await;
            let flags = ctx.load(m.sbd_raw + i * 16 + 8).await;
            let seq = ctx.load(m.sbd_raw + i * 16 + 12).await;
            ctx.alu(CAL_PARSE_SBD).await; // validate flags, swap, pack
            ctx.branch().await;
            ctx.branch_miss().await; // descriptor-type dispatch
            ctx.store(m.sbd_pool + i * 16, addr).await;
            ctx.store(m.sbd_pool + i * 16 + 4, (len & 0xffff) | (flags << 28))
                .await;
            ctx.store(m.sbd_pool + i * 16 + 8, seq).await;
            ctx.store(m.sbd_pool + i * 16 + 12, 0).await; // checksum info
            let chain = ctx.load(m.sbd_raw + i * 16 + 4).await; // chain/len recheck
            let _ = chain;
            ctx.store(m.sbd_raw + i * 16 + 8, 0).await; // consume-mark the raw BD
        }
        ctx.store(m.sbd_parsed, parsed.wrapping_add(count)).await;
        sync_unlock(ctx, self.mode, m.lock_sbd_parse).await;
    }

    /// Send Frame, start side: claim parsed BD pairs, allocate frame
    /// slots and transmit-buffer space, and DMA the header and payload
    /// into the frame memory (Fig. 1 step 4).
    pub async fn send_frames(&self) -> bool {
        let ctx = &self.ctx;
        ctx.set_func(FwFunc::SendFrame);
        let m = &self.m;
        sync_lock(ctx, self.mode, m.lock_sbd).await;
        let parsed = ctx.load(m.sbd_parsed).await;
        let cons = ctx.load(m.sbd_cons).await;
        let txdone = ctx.load(m.send_txdone_commit).await;
        ctx.alu(5).await;
        let pairs = parsed.wrapping_sub(cons) / 2;
        let seq0 = cons / 2;
        let free_slots = SLOTS - seq0.wrapping_sub(txdone);
        let batch = pairs.min(free_slots).min(FRAME_BATCH);
        if batch == 0 {
            ctx.branch_miss().await;
            sync_unlock(ctx, self.mode, m.lock_sbd).await;
            return false;
        }
        ctx.branch().await;
        ctx.store(m.sbd_cons, cons.wrapping_add(batch * 2)).await;
        sync_unlock(ctx, self.mode, m.lock_sbd).await;
        for f in 0..batch {
            let seq = seq0.wrapping_add(f);
            let sidx = seq % SLOTS;
            let i0 = (cons.wrapping_add(2 * f)) % BD_CACHE;
            let i1 = (cons.wrapping_add(2 * f + 1)) % BD_CACHE;
            let haddr = ctx.load(m.sbd_pool + i0 * 16).await;
            let hlen = ctx.load(m.sbd_pool + i0 * 16 + 4).await;
            let hseq = ctx.load(m.sbd_pool + i0 * 16 + 8).await;
            let paddr = ctx.load(m.sbd_pool + i1 * 16).await;
            let plen = ctx.load(m.sbd_pool + i1 * 16 + 4).await;
            let _csum = ctx.load(m.sbd_pool + i1 * 16 + 12).await;
            ctx.alu(CAL_SEND_PREP).await; // fragment split, flag checks, dest compute
            ctx.branch().await;
            ctx.branch_miss().await; // fragment-count dispatch
            ctx.branch_miss().await; // option flags
            let hlen = hlen & 0xffff;
            let plen = plen & 0xffff;
            let sdram = TXBUF_BASE + sidx * TX_SLOT_BYTES;
            let slot = m.send_slot(seq);
            ctx.store(slot, haddr).await;
            ctx.store(slot + 4, paddr).await;
            ctx.store(slot + 16, sdram).await;
            ctx.store(slot + 20, hlen + plen).await;
            ctx.store(slot + 8, 0).await; // checksum offload info
            ctx.store(slot + 12, 0).await; // option flags
                                           // The *host's* frame sequence number, not the slot counter:
                                           // downstream this word only feeds the MAC TX ring's
                                           // observability field, and fleet runs namespace it by
                                           // source NIC (legacy runs post the two in lockstep, so the
                                           // values coincide there).
            ctx.store(slot + 24, hseq).await;
            ctx.store(slot + 28, 1).await; // state: fragments in flight
            let prev_state = ctx
                .load(m.send_slots + ((seq.wrapping_sub(1)) % SLOTS) * 32 + 28)
                .await;
            let _ = prev_state; // neighbour-slot sanity check, as Tigon does
            let fence = ctx.load(m.send_txdone_commit).await; // slot-reuse fence
            let _ = fence;
            ctx.branch_miss().await; // reuse-fence branch
            let st = ctx.load(m.stat(0)).await; // tx frames started
            ctx.store(m.stat(0), st.wrapping_add(1)).await;
            // Header and payload ride the same engine: the frame is
            // ready only when its *last* fragment completes, and the
            // in-engine FIFO guarantees that order.
            self.dmard_push(
                self.stripe(seq),
                &[
                    ([haddr, sdram, hlen, 0], info::pack(info::NOP, 0)),
                    (
                        [paddr, sdram + hlen, plen, 0],
                        info::pack(info::SEND_FRAME_LAST, sidx),
                    ),
                ],
            )
            .await;
            ctx.set_func(FwFunc::SendFrame);
        }
        true
    }

    /// Send Frame, ready side: the frame's last fragment reached the
    /// transmit buffer; mark it and commit any in-order prefix to the MAC
    /// (Fig. 1 step 5).
    async fn send_frame_ready(&self, sidx: u32) {
        let ctx = &self.ctx;
        ctx.set_func(FwFunc::SendFrame);
        ctx.alu(CAL_SEND_READY).await;
        let slot = self.m.send_slots + sidx * 32;
        let st = ctx.load(slot + 28).await;
        ctx.store(slot + 28, st | 2).await; // state: data ready
        mark_bit(
            ctx,
            self.mode,
            self.m.send_ready_bits,
            sidx,
            self.m.lock_send_ready_commit,
            self.send_dispatch_tag(),
        )
        .await;
        self.commit_send_ready().await;
    }

    /// Send ordering: advance the ready-commit pointer over consecutive
    /// ready frames and append them to the MAC TX ring, in frame order.
    pub async fn commit_send_ready(&self) {
        let ctx = &self.ctx;
        ctx.set_func(self.send_dispatch_tag());
        let m = &self.m;
        if self.mode.locking() && !ctx.try_lock(m.lock_send_ready_commit).await {
            // Another core is committing; it (or the dispatch loop's
            // pending check) will pick up our frames.
            return;
        }
        let commit0 = ctx.load(m.send_ready_commit).await;
        let mut prod = ctx.load(m.mactx_prod).await;
        let done = ctx.load(m.mactx_done).await; // ring-space verification
        ctx.alu(4).await;
        debug_assert!(prod.wrapping_sub(done) <= MACTX_RING);
        let _ = done;
        ctx.branch_miss().await; // space-branch resolves late
        let mut commit = commit0;
        loop {
            let run = commit_scan(ctx, self.mode, m.send_ready_bits, commit).await;
            if run == 0 {
                ctx.branch_miss().await;
                break;
            }
            ctx.branch().await;
            for k in 0..run {
                // Handing a frame to the MAC is Send Frame work
                // (Fig. 1 step 5); only the scan and pointer updates
                // around this loop are ordering overhead.
                ctx.set_func(FwFunc::SendFrame);
                let seq = commit.wrapping_add(k);
                let slot = m.send_slot(seq);
                let addr = ctx.load(slot + 16).await;
                let len = ctx.load(slot + 20).await;
                let fseq = ctx.load(slot + 24).await;
                ctx.alu(14).await; // entry construction, pointer math
                ctx.branch().await;
                ctx.branch_miss().await; // ring-wrap check
                let e = m.mactx_ring + (prod % MACTX_RING) * 16;
                ctx.store(e, addr).await;
                ctx.store(e + 4, len).await;
                ctx.store(e + 8, 0).await; // flags
                ctx.store(e + 12, fseq).await;
                prod = prod.wrapping_add(1);
            }
            ctx.set_func(self.send_dispatch_tag());
            commit = commit.wrapping_add(run);
        }
        if commit != commit0 {
            ctx.store(m.mactx_prod, prod).await; // hardware pointer update
            ctx.store(m.send_ready_commit, commit).await;
        }
        ctx.alu(1).await;
        sync_unlock(ctx, self.mode, m.lock_send_ready_commit).await;
    }

    /// Send Frame, completion side: claim MAC TX completions, mark each
    /// frame done, and commit the in-order prefix back to the host
    /// (Fig. 1 step 6).
    pub async fn process_mactx_done(&self, host: &HostRegs) -> bool {
        let ctx = &self.ctx;
        ctx.set_func(self.send_dispatch_tag());
        let m = &self.m;
        let (start, n) = claim_range(
            ctx,
            self.mode,
            m.lock_mactx_claim,
            m.mactx_done,
            m.send_txdone_claim,
            CLAIM_BATCH,
            m.event_area(ctx.core_id()),
        )
        .await;
        if n == 0 {
            return false;
        }
        for k in 0..n {
            let seq = start.wrapping_add(k);
            ctx.set_func(FwFunc::SendFrame);
            let slot = m.send_slot(seq);
            let _state = ctx.load(slot + 28).await;
            ctx.alu(CAL_SEND_DONE).await; // statistics, slot cleanup
            ctx.store(slot + 28, 0).await; // state: free
            let st = ctx.load(m.stat(1)).await; // tx frames completed
            ctx.store(m.stat(1), st.wrapping_add(1)).await;
            let len = ctx.load(slot + 20).await;
            let bytes = ctx.load(m.stat(4)).await; // tx byte counter
            ctx.store(m.stat(4), bytes.wrapping_add(len)).await;
            ctx.branch().await;
            ctx.branch_miss().await; // coalescing decision
            mark_bit(
                ctx,
                self.mode,
                m.send_txdone_bits,
                seq % SLOTS,
                m.lock_send_txdone_commit,
                self.send_dispatch_tag(),
            )
            .await;
        }
        self.commit_txdone(host).await;
        true
    }

    /// Send ordering: advance the txdone commit pointer and notify the
    /// host of the new send consumer index ("committing a frame only
    /// requires a pointer update").
    pub async fn commit_txdone(&self, host: &HostRegs) {
        let ctx = &self.ctx;
        ctx.set_func(self.send_dispatch_tag());
        let m = &self.m;
        if self.mode.locking() && !ctx.try_lock(m.lock_send_txdone_commit).await {
            return;
        }
        let commit0 = ctx.load(m.send_txdone_commit).await;
        ctx.alu(1).await;
        let mut commit = commit0;
        loop {
            let run = commit_scan(ctx, self.mode, m.send_txdone_bits, commit).await;
            if run == 0 {
                ctx.branch_miss().await;
                break;
            }
            ctx.branch().await;
            ctx.alu(6 * run).await; // per-frame completion bookkeeping
            commit = commit.wrapping_add(run);
        }
        if commit != commit0 {
            ctx.store(m.send_txdone_commit, commit).await;
            ctx.alu(2).await;
            // Host notification: completed BD count, as an immediate DMA.
            // Pinned to engine 0: the status word is a monotonic counter
            // overwrite, and cross-engine reordering could publish a
            // stale (smaller) value last.
            self.dmawr_push(
                0,
                &[(
                    [
                        commit.wrapping_mul(2),
                        host.status_send_cons,
                        4 | FLAG_IMM,
                        0,
                    ],
                    info::pack(info::NOP, 0),
                )],
            )
            .await;
            ctx.set_func(self.send_dispatch_tag());
        }
        ctx.alu(1).await;
        sync_unlock(ctx, self.mode, m.lock_send_txdone_commit).await;
    }

    // ------------------------------------------------------------------
    // Receive path
    // ------------------------------------------------------------------

    /// Fetch Receive BD, issue side: DMA up to 16 receive BDs.
    pub async fn fetch_recv_bds(&self, host: &HostRegs) -> bool {
        let ctx = &self.ctx;
        ctx.set_func(FwFunc::FetchRecvBd);
        let m = &self.m;
        sync_lock(ctx, self.mode, m.lock_rb_fetch).await;
        let prod = ctx.load(m.rb_mailbox_prod).await;
        let fetched = ctx.load(m.rb_fetched).await;
        let cons = ctx.load(m.rbd_cons).await;
        ctx.alu(5).await;
        let avail = prod.wrapping_sub(fetched);
        let cache_free = (BD_CACHE - BD_POOL_SLACK).saturating_sub(fetched.wrapping_sub(cons));
        let ring_space = BD_CACHE - fetched % BD_CACHE;
        let batch = avail.min(RECV_BD_BATCH).min(cache_free).min(ring_space);
        if batch == 0 {
            ctx.branch_miss().await;
            sync_unlock(ctx, self.mode, m.lock_rb_fetch).await;
            return false;
        }
        ctx.branch().await;
        ctx.alu(6).await;
        let idx = fetched % BD_CACHE;
        let cmd = [
            host.rx_bd_ring + idx * 16,
            m.rbd_raw + idx * 16,
            (batch * 16) | FLAG_SP,
            0,
        ];
        self.dmard_push(
            self.stripe(fetched),
            &[(
                cmd,
                info::pack(info::RX_BD_BATCH, info::pack_batch(fetched, batch)),
            )],
        )
        .await;
        ctx.set_func(FwFunc::FetchRecvBd);
        ctx.store(m.rb_fetched, fetched.wrapping_add(batch)).await;
        sync_unlock(ctx, self.mode, m.lock_rb_fetch).await;
        true
    }

    /// Fetch Receive BD, arrival side: parse raw BDs into the buffer
    /// pool, in BD-index order (see `parse_send_bds`).
    async fn parse_recv_bds(&self, start18: u32, count: u32) {
        let ctx = &self.ctx;
        ctx.set_func(FwFunc::FetchRecvBd);
        let m = &self.m;
        sync_lock(ctx, self.mode, m.lock_rbd_parse).await;
        let mut parsed = ctx.load(m.rbd_parsed).await;
        while parsed & 0x3ffff != start18 {
            sync_unlock(ctx, self.mode, m.lock_rbd_parse).await;
            ctx.alu(3).await;
            ctx.branch_miss().await;
            sync_lock(ctx, self.mode, m.lock_rbd_parse).await;
            parsed = ctx.load(m.rbd_parsed).await;
        }
        ctx.alu(2).await;
        for k in 0..count {
            let i = (parsed.wrapping_add(k)) % BD_CACHE;
            let addr = ctx.load(m.rbd_raw + i * 16).await;
            let len = ctx.load(m.rbd_raw + i * 16 + 4).await;
            let _flags = ctx.load(m.rbd_raw + i * 16 + 8).await;
            ctx.alu(CAL_PARSE_RBD).await;
            ctx.branch().await;
            ctx.branch_miss().await; // pool-class selection
            ctx.store(m.rbd_pool + i * 8, addr).await;
            ctx.store(m.rbd_pool + i * 8 + 4, len).await;
            ctx.store(m.rbd_raw + i * 16 + 8, 0).await; // consume-mark
        }
        ctx.store(m.rbd_parsed, parsed.wrapping_add(count)).await;
        sync_unlock(ctx, self.mode, m.lock_rbd_parse).await;
    }

    /// Receive Frame, start side: claim arrived frames, pair each with a
    /// preallocated host buffer, and DMA the contents to the host
    /// (Fig. 2 step 2).
    pub async fn recv_frames(&self) -> bool {
        let ctx = &self.ctx;
        ctx.set_func(FwFunc::RecvFrame);
        let m = &self.m;
        sync_lock(ctx, self.mode, m.lock_rxclaim).await;
        let prod = ctx.load(m.macrx_prod).await;
        let claim = ctx.load(m.recv_claim).await;
        let rparsed = ctx.load(m.rbd_parsed).await;
        let rcons = ctx.load(m.rbd_cons).await;
        let commit = ctx.load(m.recv_commit).await;
        ctx.alu(6).await;
        let avail = prod.wrapping_sub(claim);
        let bufs = rparsed.wrapping_sub(rcons);
        let free_slots = SLOTS - claim.wrapping_sub(commit);
        let batch = avail.min(bufs).min(free_slots).min(FRAME_BATCH);
        if batch == 0 {
            ctx.branch_miss().await;
            sync_unlock(ctx, self.mode, m.lock_rxclaim).await;
            return false;
        }
        ctx.branch().await;
        ctx.store(m.recv_claim, claim.wrapping_add(batch)).await;
        ctx.store(m.rbd_cons, rcons.wrapping_add(batch)).await;
        sync_unlock(ctx, self.mode, m.lock_rxclaim).await;
        for f in 0..batch {
            let seq = claim.wrapping_add(f);
            let sidx = seq % SLOTS;
            let e = m.macrx_ring + (seq % MACRX_RING) * 16;
            let addr = ctx.load(e).await;
            let len = ctx.load(e + 4).await;
            let status = ctx.load(e + 8).await;
            let _csum = ctx.load(e + 12).await;
            let pi = rcons.wrapping_add(f) % BD_CACHE;
            let hbuf = ctx.load(m.rbd_pool + pi * 8).await;
            let _blen = ctx.load(m.rbd_pool + pi * 8 + 4).await;
            ctx.alu(CAL_RECV_PREP).await; // length checks, slot setup
            ctx.branch().await;
            ctx.branch_miss().await; // status/error dispatch
            ctx.branch_miss().await; // buffer-size class
            if self.fault_aware && status != 1 {
                // CRC-error descriptor: the MAC dropped the payload, so
                // there is nothing to DMA. Consume the BD and the slot
                // anyway — ordering stays intact — flag the return
                // descriptor so the driver recycles the buffer, and mark
                // the frame done immediately (no completion will come).
                ctx.alu(8).await; // error statistics, flag packing
                let st = ctx.load(m.stat(2)).await;
                ctx.store(m.stat(2), st.wrapping_add(1)).await;
                let slot = m.recv_slot(seq);
                ctx.store(slot, addr).await;
                ctx.store(slot + 4, len).await;
                ctx.store(slot + 8, hbuf).await;
                ctx.store(slot + 12, seq).await;
                ctx.store(slot + 16, 0).await;
                ctx.store(slot + 20, 1).await; // error flag
                ctx.store(slot + 28, 2).await; // state: settled, no DMA
                mark_bit(
                    ctx,
                    self.mode,
                    m.recv_done_bits,
                    sidx,
                    m.lock_recv_commit,
                    self.recv_dispatch_tag(),
                )
                .await;
                ctx.set_func(FwFunc::RecvFrame);
                continue;
            }
            let _ = status;
            let st = ctx.load(m.stat(2)).await; // rx frames started
            ctx.store(m.stat(2), st.wrapping_add(1)).await;
            let fence = ctx.load(m.recv_commit).await; // slot-reuse fence
            let _ = fence;
            ctx.branch_miss().await; // reuse-fence branch
            let slot = m.recv_slot(seq);
            ctx.store(slot, addr).await;
            ctx.store(slot + 4, len).await;
            ctx.store(slot + 8, hbuf).await;
            ctx.store(slot + 12, seq).await;
            ctx.store(slot + 16, 0).await; // checksum verdict
            ctx.store(slot + 20, 0).await; // vlan/option flags
            ctx.store(slot + 28, 1).await; // state: DMA in flight
            let bytes = ctx.load(m.stat(5)).await; // rx byte counter
            ctx.store(m.stat(5), bytes.wrapping_add(len)).await;
            self.dmawr_push(
                self.stripe(seq),
                &[([addr, hbuf, len, 0], info::pack(info::RECV_PAYLOAD, sidx))],
            )
            .await;
            ctx.set_func(FwFunc::RecvFrame);
        }
        true
    }

    /// Receive completion side: claim engine `eng`'s DMA-write
    /// completions, mark frames whose payload reached the host, and
    /// commit the in-order prefix.
    pub async fn process_dmawr_completions(&self, eng: usize, host: &HostRegs) -> bool {
        let ctx = &self.ctx;
        ctx.set_func(self.recv_dispatch_tag());
        let m = &self.m;
        let d = *m.dmawr(eng);
        let (start, n) = claim_range(
            ctx,
            self.mode,
            d.lock_claim,
            d.done,
            d.claim,
            CLAIM_BATCH,
            m.event_area(ctx.core_id()),
        )
        .await;
        if n == 0 {
            return false;
        }
        let mut any = false;
        for k in 0..n {
            let idx = start.wrapping_add(k);
            ctx.set_func(self.recv_dispatch_tag());
            let inf = ctx.load(d.info + (idx % DMA_RING) * 4).await;
            if self.mode.locking() {
                ctx.set_func(FwFunc::RecvFrame);
                let ev = ctx.load(m.event_area(ctx.core_id()) + 8).await; // event range
                let evs = ctx.load(m.event_area(ctx.core_id()) + 4).await; // range start
                let _ = (ev, evs);
                ctx.alu(17).await; // event bookkeeping, retry checks
                ctx.branch_miss().await; // retry-path decision
            } else {
                ctx.alu(5).await;
            }
            ctx.branch().await;
            ctx.branch_miss().await; // handler-type dispatch
            let (kind, arg) = info::unpack(inf);
            if kind == info::RECV_PAYLOAD {
                ctx.set_func(FwFunc::RecvFrame);
                let slot = m.recv_slots + arg * 32;
                let st = ctx.load(slot + 28).await;
                let _csum = ctx.load(slot + 16).await;
                ctx.alu(12).await; // statistics, state transition
                ctx.store(slot + 28, st | 2).await;
                mark_bit(
                    ctx,
                    self.mode,
                    m.recv_done_bits,
                    arg,
                    m.lock_recv_commit,
                    self.recv_dispatch_tag(),
                )
                .await;
                any = true;
            } else {
                ctx.alu(1).await;
            }
        }
        if any {
            self.commit_recv(host).await;
        }
        true
    }

    /// Receive ordering: advance the receive commit pointer over
    /// consecutive completed frames, stage their return descriptors, DMA
    /// them to the host return ring in order, retire receive-buffer
    /// space, and update the return producer (Fig. 2 steps 3–4).
    pub async fn commit_recv(&self, host: &HostRegs) {
        let ctx = &self.ctx;
        ctx.set_func(self.recv_dispatch_tag());
        let m = &self.m;
        if self.mode.locking() && !ctx.try_lock(m.lock_recv_commit).await {
            return;
        }
        let commit0 = ctx.load(m.recv_commit).await;
        let tail0 = ctx.load(m.rxbuf_tail).await;
        ctx.alu(2).await;
        let mut commit = commit0;
        let mut tail = tail0;
        loop {
            let run = commit_scan(ctx, self.mode, m.recv_done_bits, commit).await;
            if run == 0 {
                ctx.branch_miss().await;
                break;
            }
            ctx.branch().await;
            for k in 0..run {
                // Producing the return descriptor is Receive Frame work
                // (Fig. 2 step 3).
                ctx.set_func(FwFunc::RecvFrame);
                let seq = commit.wrapping_add(k);
                let slot = m.recv_slot(seq);
                let hbuf = ctx.load(slot + 8).await;
                let len = ctx.load(slot + 4).await;
                let _sdram = ctx.load(slot).await;
                let fseq = ctx.load(slot + 12).await;
                ctx.store(slot + 28, 0).await; // state: free
                ctx.alu(CAL_RECV_COMMIT).await; // descriptor fields + allocator mirror
                ctx.alu(8).await; // in-order bookkeeping
                ctx.branch().await;
                ctx.branch_miss().await; // buffer-retire wrap check
                let st = m.staging + (seq % STAGING) * 16;
                ctx.store(st, hbuf).await;
                ctx.store(st + 4, len).await;
                ctx.store(st + 8, fseq).await;
                ctx.store(st + 12, 0).await; // flags / vlan
                let flags = ctx.load(slot + 20).await;
                if self.fault_aware && flags != 0 {
                    // Error frame: patch the staged return descriptor so
                    // the driver sees the flag and recycles the buffer.
                    ctx.alu(1).await;
                    ctx.store(st + 12, flags).await;
                }
                let sw = ctx.load(m.stat(3)).await; // rx frames returned
                ctx.store(m.stat(3), sw.wrapping_add(1)).await;
                ctx.set_func(self.recv_dispatch_tag());
                if self.fault_aware && flags != 0 {
                    // No buffer was allocated for a CRC-dropped frame —
                    // the MAC never advanced its head, so the tail must
                    // not move either.
                    ctx.branch().await;
                } else {
                    // Mirror the MAC RX allocator to retire buffer bytes.
                    let off = tail % RXBUF_BYTES;
                    if off + 2 + len > RXBUF_BYTES {
                        tail = tail.wrapping_add(RXBUF_BYTES - off);
                        ctx.alu(1).await;
                    }
                    tail = tail.wrapping_add((2 + len + 7) & !7);
                }
            }
            // DMA the staged return descriptors (split at ring wrap).
            let mut first = commit;
            let mut remaining = run;
            while remaining > 0 {
                let i = first % STAGING;
                let cnt = remaining.min(STAGING - i);
                ctx.alu(4).await;
                // Pinned to engine 0 together with the return-producer
                // update below: the driver reads descriptors up to the
                // producer, so descriptor data must land strictly before
                // the producer does — a single engine's FIFO gives that.
                self.dmawr_push(
                    0,
                    &[(
                        [
                            m.staging + i * 16,
                            host.return_ring + i * 16,
                            (cnt * 16) | FLAG_SP,
                            0,
                        ],
                        info::pack(info::NOP, 0),
                    )],
                )
                .await;
                ctx.set_func(self.recv_dispatch_tag());
                first = first.wrapping_add(cnt);
                remaining -= cnt;
            }
            commit = commit.wrapping_add(run);
        }
        if commit != commit0 {
            ctx.store(m.recv_commit, commit).await;
            ctx.store(m.rxbuf_tail, tail).await;
            ctx.alu(2).await;
            self.dmawr_push(
                0,
                &[(
                    [commit, host.status_ret_prod, 4 | FLAG_IMM, 0],
                    info::pack(info::NOP, 0),
                )],
            )
            .await;
            ctx.set_func(self.recv_dispatch_tag());
        }
        ctx.alu(1).await;
        sync_unlock(ctx, self.mode, m.lock_recv_commit).await;
    }

    // ------------------------------------------------------------------
    // Shared completion stream
    // ------------------------------------------------------------------

    /// Claim engine `eng`'s DMA-read completions and dispatch each by
    /// its info kind (send BD batches, send frame fragments, receive BD
    /// batches).
    pub async fn process_dmard_completions(&self, eng: usize) -> bool {
        let ctx = &self.ctx;
        ctx.set_func(self.send_dispatch_tag());
        let m = &self.m;
        let d = *m.dmard(eng);
        let (start, n) = claim_range(
            ctx,
            self.mode,
            d.lock_claim,
            d.done,
            d.claim,
            CLAIM_BATCH,
            m.event_area(ctx.core_id()),
        )
        .await;
        if n == 0 {
            return false;
        }
        for k in 0..n {
            let idx = start.wrapping_add(k);
            ctx.set_func(self.send_dispatch_tag());
            let inf = ctx.load(d.info + (idx % DMA_RING) * 4).await;
            if self.mode.locking() {
                // Completion bookkeeping is frame processing, not
                // ordering (Table 5 charges only claims/scans/pointers
                // to "Dispatch and Ordering").
                ctx.set_func(FwFunc::SendFrame);
                let ev = ctx.load(m.event_area(ctx.core_id()) + 8).await; // event range
                let evs = ctx.load(m.event_area(ctx.core_id()) + 4).await; // range start
                let _ = (ev, evs);
                ctx.alu(17).await; // event bookkeeping, retry checks
                ctx.branch_miss().await; // retry-path decision
            } else {
                ctx.alu(5).await;
            }
            ctx.branch().await;
            ctx.branch_miss().await; // handler-type dispatch
            let (kind, arg) = info::unpack(inf);
            match kind {
                info::SEND_BD_BATCH => {
                    let (start, count) = info::unpack_batch(arg);
                    self.parse_send_bds(start, count).await;
                }
                info::SEND_FRAME_LAST => self.send_frame_ready(arg).await,
                info::RX_BD_BATCH => {
                    let (start, count) = info::unpack_batch(arg);
                    self.parse_recv_bds(start, count).await;
                }
                _ => ctx.alu(1).await,
            }
        }
        true
    }
}
