//! Firmware modes and the mode-dependent synchronization primitives.
//!
//! The paper compares two frame-ordering implementations (Tables 5, 6,
//! Figure 8): a lock-based "software-only" scheme, and the proposed
//! `set`/`update` atomic read-modify-write instructions. An "ideal" mode
//! with all parallelization overhead removed provides the Table 1
//! baseline.

use crate::map::MemMap;
use nicsim_cpu::CoreCtx;

/// Which firmware build is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FwMode {
    /// Single-core, no synchronization: the idealized firmware of
    /// Table 1 ("does not include any implementation specific overheads
    /// such as parallelization overheads").
    Ideal,
    /// Frame-level parallel with lock-based status flags (the baseline of
    /// Tables 5/6).
    SoftwareOnly,
    /// Frame-level parallel using the paper's `set` and `update` atomic
    /// RMW instructions.
    RmwEnhanced,
}

impl FwMode {
    /// Whether locks are real in this mode.
    pub fn locking(self) -> bool {
        !matches!(self, FwMode::Ideal)
    }
}

/// How the dispatch loop discovers new work (the polling-vs-interrupt
/// ablation axis). Either way the same sources are scanned in the same
/// rotating order and the same handlers run, so delivered frames and
/// descriptors are identical; only the cost of *waiting* differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Figure 5 as published: an idle pass ends in a short spin and the
    /// loop re-polls every source's progress pointer.
    #[default]
    Polling,
    /// An idle pass ends in `wfi`: the core parks until a doorbell
    /// write (hardware progress pointer, status-bit array, mailbox, or
    /// the stop flag) raises its wake line, then re-scans.
    Interrupt,
}

/// Acquire `lock` unless the mode elides synchronization.
pub async fn sync_lock(ctx: &CoreCtx, mode: FwMode, lock: u32) {
    if mode.locking() {
        ctx.lock(lock).await;
    }
}

/// Release `lock` unless the mode elides synchronization.
pub async fn sync_unlock(ctx: &CoreCtx, mode: FwMode, lock: u32) {
    if mode.locking() {
        ctx.unlock(lock).await;
    }
}

/// Mark status bit `idx` in the array at `bits`, charging the work to
/// the ordering bucket `tag`.
///
/// * RMW mode: a single `set` instruction.
/// * Software mode: acquire the array's guard lock, compute the mask,
///   read-modify-write the word, release — the looping synchronized
///   accesses Table 5 charges to dispatch and ordering.
/// * Ideal mode: unsynchronized read-modify-write.
pub async fn mark_bit(
    ctx: &CoreCtx,
    mode: FwMode,
    bits: u32,
    idx: u32,
    guard: u32,
    tag: nicsim_cpu::FwFunc,
) {
    let prev = ctx.set_func(tag);
    match mode {
        FwMode::RmwEnhanced => ctx.set_bit(bits, idx % crate::map::SLOTS).await,
        FwMode::SoftwareOnly | FwMode::Ideal => {
            let i = idx % crate::map::SLOTS;
            let addr = bits + (i / 32) * 4;
            if mode == FwMode::SoftwareOnly {
                ctx.lock(guard).await;
            }
            ctx.alu(3).await; // word index + mask generation
            let w = ctx.load(addr).await;
            ctx.alu(2).await; // OR + writeback setup
            ctx.store(addr, w | (1 << (i % 32))).await;
            if mode == FwMode::SoftwareOnly {
                // §3.3: the software scheme must "synchronize, check for
                // consecutive set flags, clear the flags, update pointers
                // as necessary, and then finally release synchronization"
                // on every status update — the looping accesses the RMW
                // instructions eliminate. Scan ahead for a consecutive
                // run and maintain the scan position under the lock.
                let w2 = ctx.load(addr).await;
                let mut bit = i % 32;
                let mut scanned = 0;
                while bit < 32 && w2 & (1 << bit) != 0 && scanned < 16 {
                    ctx.alu(1).await;
                    ctx.branch().await;
                    bit += 1;
                    scanned += 1;
                }
                ctx.alu(4).await; // pointer arithmetic
                ctx.branch_miss().await; // run-terminated exit
                let p = ctx.load(guard.wrapping_add(0)).await; // re-check commit ptr
                let _ = p;
                ctx.alu(3).await;
                ctx.unlock(guard).await;
            }
        }
    }
    ctx.set_func(prev);
}

/// Scan the status array at `bits` for the run of consecutive set bits
/// starting at `idx`, clear them, and return the run length. Examines at
/// most one aligned 32-bit word (both modes), so callers loop while the
/// run is nonzero — exactly how `update` is specified in §4.
///
/// The caller must hold the array's commit lock in software mode (the
/// commit pass is single-threaded by construction).
pub async fn commit_scan(ctx: &CoreCtx, mode: FwMode, bits: u32, idx: u32) -> u32 {
    let i = idx % crate::map::SLOTS;
    match mode {
        FwMode::RmwEnhanced => ctx.update(bits, i).await,
        FwMode::SoftwareOnly | FwMode::Ideal => {
            let addr = bits + (i / 32) * 4;
            let w = ctx.load(addr).await;
            let start = i % 32;
            let mut run = 0;
            // The software loop tests one flag per iteration.
            let mut bit = start;
            loop {
                ctx.alu(1).await;
                if bit < 32 && w & (1 << bit) != 0 {
                    ctx.branch().await;
                    run += 1;
                    bit += 1;
                } else {
                    ctx.branch_miss().await;
                    break;
                }
            }
            if run > 0 {
                let mask = if run == 32 {
                    u32::MAX
                } else {
                    ((1u32 << run) - 1) << start
                };
                ctx.alu(2).await;
                ctx.store(addr, w & !mask).await;
            }
            run
        }
    }
}

/// Claim up to `batch` work units from the gap between a progress counter
/// at `avail_addr` and a claim counter at `claim_addr`, under `lock`,
/// then build the event data structure describing the claimed bundle in
/// the core's event scratch at `ev_addr`.
///
/// This is the event-structure construction of Figure 5: the claimed
/// range `[start, start+n)` is the bundle of work units the handler
/// processes, and the event record (type, range, source pointer,
/// retry count) is what a software-raised or retried event would carry.
pub async fn claim_range(
    ctx: &CoreCtx,
    mode: FwMode,
    lock: u32,
    avail_addr: u32,
    claim_addr: u32,
    batch: u32,
    ev_addr: u32,
) -> (u32, u32) {
    sync_lock(ctx, mode, lock).await;
    let avail = ctx.load(avail_addr).await;
    let claim = ctx.load(claim_addr).await;
    ctx.alu(2).await;
    let n = avail.wrapping_sub(claim).min(batch);
    if n == 0 {
        ctx.branch_miss().await;
        sync_unlock(ctx, mode, lock).await;
        return (claim, 0);
    }
    ctx.branch().await;
    ctx.store(claim_addr, claim.wrapping_add(n)).await;
    sync_unlock(ctx, mode, lock).await;
    if mode.locking() {
        // Build the event structure for the claimed bundle — pure
        // parallelization machinery, absent from the idealized firmware.
        ctx.alu(5).await;
        ctx.store(ev_addr, avail_addr).await; // event source
        ctx.store(ev_addr + 4, claim).await; // range start
        ctx.store(ev_addr + 8, n).await; // range length
        ctx.store(ev_addr + 12, 0).await; // retry count
    }
    (claim, n)
}

/// Peek whether the status bit at the commit pointer is set — i.e.
/// whether an in-order commit can make progress. Used by the dispatch
/// loop to guarantee that a frame marked complete is eventually
/// committed even if no further completions arrive.
pub async fn peek_bit_pending(ctx: &CoreCtx, bits: u32, commit_addr: u32) -> bool {
    let commit = ctx.load(commit_addr).await;
    let i = commit % crate::map::SLOTS;
    ctx.alu(3).await;
    let w = ctx.load(bits + (i / 32) * 4).await;
    let pending = w & (1 << (i % 32)) != 0;
    if pending {
        ctx.branch().await;
    } else {
        ctx.branch_miss().await;
    }
    pending
}

/// Peek whether a work source has anything pending (two loads, no lock).
pub async fn peek_work(ctx: &CoreCtx, avail_addr: u32, claim_addr: u32) -> bool {
    let avail = ctx.load(avail_addr).await;
    let claim = ctx.load(claim_addr).await;
    ctx.alu(1).await;
    let has = avail != claim;
    if has {
        ctx.branch().await;
    } else {
        ctx.branch_miss().await;
    }
    has
}

/// Context shared by all handlers: the core handle, the memory map, and
/// the mode.
#[derive(Clone)]
pub struct Fw {
    /// The core this instance runs on.
    pub ctx: CoreCtx,
    /// Scratchpad memory map.
    pub m: MemMap,
    /// Synchronization mode.
    pub mode: FwMode,
    /// How the dispatch loop waits for work.
    pub dispatch: DispatchMode,
    /// Whether the error-recovery branches are live (set only when a
    /// fault plan is configured). With this false, the handlers charge
    /// exactly the same instruction sequence as a build without the
    /// fault plane, keeping fault-free runs bit-identical.
    pub fault_aware: bool,
    /// Per-core instruction-fault site: when armed, each dispatched
    /// handler may abort before running (the handler's state is rolled
    /// back by simply not running it — work stays claimed-pending) and
    /// the core pays an abort+restart penalty. `None` keeps the dispatch
    /// loop's instruction stream identical to a fault-free build.
    pub fw_faults: Option<std::rc::Rc<std::cell::RefCell<nicsim_fault::FwFaults>>>,
}

impl Fw {
    /// Draw the per-core instruction-fault site, if armed. Draw-free
    /// when unarmed or when the fire probability is zero.
    pub fn fw_fault_fires(&self) -> bool {
        self.fw_faults
            .as_ref()
            .is_some_and(|f| f.borrow_mut().fires())
    }
}

impl std::fmt::Debug for Fw {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fw").field("mode", &self.mode).finish()
    }
}
