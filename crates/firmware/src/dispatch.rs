//! The dispatch loop every core runs (Figure 5).
//!
//! The loop walks the work sources in rotating order (offset by core id
//! to spread lock pressure), peeks each source's hardware progress
//! pointer against its claim pointer, and runs the matching handler when
//! work exists. Peeking quiet sources is charged to the idle bucket; the
//! dispatch cost proper — claiming a work bundle, constructing the event
//! structure, ordering and committing frames — is charged inside the
//! handlers to the direction's "Dispatch and Ordering" bucket.

use crate::handlers::HostRegs;
use crate::mode::{peek_bit_pending, peek_work, DispatchMode, Fw};
use nicsim_cpu::{CoreCtx, FwFunc};

/// The work sources the dispatch loop polls for the default topology:
/// the seven hardware progress pointers plus the three pending-commit
/// checks that guarantee a frame marked complete is committed even when
/// no further completions arrive. Extra DMA engines append two sources
/// each (their read and write done counters) after these, so the
/// default scan order is unchanged.
const N_SOURCES: usize = 10;

impl Fw {
    /// How many sources this topology's dispatch loop scans.
    pub fn n_sources(&self) -> usize {
        N_SOURCES + 2 * (self.m.n_dma as usize - 1)
    }

    /// An instruction fault fired as the handler was about to run: abort
    /// before any handler state changes (the claimed work simply stays
    /// pending and the next scan retries it) and charge the core-restart
    /// penalty — pipeline flush, fault vector, state re-load. Counts as
    /// work done so an interrupt-mode core re-scans instead of parking.
    async fn fw_fault_abort(&self) -> bool {
        let ctx = &self.ctx;
        ctx.branch_miss().await; // vectored into the fault handler
        ctx.alu(64).await; // save/restore + restart sequence
        true
    }

    async fn run_source(&self, src: usize, host: &HostRegs) -> bool {
        let ctx = &self.ctx;
        let m = &self.m;
        // Polling a quiet source is idle time; the dispatch cost proper
        // (claim, event construction, ordering) is charged inside the
        // handlers.
        ctx.set_func(FwFunc::Idle);
        match src {
            0 => {
                if peek_work(ctx, m.sb_mailbox_prod, m.sb_fetched).await {
                    if self.fw_fault_fires() {
                        return self.fw_fault_abort().await;
                    }
                    self.fetch_send_bds(host).await
                } else {
                    false
                }
            }
            1 => {
                if peek_work(ctx, m.dmard_done, m.dmard_claim).await {
                    if self.fw_fault_fires() {
                        return self.fw_fault_abort().await;
                    }
                    self.process_dmard_completions(0).await
                } else {
                    false
                }
            }
            2 => {
                if peek_work(ctx, m.sbd_parsed, m.sbd_cons).await {
                    if self.fw_fault_fires() {
                        return self.fw_fault_abort().await;
                    }
                    self.send_frames().await
                } else {
                    false
                }
            }
            3 => {
                if peek_work(ctx, m.mactx_done, m.send_txdone_claim).await {
                    if self.fw_fault_fires() {
                        return self.fw_fault_abort().await;
                    }
                    self.process_mactx_done(host).await
                } else {
                    false
                }
            }
            4 => {
                if peek_work(ctx, m.rb_mailbox_prod, m.rb_fetched).await {
                    if self.fw_fault_fires() {
                        return self.fw_fault_abort().await;
                    }
                    self.fetch_recv_bds(host).await
                } else {
                    false
                }
            }
            5 => {
                if peek_work(ctx, m.macrx_prod, m.recv_claim).await {
                    if self.fw_fault_fires() {
                        return self.fw_fault_abort().await;
                    }
                    self.recv_frames().await
                } else {
                    false
                }
            }
            6 => {
                if peek_work(ctx, m.dmawr_done, m.dmawr_claim).await {
                    if self.fw_fault_fires() {
                        return self.fw_fault_abort().await;
                    }
                    self.process_dmawr_completions(0, host).await
                } else {
                    false
                }
            }
            7 => {
                if peek_bit_pending(ctx, m.send_ready_bits, m.send_ready_commit).await {
                    if self.fw_fault_fires() {
                        return self.fw_fault_abort().await;
                    }
                    self.commit_send_ready().await;
                    true
                } else {
                    false
                }
            }
            8 => {
                if peek_bit_pending(ctx, m.send_txdone_bits, m.send_txdone_commit).await {
                    if self.fw_fault_fires() {
                        return self.fw_fault_abort().await;
                    }
                    self.commit_txdone(host).await;
                    true
                } else {
                    false
                }
            }
            9 => {
                if peek_bit_pending(ctx, m.recv_done_bits, m.recv_commit).await {
                    if self.fw_fault_fires() {
                        return self.fw_fault_abort().await;
                    }
                    self.commit_recv(host).await;
                    true
                } else {
                    false
                }
            }
            _ => {
                // Extra-engine completion sources, two per engine:
                // even offsets are the read side, odd the write side.
                let eng = 1 + (src - N_SOURCES) / 2;
                debug_assert!(eng < self.m.n_dma as usize, "source index out of range");
                if (src - N_SOURCES).is_multiple_of(2) {
                    let d = *m.dmard(eng);
                    if peek_work(ctx, d.done, d.claim).await {
                        if self.fw_fault_fires() {
                            return self.fw_fault_abort().await;
                        }
                        self.process_dmard_completions(eng).await
                    } else {
                        false
                    }
                } else {
                    let d = *m.dmawr(eng);
                    if peek_work(ctx, d.done, d.claim).await {
                        if self.fw_fault_fires() {
                            return self.fw_fault_abort().await;
                        }
                        self.process_dmawr_completions(eng, host).await
                    } else {
                        false
                    }
                }
            }
        }
    }
}

/// The firmware entry point: run the dispatch loop on `ctx` until the
/// system sets the stop flag.
pub async fn dispatch_loop(ctx: CoreCtx, fw: Fw, host: HostRegs) {
    let n_sources = fw.n_sources();
    let mut rot = ctx.core_id() % n_sources;
    loop {
        ctx.set_func(FwFunc::Idle);
        let stop = ctx.load(fw.m.stop_flag).await;
        ctx.alu(1).await;
        if stop != 0 {
            ctx.branch_miss().await;
            return;
        }
        ctx.branch().await;
        let mut did_work = false;
        for s in 0..n_sources {
            let src = (rot + s) % n_sources;
            if fw.run_source(src, &host).await {
                did_work = true;
            }
        }
        rot = (rot + 1) % n_sources;
        if !did_work {
            ctx.set_func(FwFunc::Idle);
            match fw.dispatch {
                DispatchMode::Polling => {
                    // Nothing anywhere: a short idle spin before
                    // re-polling.
                    ctx.alu(4).await;
                    ctx.branch_miss().await;
                }
                DispatchMode::Interrupt => {
                    // Nothing anywhere: park until a doorbell write
                    // raises the wake line. The scan above is the only
                    // consumer-side check needed — any write that could
                    // make a future peek succeed lands on a watched
                    // word, and the wake line is sticky, so a doorbell
                    // racing this wfi is never lost.
                    ctx.wfi().await;
                }
            }
        }
    }
}
