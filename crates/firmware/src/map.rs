//! The scratchpad memory map: the control-data structures shared by
//! firmware and hardware assists.
//!
//! Everything here is frame *metadata* — descriptors, rings, progress
//! counters, status bits, locks. The total footprint is well under the
//! paper's observation that "the frame metadata ... [fits] entirely in
//! 100 KB" (§2.3), and all of it lives in the 256 KB scratchpad.

/// Number of in-flight frame slots per direction (also the size of each
/// status bit array, in bits).
pub const SLOTS: u32 = 256;
/// Most DMA engine pairs a topology may instantiate.
pub const MAX_DMA_ENGINES: usize = 4;
/// Most MACs a topology may instantiate.
pub const MAX_MACS: usize = 2;
/// Entries in each DMA command ring. Sized above the structural bound
/// on outstanding commands (frame slots x fragments + BD batches) so the
/// producers' full-ring spin is a backstop, never the steady state.
pub const DMA_RING: u32 = 1024;
/// Entries in the MAC TX ring.
pub const MACTX_RING: u32 = 512;
/// Entries in the MAC RX descriptor ring.
pub const MACRX_RING: u32 = 512;
/// Capacity of the raw and parsed buffer-descriptor caches, in BDs.
pub const BD_CACHE: u32 = 1024;
/// Entries in the return-descriptor staging ring.
pub const STAGING: u32 = 1024;
/// Send BDs fetched per DMA ("Fetch Send BD ... 32 descriptors").
pub const SEND_BD_BATCH: u32 = 32;
/// Receive BDs fetched per DMA ("Fetch Receive BD ... 16 descriptors").
pub const RECV_BD_BATCH: u32 = 16;
/// Bytes reserved per frame in the transmit region of the frame memory.
pub const TX_SLOT_BYTES: u32 = 1600;
/// Base of the transmit region in the frame memory.
pub const TXBUF_BASE: u32 = 0;
/// Base of the receive region in the frame memory.
pub const RXBUF_BASE: u32 = 0x40_0000;
/// Size of the receive region (circular).
pub const RXBUF_BYTES: u32 = 0x20_0000;

/// Command-info kinds recorded by firmware alongside each DMA command.
pub mod info {
    /// No completion action.
    pub const NOP: u32 = 0;
    /// A batch of send BDs arrived; argument = BD count.
    pub const SEND_BD_BATCH: u32 = 1;
    /// The last fragment of a send frame arrived; argument = slot index.
    pub const SEND_FRAME_LAST: u32 = 2;
    /// A batch of receive BDs arrived; argument = BD count.
    pub const RX_BD_BATCH: u32 = 3;
    /// A received frame's payload reached the host; argument = slot index.
    pub const RECV_PAYLOAD: u32 = 4;

    /// Pack a kind and argument into an info word.
    pub fn pack(kind: u32, arg: u32) -> u32 {
        (kind << 24) | (arg & 0x00ff_ffff)
    }

    /// Unpack an info word.
    pub fn unpack(word: u32) -> (u32, u32) {
        (word >> 24, word & 0x00ff_ffff)
    }

    /// Pack a BD-batch info argument: the batch's starting BD index
    /// (truncated to 18 bits, ample for ordering comparisons) and its
    /// length. Batches must be parsed in index order even though their
    /// completions may be claimed by different cores concurrently.
    pub fn pack_batch(start: u32, count: u32) -> u32 {
        debug_assert!(count < 64);
        ((start & 0x3ffff) << 6) | count
    }

    /// Unpack a BD-batch argument into `(start18, count)`.
    pub fn unpack_batch(arg: u32) -> (u32, u32) {
        ((arg >> 6) & 0x3ffff, arg & 0x3f)
    }
}

/// Register and ring addresses of one DMA command interface (one
/// direction of one engine). Engine 0's interface aliases the legacy
/// scalar `MemMap` fields; extra engines get fresh allocations past the
/// default map's end, so the default topology's map is byte-identical
/// to the pre-sysdef layout.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DmaIf {
    /// Producer lock (guards ring claim + doorbell).
    pub lock: u32,
    /// Completion-claim lock.
    pub lock_claim: u32,
    /// Command producer (doorbell, firmware-written).
    pub prod: u32,
    /// Done counter (hardware-written).
    pub done: u32,
    /// Completions claimed by firmware.
    pub claim: u32,
    /// Command ring (`DMA_RING` x 4 words).
    pub ring: u32,
    /// Firmware info words parallel to the ring.
    pub info: u32,
}

/// Register and ring addresses of one MAC (TX + RX side). MAC 0
/// aliases the legacy scalar fields.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MacIf {
    /// MAC TX ring (`MACTX_RING` x 4 words).
    pub tx_ring: u32,
    /// MAC TX ring producer.
    pub tx_prod: u32,
    /// MAC TX done counter (hardware-written).
    pub tx_done: u32,
    /// MAC RX descriptor ring (`MACRX_RING` x 4 words).
    pub rx_ring: u32,
    /// MAC RX descriptor producer (hardware-written).
    pub rx_prod: u32,
}

/// All scratchpad addresses (bytes, word-aligned). Built by a linear
/// allocator so regions can never overlap.
#[derive(Debug, Clone, Copy)]
pub struct MemMap {
    // ---- locks ----
    /// Guards the send-mailbox fetch state.
    pub lock_sb_fetch: u32,
    /// Guards the receive-mailbox fetch state.
    pub lock_rb_fetch: u32,
    /// Guards the DMA-read command ring producer.
    pub lock_dmard: u32,
    /// Guards the DMA-write command ring producer.
    pub lock_dmawr: u32,
    /// Guards send-BD consumption and send-slot allocation.
    pub lock_sbd: u32,
    /// Guards send-BD parsing (raw cache -> parsed pool).
    pub lock_sbd_parse: u32,
    /// Guards receive-BD parsing.
    pub lock_rbd_parse: u32,
    /// Guards the receive claim (arrived frames -> slots).
    pub lock_rxclaim: u32,
    /// Guards the DMA-read completion claim.
    pub lock_dmard_claim: u32,
    /// Guards the DMA-write completion claim.
    pub lock_dmawr_claim: u32,
    /// Guards the MAC-TX completion claim.
    pub lock_mactx_claim: u32,
    /// Send ready-commit lock (also protects `send_ready_bits` in
    /// software-only mode).
    pub lock_send_ready_commit: u32,
    /// Send txdone-commit lock.
    pub lock_send_txdone_commit: u32,
    /// Receive commit lock.
    pub lock_recv_commit: u32,

    // ---- counters (all monotonic u32) ----
    /// Send mailbox: BDs posted by the driver (register mirror).
    pub sb_mailbox_prod: u32,
    /// Send BDs whose fetch DMA has been issued.
    pub sb_fetched: u32,
    /// Send BDs parsed into the pool.
    pub sbd_parsed: u32,
    /// Send BDs consumed (always in pairs).
    pub sbd_cons: u32,
    /// Send frames committed to the MAC TX ring.
    pub send_ready_commit: u32,
    /// MAC TX completions claimed.
    pub send_txdone_claim: u32,
    /// Send frames fully completed (in order).
    pub send_txdone_commit: u32,
    /// Receive mailbox: BDs posted by the driver (register mirror).
    pub rb_mailbox_prod: u32,
    /// Receive BDs whose fetch DMA has been issued.
    pub rb_fetched: u32,
    /// Receive BDs parsed into the pool.
    pub rbd_parsed: u32,
    /// Receive BDs consumed.
    pub rbd_cons: u32,
    /// Arrived frames claimed into slots (MAC RX reads this for ring
    /// space).
    pub recv_claim: u32,
    /// Received frames returned to the host (in order).
    pub recv_commit: u32,
    /// DMA-read completions claimed.
    pub dmard_claim: u32,
    /// DMA-write completions claimed.
    pub dmawr_claim: u32,
    /// Set by the system to stop the dispatch loops.
    pub stop_flag: u32,
    /// Receive-buffer bytes retired (MAC RX reads this as the free tail).
    pub rxbuf_tail: u32,

    // ---- hardware ring pointers ----
    /// DMA-read command producer (doorbell).
    pub dmard_prod: u32,
    /// DMA-read done counter (hardware-written).
    pub dmard_done: u32,
    /// DMA-write command producer.
    pub dmawr_prod: u32,
    /// DMA-write done counter.
    pub dmawr_done: u32,
    /// MAC TX ring producer.
    pub mactx_prod: u32,
    /// MAC TX done counter.
    pub mactx_done: u32,
    /// MAC RX descriptor producer (hardware-written).
    pub macrx_prod: u32,

    // ---- regions ----
    /// DMA-read command ring (`DMA_RING` x 4 words).
    pub dmard_ring: u32,
    /// Firmware info words parallel to the DMA-read ring.
    pub dmard_info: u32,
    /// DMA-write command ring.
    pub dmawr_ring: u32,
    /// Firmware info words parallel to the DMA-write ring.
    pub dmawr_info: u32,
    /// MAC TX ring (`MACTX_RING` x 4 words: addr, len, flags, seq).
    pub mactx_ring: u32,
    /// MAC RX descriptor ring (`MACRX_RING` x 4 words: addr, len,
    /// status, checksum info).
    pub macrx_ring: u32,
    /// Raw send BDs as DMA'd from the host (`BD_CACHE` x 4 words).
    pub sbd_raw: u32,
    /// Raw receive BDs.
    pub rbd_raw: u32,
    /// Parsed send BDs (`BD_CACHE` x 4 words: host addr, len|flags,
    /// seq, checksum info).
    pub sbd_pool: u32,
    /// Parsed receive buffers (`BD_CACHE` x 2 words: host addr, len).
    pub rbd_pool: u32,
    /// Send frame slots (`SLOTS` x 8 words).
    pub send_slots: u32,
    /// Receive frame slots (`SLOTS` x 8 words).
    pub recv_slots: u32,
    /// Send ready status bits (`SLOTS` bits).
    pub send_ready_bits: u32,
    /// Send txdone status bits.
    pub send_txdone_bits: u32,
    /// Receive done status bits.
    pub recv_done_bits: u32,
    /// Return-descriptor staging ring (`STAGING` x 4 words).
    pub staging: u32,
    /// Firmware statistics counters (16 words).
    pub stats: u32,
    /// Per-core event-structure scratch (16 cores x 8 words) — the event
    /// data structures of Figure 5 are built here before processing.
    pub event_scratch: u32,

    // ---- topology (system-definition layer) ----
    /// Instantiated DMA engine pairs (1..=`MAX_DMA_ENGINES`).
    pub n_dma: u32,
    /// Instantiated MACs (1..=`MAX_MACS`).
    pub n_macs: u32,
    /// Per-engine DMA-read interfaces (`0..n_dma` populated; entry 0
    /// aliases the legacy scalar fields).
    pub dmard_if: [DmaIf; MAX_DMA_ENGINES],
    /// Per-engine DMA-write interfaces.
    pub dmawr_if: [DmaIf; MAX_DMA_ENGINES],
    /// Per-MAC interfaces (`0..n_macs` populated; entry 0 aliases the
    /// legacy scalar fields).
    pub mac_if: [MacIf; MAX_MACS],

    /// Total bytes used.
    pub end: u32,
}

impl MemMap {
    /// Build the default (one DMA engine pair, one MAC) map.
    pub fn new() -> MemMap {
        MemMap::for_topology(1, 1)
    }

    /// Build the map for a topology with `dma_engines` DMA engine pairs
    /// and `macs` MACs, with a linear allocator starting at address 0.
    ///
    /// Unit 0 of each kind occupies the legacy layout; extra units are
    /// appended after it, so `for_topology(1, 1)` is byte-identical to
    /// the pre-sysdef map.
    ///
    /// # Panics
    ///
    /// If `dma_engines` or `macs` is zero or above its `MAX_*` bound
    /// (validated earlier by `NicConfig::validate`).
    pub fn for_topology(dma_engines: usize, macs: usize) -> MemMap {
        assert!((1..=MAX_DMA_ENGINES).contains(&dma_engines));
        assert!((1..=MAX_MACS).contains(&macs));
        let mut cur = 0u32;
        let mut word = || {
            let a = cur;
            cur += 4;
            a
        };
        let lock_sb_fetch = word();
        let lock_rb_fetch = word();
        let lock_dmard = word();
        let lock_dmawr = word();
        let lock_sbd = word();
        let lock_sbd_parse = word();
        let lock_rbd_parse = word();
        let lock_rxclaim = word();
        let lock_dmard_claim = word();
        let lock_dmawr_claim = word();
        let lock_mactx_claim = word();
        let lock_send_ready_commit = word();
        let lock_send_txdone_commit = word();
        let lock_recv_commit = word();
        let sb_mailbox_prod = word();
        let sb_fetched = word();
        let sbd_parsed = word();
        let sbd_cons = word();
        let send_ready_commit = word();
        let send_txdone_claim = word();
        let send_txdone_commit = word();
        let rb_mailbox_prod = word();
        let rb_fetched = word();
        let rbd_parsed = word();
        let rbd_cons = word();
        let recv_claim = word();
        let recv_commit = word();
        let dmard_claim = word();
        let dmawr_claim = word();
        let stop_flag = word();
        let rxbuf_tail = word();
        let dmard_prod = word();
        let dmard_done = word();
        let dmawr_prod = word();
        let dmawr_done = word();
        let mactx_prod = word();
        let mactx_done = word();
        let macrx_prod = word();
        let mut region = |bytes: u32| {
            let a = cur;
            cur += bytes;
            a
        };
        let dmard_ring = region(DMA_RING * 16);
        let dmard_info = region(DMA_RING * 4);
        let dmawr_ring = region(DMA_RING * 16);
        let dmawr_info = region(DMA_RING * 4);
        let mactx_ring = region(MACTX_RING * 16);
        let macrx_ring = region(MACRX_RING * 16);
        let sbd_raw = region(BD_CACHE * 16);
        let rbd_raw = region(BD_CACHE * 16);
        let sbd_pool = region(BD_CACHE * 16);
        let rbd_pool = region(BD_CACHE * 8);
        let send_slots = region(SLOTS * 32);
        let recv_slots = region(SLOTS * 32);
        let send_ready_bits = region(SLOTS / 8);
        let send_txdone_bits = region(SLOTS / 8);
        let recv_done_bits = region(SLOTS / 8);
        let staging = region(STAGING * 16);
        let stats = region(16 * 4);
        let event_scratch = region(16 * 32);

        // Per-unit interface tables. Unit 0 aliases the legacy scalar
        // fields above; extra units allocate past the default map's end
        // so the default layout never moves.
        let mut dmard_if = [DmaIf::default(); MAX_DMA_ENGINES];
        let mut dmawr_if = [DmaIf::default(); MAX_DMA_ENGINES];
        dmard_if[0] = DmaIf {
            lock: lock_dmard,
            lock_claim: lock_dmard_claim,
            prod: dmard_prod,
            done: dmard_done,
            claim: dmard_claim,
            ring: dmard_ring,
            info: dmard_info,
        };
        dmawr_if[0] = DmaIf {
            lock: lock_dmawr,
            lock_claim: lock_dmawr_claim,
            prod: dmawr_prod,
            done: dmawr_done,
            claim: dmawr_claim,
            ring: dmawr_ring,
            info: dmawr_info,
        };
        for k in 1..dma_engines {
            for table in [&mut dmard_if, &mut dmawr_if] {
                table[k] = DmaIf {
                    lock: region(4),
                    lock_claim: region(4),
                    prod: region(4),
                    done: region(4),
                    claim: region(4),
                    ring: region(DMA_RING * 16),
                    info: region(DMA_RING * 4),
                };
            }
        }
        let mut mac_if = [MacIf::default(); MAX_MACS];
        mac_if[0] = MacIf {
            tx_ring: mactx_ring,
            tx_prod: mactx_prod,
            tx_done: mactx_done,
            rx_ring: macrx_ring,
            rx_prod: macrx_prod,
        };
        for m in mac_if.iter_mut().take(macs).skip(1) {
            *m = MacIf {
                tx_prod: region(4),
                tx_done: region(4),
                rx_prod: region(4),
                tx_ring: region(MACTX_RING * 16),
                rx_ring: region(MACRX_RING * 16),
            };
        }
        MemMap {
            lock_sb_fetch,
            lock_rb_fetch,
            lock_dmard,
            lock_dmawr,
            lock_sbd,
            lock_sbd_parse,
            lock_rbd_parse,
            lock_rxclaim,
            lock_dmard_claim,
            lock_dmawr_claim,
            lock_mactx_claim,
            lock_send_ready_commit,
            lock_send_txdone_commit,
            lock_recv_commit,
            sb_mailbox_prod,
            sb_fetched,
            sbd_parsed,
            sbd_cons,
            send_ready_commit,
            send_txdone_claim,
            send_txdone_commit,
            rb_mailbox_prod,
            rb_fetched,
            rbd_parsed,
            rbd_cons,
            recv_claim,
            recv_commit,
            dmard_claim,
            dmawr_claim,
            stop_flag,
            rxbuf_tail,
            dmard_prod,
            dmard_done,
            dmawr_prod,
            dmawr_done,
            mactx_prod,
            mactx_done,
            macrx_prod,
            dmard_ring,
            dmard_info,
            dmawr_ring,
            dmawr_info,
            mactx_ring,
            macrx_ring,
            sbd_raw,
            rbd_raw,
            sbd_pool,
            rbd_pool,
            send_slots,
            recv_slots,
            send_ready_bits,
            send_txdone_bits,
            recv_done_bits,
            staging,
            stats,
            event_scratch,
            n_dma: dma_engines as u32,
            n_macs: macs as u32,
            dmard_if,
            dmawr_if,
            mac_if,
            end: cur,
        }
    }

    /// DMA-read interface of engine `k`.
    pub fn dmard(&self, k: usize) -> &DmaIf {
        debug_assert!(k < self.n_dma as usize);
        &self.dmard_if[k]
    }

    /// DMA-write interface of engine `k`.
    pub fn dmawr(&self, k: usize) -> &DmaIf {
        debug_assert!(k < self.n_dma as usize);
        &self.dmawr_if[k]
    }

    /// Interface of MAC `j`.
    pub fn mac(&self, j: usize) -> &MacIf {
        debug_assert!(j < self.n_macs as usize);
        &self.mac_if[j]
    }

    /// Statistics word offsets within the stats block.
    pub fn stat(&self, idx: u32) -> u32 {
        debug_assert!(idx < 16);
        self.stats + idx * 4
    }

    /// Event-structure scratch area of one core.
    pub fn event_area(&self, core: usize) -> u32 {
        self.event_scratch + (core as u32 % 16) * 32
    }

    /// Address of send slot `seq % SLOTS`.
    pub fn send_slot(&self, seq: u32) -> u32 {
        self.send_slots + (seq % SLOTS) * 32
    }

    /// Address of receive slot `seq % SLOTS`.
    pub fn recv_slot(&self, seq: u32) -> u32 {
        self.recv_slots + (seq % SLOTS) * 32
    }
}

impl Default for MemMap {
    fn default() -> Self {
        MemMap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_the_scratchpad_and_metadata_budget() {
        let m = MemMap::new();
        assert!(m.end <= 256 * 1024, "must fit the 256 KB scratchpad");
        assert!(
            m.end <= 160 * 1024,
            "metadata should stay near the paper's ~100 KB working set \
             (our DMA rings are deliberately deep), got {}",
            m.end
        );
    }

    #[test]
    fn regions_are_orderly() {
        let m = MemMap::new();
        assert!(m.dmard_ring < m.dmard_info);
        assert!(m.event_scratch + 512 == m.end);
        assert_eq!(m.send_slot(0), m.send_slots);
        assert_eq!(m.send_slot(SLOTS), m.send_slots, "slots wrap");
        assert_eq!(m.recv_slot(3), m.recv_slots + 96);
    }

    #[test]
    fn unit_zero_interfaces_alias_legacy_fields() {
        let m = MemMap::new();
        assert_eq!(m.dmard(0).ring, m.dmard_ring);
        assert_eq!(m.dmard(0).prod, m.dmard_prod);
        assert_eq!(m.dmard(0).done, m.dmard_done);
        assert_eq!(m.dmard(0).claim, m.dmard_claim);
        assert_eq!(m.dmawr(0).lock, m.lock_dmawr);
        assert_eq!(m.dmawr(0).lock_claim, m.lock_dmawr_claim);
        assert_eq!(m.mac(0).tx_ring, m.mactx_ring);
        assert_eq!(m.mac(0).tx_done, m.mactx_done);
        assert_eq!(m.mac(0).rx_prod, m.macrx_prod);
    }

    #[test]
    fn extra_units_append_after_the_default_map() {
        let base = MemMap::new();
        let big = MemMap::for_topology(2, 2);
        // The legacy layout never moves.
        assert_eq!(big.event_scratch, base.event_scratch);
        assert_eq!(big.dmard_ring, base.dmard_ring);
        assert_eq!(big.dmard(0).ring, base.dmard(0).ring);
        // Extra units live past the default end, word-aligned.
        assert!(big.end > base.end);
        for addr in [
            big.dmard(1).lock,
            big.dmard(1).ring,
            big.dmawr(1).info,
            big.mac(1).tx_ring,
            big.mac(1).rx_prod,
        ] {
            assert!(addr >= base.end);
            assert_eq!(addr % 4, 0);
        }
        // The sweep range (2 engines, 2 MACs) fits the paper's 256 KB
        // scratchpad; the max topology needs a bigger one, which
        // `NicConfig::validate` enforces against `scratchpad_bytes`.
        assert!(big.end <= 256 * 1024, "got {}", big.end);
        let max = MemMap::for_topology(MAX_DMA_ENGINES, MAX_MACS);
        assert!(max.end > big.end);
    }

    #[test]
    fn info_words_roundtrip() {
        let w = info::pack(info::SEND_FRAME_LAST, 123);
        assert_eq!(info::unpack(w), (info::SEND_FRAME_LAST, 123));
    }

    #[test]
    fn all_words_are_aligned() {
        let m = MemMap::new();
        for a in [
            m.lock_sbd,
            m.sb_mailbox_prod,
            m.macrx_prod,
            m.staging,
            m.send_ready_bits,
        ] {
            assert_eq!(a % 4, 0);
        }
    }
}
