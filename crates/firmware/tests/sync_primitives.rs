//! Tests of the firmware's synchronization primitives running on real
//! simulated cores: `mark_bit` / `commit_scan` across the three modes,
//! `claim_range` under multi-core contention.

use nicsim_cpu::{CodeLayout, Core, CoreCtx, FwFunc};
use nicsim_firmware::mode::{claim_range, commit_scan, mark_bit, FwMode};
use nicsim_mem::{Crossbar, ICacheConfig, InstrMemory, Scratchpad};

struct Rig {
    cores: Vec<Core>,
    xbar: Crossbar,
    sp: Scratchpad,
    imem: InstrMemory,
}

impl Rig {
    fn new(n: usize) -> Rig {
        Rig {
            cores: (0..n)
                .map(|i| Core::new(i, ICacheConfig::default(), CodeLayout::new()))
                .collect(),
            xbar: Crossbar::new(n, 4),
            sp: Scratchpad::new(64 * 1024, 4),
            imem: InstrMemory::new(),
        }
    }

    fn ctx(&self, i: usize) -> CoreCtx {
        CoreCtx::new(self.cores[i].slot(), i)
    }

    fn run(&mut self, max: u64) {
        for _ in 0..max {
            if self.cores.iter().all(|c| c.halted()) {
                return;
            }
            self.xbar.tick(&mut self.sp);
            for c in &mut self.cores {
                c.tick(&mut self.xbar, &mut self.imem);
            }
        }
        panic!("firmware did not halt");
    }
}

const BITS: u32 = 0x100;
const COMMIT: u32 = 0x200;
const GUARD: u32 = 0x204;

fn mode_of(i: usize) -> FwMode {
    [FwMode::Ideal, FwMode::SoftwareOnly, FwMode::RmwEnhanced][i]
}

#[test]
fn mark_and_scan_agree_across_modes() {
    // All three modes must produce identical functional results for the
    // same completion pattern; only the cost differs.
    for mi in 0..3 {
        let mode = mode_of(mi);
        let mut rig = Rig::new(1);
        let ctx = rig.ctx(0);
        rig.cores[0].install(async move {
            ctx.set_func(FwFunc::SendDispatch);
            // Frames complete as 2,0,1,3 — commits must be in order.
            for f in [2u32, 0, 1, 3] {
                mark_bit(&ctx, mode, BITS, f, GUARD, FwFunc::SendDispatch).await;
            }
            let mut commit = 0;
            loop {
                let run = commit_scan(&ctx, mode, BITS, commit).await;
                if run == 0 {
                    break;
                }
                commit += run;
            }
            ctx.store(COMMIT, commit).await;
        });
        rig.run(10_000);
        assert_eq!(rig.sp.peek(COMMIT), 4, "{mode:?}: all four commit");
        assert_eq!(rig.sp.peek(BITS), 0, "{mode:?}: bits cleared");
        assert_eq!(rig.sp.peek(GUARD), 0, "{mode:?}: guard released");
    }
}

#[test]
fn rmw_mode_is_cheaper_than_software_for_ordering() {
    let cost = |mode: FwMode| {
        let mut rig = Rig::new(1);
        let ctx = rig.ctx(0);
        rig.cores[0].install(async move {
            ctx.set_func(FwFunc::SendDispatch);
            for f in 0..32u32 {
                mark_bit(&ctx, mode, BITS, f, GUARD, FwFunc::SendDispatch).await;
            }
            let mut commit = 0;
            loop {
                let run = commit_scan(&ctx, mode, BITS, commit).await;
                if run == 0 {
                    break;
                }
                commit += run;
            }
        });
        rig.run(100_000);
        let p = rig.cores[0].profile();
        p.total(|f| f.total_cycles())
    };
    let sw = cost(FwMode::SoftwareOnly);
    let rmw = cost(FwMode::RmwEnhanced);
    assert!(
        rmw * 2 < sw,
        "RMW ordering ({rmw} cycles) should be under half of software ({sw})"
    );
}

#[test]
fn claim_ranges_are_disjoint_and_complete_under_contention() {
    // Four cores claim from a 200-unit work source in batches of 3; the
    // union of claims must be exactly [0, 200) with no overlap.
    const AVAIL: u32 = 0x300;
    const CLAIM: u32 = 0x304;
    const LOCK: u32 = 0x308;
    const LOG: u32 = 0x1000; // 200 words: claim count per unit
    let mut rig = Rig::new(4);
    rig.sp.poke(AVAIL, 200);
    for i in 0..4 {
        let ctx = rig.ctx(i);
        rig.cores[i].install(async move {
            ctx.set_func(FwFunc::SendDispatch);
            loop {
                let (start, n) = claim_range(
                    &ctx,
                    FwMode::RmwEnhanced,
                    LOCK,
                    AVAIL,
                    CLAIM,
                    3,
                    0x400 + ctx.core_id() as u32 * 32,
                )
                .await;
                if n == 0 {
                    return;
                }
                for k in 0..n {
                    let a = LOG + (start + k) * 4;
                    let v = ctx.load(a).await;
                    ctx.store(a, v + 1).await;
                }
            }
        });
    }
    rig.run(200_000);
    for u in 0..200u32 {
        assert_eq!(
            rig.sp.peek(LOG + u * 4),
            1,
            "unit {u} claimed wrong number of times"
        );
    }
    assert_eq!(rig.sp.peek(CLAIM), 200);
}

#[test]
fn ideal_mode_charges_no_lock_cycles() {
    let mut rig = Rig::new(1);
    let ctx = rig.ctx(0);
    rig.cores[0].install(async move {
        ctx.set_func(FwFunc::SendFrame);
        for f in 0..8u32 {
            mark_bit(&ctx, FwMode::Ideal, BITS, f, GUARD, FwFunc::SendFrame).await;
        }
    });
    rig.run(10_000);
    let p = rig.cores[0].profile();
    assert_eq!(p.func(FwFunc::SendLock).instructions, 0);
    assert_eq!(p.func(FwFunc::RecvLock).instructions, 0);
}

#[test]
fn software_mark_charges_the_lock_bucket() {
    let mut rig = Rig::new(1);
    let ctx = rig.ctx(0);
    rig.cores[0].install(async move {
        ctx.set_func(FwFunc::RecvDispatch);
        mark_bit(
            &ctx,
            FwMode::SoftwareOnly,
            BITS,
            0,
            GUARD,
            FwFunc::RecvDispatch,
        )
        .await;
    });
    rig.run(10_000);
    let p = rig.cores[0].profile();
    assert!(
        p.func(FwFunc::RecvLock).instructions > 0,
        "lock acquire charged"
    );
    assert!(
        p.func(FwFunc::RecvDispatch).instructions > 0,
        "mark charged to ordering"
    );
}
