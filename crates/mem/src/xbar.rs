//! The 32-bit crossbar between requesters (cores + assists) and the
//! scratchpad banks.
//!
//! Paper §4: "The processors and each of the four hardware assists connect
//! to the scratchpads through a crossbar as in a dancehall architecture.
//! ... The crossbar is 32 bits wide and allows one transaction to each
//! scratchpad bank ... per cycle with round-robin arbitration for each
//! resource. Accessing any scratchpad bank requires a latency of 2 cycles:
//! one to request and traverse the crossbar and another to access the
//! memory and return requested data."
//!
//! Timing contract used throughout the simulator: a requester submits at
//! most one outstanding request; the request competes for its bank on each
//! subsequent [`Crossbar::tick`]; when granted on the tick of cycle *T*,
//! the response becomes consumable on cycle *T+1*. A load issued by a core
//! on cycle *T-1* therefore completes in 2 cycles when uncontended (one
//! mandatory "load stall" cycle), and every additional cycle spent waiting
//! for a grant is a *bank-conflict* stall — the two stall buckets reported
//! in Table 3.

use crate::scratchpad::{Scratchpad, SpRequest};
use nicsim_obs::{Event, NullProbe, Probe};
use nicsim_sim::{Ps, RoundRobin};

/// Identifies a crossbar port. Cores occupy ports `0..p`; the four assist
/// units (DMA read, DMA write, MAC TX, MAC RX) occupy the following ports.
pub type RequesterId = usize;

/// Per-port bookkeeping visible to the owner of the port.
#[derive(Debug, Clone, Copy, Default)]
pub struct PortStats {
    /// Transactions granted on this port.
    pub grants: u64,
    /// Cycles a pending request waited beyond its first arbitration
    /// opportunity (bank conflicts).
    pub conflict_cycles: u64,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    req: SpRequest,
}

#[derive(Debug, Clone, Copy)]
struct Response {
    value: u32,
    ready_at: u64,
}

/// All state owned by one requester port. Ports are disjoint: nothing a
/// requester does on its own port (submit, take_response, idle) touches
/// any other port or any crossbar-global state, which is what makes the
/// per-port [`PortHandle`] split sound for the domain-parallel kernel.
#[derive(Debug, Clone, Copy, Default)]
struct Port {
    pending: Option<Pending>,
    response: Option<Response>,
    stats: PortStats,
}

impl Port {
    fn submit(&mut self, id: RequesterId, req: SpRequest) {
        assert!(
            self.pending.is_none() && self.response.is_none(),
            "port {id} already has an outstanding transaction"
        );
        self.pending = Some(Pending { req });
    }

    fn take_response(&mut self, cycle: u64) -> Option<u32> {
        match self.response {
            Some(r) if r.ready_at <= cycle => {
                self.response = None;
                Some(r.value)
            }
            _ => None,
        }
    }

    fn idle(&self) -> bool {
        self.pending.is_none() && self.response.is_none()
    }
}

/// A requester-side view of one crossbar port: exactly the three
/// operations a port owner may perform. Implemented by the borrow-checked
/// sequential view ([`BoundPort`]) and by the thread-splittable raw view
/// ([`PortHandle`]), so cores and assists can tick against either kernel.
pub trait XbarPort {
    /// Submit a request on this port.
    ///
    /// # Panics
    ///
    /// Panics if the port already has an outstanding request or an
    /// unconsumed response — requesters are single-outstanding by
    /// construction.
    fn submit(&mut self, req: SpRequest);
    /// Take the response if it is consumable this cycle.
    fn take_response(&mut self) -> Option<u32>;
    /// Whether the port may submit (no pending request or unconsumed
    /// response).
    fn idle(&self) -> bool;
}

/// Sequential port view borrowing the whole crossbar; obtained from
/// [`Crossbar::port`].
pub struct BoundPort<'a> {
    xbar: &'a mut Crossbar,
    port: RequesterId,
}

impl XbarPort for BoundPort<'_> {
    fn submit(&mut self, req: SpRequest) {
        self.xbar.submit(self.port, req);
    }

    fn take_response(&mut self) -> Option<u32> {
        self.xbar.take_response(self.port)
    }

    fn idle(&self) -> bool {
        self.xbar.port_idle(self.port)
    }
}

/// Raw per-port view for the domain-parallel kernel: a pointer to one
/// [`Port`] plus a read-only pointer to the crossbar's cycle counter.
///
/// Safety contract (upheld by `nicsim-core`'s parallel kernel, see
/// [`Crossbar::port_handles`]): while any handle is in use, no `&mut
/// Crossbar` method runs, the cycle counter is not advanced, and each
/// port's handle is used by at most one thread. Distinct ports are
/// disjoint state, so concurrent use of *different* handles is sound.
pub struct PortHandle {
    id: RequesterId,
    port: *mut Port,
    cycle: *const u64,
}

// SAFETY: a PortHandle only dereferences its own port (disjoint from all
// other handles) and reads the cycle counter, which is frozen while
// handles are in use per the contract above.
unsafe impl Send for PortHandle {}

impl XbarPort for PortHandle {
    fn submit(&mut self, req: SpRequest) {
        // SAFETY: exclusive access to this port per the handle contract.
        unsafe { (*self.port).submit(self.id, req) }
    }

    fn take_response(&mut self) -> Option<u32> {
        // SAFETY: as above; the cycle counter is frozen during handle use.
        unsafe { (*self.port).take_response(*self.cycle) }
    }

    fn idle(&self) -> bool {
        // SAFETY: as above.
        unsafe { (*self.port).idle() }
    }
}

/// The crossbar and its per-bank arbiters.
///
/// The paper also routes processor access to the external memory interface
/// through the crossbar; the firmware never touches frame data, so that
/// path is not exercised and is omitted here (the assists access the frame
/// memory through their own bus — see [`crate::sdram`]).
pub struct Crossbar {
    ports: Vec<Port>,
    arbiters: Vec<RoundRobin>,
    cycle: u64,
    bank_busy_cycles: Vec<u64>,
}

impl Crossbar {
    /// Create a crossbar with `ports` requesters over the banks of `sp`.
    pub fn new(ports: usize, banks: usize) -> Crossbar {
        Crossbar {
            ports: vec![Port::default(); ports],
            arbiters: vec![RoundRobin::new(ports); banks],
            cycle: 0,
            bank_busy_cycles: vec![0; banks],
        }
    }

    /// Number of requester ports.
    pub fn ports(&self) -> usize {
        self.ports.len()
    }

    /// A borrow-checked [`XbarPort`] view of `port` for sequential use.
    pub fn port(&mut self, port: RequesterId) -> BoundPort<'_> {
        assert!(port < self.ports.len(), "no such port: {port}");
        BoundPort { xbar: self, port }
    }

    /// Split the crossbar into one raw [`PortHandle`] per port, for the
    /// domain-parallel kernel.
    ///
    /// # Safety
    ///
    /// For the handles' whole lifetime the crossbar must be neither
    /// moved, dropped, nor have its port set resized. Handle *use* and
    /// `&mut Crossbar` methods must be time-sliced, never concurrent:
    /// while any handle is being dereferenced (e.g. during the parallel
    /// kernel's split phase) no `&mut Crossbar` method may run — in
    /// particular no tick/skip, so the cycle counter stays put for the
    /// duration of the phase. Each individual handle is used by at most
    /// one thread at a time; distinct ports are disjoint state, so
    /// concurrent use of different handles is sound.
    pub unsafe fn port_handles(&mut self) -> Vec<PortHandle> {
        let cycle: *const u64 = &self.cycle;
        self.ports
            .iter_mut()
            .enumerate()
            .map(|(id, p)| PortHandle {
                id,
                port: p as *mut Port,
                cycle,
            })
            .collect()
    }

    /// Submit a request on `port`.
    ///
    /// # Panics
    ///
    /// Panics if the port already has an outstanding request or an
    /// unconsumed response — requesters are single-outstanding by
    /// construction.
    pub fn submit(&mut self, port: RequesterId, req: SpRequest) {
        self.ports[port].submit(port, req);
    }

    /// Whether any port has an outstanding transaction (pending request
    /// or unconsumed response). When false, a [`Crossbar::tick`] is a
    /// pure no-op apart from the cycle counter, so the event-driven
    /// kernel may [`Crossbar::skip_cycles`] instead.
    pub fn has_pending(&self) -> bool {
        self.ports.iter().any(|p| !p.idle())
    }

    /// Whether the next [`Crossbar::tick`] would do real work, i.e. some
    /// port has an ungranted request. A tick with no pending requests is
    /// a pure cycle increment: unconsumed responses are untouched, the
    /// round-robin pointers only move on grants, and no conflict cycles
    /// accrue — so the kernel may [`Crossbar::skip_cycles`] instead.
    pub fn needs_tick(&self) -> bool {
        self.ports.iter().any(|p| p.pending.is_some())
    }

    /// Advance the cycle counter by `n` without arbitrating — exactly
    /// equivalent to `n` calls to [`Crossbar::tick`] while no request is
    /// pending (no grants, no conflict accrual, and the round-robin
    /// pointers only move on grants). Outstanding *responses* are fine:
    /// they become consumable once `ready_at <= cycle` and ticks never
    /// touch them.
    ///
    /// # Panics
    ///
    /// Debug-asserts that no request is pending.
    pub fn skip_cycles(&mut self, n: u64) {
        debug_assert!(!self.needs_tick(), "cannot skip with requests pending");
        self.cycle += n;
    }

    /// Whether `port` has neither a pending request nor an unconsumed
    /// response (i.e. it may submit).
    pub fn port_idle(&self, port: RequesterId) -> bool {
        self.ports[port].idle()
    }

    /// Take the response for `port` if it is consumable this cycle.
    pub fn take_response(&mut self, port: RequesterId) -> Option<u32> {
        let cycle = self.cycle;
        self.ports[port].take_response(cycle)
    }

    /// Statistics for `port`.
    pub fn port_stats(&self, port: RequesterId) -> PortStats {
        self.ports[port].stats
    }

    /// Cycles each bank spent servicing a transaction.
    pub fn bank_busy_cycles(&self) -> &[u64] {
        &self.bank_busy_cycles
    }

    /// Total words moved through the crossbar (grants), for Table 4's
    /// scratchpad-bandwidth row: bytes = grants * 4.
    pub fn total_grants(&self) -> u64 {
        self.ports.iter().map(|p| p.stats.grants).sum()
    }

    /// Reset all counters (used to discard warm-up before measurement).
    pub fn reset_stats(&mut self) {
        for p in &mut self.ports {
            p.stats = PortStats::default();
        }
        for b in &mut self.bank_busy_cycles {
            *b = 0;
        }
    }

    /// Arbitrate one CPU cycle: grant at most one pending transaction per
    /// bank, execute it against `sp`, and make the response consumable on
    /// the next cycle. Ungranted-but-seen requests accumulate conflict
    /// cycles.
    pub fn tick(&mut self, sp: &mut Scratchpad) {
        self.tick_probed(sp, Ps::ZERO, &mut NullProbe);
    }

    /// [`Crossbar::tick`] with probe instrumentation: emits
    /// [`Event::SpGrant`] for every granted transaction and
    /// [`Event::SpConflict`] for every request that lost arbitration this
    /// cycle, stamped with `now`.
    pub fn tick_probed<P: Probe>(&mut self, sp: &mut Scratchpad, now: Ps, probe: &mut P) {
        self.cycle += 1;
        for bank in 0..self.arbiters.len() {
            let winner = {
                let ports = &self.ports;
                self.arbiters[bank].grant(|p| {
                    ports[p]
                        .pending
                        .as_ref()
                        .is_some_and(|q| sp.bank_of(q.req.addr) == bank)
                })
            };
            if let Some(p) = winner {
                let q = self.ports[p].pending.take().expect("winner has request");
                let value = sp.execute(q.req);
                if P::ENABLED {
                    probe.emit(Event::SpGrant {
                        port: p,
                        bank,
                        addr: q.req.addr,
                        write: q.req.op.is_write(),
                        at: now,
                    });
                }
                self.ports[p].response = Some(Response {
                    value,
                    ready_at: self.cycle + 1,
                });
                self.ports[p].stats.grants += 1;
                self.bank_busy_cycles[bank] += 1;
            }
        }
        // Every request still pending after this arbitration round lost a
        // cycle to a bank conflict (uncontended requests are granted on
        // their first round).
        for p in 0..self.ports.len() {
            if let Some(q) = self.ports[p].pending {
                self.ports[p].stats.conflict_cycles += 1;
                if P::ENABLED {
                    probe.emit(Event::SpConflict {
                        port: p,
                        bank: sp.bank_of(q.req.addr),
                        at: now,
                    });
                }
            }
        }
    }
}

impl std::fmt::Debug for Crossbar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Crossbar")
            .field("ports", &self.ports.len())
            .field("banks", &self.arbiters.len())
            .field("cycle", &self.cycle)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratchpad::SpOp;

    fn setup(ports: usize, banks: usize) -> (Crossbar, Scratchpad) {
        (Crossbar::new(ports, banks), Scratchpad::new(4096, banks))
    }

    #[test]
    fn two_cycle_uncontended_latency() {
        let (mut xb, mut sp) = setup(2, 4);
        sp.poke(8, 77);
        xb.submit(
            0,
            SpRequest {
                addr: 8,
                op: SpOp::Read,
            },
        );
        // Cycle 1: granted, executes; response not yet consumable.
        xb.tick(&mut sp);
        assert_eq!(xb.take_response(0), None);
        // Cycle 2: consumable.
        xb.tick(&mut sp);
        assert_eq!(xb.take_response(0), Some(77));
        assert_eq!(xb.port_stats(0).conflict_cycles, 0);
    }

    #[test]
    fn same_bank_conflict_serializes() {
        let (mut xb, mut sp) = setup(2, 4);
        // Both target bank 0 (addr 0 and 16 with 4 banks).
        xb.submit(
            0,
            SpRequest {
                addr: 0,
                op: SpOp::Write(1),
            },
        );
        xb.submit(
            1,
            SpRequest {
                addr: 16,
                op: SpOp::Write(2),
            },
        );
        xb.tick(&mut sp); // one granted
        xb.tick(&mut sp); // other granted
        xb.tick(&mut sp);
        let r0 = xb.take_response(0);
        let r1 = xb.take_response(1);
        assert!(r0.is_some() && r1.is_some());
        // Exactly one port saw one conflict cycle.
        let conflicts = xb.port_stats(0).conflict_cycles + xb.port_stats(1).conflict_cycles;
        assert_eq!(conflicts, 1);
        assert_eq!(sp.peek(0), 1);
        assert_eq!(sp.peek(16), 2);
    }

    #[test]
    fn different_banks_proceed_in_parallel() {
        let (mut xb, mut sp) = setup(2, 4);
        xb.submit(
            0,
            SpRequest {
                addr: 0,
                op: SpOp::Write(1),
            },
        );
        xb.submit(
            1,
            SpRequest {
                addr: 4,
                op: SpOp::Write(2),
            },
        );
        xb.tick(&mut sp);
        xb.tick(&mut sp);
        assert_eq!(xb.take_response(0), Some(1));
        assert_eq!(xb.take_response(1), Some(2));
        assert_eq!(xb.port_stats(0).conflict_cycles, 0);
        assert_eq!(xb.port_stats(1).conflict_cycles, 0);
    }

    #[test]
    fn round_robin_fairness_under_contention() {
        let (mut xb, mut sp) = setup(3, 1);
        let mut served = [0u32; 3];
        for _ in 0..30 {
            for p in 0..3 {
                if xb.port_idle(p) {
                    xb.submit(
                        p,
                        SpRequest {
                            addr: 0,
                            op: SpOp::Read,
                        },
                    );
                }
            }
            xb.tick(&mut sp);
            for (p, count) in served.iter_mut().enumerate() {
                if xb.take_response(p).is_some() {
                    *count += 1;
                }
            }
        }
        // One grant per cycle to a single bank, spread evenly.
        assert!(served.iter().all(|&c| (9..=11).contains(&c)), "{served:?}");
    }

    #[test]
    #[should_panic(expected = "outstanding")]
    fn double_submit_panics() {
        let (mut xb, _) = setup(1, 1);
        xb.submit(
            0,
            SpRequest {
                addr: 0,
                op: SpOp::Read,
            },
        );
        xb.submit(
            0,
            SpRequest {
                addr: 4,
                op: SpOp::Read,
            },
        );
    }

    #[test]
    fn atomic_tas_through_crossbar() {
        let (mut xb, mut sp) = setup(2, 1);
        xb.submit(
            0,
            SpRequest {
                addr: 0,
                op: SpOp::TestAndSet,
            },
        );
        xb.submit(
            1,
            SpRequest {
                addr: 0,
                op: SpOp::TestAndSet,
            },
        );
        for _ in 0..4 {
            xb.tick(&mut sp);
        }
        let a = xb.take_response(0).unwrap();
        let b = xb.take_response(1).unwrap();
        // Exactly one acquired (saw 0).
        assert!((a == 0) ^ (b == 0), "a={a:#x} b={b:#x}");
    }

    #[test]
    fn has_pending_tracks_transaction_lifetime() {
        let (mut xb, mut sp) = setup(2, 4);
        assert!(!xb.has_pending());
        xb.submit(
            0,
            SpRequest {
                addr: 8,
                op: SpOp::Read,
            },
        );
        assert!(xb.has_pending(), "pending request");
        xb.tick(&mut sp);
        assert!(xb.has_pending(), "response not yet consumable");
        xb.tick(&mut sp);
        assert!(xb.has_pending(), "response consumable but unconsumed");
        assert!(xb.take_response(0).is_some());
        assert!(!xb.has_pending(), "fully drained");
    }

    #[test]
    fn needs_tick_tracks_requests_not_responses() {
        let (mut xb, mut sp) = setup(2, 4);
        assert!(!xb.needs_tick());
        xb.submit(
            0,
            SpRequest {
                addr: 8,
                op: SpOp::Read,
            },
        );
        assert!(xb.needs_tick(), "ungranted request");
        xb.tick(&mut sp);
        assert!(
            !xb.needs_tick(),
            "granted: only a response remains, ticks are no-ops"
        );
        assert!(xb.has_pending(), "but the port is still busy");
        // Skipping while the response waits must leave it consumable.
        xb.skip_cycles(3);
        assert_eq!(xb.take_response(0), Some(0));
    }

    #[test]
    fn skip_cycles_matches_idle_ticks() {
        // Two crossbars: one skips 10 idle cycles, the other ticks
        // through them. Subsequent behavior must be identical.
        let (mut a, mut spa) = setup(2, 4);
        let (mut b, mut spb) = setup(2, 4);
        a.skip_cycles(10);
        for _ in 0..10 {
            b.tick(&mut spb);
        }
        for xb in [&mut a, &mut b] {
            xb.submit(
                0,
                SpRequest {
                    addr: 8,
                    op: SpOp::Write(3),
                },
            );
        }
        a.tick(&mut spa);
        b.tick(&mut spb);
        assert_eq!(a.take_response(0), b.take_response(0));
        a.tick(&mut spa);
        b.tick(&mut spb);
        assert_eq!(a.take_response(0), Some(3));
        assert_eq!(b.take_response(0), Some(3));
        assert_eq!(
            a.port_stats(0).conflict_cycles,
            b.port_stats(0).conflict_cycles
        );
    }

    #[test]
    fn bound_port_view_matches_direct_calls() {
        let (mut xb, mut sp) = setup(2, 4);
        sp.poke(8, 42);
        {
            let mut p = xb.port(0);
            assert!(p.idle());
            p.submit(SpRequest {
                addr: 8,
                op: SpOp::Read,
            });
            assert!(!p.idle());
        }
        xb.tick(&mut sp);
        xb.tick(&mut sp);
        assert_eq!(xb.port(0).take_response(), Some(42));
        assert!(xb.port_idle(0));
    }

    #[test]
    fn port_handles_split_ports_disjointly() {
        let (mut xb, mut sp) = setup(3, 4);
        sp.poke(0, 10);
        sp.poke(4, 20);
        // SAFETY: handles are used (sequentially here) strictly between
        // &mut Crossbar uses; the crossbar does not move.
        let mut handles = unsafe { xb.port_handles() };
        handles[0].submit(SpRequest {
            addr: 0,
            op: SpOp::Read,
        });
        handles[2].submit(SpRequest {
            addr: 4,
            op: SpOp::Read,
        });
        assert!(!handles[0].idle() && handles[1].idle() && !handles[2].idle());
        drop(handles);
        xb.tick(&mut sp);
        xb.tick(&mut sp);
        let mut handles = unsafe { xb.port_handles() };
        assert_eq!(handles[0].take_response(), Some(10));
        assert_eq!(handles[1].take_response(), None);
        assert_eq!(handles[2].take_response(), Some(20));
        drop(handles);
        assert!(!xb.has_pending());
    }

    #[test]
    fn probe_observes_grants_and_conflicts() {
        use crate::trace::{AccessKind, AccessTrace};
        // The Figure 3 coherence capture is just a probe sink; compose it
        // with a raw event log to also see the conflict retries.
        let (mut xb, mut sp) = setup(2, 1);
        let mut pair = (AccessTrace::new(), nicsim_obs::EventLog::new());
        xb.submit(
            0,
            SpRequest {
                addr: 12,
                op: SpOp::Write(5),
            },
        );
        xb.submit(
            1,
            SpRequest {
                addr: 8,
                op: SpOp::Read,
            },
        );
        // Both target the single bank: one grant and one retry on the
        // first cycle, the loser granted on the second.
        xb.tick_probed(&mut sp, Ps(7), &mut pair);
        xb.tick_probed(&mut sp, Ps(8), &mut pair);
        let (trace, log) = pair;
        assert_eq!(trace.len(), 2, "both grants recorded");
        assert_eq!(trace.records()[0].kind, AccessKind::Write);
        assert_eq!(trace.records()[0].addr, 12);
        let conflicts = log
            .events()
            .iter()
            .filter(|e| matches!(e, Event::SpConflict { .. }))
            .count();
        assert_eq!(conflicts, 1, "loser of cycle one retried");
    }
}
