//! Metadata access-trace capture for the coherence study (Figure 3).
//!
//! Paper §2.3: "separate data access traces were collected for each
//! processor core and hardware assist in a 6-core configuration ... These
//! traces were filtered to include only frame metadata and then analyzed
//! using SMPCache". [`AccessTrace`] is a [`Probe`] sink over
//! [`Event::SpGrant`] — attach it with the system builder's `probe` and every
//! granted scratchpad transaction is recorded; since only frame
//! *metadata* ever crosses the crossbar (frame contents live in the
//! frame memory), the filter is structural. [`Event::WindowReset`]
//! clears the trace, so a measured run captures exactly the
//! post-warm-up window.

use nicsim_obs::{Event, Probe};

/// Read or write, as seen by a coherence protocol (all atomic RMW
/// operations count as writes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store or atomic read-modify-write.
    Write,
}

/// One recorded scratchpad access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Crossbar port that performed the access (core or assist).
    pub requester: usize,
    /// Byte address.
    pub addr: u32,
    /// Read or write.
    pub kind: AccessKind,
}

/// An in-order list of scratchpad accesses.
#[derive(Debug, Clone, Default)]
pub struct AccessTrace {
    records: Vec<TraceRecord>,
    /// Stop recording beyond this many records (0 = unlimited) so long
    /// runs do not exhaust memory.
    pub limit: usize,
}

impl AccessTrace {
    /// Create an empty, unlimited trace.
    pub fn new() -> AccessTrace {
        AccessTrace::default()
    }

    /// Create a trace that stops recording after `limit` records.
    pub fn with_limit(limit: usize) -> AccessTrace {
        AccessTrace {
            records: Vec::new(),
            limit,
        }
    }

    /// Append a record (no-op once the limit is reached).
    pub fn record(&mut self, requester: usize, addr: u32, kind: AccessKind) {
        if self.limit == 0 || self.records.len() < self.limit {
            self.records.push(TraceRecord {
                requester,
                addr,
                kind,
            });
        }
    }

    /// The recorded accesses, in program order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Drop all records (keeps the limit).
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Remap requester ids, merging several physical requesters into one
    /// logical cache. The paper interleaves the DMA read/write traces into
    /// one and the MAC TX/RX traces into one because SMPCache models at
    /// most 8 caches; `merge_requesters` reproduces that preprocessing.
    pub fn merge_requesters(&self, map: impl Fn(usize) -> usize) -> AccessTrace {
        AccessTrace {
            records: self
                .records
                .iter()
                .map(|r| TraceRecord {
                    requester: map(r.requester),
                    ..*r
                })
                .collect(),
            limit: self.limit,
        }
    }
}

impl Probe for AccessTrace {
    fn emit(&mut self, ev: Event) {
        match ev {
            Event::SpGrant {
                port, addr, write, ..
            } => {
                let kind = if write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                self.record(port, addr, kind);
            }
            // Mirror the stats-window semantics the crossbar-embedded
            // capture had: warm-up accesses are discarded at the window
            // edge so Figure 3 sees only steady state.
            Event::WindowReset { .. } => self.clear(),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nicsim_sim::Ps;

    #[test]
    fn records_in_order() {
        let mut t = AccessTrace::new();
        t.record(0, 4, AccessKind::Read);
        t.record(1, 8, AccessKind::Write);
        assert_eq!(t.len(), 2);
        assert_eq!(t.records()[1].requester, 1);
    }

    #[test]
    fn limit_stops_recording() {
        let mut t = AccessTrace::with_limit(2);
        for i in 0..5 {
            t.record(i, 0, AccessKind::Read);
        }
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn merge_requesters_remaps() {
        let mut t = AccessTrace::new();
        t.record(6, 0, AccessKind::Read); // DMA read assist
        t.record(7, 4, AccessKind::Write); // DMA write assist
        let merged = t.merge_requesters(|r| if r >= 6 { 6 } else { r });
        assert!(merged.records().iter().all(|r| r.requester == 6));
    }

    #[test]
    fn probe_sink_records_grants_and_clears_on_window_reset() {
        let mut t = AccessTrace::new();
        t.emit(Event::SpGrant {
            port: 2,
            bank: 0,
            addr: 64,
            write: false,
            at: Ps(10),
        });
        t.emit(Event::SpGrant {
            port: 7,
            bank: 1,
            addr: 68,
            write: true,
            at: Ps(11),
        });
        assert_eq!(t.len(), 2);
        assert_eq!(t.records()[1].kind, AccessKind::Write);
        t.emit(Event::WindowReset { at: Ps(12) });
        assert!(t.is_empty(), "warm-up records discarded at window edge");
    }

    #[test]
    fn clear_keeps_limit() {
        let mut t = AccessTrace::with_limit(1);
        t.record(0, 0, AccessKind::Read);
        t.clear();
        assert!(t.is_empty());
        t.record(0, 0, AccessKind::Read);
        t.record(0, 0, AccessKind::Read);
        assert_eq!(t.len(), 1);
    }
}
