//! On-chip scratchpad memory: functional state and atomic operations.
//!
//! The scratchpad is a program-managed, globally visible on-chip memory
//! (256 KB in the paper, split into `S` independent banks). All firmware
//! control data lives here: buffer-descriptor caches, DMA/MAC command
//! rings, hardware progress pointers, status-bit arrays, and spinlocks.
//!
//! Besides plain 32-bit reads and writes, the scratchpad banks execute the
//! paper's two new atomic read-modify-write instructions (§4):
//!
//! * **`set`** — atomically set one bit of a bit array in memory.
//! * **`update`** — examine at most one aligned 32-bit word of the bit
//!   array, atomically clear the consecutive set bits starting at a given
//!   offset, and report how far the consecutive region extended.
//!
//! plus a conventional `test-and-set` used to build spinlocks (the
//! baseline "software-only" firmware synchronizes exclusively with these).

/// An atomic operation performed at a scratchpad bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpOp {
    /// Read the 32-bit word; response is its value.
    Read,
    /// Write the 32-bit word; response is the written value.
    Write(u32),
    /// Atomically read the word and write all-ones; response is the old
    /// value (0 means the lock was acquired).
    TestAndSet,
    /// Atomically set bit `(addr*32 + bit)` of a bit array; response is
    /// the previous value of the word. This is the paper's `set`.
    SetBit(u8),
    /// Atomically scan the word starting at `start_bit`, clear the run of
    /// consecutive set bits found there, and respond with the run length
    /// (0 if `start_bit` itself is clear). This is the paper's `update`,
    /// which "examines at most one aligned 32-bit word".
    Update {
        /// Bit offset within the word at which the scan begins.
        start_bit: u8,
    },
}

impl SpOp {
    /// Whether this operation modifies memory (for coherence tracing, all
    /// RMW ops count as writes).
    pub fn is_write(self) -> bool {
        !matches!(self, SpOp::Read)
    }
}

/// One scratchpad transaction: a word-aligned byte address plus operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpRequest {
    /// Byte address; must be 4-byte aligned.
    pub addr: u32,
    /// The operation to perform.
    pub op: SpOp,
}

/// The scratchpad memory array with bank geometry.
///
/// Words are interleaved across banks at word granularity, so consecutive
/// words hit different banks — the same policy that makes sequential
/// descriptor accesses spread load in the paper's design.
#[derive(Debug, Clone)]
pub struct Scratchpad {
    words: Vec<u32>,
    banks: usize,
}

impl Scratchpad {
    /// Create a scratchpad of `bytes` capacity split into `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not a multiple of 4 or `banks` is zero.
    pub fn new(bytes: usize, banks: usize) -> Scratchpad {
        assert!(bytes.is_multiple_of(4), "capacity must be whole words");
        assert!(banks > 0, "need at least one bank");
        Scratchpad {
            words: vec![0; bytes / 4],
            banks,
        }
    }

    /// Capacity in bytes.
    pub fn bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// The bank a byte address maps to (word-interleaved).
    pub fn bank_of(&self, addr: u32) -> usize {
        (addr as usize / 4) % self.banks
    }

    fn word_index(&self, addr: u32) -> usize {
        assert!(
            addr.is_multiple_of(4),
            "unaligned scratchpad access: {addr:#x}"
        );
        let idx = addr as usize / 4;
        assert!(
            idx < self.words.len(),
            "scratchpad address out of range: {addr:#x}"
        );
        idx
    }

    /// Debug/functional peek without timing (used by tests and by the
    /// host-side of hardware assists, which model register reads).
    pub fn peek(&self, addr: u32) -> u32 {
        self.words[self.word_index(addr)]
    }

    /// Debug/functional poke without timing.
    pub fn poke(&mut self, addr: u32, val: u32) {
        let i = self.word_index(addr);
        self.words[i] = val;
    }

    /// Execute one transaction atomically, returning its response value.
    ///
    /// # Panics
    ///
    /// Panics on unaligned or out-of-range addresses, or a bit offset
    /// of 32 or more.
    pub fn execute(&mut self, req: SpRequest) -> u32 {
        let i = self.word_index(req.addr);
        match req.op {
            SpOp::Read => self.words[i],
            SpOp::Write(v) => {
                self.words[i] = v;
                v
            }
            SpOp::TestAndSet => {
                let old = self.words[i];
                self.words[i] = u32::MAX;
                old
            }
            SpOp::SetBit(bit) => {
                assert!(bit < 32, "bit offset out of range");
                let old = self.words[i];
                self.words[i] = old | (1 << bit);
                old
            }
            SpOp::Update { start_bit } => {
                assert!(start_bit < 32, "bit offset out of range");
                let word = self.words[i];
                let mut run = 0u32;
                let mut bit = start_bit as u32;
                while bit < 32 && word & (1 << bit) != 0 {
                    run += 1;
                    bit += 1;
                }
                // Clear the run.
                if run > 0 {
                    let mask = if run == 32 {
                        u32::MAX
                    } else {
                        ((1u32 << run) - 1) << start_bit
                    };
                    self.words[i] = word & !mask;
                }
                run
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> Scratchpad {
        Scratchpad::new(1024, 4)
    }

    #[test]
    fn read_write_roundtrip() {
        let mut s = sp();
        assert_eq!(
            s.execute(SpRequest {
                addr: 8,
                op: SpOp::Write(0xdead_beef)
            }),
            0xdead_beef
        );
        assert_eq!(
            s.execute(SpRequest {
                addr: 8,
                op: SpOp::Read
            }),
            0xdead_beef
        );
        assert_eq!(
            s.execute(SpRequest {
                addr: 12,
                op: SpOp::Read
            }),
            0
        );
    }

    #[test]
    fn bank_interleaving_by_word() {
        let s = sp();
        assert_eq!(s.bank_of(0), 0);
        assert_eq!(s.bank_of(4), 1);
        assert_eq!(s.bank_of(8), 2);
        assert_eq!(s.bank_of(12), 3);
        assert_eq!(s.bank_of(16), 0);
    }

    #[test]
    fn test_and_set_acquires_once() {
        let mut s = sp();
        assert_eq!(
            s.execute(SpRequest {
                addr: 0,
                op: SpOp::TestAndSet
            }),
            0
        );
        assert_eq!(
            s.execute(SpRequest {
                addr: 0,
                op: SpOp::TestAndSet
            }),
            u32::MAX
        );
        s.poke(0, 0); // release
        assert_eq!(
            s.execute(SpRequest {
                addr: 0,
                op: SpOp::TestAndSet
            }),
            0
        );
    }

    #[test]
    fn set_bit_is_idempotent_or() {
        let mut s = sp();
        s.execute(SpRequest {
            addr: 16,
            op: SpOp::SetBit(3),
        });
        s.execute(SpRequest {
            addr: 16,
            op: SpOp::SetBit(5),
        });
        let old = s.execute(SpRequest {
            addr: 16,
            op: SpOp::SetBit(3),
        });
        assert_eq!(old, (1 << 3) | (1 << 5));
        assert_eq!(s.peek(16), (1 << 3) | (1 << 5));
    }

    #[test]
    fn update_clears_consecutive_run() {
        let mut s = sp();
        // bits 2,3,4 set; bit 5 clear; bit 6 set.
        s.poke(20, 0b101_1100);
        let run = s.execute(SpRequest {
            addr: 20,
            op: SpOp::Update { start_bit: 2 },
        });
        assert_eq!(run, 3);
        // Only the consecutive run starting at bit 2 was cleared.
        assert_eq!(s.peek(20), 0b100_0000);
    }

    #[test]
    fn update_on_clear_bit_returns_zero() {
        let mut s = sp();
        s.poke(24, 0b1000);
        let run = s.execute(SpRequest {
            addr: 24,
            op: SpOp::Update { start_bit: 0 },
        });
        assert_eq!(run, 0);
        assert_eq!(s.peek(24), 0b1000, "nothing cleared");
    }

    #[test]
    fn update_full_word() {
        let mut s = sp();
        s.poke(28, u32::MAX);
        let run = s.execute(SpRequest {
            addr: 28,
            op: SpOp::Update { start_bit: 0 },
        });
        assert_eq!(run, 32);
        assert_eq!(s.peek(28), 0);
    }

    #[test]
    fn update_run_to_word_end() {
        let mut s = sp();
        s.poke(32, 0xc000_0000); // bits 30,31
        let run = s.execute(SpRequest {
            addr: 32,
            op: SpOp::Update { start_bit: 30 },
        });
        assert_eq!(run, 2);
        assert_eq!(s.peek(32), 0);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_access_panics() {
        let mut s = sp();
        s.execute(SpRequest {
            addr: 2,
            op: SpOp::Read,
        });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_access_panics() {
        let mut s = sp();
        s.execute(SpRequest {
            addr: 4096,
            op: SpOp::Read,
        });
    }
}
