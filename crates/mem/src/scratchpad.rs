//! On-chip scratchpad memory: functional state and atomic operations.
//!
//! The scratchpad is a program-managed, globally visible on-chip memory
//! (256 KB in the paper, split into `S` independent banks). All firmware
//! control data lives here: buffer-descriptor caches, DMA/MAC command
//! rings, hardware progress pointers, status-bit arrays, and spinlocks.
//!
//! Besides plain 32-bit reads and writes, the scratchpad banks execute the
//! paper's two new atomic read-modify-write instructions (§4):
//!
//! * **`set`** — atomically set one bit of a bit array in memory.
//! * **`update`** — examine at most one aligned 32-bit word of the bit
//!   array, atomically clear the consecutive set bits starting at a given
//!   offset, and report how far the consecutive region extended.
//!
//! plus a conventional `test-and-set` used to build spinlocks (the
//! baseline "software-only" firmware synchronizes exclusively with these).

/// An atomic operation performed at a scratchpad bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpOp {
    /// Read the 32-bit word; response is its value.
    Read,
    /// Write the 32-bit word; response is the written value.
    Write(u32),
    /// Atomically read the word and write all-ones; response is the old
    /// value (0 means the lock was acquired).
    TestAndSet,
    /// Atomically set bit `(addr*32 + bit)` of a bit array; response is
    /// the previous value of the word. This is the paper's `set`.
    SetBit(u8),
    /// Atomically scan the word starting at `start_bit`, clear the run of
    /// consecutive set bits found there, and respond with the run length
    /// (0 if `start_bit` itself is clear). This is the paper's `update`,
    /// which "examines at most one aligned 32-bit word".
    Update {
        /// Bit offset within the word at which the scan begins.
        start_bit: u8,
    },
}

impl SpOp {
    /// Whether this operation modifies memory (for coherence tracing, all
    /// RMW ops count as writes).
    pub fn is_write(self) -> bool {
        !matches!(self, SpOp::Read)
    }
}

/// One scratchpad transaction: a word-aligned byte address plus operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpRequest {
    /// Byte address; must be 4-byte aligned.
    pub addr: u32,
    /// The operation to perform.
    pub op: SpOp,
}

/// Doorbell-watch state for the interrupt dispatch mode: a bitmap over
/// scratchpad words plus a sticky signal. Present only when at least one
/// range is watched, so polling-mode systems pay a single `None` branch
/// per write and nothing else.
#[derive(Debug, Clone)]
struct Watch {
    /// One bit per scratchpad word; set words signal on write.
    bitmap: Vec<u64>,
    /// A watched word was written since the last [`Scratchpad::take_signal`].
    signal: bool,
}

/// The scratchpad memory array with bank geometry.
///
/// Words are interleaved across banks at word granularity, so consecutive
/// words hit different banks — the same policy that makes sequential
/// descriptor accesses spread load in the paper's design.
#[derive(Debug, Clone)]
pub struct Scratchpad {
    words: Vec<u32>,
    banks: usize,
    watch: Option<Box<Watch>>,
}

impl Scratchpad {
    /// Create a scratchpad of `bytes` capacity split into `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not a multiple of 4 or `banks` is zero.
    pub fn new(bytes: usize, banks: usize) -> Scratchpad {
        assert!(bytes.is_multiple_of(4), "capacity must be whole words");
        assert!(banks > 0, "need at least one bank");
        Scratchpad {
            words: vec![0; bytes / 4],
            banks,
            watch: None,
        }
    }

    /// Watch the words covering `[addr, addr + bytes)` as doorbells: any
    /// write-class operation ([`SpOp::is_write`]) landing on a watched
    /// word — including functional [`Scratchpad::poke`]s from the host
    /// side — raises a sticky signal collected by
    /// [`Scratchpad::take_signal`].
    ///
    /// Used by the interrupt dispatch mode: producers do not issue any
    /// extra instruction to ring a doorbell; detection happens here, at
    /// the instant the write lands, so a wakeup can never be lost between
    /// a producer's store and a consumer going to sleep.
    pub fn watch_range(&mut self, addr: u32, bytes: u32) {
        assert!(bytes > 0, "empty watch range");
        let first = self.word_index(addr);
        let last = self.word_index((addr + bytes - 1) & !3);
        let watch = self.watch.get_or_insert_with(|| {
            Box::new(Watch {
                bitmap: vec![0; self.words.len().div_ceil(64)],
                signal: false,
            })
        });
        for w in first..=last {
            watch.bitmap[w / 64] |= 1 << (w % 64);
        }
    }

    /// Whether any doorbell range is being watched.
    pub fn watching(&self) -> bool {
        self.watch.is_some()
    }

    /// Return (and clear) the sticky doorbell signal: true if a watched
    /// word was written since the last call. Always false when no range
    /// is watched.
    pub fn take_signal(&mut self) -> bool {
        match &mut self.watch {
            Some(w) => std::mem::take(&mut w.signal),
            None => false,
        }
    }

    #[inline]
    fn note_write(&mut self, word: usize) {
        if let Some(w) = &mut self.watch {
            if w.bitmap[word / 64] & (1 << (word % 64)) != 0 {
                w.signal = true;
            }
        }
    }

    /// Capacity in bytes.
    pub fn bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// The bank a byte address maps to (word-interleaved).
    pub fn bank_of(&self, addr: u32) -> usize {
        (addr as usize / 4) % self.banks
    }

    fn word_index(&self, addr: u32) -> usize {
        assert!(
            addr.is_multiple_of(4),
            "unaligned scratchpad access: {addr:#x}"
        );
        let idx = addr as usize / 4;
        assert!(
            idx < self.words.len(),
            "scratchpad address out of range: {addr:#x}"
        );
        idx
    }

    /// Debug/functional peek without timing (used by tests and by the
    /// host-side of hardware assists, which model register reads).
    pub fn peek(&self, addr: u32) -> u32 {
        self.words[self.word_index(addr)]
    }

    /// Debug/functional poke without timing. Counts as a write for the
    /// doorbell watch (host-side mailbox pokes must wake sleeping cores).
    pub fn poke(&mut self, addr: u32, val: u32) {
        let i = self.word_index(addr);
        self.words[i] = val;
        self.note_write(i);
    }

    /// Execute one transaction atomically, returning its response value.
    ///
    /// # Panics
    ///
    /// Panics on unaligned or out-of-range addresses, or a bit offset
    /// of 32 or more.
    pub fn execute(&mut self, req: SpRequest) -> u32 {
        let i = self.word_index(req.addr);
        if req.op.is_write() {
            self.note_write(i);
        }
        match req.op {
            SpOp::Read => self.words[i],
            SpOp::Write(v) => {
                self.words[i] = v;
                v
            }
            SpOp::TestAndSet => {
                let old = self.words[i];
                self.words[i] = u32::MAX;
                old
            }
            SpOp::SetBit(bit) => {
                assert!(bit < 32, "bit offset out of range");
                let old = self.words[i];
                self.words[i] = old | (1 << bit);
                old
            }
            SpOp::Update { start_bit } => {
                assert!(start_bit < 32, "bit offset out of range");
                let word = self.words[i];
                let mut run = 0u32;
                let mut bit = start_bit as u32;
                while bit < 32 && word & (1 << bit) != 0 {
                    run += 1;
                    bit += 1;
                }
                // Clear the run.
                if run > 0 {
                    let mask = if run == 32 {
                        u32::MAX
                    } else {
                        ((1u32 << run) - 1) << start_bit
                    };
                    self.words[i] = word & !mask;
                }
                run
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> Scratchpad {
        Scratchpad::new(1024, 4)
    }

    #[test]
    fn read_write_roundtrip() {
        let mut s = sp();
        assert_eq!(
            s.execute(SpRequest {
                addr: 8,
                op: SpOp::Write(0xdead_beef)
            }),
            0xdead_beef
        );
        assert_eq!(
            s.execute(SpRequest {
                addr: 8,
                op: SpOp::Read
            }),
            0xdead_beef
        );
        assert_eq!(
            s.execute(SpRequest {
                addr: 12,
                op: SpOp::Read
            }),
            0
        );
    }

    #[test]
    fn bank_interleaving_by_word() {
        let s = sp();
        assert_eq!(s.bank_of(0), 0);
        assert_eq!(s.bank_of(4), 1);
        assert_eq!(s.bank_of(8), 2);
        assert_eq!(s.bank_of(12), 3);
        assert_eq!(s.bank_of(16), 0);
    }

    #[test]
    fn test_and_set_acquires_once() {
        let mut s = sp();
        assert_eq!(
            s.execute(SpRequest {
                addr: 0,
                op: SpOp::TestAndSet
            }),
            0
        );
        assert_eq!(
            s.execute(SpRequest {
                addr: 0,
                op: SpOp::TestAndSet
            }),
            u32::MAX
        );
        s.poke(0, 0); // release
        assert_eq!(
            s.execute(SpRequest {
                addr: 0,
                op: SpOp::TestAndSet
            }),
            0
        );
    }

    #[test]
    fn set_bit_is_idempotent_or() {
        let mut s = sp();
        s.execute(SpRequest {
            addr: 16,
            op: SpOp::SetBit(3),
        });
        s.execute(SpRequest {
            addr: 16,
            op: SpOp::SetBit(5),
        });
        let old = s.execute(SpRequest {
            addr: 16,
            op: SpOp::SetBit(3),
        });
        assert_eq!(old, (1 << 3) | (1 << 5));
        assert_eq!(s.peek(16), (1 << 3) | (1 << 5));
    }

    #[test]
    fn update_clears_consecutive_run() {
        let mut s = sp();
        // bits 2,3,4 set; bit 5 clear; bit 6 set.
        s.poke(20, 0b101_1100);
        let run = s.execute(SpRequest {
            addr: 20,
            op: SpOp::Update { start_bit: 2 },
        });
        assert_eq!(run, 3);
        // Only the consecutive run starting at bit 2 was cleared.
        assert_eq!(s.peek(20), 0b100_0000);
    }

    #[test]
    fn update_on_clear_bit_returns_zero() {
        let mut s = sp();
        s.poke(24, 0b1000);
        let run = s.execute(SpRequest {
            addr: 24,
            op: SpOp::Update { start_bit: 0 },
        });
        assert_eq!(run, 0);
        assert_eq!(s.peek(24), 0b1000, "nothing cleared");
    }

    #[test]
    fn update_full_word() {
        let mut s = sp();
        s.poke(28, u32::MAX);
        let run = s.execute(SpRequest {
            addr: 28,
            op: SpOp::Update { start_bit: 0 },
        });
        assert_eq!(run, 32);
        assert_eq!(s.peek(28), 0);
    }

    #[test]
    fn update_run_to_word_end() {
        let mut s = sp();
        s.poke(32, 0xc000_0000); // bits 30,31
        let run = s.execute(SpRequest {
            addr: 32,
            op: SpOp::Update { start_bit: 30 },
        });
        assert_eq!(run, 2);
        assert_eq!(s.peek(32), 0);
    }

    #[test]
    fn unwatched_scratchpad_never_signals() {
        let mut s = sp();
        assert!(!s.watching());
        s.poke(0, 7);
        s.execute(SpRequest {
            addr: 4,
            op: SpOp::Write(1),
        });
        assert!(!s.take_signal());
    }

    #[test]
    fn watch_signals_on_watched_writes_only() {
        let mut s = sp();
        s.watch_range(16, 8); // words 4 and 5
        assert!(s.watching());
        assert!(!s.take_signal(), "no signal before any write");

        // A write outside the range does not signal.
        s.execute(SpRequest {
            addr: 8,
            op: SpOp::Write(1),
        });
        assert!(!s.take_signal());

        // A read of a watched word does not signal.
        s.execute(SpRequest {
            addr: 16,
            op: SpOp::Read,
        });
        assert!(!s.take_signal());

        // A write to either watched word signals, and the signal is
        // sticky until taken, then cleared.
        s.execute(SpRequest {
            addr: 20,
            op: SpOp::Write(9),
        });
        assert!(s.take_signal());
        assert!(!s.take_signal(), "take clears");
    }

    #[test]
    fn watch_covers_rmw_ops_and_pokes() {
        let mut s = sp();
        s.watch_range(32, 4);
        for op in [
            SpOp::TestAndSet,
            SpOp::SetBit(2),
            SpOp::Update { start_bit: 2 },
            SpOp::Write(0),
        ] {
            s.execute(SpRequest { addr: 32, op });
            assert!(s.take_signal(), "{op:?} should ring the doorbell");
        }
        s.poke(32, 5);
        assert!(s.take_signal(), "host poke should ring the doorbell");
    }

    #[test]
    fn watch_range_spans_partial_words() {
        let mut s = sp();
        // 5 bytes starting at 40 covers words 10 and 11.
        s.watch_range(40, 5);
        s.execute(SpRequest {
            addr: 44,
            op: SpOp::Write(1),
        });
        assert!(s.take_signal());
        s.execute(SpRequest {
            addr: 48,
            op: SpOp::Write(1),
        });
        assert!(!s.take_signal(), "word 12 is outside the range");
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_access_panics() {
        let mut s = sp();
        s.execute(SpRequest {
            addr: 2,
            op: SpOp::Read,
        });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_access_panics() {
        let mut s = sp();
        s.execute(SpRequest {
            addr: 4096,
            op: SpOp::Read,
        });
    }
}
