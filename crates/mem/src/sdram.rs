//! External GDDR SDRAM frame memory and the shared 128-bit frame bus.
//!
//! Paper §4: "The PCI interface and MAC unit share a 128-bit bus to access
//! the 64-bit wide external DDR SDRAM. ... A 64-bit wide GDDR SDRAM
//! operating at 500 MHz provides a peak bandwidth of 64 Gb/s, and is able
//! to sustain 40 Gb/s of bandwidth for network traffic."
//!
//! Frame data moves in four 10 Gb/s sequential streams, one per assist
//! (DMA read, DMA write, MAC TX, MAC RX). Each assist buffers up to two
//! maximum-sized frames, so transfers arrive as bursts of up to 1518
//! bytes to consecutive addresses; the controller round-robins whole
//! bursts among the streams, which keeps row activations rare
//! (paper §2.3). Misaligned bursts are padded to 8-byte boundaries and the
//! padding counts as consumed bandwidth, exactly as Table 4 does:
//! "the unused bytes ... [are] lost SDRAM bandwidth that cannot be
//! recovered, so it is counted in the totals."

use nicsim_fault::EccFaults;
use nicsim_obs::{Event, FaultKind, FaultUnit, FmStream, NullProbe, Probe};
use nicsim_sim::{EventHeap, Freq, NextEvent, Ps, RoundRobin};
use std::collections::VecDeque;

/// The four frame-data streams (one per hardware assist).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamId {
    /// DMA read assist: host memory -> frame memory (transmit path).
    DmaRead,
    /// DMA write assist: frame memory -> host memory (receive path).
    DmaWrite,
    /// MAC transmit: frame memory -> wire.
    MacTx,
    /// MAC receive: wire -> frame memory.
    MacRx,
}

impl StreamId {
    /// Dense index for arbitration.
    pub fn index(self) -> usize {
        match self {
            StreamId::DmaRead => 0,
            StreamId::DmaWrite => 1,
            StreamId::MacTx => 2,
            StreamId::MacRx => 3,
        }
    }

    /// All streams in arbitration order.
    pub const ALL: [StreamId; 4] = [
        StreamId::DmaRead,
        StreamId::DmaWrite,
        StreamId::MacTx,
        StreamId::MacRx,
    ];

    /// The observability-layer mirror of this stream.
    pub fn obs(self) -> FmStream {
        match self {
            StreamId::DmaRead => FmStream::DmaRead,
            StreamId::DmaWrite => FmStream::DmaWrite,
            StreamId::MacTx => FmStream::MacTx,
            StreamId::MacRx => FmStream::MacRx,
        }
    }
}

/// Frame-memory configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameMemoryConfig {
    /// SDRAM / frame bus clock (paper: 500 MHz).
    pub freq: Freq,
    /// Bytes per bus cycle (128-bit bus + DDR 64-bit SDRAM = 16).
    pub bytes_per_cycle: u64,
    /// Number of SDRAM banks.
    pub banks: u32,
    /// Row (page) size in bytes.
    pub row_bytes: u32,
    /// Cycles to activate a new row (precharge + activate).
    pub row_miss_cycles: u64,
    /// Fixed pipeline latency of any access, in SDRAM cycles.
    pub access_latency_cycles: u64,
    /// Total capacity in bytes.
    pub capacity: u32,
}

impl Default for FrameMemoryConfig {
    fn default() -> Self {
        FrameMemoryConfig {
            freq: Freq::from_mhz(500),
            bytes_per_cycle: 16,
            banks: 4,
            row_bytes: 2048,
            row_miss_cycles: 18,
            access_latency_cycles: 6,
            capacity: 8 * 1024 * 1024,
        }
    }
}

/// A completed burst, delivered by [`FrameMemory::advance`].
#[derive(Debug, Clone)]
pub struct SdramCompletion {
    /// Which stream issued the burst.
    pub stream: StreamId,
    /// Caller-provided tag.
    pub tag: u64,
    /// Completion time.
    pub at: Ps,
    /// For reads, the bytes read; `None` for writes.
    pub data: Option<Vec<u8>>,
}

#[derive(Debug)]
struct Burst {
    addr: u32,
    len: u32,
    write: bool,
    tag: u64,
    submitted: Ps,
}

/// The frame-memory controller: per-stream queues, whole-burst round-robin
/// over the shared bus, open-row tracking per bank, and bandwidth meters.
pub struct FrameMemory {
    cfg: FrameMemoryConfig,
    /// SDRAM clock period, cached so per-burst service-time math avoids
    /// re-deriving it from the frequency (an integer division).
    period: Ps,
    data: Vec<u8>,
    queues: [VecDeque<Burst>; 4],
    arbiter: RoundRobin,
    busy_until: Ps,
    open_row: Vec<Option<u32>>,
    completions: EventHeap<SdramCompletion>,
    /// Optional ECC fault injection: single-bit errors on read bursts,
    /// corrected in place for a fixed extra latency. `None` keeps the
    /// controller bit-identical to a fault-free build (no RNG draws).
    ecc: Option<EccFaults>,
    // stats
    padded_bytes: u64,
    wasted_bytes: u64,
    row_activations: u64,
    bursts: u64,
    latency_sum_ps: u64,
    latency_max: Ps,
}

impl FrameMemory {
    /// Create a frame memory with the given configuration.
    pub fn new(cfg: FrameMemoryConfig) -> FrameMemory {
        FrameMemory {
            cfg,
            period: cfg.freq.period(),
            data: vec![0; cfg.capacity as usize],
            queues: Default::default(),
            arbiter: RoundRobin::new(4),
            busy_until: Ps::ZERO,
            open_row: vec![None; cfg.banks as usize],
            completions: EventHeap::new(),
            ecc: None,
            padded_bytes: 0,
            wasted_bytes: 0,
            row_activations: 0,
            bursts: 0,
            latency_sum_ps: 0,
            latency_max: Ps::ZERO,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &FrameMemoryConfig {
        &self.cfg
    }

    /// Enable single-bit ECC fault injection on read bursts. Each faulted
    /// burst is corrected in place (data stays intact) but pays
    /// `EccFaults::extra` of additional service latency.
    pub fn set_faults(&mut self, ecc: EccFaults) {
        self.ecc = Some(ecc);
    }

    /// Single-bit ECC corrections performed so far.
    pub fn ecc_corrections(&self) -> u64 {
        self.ecc.as_ref().map_or(0, |e| e.corrections)
    }

    /// Zero `len` bytes at `addr` directly (no burst, no timing): abort
    /// cleanup for DMA transfers cancelled mid-frame, so stale frame
    /// bytes cannot later validate as goodput.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the capacity.
    pub fn poison(&mut self, addr: u32, len: u32) {
        let end = addr as usize + len as usize;
        assert!(end <= self.data.len(), "frame memory poison out of range");
        self.data[addr as usize..end].fill(0);
    }

    /// Queue a write burst of `bytes` to `addr`, submitted at time `now`.
    /// The data is captured immediately; completion is reported later.
    ///
    /// # Panics
    ///
    /// Panics if the burst exceeds the capacity.
    pub fn submit_write(&mut self, stream: StreamId, addr: u32, bytes: &[u8], tag: u64, now: Ps) {
        let end = addr as usize + bytes.len();
        assert!(end <= self.data.len(), "frame memory write out of range");
        self.data[addr as usize..end].copy_from_slice(bytes);
        self.queues[stream.index()].push_back(Burst {
            addr,
            len: bytes.len() as u32,
            write: true,
            tag,
            submitted: now,
        });
    }

    /// Queue a read burst of `len` bytes from `addr`, submitted at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the burst exceeds the capacity.
    pub fn submit_read(&mut self, stream: StreamId, addr: u32, len: u32, tag: u64, now: Ps) {
        assert!(
            addr as usize + len as usize <= self.data.len(),
            "frame memory read out of range"
        );
        self.queues[stream.index()].push_back(Burst {
            addr,
            len,
            write: false,
            tag,
            submitted: now,
        });
    }

    /// Whether `stream` has room for another burst (assists buffer two
    /// maximum-sized frames, so they pace themselves to two outstanding).
    pub fn queue_len(&self, stream: StreamId) -> usize {
        self.queues[stream.index()].len()
    }

    fn service_time(&mut self, b: &Burst) -> Ps {
        let start = b.addr & !7;
        let end = (b.addr + b.len + 7) & !7;
        let padded = (end - start) as u64;
        self.padded_bytes += padded;
        self.wasted_bytes += padded - b.len as u64;
        // Row/bank bookkeeping.
        let bank = ((b.addr / self.cfg.row_bytes) % self.cfg.banks) as usize;
        let row = b.addr / (self.cfg.row_bytes * self.cfg.banks);
        let mut cycles = self.cfg.access_latency_cycles;
        if self.open_row[bank] != Some(row) {
            cycles += self.cfg.row_miss_cycles;
            self.open_row[bank] = Some(row);
            self.row_activations += 1;
        }
        cycles += padded.div_ceil(self.cfg.bytes_per_cycle);
        Ps(self.period.0 * cycles)
    }

    /// Advance the controller to `now`: start any bursts whose turn has
    /// come, and return all completions with `at <= now` (in time order).
    pub fn advance(&mut self, now: Ps) -> Vec<SdramCompletion> {
        self.advance_probed(now, &mut NullProbe)
    }

    /// [`FrameMemory::advance`] with probe instrumentation: emits one
    /// [`Event::FmBurst`] per serviced burst, carrying the bus grant and
    /// completion times plus the stream's residual queue depth
    /// (frame-memory occupancy).
    pub fn advance_probed<P: Probe>(&mut self, now: Ps, probe: &mut P) -> Vec<SdramCompletion> {
        // Start bursts while the bus frees up at or before `now`.
        loop {
            let free_at = self.busy_until;
            if free_at > now {
                break;
            }
            // Decision time: when the bus is free AND a request is queued.
            let earliest = self
                .queues
                .iter()
                .filter_map(|q| q.front().map(|b| b.submitted))
                .min();
            let Some(earliest) = earliest else { break };
            let t = free_at.max(earliest);
            if t > now {
                break;
            }
            let queues = &self.queues;
            let winner = self
                .arbiter
                .grant(|s| queues[s].front().is_some_and(|b| b.submitted <= t));
            let Some(s) = winner else { break };
            let burst = self.queues[s].pop_front().expect("winner has burst");
            let dur = self.service_time(&burst);
            let mut done = t + dur;
            // ECC: draw once per read burst at grant time (never per
            // cycle), so the stream of draws is identical in the dense
            // and event-driven kernels. A hit stretches the burst by the
            // fixed correction latency; data is corrected, not lost.
            if !burst.write {
                if let Some(ecc) = self.ecc.as_mut() {
                    if ecc.draw() {
                        done += ecc.extra;
                        if P::ENABLED {
                            probe.emit(Event::Fault {
                                kind: FaultKind::EccSingleBit,
                                unit: FaultUnit::FrameMemory,
                                info: burst.len,
                                at: done,
                            });
                        }
                    }
                }
            }
            self.busy_until = done;
            self.bursts += 1;
            let lat = done - burst.submitted;
            self.latency_sum_ps += lat.0;
            self.latency_max = self.latency_max.max(lat);
            if P::ENABLED {
                probe.emit(Event::FmBurst {
                    stream: StreamId::ALL[s].obs(),
                    write: burst.write,
                    bytes: burst.len,
                    start: t,
                    done,
                    queued: self.queues[s].len() as u32,
                });
            }
            let data = if burst.write {
                None
            } else {
                let a = burst.addr as usize;
                Some(self.data[a..a + burst.len as usize].to_vec())
            };
            self.completions.push(
                done,
                SdramCompletion {
                    stream: StreamId::ALL[s],
                    tag: burst.tag,
                    at: done,
                    data,
                },
            );
        }
        self.completions.drain_before(now).map(|(_, c)| c).collect()
    }

    /// Bytes moved over the bus including alignment padding (Table 4's
    /// consumed frame-memory bandwidth is `padded_bytes` over the window).
    pub fn padded_bytes(&self) -> u64 {
        self.padded_bytes
    }

    /// Bytes of that total that were alignment waste.
    pub fn wasted_bytes(&self) -> u64 {
        self.wasted_bytes
    }

    /// Row activations performed.
    pub fn row_activations(&self) -> u64 {
        self.row_activations
    }

    /// Number of bursts serviced.
    pub fn bursts(&self) -> u64 {
        self.bursts
    }

    /// Mean burst latency (submit to completion).
    pub fn mean_latency(&self) -> Ps {
        self.latency_sum_ps
            .checked_div(self.bursts)
            .map_or(Ps::ZERO, Ps)
    }

    /// Maximum burst latency observed.
    pub fn max_latency(&self) -> Ps {
        self.latency_max
    }

    /// Functional peek (tests and debugging).
    pub fn peek(&self, addr: u32, len: u32) -> &[u8] {
        &self.data[addr as usize..(addr + len) as usize]
    }

    /// Zero the meters (keeps open-row state and queued work).
    pub fn reset_stats(&mut self) {
        self.padded_bytes = 0;
        self.wasted_bytes = 0;
        self.row_activations = 0;
        self.bursts = 0;
        self.latency_sum_ps = 0;
        self.latency_max = Ps::ZERO;
    }
}

impl NextEvent for FrameMemory {
    /// Lower bound on the controller's next state change: the earliest
    /// pending completion, or the start time of the next queued burst
    /// (`max(bus free, submission)`), whichever comes first. Starting a
    /// burst is a state change because it sets `busy_until` and
    /// schedules the completion — [`FrameMemory::advance`] must run at
    /// that instant to keep arbitration decisions time-coherent.
    fn next_event(&self) -> Ps {
        let mut t = self.completions.peek_time().unwrap_or(Ps::MAX);
        let earliest = self
            .queues
            .iter()
            .filter_map(|q| q.front().map(|b| b.submitted))
            .min();
        if let Some(e) = earliest {
            t = t.min(self.busy_until.max(e));
        }
        t
    }
}

impl std::fmt::Debug for FrameMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameMemory")
            .field("capacity", &self.cfg.capacity)
            .field("bursts", &self.bursts)
            .field("busy_until", &self.busy_until)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fm() -> FrameMemory {
        FrameMemory::new(FrameMemoryConfig::default())
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut m = fm();
        let payload: Vec<u8> = (0..100u8).collect();
        m.submit_write(StreamId::MacRx, 64, &payload, 1, Ps::ZERO);
        let done = m.advance(Ps::from_us(1));
        assert_eq!(done.len(), 1);
        assert!(done[0].data.is_none());
        m.submit_read(StreamId::DmaWrite, 64, 100, 2, Ps::from_us(1));
        let done = m.advance(Ps::from_us(2));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].data.as_deref(), Some(&payload[..]));
    }

    #[test]
    fn aligned_burst_wastes_nothing() {
        let mut m = fm();
        m.submit_write(StreamId::MacRx, 0, &[0u8; 1024], 0, Ps::ZERO);
        m.advance(Ps::from_us(1));
        assert_eq!(m.wasted_bytes(), 0);
        assert_eq!(m.padded_bytes(), 1024);
    }

    #[test]
    fn misaligned_burst_pads_to_8_bytes() {
        let mut m = fm();
        // 42-byte header at offset 2: pads to [0, 48) = 48 bytes.
        m.submit_write(StreamId::DmaRead, 2, &[0u8; 42], 0, Ps::ZERO);
        m.advance(Ps::from_us(1));
        assert_eq!(m.padded_bytes(), 48);
        assert_eq!(m.wasted_bytes(), 6);
    }

    #[test]
    fn sequential_bursts_share_a_row() {
        let mut m = fm();
        m.submit_write(StreamId::MacRx, 0, &[0u8; 512], 0, Ps::ZERO);
        m.submit_write(StreamId::MacRx, 512, &[0u8; 512], 1, Ps::ZERO);
        m.advance(Ps::from_us(1));
        assert_eq!(m.row_activations(), 1, "second burst hits the open row");
    }

    #[test]
    fn peak_bandwidth_is_64_gbps() {
        // A long aligned burst approaches 16 B/cycle at 500 MHz = 64 Gb/s.
        let mut m = fm();
        let n = 1_048_576u32;
        m.submit_write(StreamId::MacRx, 0, &vec![0u8; n as usize], 0, Ps::ZERO);
        let done = m.advance(Ps::from_ms(10));
        let secs = done[0].at.as_secs_f64();
        let gbps = n as f64 * 8.0 / secs / 1e9;
        assert!(gbps > 63.0 && gbps <= 64.0, "measured {gbps} Gb/s");
    }

    #[test]
    fn round_robin_interleaves_streams() {
        let mut m = fm();
        for i in 0..4u64 {
            m.submit_write(StreamId::MacRx, 4096 * i as u32, &[0u8; 64], i, Ps::ZERO);
            m.submit_read(StreamId::MacTx, 4096 * i as u32, 64, 100 + i, Ps::ZERO);
        }
        let done = m.advance(Ps::from_us(10));
        assert_eq!(done.len(), 8);
        // Streams alternate: no stream gets two grants in a row.
        for w in done.windows(2) {
            assert_ne!(w[0].stream, w[1].stream);
        }
    }

    #[test]
    fn completions_respect_now() {
        let mut m = fm();
        m.submit_write(StreamId::MacRx, 0, &[0u8; 1518], 0, Ps::ZERO);
        // 1518B burst takes ~100+ cycles at 2ns; surely not done in 10ps.
        assert!(m.advance(Ps(10)).is_empty());
        assert_eq!(m.advance(Ps::from_us(1)).len(), 1);
    }

    #[test]
    fn latency_tracking() {
        let mut m = fm();
        m.submit_write(StreamId::MacRx, 0, &[0u8; 64], 0, Ps::ZERO);
        m.advance(Ps::from_us(1));
        assert!(m.mean_latency() > Ps::ZERO);
        assert!(m.max_latency() >= m.mean_latency());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn capacity_enforced() {
        let mut m = fm();
        let cap = m.config().capacity;
        m.submit_write(StreamId::MacRx, cap - 4, &[0u8; 8], 0, Ps::ZERO);
    }

    #[test]
    fn poison_zeroes_range() {
        let mut m = fm();
        m.submit_write(StreamId::MacRx, 16, &[0xaa; 64], 0, Ps::ZERO);
        m.advance(Ps::from_us(1));
        m.poison(16, 64);
        assert!(m.peek(16, 64).iter().all(|&b| b == 0));
    }

    #[test]
    fn ecc_correction_adds_latency_and_counts() {
        use nicsim_fault::{EccFaults, FaultPlan};
        let clean_at = {
            let mut m = fm();
            m.submit_read(StreamId::MacTx, 0, 256, 0, Ps::ZERO);
            m.advance(Ps::from_us(1))[0].at
        };
        let plan = FaultPlan {
            ecc: 1.0,
            ..FaultPlan::default()
        };
        let mut m = fm();
        m.set_faults(EccFaults::new(&plan));
        m.submit_read(StreamId::MacTx, 0, 256, 0, Ps::ZERO);
        let done = m.advance(Ps::from_us(1));
        assert_eq!(done[0].at, clean_at + Ps(8_000), "fixed correction cost");
        assert_eq!(m.ecc_corrections(), 1);
        // Data is corrected, not corrupted.
        assert_eq!(done[0].data.as_deref(), Some(&[0u8; 256][..]));
    }

    #[test]
    fn zero_rate_ecc_is_timing_neutral() {
        use nicsim_fault::{EccFaults, FaultPlan};
        let clean_at = {
            let mut m = fm();
            m.submit_read(StreamId::DmaWrite, 0, 1518, 0, Ps::ZERO);
            m.advance(Ps::from_us(1))[0].at
        };
        let mut m = fm();
        m.set_faults(EccFaults::new(&FaultPlan::default()));
        m.submit_read(StreamId::DmaWrite, 0, 1518, 0, Ps::ZERO);
        assert_eq!(m.advance(Ps::from_us(1))[0].at, clean_at);
        assert_eq!(m.ecc_corrections(), 0);
    }
}
