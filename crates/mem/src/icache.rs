//! Per-core instruction caches and the shared instruction memory.
//!
//! Paper §4: "Instructions are stored in a single 128 KB instruction
//! memory which feeds per-processor instruction caches"; the evaluated
//! configuration uses 8 KB 2-way set-associative caches with 32-byte
//! lines, and the 128-bit instruction-memory interface is "unused almost
//! 97% of the time" (Table 4) because the firmware's code footprint is
//! small — a property this model reproduces.

/// Geometry of one per-core instruction cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ICacheConfig {
    /// Total capacity in bytes (paper: 8192).
    pub bytes: usize,
    /// Associativity (paper: 2).
    pub ways: usize,
    /// Line size in bytes (paper: 32).
    pub line_bytes: usize,
}

impl Default for ICacheConfig {
    fn default() -> Self {
        ICacheConfig {
            bytes: 8 * 1024,
            ways: 2,
            line_bytes: 32,
        }
    }
}

impl ICacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn sets(&self) -> usize {
        assert!(self.ways > 0 && self.line_bytes > 0);
        let sets = self.bytes / (self.ways * self.line_bytes);
        assert!(
            sets * self.ways * self.line_bytes == self.bytes && sets > 0,
            "icache geometry must divide evenly"
        );
        sets
    }
}

#[derive(Debug, Clone)]
struct Set {
    /// Tag per way, most-recently-used last.
    ways: Vec<u64>,
}

/// One core's instruction cache (set-associative, true-LRU).
#[derive(Debug, Clone)]
pub struct ICache {
    cfg: ICacheConfig,
    sets: Vec<Set>,
    hits: u64,
    misses: u64,
}

impl ICache {
    /// Create an empty cache.
    pub fn new(cfg: ICacheConfig) -> ICache {
        let sets = cfg.sets();
        ICache {
            cfg,
            sets: vec![Set { ways: Vec::new() }; sets],
            hits: 0,
            misses: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> ICacheConfig {
        self.cfg
    }

    /// Look up the line containing byte address `addr`; returns `true` on
    /// hit. On miss the line is filled (victim = LRU way).
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.cfg.line_bytes as u64;
        let set_idx = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.ways.iter().position(|&t| t == tag) {
            // Move to MRU position.
            let t = set.ways.remove(pos);
            set.ways.push(t);
            self.hits += 1;
            true
        } else {
            if set.ways.len() == self.cfg.ways {
                set.ways.remove(0); // evict LRU
            }
            set.ways.push(tag);
            self.misses += 1;
            false
        }
    }

    /// Hits since construction or [`ICache::reset_stats`].
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses since construction or [`ICache::reset_stats`].
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Zero the hit/miss counters (contents are kept).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

/// The shared 128 KB instruction memory with its 128-bit fill interface.
///
/// A line fill occupies the interface for `line_bytes / 16` cycles after a
/// fixed access latency; concurrent fills from different cores serialize
/// (single interface), which the requesting core sees as additional miss
/// stall cycles.
#[derive(Debug, Clone)]
pub struct InstrMemory {
    /// Fixed access latency in CPU cycles before data starts flowing.
    pub access_latency: u64,
    /// Bytes moved per interface cycle (128 bits = 16 bytes).
    pub bytes_per_cycle: u64,
    busy_until: u64,
    bytes_transferred: u64,
    busy_cycles: u64,
}

impl Default for InstrMemory {
    fn default() -> Self {
        InstrMemory {
            access_latency: 2,
            bytes_per_cycle: 16,
            busy_until: 0,
            bytes_transferred: 0,
            busy_cycles: 0,
        }
    }
}

impl InstrMemory {
    /// Create with the paper's parameters.
    pub fn new() -> InstrMemory {
        InstrMemory::default()
    }

    /// Service a line fill requested at CPU cycle `now`; returns the cycle
    /// at which the fill completes (the requesting core stalls until then).
    pub fn fill(&mut self, now: u64, line_bytes: u64) -> u64 {
        let start = now.max(self.busy_until);
        let beats = line_bytes.div_ceil(self.bytes_per_cycle);
        let done = start + self.access_latency + beats;
        self.busy_until = done;
        self.bytes_transferred += line_bytes;
        self.busy_cycles += self.access_latency + beats;
        done
    }

    /// Total bytes delivered (Table 4 instruction-memory bandwidth).
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes_transferred
    }

    /// Cycles the interface was occupied (its utilization complement is
    /// the paper's "unused almost 97% of the time").
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Zero the meters.
    pub fn reset_stats(&mut self) {
        self.bytes_transferred = 0;
        self.busy_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_of_paper_config() {
        let cfg = ICacheConfig::default();
        assert_eq!(cfg.sets(), 128);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = ICache::new(ICacheConfig::default());
        assert!(!c.access(0x100));
        assert!(c.access(0x104)); // same 32B line
        assert!(c.access(0x11f));
        assert!(!c.access(0x120)); // next line
        assert_eq!(c.misses(), 2);
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn two_way_lru_eviction() {
        // Tiny cache: 2 sets, 2 ways, 32B lines = 128 bytes.
        let cfg = ICacheConfig {
            bytes: 128,
            ways: 2,
            line_bytes: 32,
        };
        let mut c = ICache::new(cfg);
        // Three lines mapping to set 0 (line % 2 == 0): 0, 128, 256.
        assert!(!c.access(0));
        assert!(!c.access(128));
        assert!(c.access(0)); // 0 now MRU
        assert!(!c.access(256)); // evicts 128 (LRU)
        assert!(c.access(0));
        assert!(!c.access(128)); // was evicted
    }

    #[test]
    fn working_set_fits_paper_cache() {
        // An 8 KB footprint loops forever with no misses after warm-up.
        let mut c = ICache::new(ICacheConfig::default());
        for _ in 0..3 {
            for line in 0..256u64 {
                c.access(line * 32);
            }
        }
        assert_eq!(c.misses(), 256, "only cold misses");
    }

    #[test]
    fn instr_memory_serializes_fills() {
        let mut m = InstrMemory::new();
        // 32B line: 2 latency + 2 beats = 4 cycles.
        assert_eq!(m.fill(10, 32), 14);
        // A second fill at the same time waits for the first.
        assert_eq!(m.fill(10, 32), 18);
        assert_eq!(m.bytes_transferred(), 64);
        assert_eq!(m.busy_cycles(), 8);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn bad_geometry_panics() {
        let cfg = ICacheConfig {
            bytes: 100,
            ways: 2,
            line_bytes: 32,
        };
        let _ = ICache::new(cfg);
    }
}
