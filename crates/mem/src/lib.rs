//! Partitioned memory system of the programmable 10 GbE NIC (paper §2.3, §4).
//!
//! The paper's key architectural insight is that a NIC has two very
//! different kinds of data:
//!
//! * **control data** (descriptors, ring pointers, event state) — small
//!   working set, needs *low latency*, read and written by both the
//!   processor cores and the hardware assists. It lives in an on-chip
//!   **banked scratchpad** reached through a 32-bit **crossbar** with
//!   round-robin per-bank arbitration and a 2-cycle access latency.
//! * **frame data** (packet contents) — large volume, needs *high
//!   bandwidth* but is never touched by the cores. It lives in external
//!   **GDDR SDRAM** behind a 128-bit frame bus shared by the PCI-side DMA
//!   assists and the MAC.
//!
//! This crate implements both memories plus the per-core instruction-cache
//! hierarchy, and the access-trace capture used by the coherence study
//! (Figure 3).

pub mod icache;
pub mod scratchpad;
pub mod sdram;
pub mod trace;
pub mod xbar;

pub use icache::{ICache, ICacheConfig, InstrMemory};
pub use scratchpad::{Scratchpad, SpOp, SpRequest};
pub use sdram::{FrameMemory, FrameMemoryConfig, SdramCompletion, StreamId};
pub use trace::{AccessKind, AccessTrace, TraceRecord};
pub use xbar::{BoundPort, Crossbar, PortHandle, PortStats, RequesterId, XbarPort};
