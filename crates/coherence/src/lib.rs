//! Trace-driven MESI cache-coherence simulation (the paper's SMPCache
//! substitute, §2.3 / Figure 3).
//!
//! The paper evaluates whether per-processor coherent caches could serve
//! the NIC's frame metadata: it feeds per-requester metadata access
//! traces from a 6-core line-rate run into a trace-driven simulator with
//! fully-associative, LRU, 16-byte-line caches under MESI, sweeping the
//! per-processor capacity from 16 bytes to 32 KB. The result — the
//! collective hit ratio "never goes above 55 %", with fewer than 1 % of
//! writes causing invalidations — motivates the scratchpad instead.
//!
//! This crate reimplements that experiment: [`MesiSim`] replays an
//! access trace against one private cache per requester, maintaining a
//! directory of sharers, and reports hit ratios and invalidation counts.

use std::collections::HashMap;

/// Cache line coherence state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// Modified: exclusive and dirty.
    Modified,
    /// Exclusive: sole copy, clean.
    Exclusive,
    /// Shared: possibly other copies.
    Shared,
}

/// One access of a replayed trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Which private cache (requester) performs the access.
    pub requester: usize,
    /// Byte address.
    pub addr: u64,
    /// Whether the access writes (RMW operations count as writes).
    pub write: bool,
}

/// Aggregate results of a replay.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoherenceStats {
    /// Total accesses replayed.
    pub accesses: u64,
    /// Accesses that hit in the requester's private cache.
    pub hits: u64,
    /// Write accesses.
    pub writes: u64,
    /// Write accesses that invalidated a copy in another cache.
    pub invalidating_writes: u64,
    /// Total line invalidations performed.
    pub invalidations: u64,
}

impl CoherenceStats {
    /// The collective hit ratio in percent (Figure 3's y-axis).
    pub fn hit_ratio_percent(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.hits as f64 * 100.0 / self.accesses as f64
    }

    /// Fraction of writes that caused an invalidation elsewhere.
    pub fn invalidating_write_fraction(&self) -> f64 {
        if self.writes == 0 {
            return 0.0;
        }
        self.invalidating_writes as f64 / self.writes as f64
    }
}

/// A fully-associative cache with true-LRU replacement.
#[derive(Debug)]
struct Cache {
    /// line -> (state, last-use stamp)
    lines: HashMap<u64, (State, u64)>,
    capacity_lines: usize,
}

impl Cache {
    fn new(capacity_lines: usize) -> Cache {
        Cache {
            lines: HashMap::new(),
            capacity_lines,
        }
    }

    fn evict_lru(&mut self) -> Option<u64> {
        let victim = self
            .lines
            .iter()
            .min_by_key(|(_, (_, stamp))| *stamp)
            .map(|(line, _)| *line)?;
        self.lines.remove(&victim);
        Some(victim)
    }
}

/// The multi-cache MESI simulator.
#[derive(Debug)]
pub struct MesiSim {
    caches: Vec<Cache>,
    /// Directory: line -> bitmask of caches holding it.
    directory: HashMap<u64, u32>,
    line_bytes: u64,
    clock: u64,
    stats: CoherenceStats,
}

impl MesiSim {
    /// Create `n_caches` private caches of `capacity_bytes` each with
    /// `line_bytes` lines (paper: 16-byte lines to minimize false
    /// sharing; capacities 16 B – 32 KB).
    ///
    /// # Panics
    ///
    /// Panics if the capacity is smaller than one line, the line size is
    /// zero, or more than 32 caches are requested.
    pub fn new(n_caches: usize, capacity_bytes: usize, line_bytes: usize) -> MesiSim {
        assert!(line_bytes > 0, "line size must be nonzero");
        assert!(capacity_bytes >= line_bytes, "capacity below one line");
        assert!(n_caches <= 32, "directory bitmask holds at most 32 caches");
        MesiSim {
            caches: (0..n_caches)
                .map(|_| Cache::new(capacity_bytes / line_bytes))
                .collect(),
            directory: HashMap::new(),
            line_bytes: line_bytes as u64,
            clock: 0,
            stats: CoherenceStats::default(),
        }
    }

    /// Results so far.
    pub fn stats(&self) -> CoherenceStats {
        self.stats
    }

    fn drop_line(&mut self, cache: usize, line: u64) {
        if let Some(mask) = self.directory.get_mut(&line) {
            *mask &= !(1 << cache);
            if *mask == 0 {
                self.directory.remove(&line);
            }
        }
    }

    /// Invalidate `line` everywhere except `keep`; returns how many
    /// copies were invalidated.
    fn invalidate_others(&mut self, line: u64, keep: usize) -> u64 {
        let mask = self.directory.get(&line).copied().unwrap_or(0);
        let mut n = 0;
        for c in 0..self.caches.len() {
            if c != keep && mask & (1 << c) != 0 {
                self.caches[c].lines.remove(&line);
                self.drop_line(c, line);
                n += 1;
            }
        }
        n
    }

    /// Downgrade other caches' copies of `line` to Shared.
    fn downgrade_others(&mut self, line: u64, except: usize) {
        let mask = self.directory.get(&line).copied().unwrap_or(0);
        for c in 0..self.caches.len() {
            if c != except && mask & (1 << c) != 0 {
                if let Some((st, _)) = self.caches[c].lines.get_mut(&line) {
                    *st = State::Shared;
                }
            }
        }
    }

    fn others_have(&self, line: u64, except: usize) -> bool {
        let mask = self.directory.get(&line).copied().unwrap_or(0);
        mask & !(1u32 << except) != 0
    }

    fn install(&mut self, cache: usize, line: u64, state: State) {
        self.clock += 1;
        if self.caches[cache].lines.len() >= self.caches[cache].capacity_lines {
            if let Some(victim) = self.caches[cache].evict_lru() {
                self.drop_line(cache, victim);
            }
        }
        let stamp = self.clock;
        self.caches[cache].lines.insert(line, (state, stamp));
        *self.directory.entry(line).or_insert(0) |= 1 << cache;
    }

    /// Replay one access.
    pub fn access(&mut self, a: Access) {
        self.clock += 1;
        self.stats.accesses += 1;
        if a.write {
            self.stats.writes += 1;
        }
        let line = a.addr / self.line_bytes;
        let cache = a.requester;
        let hit_state = self.caches[cache].lines.get(&line).map(|(s, _)| *s);
        match (hit_state, a.write) {
            (Some(_), false) => {
                self.stats.hits += 1;
                let stamp = self.clock;
                self.caches[cache].lines.get_mut(&line).unwrap().1 = stamp;
            }
            (Some(state), true) => {
                self.stats.hits += 1;
                if state == State::Shared {
                    let n = self.invalidate_others(line, cache);
                    if n > 0 {
                        self.stats.invalidating_writes += 1;
                        self.stats.invalidations += n;
                    }
                }
                let stamp = self.clock;
                let e = self.caches[cache].lines.get_mut(&line).unwrap();
                e.0 = State::Modified;
                e.1 = stamp;
            }
            (None, false) => {
                let shared = self.others_have(line, cache);
                if shared {
                    self.downgrade_others(line, cache);
                }
                let st = if shared {
                    State::Shared
                } else {
                    State::Exclusive
                };
                self.install(cache, line, st);
            }
            (None, true) => {
                let n = self.invalidate_others(line, cache);
                if n > 0 {
                    self.stats.invalidating_writes += 1;
                    self.stats.invalidations += n;
                }
                self.install(cache, line, State::Modified);
            }
        }
    }

    /// Replay a whole trace.
    pub fn run<'a>(&mut self, trace: impl IntoIterator<Item = &'a Access>) -> CoherenceStats {
        for a in trace {
            self.access(*a);
        }
        self.stats
    }
}

/// Sweep per-processor cache sizes over a trace, reproducing the
/// Figure 3 curve. Returns one
/// `(size_bytes, hit_ratio_percent, invalidating_write_fraction)` tuple
/// per size.
pub fn sweep_sizes(
    n_caches: usize,
    line_bytes: usize,
    sizes: &[usize],
    trace: &[Access],
) -> Vec<(usize, f64, f64)> {
    sizes
        .iter()
        .map(|&size| {
            let mut sim = MesiSim::new(n_caches, size, line_bytes);
            let s = sim.run(trace);
            (size, s.hit_ratio_percent(), s.invalidating_write_fraction())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rd(req: usize, addr: u64) -> Access {
        Access {
            requester: req,
            addr,
            write: false,
        }
    }

    fn wr(req: usize, addr: u64) -> Access {
        Access {
            requester: req,
            addr,
            write: true,
        }
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut sim = MesiSim::new(2, 256, 16);
        sim.access(rd(0, 0x100));
        sim.access(rd(0, 0x104)); // same 16B line
        let s = sim.stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn exclusive_then_shared_states() {
        let mut sim = MesiSim::new(2, 256, 16);
        sim.access(rd(0, 0x40));
        assert_eq!(sim.caches[0].lines[&4].0, State::Exclusive);
        sim.access(rd(1, 0x40));
        assert_eq!(sim.caches[0].lines[&4].0, State::Shared);
        assert_eq!(sim.caches[1].lines[&4].0, State::Shared);
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut sim = MesiSim::new(3, 256, 16);
        sim.access(rd(0, 0x80));
        sim.access(rd(1, 0x80));
        sim.access(rd(2, 0x80));
        sim.access(wr(0, 0x80));
        let s = sim.stats();
        assert_eq!(s.invalidating_writes, 1);
        assert_eq!(s.invalidations, 2);
        assert!(!sim.caches[1].lines.contains_key(&8));
        assert!(!sim.caches[2].lines.contains_key(&8));
        assert_eq!(sim.caches[0].lines[&8].0, State::Modified);
    }

    #[test]
    fn write_miss_invalidates_and_installs_modified() {
        let mut sim = MesiSim::new(2, 256, 16);
        sim.access(rd(1, 0x200));
        sim.access(wr(0, 0x200));
        assert_eq!(sim.stats().invalidations, 1);
        assert_eq!(sim.caches[0].lines[&0x20].0, State::Modified);
        assert!(!sim.caches[1].lines.contains_key(&0x20));
    }

    #[test]
    fn silent_exclusive_to_modified() {
        let mut sim = MesiSim::new(2, 256, 16);
        sim.access(rd(0, 0x300));
        sim.access(wr(0, 0x300));
        let s = sim.stats();
        assert_eq!(s.invalidations, 0, "E->M is silent");
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn lru_eviction_order() {
        // Two-line cache: 32B capacity, 16B lines.
        let mut sim = MesiSim::new(1, 32, 16);
        sim.access(rd(0, 0x00));
        sim.access(rd(0, 0x10));
        sim.access(rd(0, 0x00)); // touch line 0: line 1 is now LRU
        sim.access(rd(0, 0x20)); // evicts line 1
        sim.access(rd(0, 0x00));
        let s = sim.stats();
        // Hits: third access (line 0) and fifth access (line 0 kept).
        assert_eq!(s.hits, 2);
        assert!(!sim.caches[0].lines.contains_key(&1));
    }

    #[test]
    fn directory_consistent_after_eviction() {
        let mut sim = MesiSim::new(2, 16, 16); // single-line caches
        sim.access(rd(0, 0x00));
        sim.access(rd(0, 0x10)); // evicts line 0 from cache 0
        sim.access(wr(1, 0x00)); // must not count an invalidation
        assert_eq!(sim.stats().invalidations, 0);
    }

    #[test]
    fn streaming_trace_has_low_hit_ratio() {
        // The paper's core result in miniature: a migratory
        // producer-consumer pattern with little reuse defeats caching.
        let mut trace = Vec::new();
        for i in 0..4000u64 {
            let addr = (i % 2000) * 16; // large footprint, single touch
            trace.push(wr((i % 4) as usize, addr));
            trace.push(rd(((i + 1) % 4) as usize, addr));
        }
        let mut sim = MesiSim::new(4, 1024, 16);
        let s = sim.run(&trace);
        assert!(
            s.hit_ratio_percent() < 55.0,
            "hit ratio {:.1}% should stay under the paper's 55% ceiling",
            s.hit_ratio_percent()
        );
    }

    #[test]
    fn sweep_is_monotonic_for_reuse_traces() {
        let mut trace = Vec::new();
        for _rep in 0..20u64 {
            for i in 0..512u64 {
                trace.push(rd(0, i * 16));
            }
        }
        let pts = sweep_sizes(1, 16, &[64, 1024, 8192, 16384], &trace);
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1, "bigger cache can't hit less: {pts:?}");
        }
        // At 16 KB the 8 KB working set fits: near-perfect after warm-up.
        assert!(pts[3].1 > 90.0);
    }

    #[test]
    #[should_panic(expected = "capacity below one line")]
    fn rejects_capacity_below_line() {
        let _ = MesiSim::new(1, 8, 16);
    }
}
