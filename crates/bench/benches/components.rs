//! Criterion micro-benchmarks of the simulator's building blocks: how
//! fast the host simulates each component (simulator engineering, not
//! NIC performance — the NIC numbers come from the table/figure
//! binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use nicsim_coherence::{Access, MesiSim};
use nicsim_ilp::{analyze, expand, BranchModel, IssueOrder, PipelineModel, ProcessorConfig, TraceOp};
use nicsim_mem::{Crossbar, FrameMemory, FrameMemoryConfig, Scratchpad, SpOp, SpRequest, StreamId};
use nicsim_net::frame::{build_udp_frame, validate_frame};
use nicsim_sim::Ps;
use std::hint::black_box;

fn bench_scratchpad(c: &mut Criterion) {
    let mut sp = Scratchpad::new(256 * 1024, 4);
    c.bench_function("scratchpad/rmw_update", |b| {
        sp.poke(64, 0xffff_ffff);
        b.iter(|| {
            sp.execute(SpRequest { addr: 64, op: SpOp::SetBit(7) });
            black_box(sp.execute(SpRequest {
                addr: 64,
                op: SpOp::Update { start_bit: 0 },
            }))
        })
    });
}

fn bench_crossbar(c: &mut Criterion) {
    c.bench_function("crossbar/tick_10ports_4banks", |b| {
        let mut sp = Scratchpad::new(256 * 1024, 4);
        let mut xb = Crossbar::new(10, 4);
        b.iter(|| {
            for p in 0..10 {
                if xb.port_idle(p) {
                    xb.submit(
                        p,
                        SpRequest {
                            addr: (p as u32) * 4,
                            op: SpOp::Read,
                        },
                    );
                }
            }
            xb.tick(&mut sp);
            for p in 0..10 {
                black_box(xb.take_response(p));
            }
        })
    });
}

fn bench_frame(c: &mut Criterion) {
    c.bench_function("net/build_udp_1472", |b| {
        b.iter(|| black_box(build_udp_frame(42, 1472)))
    });
    let f = build_udp_frame(42, 1472);
    c.bench_function("net/validate_1518", |b| b.iter(|| black_box(validate_frame(&f))));
}

fn bench_frame_memory(c: &mut Criterion) {
    c.bench_function("sdram/burst_1518B", |b| {
        let mut fm = FrameMemory::new(FrameMemoryConfig::default());
        let frame = vec![0u8; 1518];
        let mut now = Ps::ZERO;
        b.iter(|| {
            now += Ps(10_000);
            fm.submit_write(StreamId::MacRx, 1024, &frame, 0, now);
            black_box(fm.advance(now + Ps(1_000_000)).len())
        })
    });
}

fn bench_mesi(c: &mut Criterion) {
    c.bench_function("coherence/mesi_access", |b| {
        let mut sim = MesiSim::new(8, 8192, 16);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            sim.access(Access {
                requester: (i % 8) as usize,
                addr: (i * 97) % 65536,
                write: i % 3 == 0,
            });
        })
    });
}

fn bench_ilp(c: &mut Criterion) {
    let ops: Vec<TraceOp> = (0..2000)
        .flat_map(|i| {
            [
                TraceOp::Alu(3),
                TraceOp::Load,
                TraceOp::Branch { mispredict: i % 3 == 0 },
                TraceOp::Store,
            ]
        })
        .collect();
    let trace = expand(&ops);
    c.bench_function("ilp/analyze_8k_insts", |b| {
        b.iter(|| {
            black_box(analyze(
                &trace,
                ProcessorConfig {
                    order: IssueOrder::OutOfOrder,
                    width: 2,
                    pipeline: PipelineModel::Stalls,
                    branches: BranchModel::Pbp1,
                },
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_scratchpad,
    bench_crossbar,
    bench_frame,
    bench_frame_memory,
    bench_mesi,
    bench_ilp
);
criterion_main!(benches);
