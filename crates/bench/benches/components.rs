//! Micro-benchmarks of the simulator's building blocks: how fast the
//! host simulates each component (simulator engineering, not NIC
//! performance — the NIC numbers come from the table/figure binaries).
//!
//! Uses the dependency-free harness in [`nicsim_bench::micro`]; run with
//! `cargo bench -p nicsim-bench --bench components`.

use nicsim_bench::micro::bench;
use nicsim_coherence::{Access, MesiSim};
use nicsim_ilp::{
    analyze, expand, BranchModel, IssueOrder, PipelineModel, ProcessorConfig, TraceOp,
};
use nicsim_mem::{Crossbar, FrameMemory, FrameMemoryConfig, Scratchpad, SpOp, SpRequest, StreamId};
use nicsim_net::frame::{build_udp_frame, validate_frame};
use nicsim_sim::Ps;
use std::hint::black_box;

fn bench_scratchpad() {
    let mut sp = Scratchpad::new(256 * 1024, 4);
    sp.poke(64, 0xffff_ffff);
    bench("scratchpad/rmw_update", || {
        sp.execute(SpRequest {
            addr: 64,
            op: SpOp::SetBit(7),
        });
        black_box(sp.execute(SpRequest {
            addr: 64,
            op: SpOp::Update { start_bit: 0 },
        }))
    });
}

fn bench_crossbar() {
    let mut sp = Scratchpad::new(256 * 1024, 4);
    let mut xb = Crossbar::new(10, 4);
    bench("crossbar/tick_10ports_4banks", || {
        for p in 0..10 {
            if xb.port_idle(p) {
                xb.submit(
                    p,
                    SpRequest {
                        addr: (p as u32) * 4,
                        op: SpOp::Read,
                    },
                );
            }
        }
        xb.tick(&mut sp);
        for p in 0..10 {
            black_box(xb.take_response(p));
        }
    });
}

fn bench_frame() {
    bench("net/build_udp_1472", || {
        black_box(build_udp_frame(42, 1472))
    });
    let f = build_udp_frame(42, 1472);
    bench("net/validate_1518", || black_box(validate_frame(&f)));
}

fn bench_frame_memory() {
    let mut fm = FrameMemory::new(FrameMemoryConfig::default());
    let frame = vec![0u8; 1518];
    let mut now = Ps::ZERO;
    bench("sdram/burst_1518B", || {
        now += Ps(10_000);
        fm.submit_write(StreamId::MacRx, 1024, &frame, 0, now);
        black_box(fm.advance(now + Ps(1_000_000)).len())
    });
}

fn bench_mesi() {
    let mut sim = MesiSim::new(8, 8192, 16);
    let mut i = 0u64;
    bench("coherence/mesi_access", || {
        i += 1;
        sim.access(Access {
            requester: (i % 8) as usize,
            addr: (i * 97) % 65536,
            write: i.is_multiple_of(3),
        });
    });
}

fn bench_ilp() {
    let ops: Vec<TraceOp> = (0..2000)
        .flat_map(|i| {
            [
                TraceOp::Alu(3),
                TraceOp::Load,
                TraceOp::Branch {
                    mispredict: i % 3 == 0,
                },
                TraceOp::Store,
            ]
        })
        .collect();
    let trace = expand(&ops);
    bench("ilp/analyze_8k_insts", || {
        black_box(analyze(
            &trace,
            ProcessorConfig {
                order: IssueOrder::OutOfOrder,
                width: 2,
                pipeline: PipelineModel::Stalls,
                branches: BranchModel::Pbp1,
            },
        ))
    });
}

fn main() {
    bench_scratchpad();
    bench_crossbar();
    bench_frame();
    bench_frame_memory();
    bench_mesi();
    bench_ilp();
}
