//! Criterion benchmark of whole-system simulation speed: simulated
//! microseconds of the full 6-core NIC per host second.

use criterion::{criterion_group, criterion_main, Criterion};
use nicsim::{FwMode, NicConfig, NicSystem};
use nicsim_sim::Ps;
use std::hint::black_box;

fn bench_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("system");
    g.sample_size(10);
    for (name, mode) in [("software", FwMode::SoftwareOnly), ("rmw", FwMode::RmwEnhanced)] {
        g.bench_function(format!("6x166_{name}_100us"), |b| {
            b.iter(|| {
                let cfg = NicConfig {
                    mode,
                    ..NicConfig::default()
                };
                let mut sys = NicSystem::new(cfg);
                sys.run_until(Ps::from_us(100));
                black_box(sys.collect().tx_frames)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_system);
criterion_main!(benches);
