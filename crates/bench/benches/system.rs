//! Benchmark of whole-system simulation speed: simulated microseconds of
//! the full 6-core NIC per host second.
//!
//! Uses the dependency-free harness in [`nicsim_bench::micro`]; run with
//! `cargo bench -p nicsim-bench --bench system`.

use nicsim::{FwMode, NicConfig, NicSystem};
use nicsim_bench::micro::bench;
use nicsim_sim::Ps;
use std::hint::black_box;

fn main() {
    for (name, mode) in [
        ("software", FwMode::SoftwareOnly),
        ("rmw", FwMode::RmwEnhanced),
    ] {
        bench(&format!("system/6x166_{name}_100us"), || {
            let cfg = NicConfig::builder().mode(mode).build().unwrap();
            let mut sys = NicSystem::build(cfg).finish().unwrap();
            sys.run_until(Ps::from_us(100));
            black_box(sys.collect().tx_frames)
        });
    }
}
