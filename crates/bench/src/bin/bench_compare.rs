//! Diff two `BENCH_simspeed.json` result files point by point.
//!
//! Usage: `bench_compare <baseline.json> <candidate.json> [--strict[=TOL]]`
//!
//! Rows are matched by their `point` label inside `extra.kernels`; for
//! each match the tool prints the kernel speedup and absolute
//! cycles-per-host-second from both files with relative deltas, plus
//! the skip/rendezvous accounting when the candidate row carries it.
//! Points present in only one file are listed so a renamed or dropped
//! benchmark row can't slip through a diff unnoticed.
//!
//! By default the comparison is informational (exit 0): absolute
//! wall-clock numbers from different hosts — or different loads on the
//! same host — are not comparable at gate precision, and the simspeed
//! binary already enforces the in-process floors. `--strict` turns a
//! speedup drop beyond TOL (default 0.10, i.e. 10%) into a non-zero
//! exit for same-host A/B runs.

use nicsim_exp::json::{parse, Json};
use std::process::exit;

struct Row {
    speedup: f64,
    cps: f64,
    rendezvous_per_stepped: Option<f64>,
    skipped_fraction: Option<f64>,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let (Some(base_path), Some(cand_path)) = (args.next(), args.next()) else {
        eprintln!("usage: bench_compare <baseline.json> <candidate.json> [--strict[=TOL]]");
        exit(2);
    };
    let strict_tol = match args.next().as_deref() {
        None => None,
        Some("--strict") => Some(0.10),
        Some(s) if s.starts_with("--strict=") => match s["--strict=".len()..].parse() {
            Ok(t) => Some(t),
            Err(_) => {
                eprintln!("bench_compare: bad tolerance in {s}");
                exit(2);
            }
        },
        Some(s) => {
            eprintln!("bench_compare: unknown argument {s}");
            exit(2);
        }
    };

    let base = load(&base_path);
    let cand = load(&cand_path);
    println!("baseline:  {base_path}");
    println!("candidate: {cand_path}");
    println!(
        "{:>36} {:>8} {:>8} {:>7} {:>9} {:>9} {:>7}",
        "point", "spd old", "spd new", "delta", "Mcps old", "Mcps new", "delta"
    );

    let mut regressions = Vec::new();
    for (label, b) in &base {
        let Some(c) = cand.iter().find(|(l, _)| l == label).map(|(_, r)| r) else {
            println!("{label:>36} only in baseline");
            continue;
        };
        let spd_delta = rel(b.speedup, c.speedup);
        let cps_delta = rel(b.cps, c.cps);
        println!(
            "{:>36} {:>7.2}x {:>7.2}x {:>+6.1}% {:>9.1} {:>9.1} {:>+6.1}%",
            label,
            b.speedup,
            c.speedup,
            spd_delta * 100.0,
            b.cps / 1e6,
            c.cps / 1e6,
            cps_delta * 100.0
        );
        // The synchronization accounting only means anything on
        // parallel rows; event rows carry zeros.
        if let (Some(r), Some(s)) = (c.rendezvous_per_stepped, c.skipped_fraction) {
            if r > 0.0 {
                let old = match (b.rendezvous_per_stepped, b.skipped_fraction) {
                    (Some(br), Some(bs)) => format!("(was {br:.3} / {bs:.3})"),
                    _ => String::new(),
                };
                println!(
                    "{:>36} rendezvous/stepped {r:.3}, skipped fraction {s:.3} {old}",
                    ""
                );
            }
        }
        if let Some(tol) = strict_tol {
            if spd_delta < -tol {
                regressions.push(format!(
                    "{label}: speedup {:.2}x -> {:.2}x ({:+.1}%)",
                    b.speedup,
                    c.speedup,
                    spd_delta * 100.0
                ));
            }
        }
    }
    for (label, _) in &cand {
        if !base.iter().any(|(l, _)| l == label) {
            println!("{label:>36} only in candidate");
        }
    }

    if !regressions.is_empty() {
        for r in &regressions {
            eprintln!("REGRESSED: {r}");
        }
        exit(1);
    }
}

fn rel(old: f64, new: f64) -> f64 {
    (new - old) / old.max(1e-9)
}

/// The `(point, row)` list from one results file, in file order.
fn load(path: &str) -> Vec<(String, Row)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_compare: {path}: {e}");
        exit(2);
    });
    let doc = parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_compare: {path}: invalid JSON: {e}");
        exit(2);
    });
    let Some(points) = doc
        .get("extra")
        .and_then(|e| e.get("kernels"))
        .and_then(Json::as_arr)
    else {
        eprintln!("bench_compare: {path}: no extra.kernels array (not a simspeed results file?)");
        exit(2);
    };
    points
        .iter()
        .filter_map(|p| {
            let label = p.get("point")?.as_str()?.to_string();
            Some((
                label,
                Row {
                    speedup: p.get("speedup")?.as_f64()?,
                    cps: p.get("cycles_per_host_sec")?.as_f64()?,
                    rendezvous_per_stepped: p.get("rendezvous_per_stepped").and_then(Json::as_f64),
                    skipped_fraction: p.get("skipped_fraction").and_then(Json::as_f64),
                },
            ))
        })
        .collect()
}
