//! Frame-lifecycle trace capture: run the 6-core line-rate
//! configuration with the full observability bundle and write a Chrome
//! `trace_event` JSON (open it at <https://ui.perfetto.dev>) plus the
//! per-frame latency stage breakdown in `results/BENCH_trace.json`.
//!
//! ```text
//! cargo run --release --bin trace -- --trace results/trace_events.json
//! cargo run --release --bin trace -- --cores 1
//! ```
//!
//! `--trace <path>` picks the trace-file destination (default
//! `results/trace_events.json`); `--cores N` and `--dispatch` come from
//! the shared bench CLI ([`nicsim_bench::Args`]).
//! The run fails if the probe observes an inconsistent frame lifecycle
//! (a stage start without its completion) or if the written trace does
//! not parse back as non-empty JSON.

use nicsim::NicConfig;
use nicsim_bench::{header, traced_run, Args};
use nicsim_exp::Json;
use std::path::Path;

fn main() {
    let args = Args::parse("BENCH_trace");
    let exp = &args.exp;
    header(
        "Frame-lifecycle trace: Chrome trace_event + latency percentiles",
        "per-frame stage breakdown for the line-rate configuration",
    );
    let cfg = args.configure(NicConfig::default());
    let default_path = Path::new("results/trace_events.json");
    let path = exp.trace_path().unwrap_or(default_path);
    let label = format!("cores={},cpu_mhz={}", cfg.cores, cfg.cpu_mhz);
    let run = traced_run(exp, &label, cfg, path);

    // The trace file must round-trip as non-empty JSON: this is the
    // smoke check CI leans on (scripts/check.sh).
    let text = std::fs::read_to_string(path).expect("read back trace file");
    let doc = nicsim_exp::json::parse(&text).expect("trace file is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| match v {
            Json::Arr(a) => Some(a.len()),
            _ => None,
        })
        .expect("trace file has a traceEvents array");
    assert!(events > 0, "trace file has no events");
    println!("trace file round-trips: {events} events");

    let extra = Json::obj().with("trace_file", path.display().to_string());
    exp.finish(vec![run], Some(extra)).expect("write results");
}
