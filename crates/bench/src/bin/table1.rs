//! Table 1: average instructions and data accesses to send and receive
//! one Ethernet frame, measured on the idealized (single-core,
//! synchronization-free) firmware. Writes `results/table1.json`.

use nicsim::NicConfig;
use nicsim_bench::{header, Args};
use nicsim_cpu::FwFunc;

fn main() {
    let args = Args::parse("table1");
    let exp = &args.exp;
    header(
        "Table 1: per-frame instructions and data accesses (idealized firmware)",
        "anchors: send 282 instr (229 MIPS), receive 253 instr (206 MIPS) at 812,744 fps",
    );
    // A 300 MHz single core is near saturation for the ideal firmware,
    // matching the paper's methodology of profiling the loaded firmware.
    let cfg = args.configure(
        NicConfig::ideal()
            .to_builder()
            .cpu_mhz(300)
            .build()
            .unwrap(),
    );
    let run = exp.run_labeled("ideal@300", cfg);
    let s = &run.stats;
    println!(
        "{:<22} {:>14} {:>14}",
        "Function", "Instructions", "Data Accesses"
    );
    let rows = [
        (FwFunc::FetchSendBd, s.tx_frames),
        (FwFunc::SendFrame, s.tx_frames),
        (FwFunc::FetchRecvBd, s.rx_frames),
        (FwFunc::RecvFrame, s.rx_frames),
    ];
    for (f, frames) in rows {
        println!(
            "{:<22} {:>14.1} {:>14.1}",
            f.label(),
            s.instr_per_frame(f, frames),
            s.accesses_per_frame(f, frames)
        );
    }
    let send_i = s.instr_per_frame(FwFunc::FetchSendBd, s.tx_frames)
        + s.instr_per_frame(FwFunc::SendFrame, s.tx_frames);
    let recv_i = s.instr_per_frame(FwFunc::FetchRecvBd, s.rx_frames)
        + s.instr_per_frame(FwFunc::RecvFrame, s.rx_frames);
    let send_a = s.accesses_per_frame(FwFunc::FetchSendBd, s.tx_frames)
        + s.accesses_per_frame(FwFunc::SendFrame, s.tx_frames);
    let recv_a = s.accesses_per_frame(FwFunc::FetchRecvBd, s.rx_frames)
        + s.accesses_per_frame(FwFunc::RecvFrame, s.rx_frames);
    println!("----------------------------------------------------------------");
    println!("send total:    {send_i:6.1} instr {send_a:6.1} accesses  (paper: ~282 instr)");
    println!("receive total: {recv_i:6.1} instr {recv_a:6.1} accesses  (paper: ~253 instr)");
    println!(
        "implied MIPS at line rate: send {:.0}, receive {:.0}  (paper: 229 / 206)",
        send_i * 812_744.0 / 1e6,
        recv_i * 812_744.0 / 1e6
    );
    exp.finish(vec![run], None).expect("write results");
}
