//! Table 5: execution profiles comparing frame-ordering methods —
//! instructions and memory accesses per packet for the ideal,
//! software-only, and RMW-enhanced firmware. The three runs execute in
//! parallel; writes `results/table5.json`.

use nicsim::NicConfig;
use nicsim_bench::{header, Args};
use nicsim_cpu::FwFunc;
use nicsim_exp::Sweep;

fn main() {
    let args = Args::parse("table5");
    let exp = &args.exp;
    header(
        "Table 5: per-packet instructions / accesses by ordering method",
        "RMW cuts send dispatch+ordering instr by 51.5%, recv by 30.8%; accesses by 65.0%/35.2%",
    );
    let sweep = Sweep::new(NicConfig::default()).axis_configs(
        "firmware",
        [
            (
                "ideal@300",
                args.configure(
                    NicConfig::ideal()
                        .to_builder()
                        .cpu_mhz(300)
                        .build()
                        .unwrap(),
                ),
            ),
            (
                "software@200",
                args.configure(NicConfig::software_only_200()),
            ),
            ("rmw@166", args.configure(NicConfig::rmw_166())),
        ],
    );
    let report = exp.sweep(&sweep);
    let (ideal, sw, rmw) = (
        &report.runs[0].stats,
        &report.runs[1].stats,
        &report.runs[2].stats,
    );

    println!(
        "{:<30} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "", "ideal", "sw-only", "RMW", "ideal", "sw-only", "RMW"
    );
    println!(
        "{:<30} | {:^26} | {:^26}",
        "Function", "Instructions per Packet", "Accesses per Packet"
    );
    let rows = [
        FwFunc::FetchSendBd,
        FwFunc::SendFrame,
        FwFunc::SendDispatch,
        FwFunc::SendLock,
        FwFunc::FetchRecvBd,
        FwFunc::RecvFrame,
        FwFunc::RecvDispatch,
        FwFunc::RecvLock,
    ];
    let frames = |s: &nicsim::RunStats, f: FwFunc| match f {
        FwFunc::FetchSendBd | FwFunc::SendFrame | FwFunc::SendDispatch | FwFunc::SendLock => {
            s.tx_frames
        }
        _ => s.rx_frames,
    };
    for f in rows {
        println!(
            "{:<30} | {:>8.1} {:>8.1} {:>8.1} | {:>8.1} {:>8.1} {:>8.1}",
            f.label(),
            ideal.instr_per_frame(f, frames(ideal, f)),
            sw.instr_per_frame(f, frames(sw, f)),
            rmw.instr_per_frame(f, frames(rmw, f)),
            ideal.accesses_per_frame(f, frames(ideal, f)),
            sw.accesses_per_frame(f, frames(sw, f)),
            rmw.accesses_per_frame(f, frames(rmw, f)),
        );
    }
    let ord = |s: &nicsim::RunStats, d: FwFunc| s.instr_per_frame(d, frames(s, d));
    let sd = 100.0 * (1.0 - ord(rmw, FwFunc::SendDispatch) / ord(sw, FwFunc::SendDispatch));
    let rd = 100.0 * (1.0 - ord(rmw, FwFunc::RecvDispatch) / ord(sw, FwFunc::RecvDispatch));
    let orda = |s: &nicsim::RunStats, d: FwFunc| s.accesses_per_frame(d, frames(s, d));
    let sda = 100.0 * (1.0 - orda(rmw, FwFunc::SendDispatch) / orda(sw, FwFunc::SendDispatch));
    let rda = 100.0 * (1.0 - orda(rmw, FwFunc::RecvDispatch) / orda(sw, FwFunc::RecvDispatch));
    println!("----------------------------------------------------------------");
    println!("RMW reduction, dispatch+ordering instructions: send {sd:.1}% (paper 51.5%), recv {rd:.1}% (paper 30.8%)");
    println!("RMW reduction, dispatch+ordering accesses:     send {sda:.1}% (paper 65.0%), recv {rda:.1}% (paper 35.2%)");
    exp.write(&report).expect("write results");
}
