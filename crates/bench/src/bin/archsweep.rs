//! Architecture sweep over the declarative system definition: how
//! full-duplex UDP throughput responds to the frame-side topology —
//! DMA engine pairs and MACs, the `SysDef` axes — alongside the core
//! count. The paper's board is fixed at one DMA pair and one MAC; this
//! sweep is the what-if the `SysDef` layer exists to ask.
//!
//! Each topology point recomposes the SoC (crossbar ports, scratchpad
//! memory map, dispatch sources, clock-domain membership) from the
//! same declarative definition the default system is built from.
//! Results land in `results/archsweep.json`; every row carries its
//! full resolved configuration (including `"topology"`), so any point
//! can be rebuilt and re-run from the results file alone.
//!
//! Run with: `cargo run --release --bin archsweep -- --jobs 8`.

use nicsim::{NicConfig, SysDef};
use nicsim_bench::{header, Args};
use nicsim_exp::{RunSpec, Sweep};

fn main() {
    let args = Args::parse("archsweep");
    let exp = &args.exp;
    header(
        "Architecture sweep: cores x DMA engines (SysDef topologies)",
        "the paper's board is 1 DMA pair + 1 MAC; extra frame-side units probe the next bottleneck",
    );
    let cores = [2usize, 4, 6];
    let engines = [1usize, 2];
    let base = args.configure(NicConfig::default());
    let sweep = Sweep::new(base)
        .axis("cores", cores, |cfg, v| cfg.cores = v)
        .axis("dma_engines", engines, |cfg, v| {
            cfg.topology.dma_engines = v;
        });
    let mut specs = sweep.runs().expect("valid sweep");
    // A dual-MAC point rides along in the same pool: the widest
    // frame-side the default 256 KB scratchpad map accommodates.
    specs.push(RunSpec::single(
        "cores=6,dma_engines=2,macs=2",
        base.to_builder()
            .cores(6)
            .dma_engines(2)
            .macs(2)
            .build()
            .expect("valid dual-MAC topology"),
    ));
    let report = exp.run_specs(specs);

    println!("full-duplex UDP throughput (Gb/s); Ethernet limit = 19.15");
    print!("{:>6}", "cores");
    for e in engines {
        print!(
            " {:>12}",
            format!("{e} DMA pair{}", if e == 1 { "" } else { "s" })
        );
    }
    println!();
    // Row-major over (cores, dma_engines): the engine axis varies fastest.
    for (ci, c) in cores.iter().enumerate() {
        print!("{c:>6}");
        for ei in 0..engines.len() {
            let s = &report.runs[ci * engines.len() + ei].stats;
            print!(" {:>12.2}", s.total_udp_gbps());
        }
        println!();
    }
    let wide = report.runs.last().expect("dual-MAC run");
    let def = SysDef::from_config(&wide.config);
    println!(
        "6 cores, 2 DMA pairs, 2 MACs: {:.2} Gb/s ({} components on {} crossbar ports)",
        wide.stats.total_udp_gbps(),
        def.components.len(),
        def.xbar_ports()
    );
    exp.write(&report).expect("write results");
}
