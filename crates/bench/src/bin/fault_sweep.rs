//! Fault sweep: goodput under increasing deterministic fault pressure.
//!
//! Runs the paper's headline configuration (6 RMW-enhanced cores at
//! 166 MHz) through `FaultPlan::with_rate` at rates 0 through 1e-2 —
//! link corruption/truncation, transient DMA errors, PCI stalls, and
//! ECC events all scale together — plus a plan-free baseline. Checks
//! the fault plane's two headline properties along the way: the
//! zero-rate armed run is bit-identical to the clean baseline, and
//! goodput degrades monotonically as the rate climbs. Results land in
//! `results/fault_sweep.json`; the goodput/error curve is under
//! `"extra"`.
//!
//! `--faults <spec>` overrides the seed (and retry/backoff/hang knobs)
//! the swept plans inherit: `fault_sweep --faults seed=42,retries=1`.
//!
//! A second section, `fleet_fault`, sweeps fabric corruption over a
//! small reliable-mode fleet: per-flow retransmission must recover
//! every destroyed frame (delivered-exactly-once equals offered) while
//! the retransmit budget holds, and delivery must never *improve* as
//! the corruption rate climbs. Its curve lands under
//! `"extra"."fleet_fault"`.

use nicsim::{DispatchMode, FaultPlan, NicConfig, RunStats};
use nicsim_bench::{header, Args};
use nicsim_exp::{Json, RunSpec};
use nicsim_fleet::{Fleet, FleetConfig};
use nicsim_net::workload::{Arrivals, Pattern, SizeMix, Workload};
use nicsim_net::FabricConfig;
use nicsim_sim::Ps;

const RATES: [f64; 5] = [0.0, 1e-5, 1e-4, 1e-3, 1e-2];

/// Fabric-corruption ladder for the reliable-mode fleet sweep. The
/// low rungs must deliver 100%: with a 30 us RTO and a drain margin
/// as long as the offered schedule, a frame has several retransmit
/// rounds available, far more than a few-percent loss rate consumes.
/// The top rung destroys so much that exponential backoff pushes the
/// last retries past the horizon — delivery is allowed to fall there,
/// just never to rise.
const FLEET_CRC_RATES: [f64; 5] = [0.0, 5e-3, 2e-2, 8e-2, 4e-1];

/// Rungs at or below this rate must deliver every offered frame
/// exactly once; above it the assertion relaxes to monotonicity.
const FLEET_FULL_DELIVERY_MAX: f64 = 2e-2;

fn main() {
    let args = Args::parse("fault_sweep");
    let exp = &args.exp;
    header(
        "Fault sweep: goodput vs injected error rate (6 RMW cores @ 166 MHz)",
        "zero-rate run bit-identical to clean; goodput degrades monotonically; no hangs",
    );
    // `--faults` seeds the sweep's plans; the rates come from RATES.
    let base = exp.faults().unwrap_or(FaultPlan::with_rate(7, 0.0));
    let mut specs = vec![RunSpec::single(
        "clean",
        args.configure(NicConfig::default()),
    )];
    for rate in RATES {
        let plan = FaultPlan {
            link_corrupt: rate,
            link_truncate: rate * 0.1,
            dma_error: rate,
            dma_stall: rate,
            ecc: rate,
            ..base
        };
        specs.push(RunSpec::single(
            &format!("rate={rate:e}"),
            args.configure(NicConfig::default())
                .to_builder()
                .faults(Some(plan))
                .build()
                .expect("valid fault-sweep config"),
        ));
    }
    let report = exp.run_specs(specs);

    let clean = &report.runs[0].stats;
    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>9} {:>8} {:>9}",
        "rate", "goodput Gb/s", "crc drops", "dma retry", "aborts", "ecc", "resets"
    );
    println!(
        "{:>8} {:>12.2} {:>10} {:>10} {:>9} {:>8} {:>9}",
        "none",
        clean.total_udp_gbps(),
        "-",
        "-",
        "-",
        "-",
        "-"
    );
    let mut curve = Vec::new();
    let mut prev_goodput = f64::INFINITY;
    for (i, rate) in RATES.iter().enumerate() {
        let s = &report.runs[i + 1].stats;
        let e = s.errors.expect("swept runs carry a plan");
        println!(
            "{:>8.0e} {:>12.2} {:>10} {:>10} {:>9} {:>8} {:>9}",
            rate,
            s.total_udp_gbps(),
            e.crc_dropped,
            e.dma_retries_ok,
            e.dma_aborts,
            e.ecc_corrections,
            e.watchdog_resets
        );
        curve.push(
            Json::obj()
                .with("rate", *rate)
                .with("goodput_gbps", s.total_udp_gbps())
                .with("crc_dropped", e.crc_dropped)
                .with("dma_retries_ok", e.dma_retries_ok)
                .with("dma_aborts", e.dma_aborts)
                .with("ecc_corrections", e.ecc_corrections)
                .with("watchdog_resets", e.watchdog_resets),
        );
        if *rate == 0.0 {
            assert_zero_rate_matches_clean(clean, s);
        } else if *rate >= 1e-3 {
            // Tiny rates can legitimately draw nothing over a short
            // window; from 1e-3 up the expected count is far above 1.
            assert!(
                e.injected() > 0,
                "rate {rate:e} injected nothing — plan not wired through"
            );
        }
        assert!(
            s.total_udp_gbps() <= prev_goodput * 1.01,
            "goodput rose from {prev_goodput:.3} to {:.3} Gb/s at rate {rate:e}",
            s.total_udp_gbps()
        );
        prev_goodput = s.total_udp_gbps();
    }
    println!("zero-rate armed run matches the clean baseline bit for bit");
    let fleet_fault = fleet_fault_sweep(&args, base.seed);
    let extra = Json::obj()
        .with("seed", base.seed)
        .with("clean_goodput_gbps", clean.total_udp_gbps())
        .with("curve", Json::Arr(curve))
        .with("fleet_fault", fleet_fault);
    exp.finish(report.runs, Some(extra)).expect("write results");
}

/// Reliable delivery under fabric corruption, swept over
/// [`FLEET_CRC_RATES`] on a 4-NIC fleet. Each rung schedules the same
/// offered load over 300 us and runs 600 us — the tail is drain margin
/// for the last retransmission round-trips — then checks the two
/// recovery contracts: full delivery on the low rungs, and a delivered
/// count that never rises with the corruption rate.
fn fleet_fault_sweep(args: &Args, seed: u64) -> Json {
    let nics = 4usize;
    let horizon = Ps::from_us(300);
    let window = Ps::from_us(600);
    let workload = Workload {
        pattern: Pattern::Uniform,
        sizes: SizeMix::Fixed(256),
        arrivals: Arrivals::Poisson,
        fps: 60_000.0,
        seed: 11,
        reliable: true,
        rto_us: 30,
    };
    let nic = args
        .configure(NicConfig::default())
        .to_builder()
        .cores(2)
        .cpu_mhz(500)
        .dispatch(DispatchMode::Polling)
        .build()
        .expect("valid fleet-fault NIC config");
    let offered: u64 = (0..nics)
        .map(|i| workload.schedule(i, nics, horizon).len() as u64)
        .sum();
    println!("fleet_fault: {nics} NICs, reliable mode, {offered} frames offered");
    println!(
        "{:>8} {:>10} {:>10} {:>12} {:>10}",
        "fab_crc", "delivered", "crc drops", "retransmits", "dup drops"
    );
    let mut curve = Vec::new();
    let mut prev_delivered = u64::MAX;
    for rate in FLEET_CRC_RATES {
        let plan = FaultPlan {
            fabric_corrupt: rate,
            ..FaultPlan::with_rate(seed, 0.0)
        };
        let cfg = FleetConfig {
            nics,
            shards: 2,
            nic: nic
                .to_builder()
                .faults(Some(plan))
                .build()
                .expect("valid faulted fleet config"),
            fabric: FabricConfig::default(),
            workload,
        };
        let mut fleet = Fleet::new(cfg, horizon).expect("valid fleet config");
        let stats = fleet.run_measured(Ps::ZERO, window);
        let delivered = stats.delivered_frames();
        let errors = stats.errors_total().unwrap_or_default();
        println!(
            "{:>8.0e} {:>10} {:>10} {:>12} {:>10}",
            rate, delivered, errors.crc_dropped, errors.tx_retransmits, errors.rx_duplicates
        );
        if rate <= FLEET_FULL_DELIVERY_MAX {
            assert_eq!(
                delivered, offered,
                "fab_crc {rate:e}: reliable mode failed to deliver every offered \
                 frame exactly once ({} retransmits, {} crc drops)",
                errors.tx_retransmits, errors.crc_dropped
            );
        }
        if rate >= FLEET_FULL_DELIVERY_MAX {
            // The low rungs can legitimately destroy nothing over a
            // few hundred frames; from 2e-2 up the expected drop
            // count is well above 1, so recovery must be exercised.
            assert!(
                errors.crc_dropped > 0,
                "fab_crc {rate:e} destroyed nothing — recovery is vacuous"
            );
            assert!(
                errors.tx_retransmits > 0,
                "fab_crc {rate:e}: losses happened but nothing was retransmitted"
            );
        } else if rate == 0.0 {
            assert_eq!(
                errors.tx_retransmits, 0,
                "retransmitted with nothing lost — the RTO is too tight for the fleet"
            );
        }
        assert!(
            delivered <= prev_delivered,
            "delivery rose from {prev_delivered} to {delivered} frames at fab_crc {rate:e}"
        );
        prev_delivered = delivered;
        curve.push(
            Json::obj()
                .with("fab_crc", rate)
                .with("delivered", delivered)
                .with("offered", offered)
                .with("crc_dropped", errors.crc_dropped)
                .with("tx_retransmits", errors.tx_retransmits)
                .with("rx_duplicates", errors.rx_duplicates),
        );
    }
    println!("reliable mode delivered 100% through fab_crc {FLEET_FULL_DELIVERY_MAX:e}");
    Json::obj()
        .with("nics", nics as u64)
        .with("offered", offered)
        .with("rto_us", workload.rto_us)
        .with("curve", Json::Arr(curve))
}

/// The armed-but-silent run must not move the simulation: identical
/// stats apart from `errors` being `Some(zeros)` instead of `None`.
fn assert_zero_rate_matches_clean(clean: &RunStats, armed: &RunStats) {
    let mut stripped = armed.clone();
    assert_eq!(
        stripped.errors.take(),
        Some(Default::default()),
        "zero-rate plan reported nonzero error counters"
    );
    assert_eq!(
        clean, &stripped,
        "arming the fault plane at rate 0 changed the simulation"
    );
}
