//! Fault sweep: goodput under increasing deterministic fault pressure.
//!
//! Runs the paper's headline configuration (6 RMW-enhanced cores at
//! 166 MHz) through `FaultPlan::with_rate` at rates 0 through 1e-2 —
//! link corruption/truncation, transient DMA errors, PCI stalls, and
//! ECC events all scale together — plus a plan-free baseline. Checks
//! the fault plane's two headline properties along the way: the
//! zero-rate armed run is bit-identical to the clean baseline, and
//! goodput degrades monotonically as the rate climbs. Results land in
//! `results/fault_sweep.json`; the goodput/error curve is under
//! `"extra"`.
//!
//! `--faults <spec>` overrides the seed (and retry/backoff/hang knobs)
//! the swept plans inherit: `fault_sweep --faults seed=42,retries=1`.

use nicsim::{FaultPlan, NicConfig, RunStats};
use nicsim_bench::{header, Args};
use nicsim_exp::{Json, RunSpec};

const RATES: [f64; 5] = [0.0, 1e-5, 1e-4, 1e-3, 1e-2];

fn main() {
    let args = Args::parse("fault_sweep");
    let exp = &args.exp;
    header(
        "Fault sweep: goodput vs injected error rate (6 RMW cores @ 166 MHz)",
        "zero-rate run bit-identical to clean; goodput degrades monotonically; no hangs",
    );
    // `--faults` seeds the sweep's plans; the rates come from RATES.
    let base = exp.faults().unwrap_or(FaultPlan::with_rate(7, 0.0));
    let mut specs = vec![RunSpec::single(
        "clean",
        args.configure(NicConfig::default()),
    )];
    for rate in RATES {
        let plan = FaultPlan {
            link_corrupt: rate,
            link_truncate: rate * 0.1,
            dma_error: rate,
            dma_stall: rate,
            ecc: rate,
            ..base
        };
        specs.push(RunSpec::single(
            &format!("rate={rate:e}"),
            args.configure(NicConfig::default())
                .to_builder()
                .faults(Some(plan))
                .build()
                .expect("valid fault-sweep config"),
        ));
    }
    let report = exp.run_specs(specs);

    let clean = &report.runs[0].stats;
    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>9} {:>8} {:>9}",
        "rate", "goodput Gb/s", "crc drops", "dma retry", "aborts", "ecc", "resets"
    );
    println!(
        "{:>8} {:>12.2} {:>10} {:>10} {:>9} {:>8} {:>9}",
        "none",
        clean.total_udp_gbps(),
        "-",
        "-",
        "-",
        "-",
        "-"
    );
    let mut curve = Vec::new();
    let mut prev_goodput = f64::INFINITY;
    for (i, rate) in RATES.iter().enumerate() {
        let s = &report.runs[i + 1].stats;
        let e = s.errors.expect("swept runs carry a plan");
        println!(
            "{:>8.0e} {:>12.2} {:>10} {:>10} {:>9} {:>8} {:>9}",
            rate,
            s.total_udp_gbps(),
            e.crc_dropped,
            e.dma_retries_ok,
            e.dma_aborts,
            e.ecc_corrections,
            e.watchdog_resets
        );
        curve.push(
            Json::obj()
                .with("rate", *rate)
                .with("goodput_gbps", s.total_udp_gbps())
                .with("crc_dropped", e.crc_dropped)
                .with("dma_retries_ok", e.dma_retries_ok)
                .with("dma_aborts", e.dma_aborts)
                .with("ecc_corrections", e.ecc_corrections)
                .with("watchdog_resets", e.watchdog_resets),
        );
        if *rate == 0.0 {
            assert_zero_rate_matches_clean(clean, s);
        } else if *rate >= 1e-3 {
            // Tiny rates can legitimately draw nothing over a short
            // window; from 1e-3 up the expected count is far above 1.
            assert!(
                e.injected() > 0,
                "rate {rate:e} injected nothing — plan not wired through"
            );
        }
        assert!(
            s.total_udp_gbps() <= prev_goodput * 1.01,
            "goodput rose from {prev_goodput:.3} to {:.3} Gb/s at rate {rate:e}",
            s.total_udp_gbps()
        );
        prev_goodput = s.total_udp_gbps();
    }
    println!("zero-rate armed run matches the clean baseline bit for bit");
    let extra = Json::obj()
        .with("seed", base.seed)
        .with("clean_goodput_gbps", clean.total_udp_gbps())
        .with("curve", Json::Arr(curve));
    exp.finish(report.runs, Some(extra)).expect("write results");
}

/// The armed-but-silent run must not move the simulation: identical
/// stats apart from `errors` being `Some(zeros)` instead of `None`.
fn assert_zero_rate_matches_clean(clean: &RunStats, armed: &RunStats) {
    let mut stripped = armed.clone();
    assert_eq!(
        stripped.errors.take(),
        Some(Default::default()),
        "zero-rate plan reported nonzero error counters"
    );
    assert_eq!(
        clean, &stripped,
        "arming the fault plane at rate 0 changed the simulation"
    );
}
