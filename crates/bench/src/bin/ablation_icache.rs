//! Ablation: per-core instruction cache size. The paper's 8 KB 2-way
//! caches make I-miss stalls negligible (0.01 IPC) even though tasks
//! migrate between cores. The five runs execute in parallel; writes
//! `results/ablation_icache.json`.

use nicsim::NicConfig;
use nicsim_bench::{header, Args};
use nicsim_cpu::StallBucket;
use nicsim_exp::Sweep;
use nicsim_mem::ICacheConfig;

fn main() {
    let args = Args::parse("ablation_icache");
    let exp = &args.exp;
    header(
        "Ablation: per-core I-cache capacity (6 cores, RMW, 166 MHz)",
        "paper: 8 KB 2-way captures the code working set despite task migration",
    );
    let sweep = Sweep::new(args.configure(NicConfig::rmw_166())).axis(
        "icache_kb",
        [1usize, 2, 4, 8, 16],
        |cfg, kb| {
            cfg.icache = ICacheConfig {
                bytes: kb * 1024,
                ways: 2,
                line_bytes: 32,
            };
        },
    );
    let report = exp.sweep(&sweep);
    println!(
        "{:>8} {:>12} {:>12} {:>14}",
        "bytes", "Gb/s", "imiss IPC", "hit rate %"
    );
    for run in &report.runs {
        let s = &run.stats;
        println!(
            "{:>8} {:>12.2} {:>12.3} {:>14.2}",
            run.config.icache.bytes,
            s.total_udp_gbps(),
            s.ipc_contribution(StallBucket::IMiss),
            s.icache_hits as f64 * 100.0 / (s.icache_hits + s.icache_misses).max(1) as f64
        );
    }
    exp.write(&report).expect("write results");
}
