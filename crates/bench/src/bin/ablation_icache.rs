//! Ablation: per-core instruction cache size. The paper's 8 KB 2-way
//! caches make I-miss stalls negligible (0.01 IPC) even though tasks
//! migrate between cores.

use nicsim::NicConfig;
use nicsim_bench::{header, measure};
use nicsim_cpu::StallBucket;
use nicsim_mem::ICacheConfig;

fn main() {
    header(
        "Ablation: per-core I-cache capacity (6 cores, RMW, 166 MHz)",
        "paper: 8 KB 2-way captures the code working set despite task migration",
    );
    println!("{:>8} {:>12} {:>12} {:>14}", "bytes", "Gb/s", "imiss IPC", "hit rate %");
    for kb in [1usize, 2, 4, 8, 16] {
        let cfg = NicConfig {
            icache: ICacheConfig {
                bytes: kb * 1024,
                ways: 2,
                line_bytes: 32,
            },
            ..NicConfig::rmw_166()
        };
        let s = measure(cfg);
        println!(
            "{:>8} {:>12.2} {:>12.3} {:>14.2}",
            kb * 1024,
            s.total_udp_gbps(),
            s.ipc_contribution(StallBucket::IMiss),
            s.icache_hits as f64 * 100.0 / (s.icache_hits + s.icache_misses).max(1) as f64
        );
    }
}
