//! Table 2: theoretical peak IPCs of NIC firmware for different
//! processor configurations, from an offline analysis of a dynamic
//! instruction trace of the idealized firmware. Writes
//! `results/table2.json` with the IPC matrix under `"extra"`.

use nicsim::NicConfig;
use nicsim_bench::{header, to_ilp_trace, Args};
use nicsim_exp::Json;
use nicsim_ilp::{analyze, expand, BranchModel, IssueOrder, PipelineModel, ProcessorConfig};

fn main() {
    let args = Args::parse("table2");
    let exp = &args.exp;
    header(
        "Table 2: theoretical peak IPCs of NIC firmware",
        "trends: in-order prefers hazard removal; out-of-order prefers branch prediction",
    );
    let cfg = args.configure(
        NicConfig::ideal()
            .to_builder()
            .cpu_mhz(300)
            .capture_ilp(true)
            .build()
            .unwrap(),
    );
    let (run, mut sys) = exp.run_with_system("ideal@300+ilp", cfg);
    let mut events = sys.take_ilp_trace().expect("ILP capture enabled");
    // The IPC limits converge within a few hundred thousand
    // instructions; truncate so the offline analysis stays quick.
    events.truncate(120_000);
    let trace = expand(&to_ilp_trace(&events));
    println!("dynamic trace: {} instructions", trace.len());
    println!(
        "{:<10} {:>6} | {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "Issue", "Width", "PP+PBP", "PP+NoBP", "St+PBP", "St+PBP1", "St+NoBP"
    );
    let mut extra_rows = Vec::new();
    for order in [IssueOrder::InOrder, IssueOrder::OutOfOrder] {
        for width in [1u32, 2, 4] {
            let run_cfg = |pipe, bp| {
                analyze(
                    &trace,
                    ProcessorConfig {
                        order,
                        width,
                        pipeline: pipe,
                        branches: bp,
                    },
                )
            };
            let cells = [
                (
                    "pp_pbp",
                    run_cfg(PipelineModel::Perfect, BranchModel::Perfect),
                ),
                (
                    "pp_nobp",
                    run_cfg(PipelineModel::Perfect, BranchModel::None),
                ),
                (
                    "st_pbp",
                    run_cfg(PipelineModel::Stalls, BranchModel::Perfect),
                ),
                ("st_pbp1", run_cfg(PipelineModel::Stalls, BranchModel::Pbp1)),
                ("st_nobp", run_cfg(PipelineModel::Stalls, BranchModel::None)),
            ];
            let issue = if order == IssueOrder::InOrder {
                "in-order"
            } else {
                "OOO"
            };
            println!(
                "{:<10} {:>6} | {:>8.2} {:>8.2} | {:>8.2} {:>8.2} {:>8.2}",
                issue, width, cells[0].1, cells[1].1, cells[2].1, cells[3].1, cells[4].1,
            );
            let mut row = Json::obj()
                .with("issue", issue)
                .with("width", u64::from(width));
            for (key, ipc) in cells {
                row.set(key, ipc);
            }
            extra_rows.push(row);
        }
    }
    println!("(PP = perfect pipeline, St = 5-stage with stalls)");
    let extra = Json::obj()
        .with("trace_instructions", trace.len())
        .with("peak_ipc", Json::Arr(extra_rows));
    exp.finish(vec![run], Some(extra)).expect("write results");
}
