//! Table 2: theoretical peak IPCs of NIC firmware for different
//! processor configurations, from an offline analysis of a dynamic
//! instruction trace of the idealized firmware.

use nicsim::NicConfig;
use nicsim_bench::{header, measure_with_system, to_ilp_trace};
use nicsim_ilp::{analyze, expand, BranchModel, IssueOrder, PipelineModel, ProcessorConfig};

fn main() {
    header(
        "Table 2: theoretical peak IPCs of NIC firmware",
        "trends: in-order prefers hazard removal; out-of-order prefers branch prediction",
    );
    let cfg = NicConfig {
        cpu_mhz: 300,
        capture_ilp: true,
        ..NicConfig::ideal()
    };
    let (_, mut sys) = measure_with_system(cfg);
    let mut events = sys.take_ilp_trace().expect("ILP capture enabled");
    // The IPC limits converge within a few hundred thousand
    // instructions; truncate so the offline analysis stays quick.
    events.truncate(120_000);
    let trace = expand(&to_ilp_trace(&events));
    println!("dynamic trace: {} instructions", trace.len());
    println!(
        "{:<10} {:>6} | {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "Issue", "Width", "PP+PBP", "PP+NoBP", "St+PBP", "St+PBP1", "St+NoBP"
    );
    for order in [IssueOrder::InOrder, IssueOrder::OutOfOrder] {
        for width in [1u32, 2, 4] {
            let run = |pipe, bp| {
                analyze(
                    &trace,
                    ProcessorConfig {
                        order,
                        width,
                        pipeline: pipe,
                        branches: bp,
                    },
                )
            };
            println!(
                "{:<10} {:>6} | {:>8.2} {:>8.2} | {:>8.2} {:>8.2} {:>8.2}",
                if order == IssueOrder::InOrder { "in-order" } else { "OOO" },
                width,
                run(PipelineModel::Perfect, BranchModel::Perfect),
                run(PipelineModel::Perfect, BranchModel::None),
                run(PipelineModel::Stalls, BranchModel::Perfect),
                run(PipelineModel::Stalls, BranchModel::Pbp1),
                run(PipelineModel::Stalls, BranchModel::None),
            );
        }
    }
    println!("(PP = perfect pipeline, St = 5-stage with stalls)");
}
