//! Figure 3: cache hit ratio for the 6-core configuration with MESI
//! coherence, per-processor cache sizes 16 B – 32 KB, fully associative,
//! LRU, 16-byte lines. DMA read/write traces are interleaved into one
//! cache and MAC TX/RX into another, as the paper does for SMPCache's
//! 8-cache limit. Writes `results/fig3.json` with the hit-ratio curve
//! under `"extra"`.

use nicsim::NicConfig;
use nicsim_bench::{header, Args};
use nicsim_coherence::{sweep_sizes, Access};
use nicsim_exp::Json;
use nicsim_mem::{AccessKind, AccessTrace};

/// The paper filters traces "to include only frame metadata". Locks,
/// progress counters, statistics, and the per-core event scratch are
/// synchronization/queue state, not metadata; what remains is the
/// descriptor rings, BD caches and pools, frame slots, status bits, and
/// return-descriptor staging.
fn is_frame_metadata(m: &nicsim_firmware::MemMap, addr: u32) -> bool {
    addr >= m.dmard_ring && addr < m.stats
}

fn main() {
    let args = Args::parse("fig3");
    let exp = &args.exp;
    header(
        "Figure 3: MESI hit ratio vs per-processor cache size (6 cores)",
        "hit ratio never exceeds ~55%; <1% of writes invalidate",
    );
    let cfg = args.configure(NicConfig::builder().faults(exp.faults()).build().unwrap());
    let (run, sys) = exp.run_with_probe("rmw@166+trace", cfg, AccessTrace::with_limit(2_000_000));
    let cores = sys.config().cores;
    let m = sys.map();
    let trace = sys.unwrap_probe();
    // Cores keep their ids; DMA pair -> cache 6; MAC pair -> cache 7.
    let merged = trace.merge_requesters(|r| {
        if r < cores {
            r
        } else if r < cores + 2 {
            cores // DMA read + DMA write interleaved
        } else {
            cores + 1 // MAC TX + MAC RX interleaved
        }
    });
    let accesses: Vec<Access> = merged
        .records()
        .iter()
        .filter(|r| is_frame_metadata(&m, r.addr))
        .map(|r| Access {
            requester: r.requester,
            addr: r.addr as u64,
            write: r.kind == AccessKind::Write,
        })
        .collect();
    println!(
        "replaying {} metadata accesses into 8 caches",
        accesses.len()
    );
    let sizes: Vec<usize> = (4..=15).map(|p| 1usize << p).collect(); // 16B..32KB
    println!(
        "{:>10} {:>12} {:>22}",
        "size", "hit ratio %", "invalidating writes %"
    );
    let mut max_ratio: f64 = 0.0;
    let mut curve = Vec::new();
    for (size, ratio, inv) in sweep_sizes(cores + 2, 16, &sizes, &accesses) {
        println!("{:>10} {:>12.1} {:>22.2}", size, ratio, inv * 100.0);
        max_ratio = max_ratio.max(ratio);
        curve.push(
            Json::obj()
                .with("cache_bytes", size)
                .with("hit_ratio_pct", ratio)
                .with("invalidating_writes_pct", inv * 100.0),
        );
    }
    println!("maximum collective hit ratio: {max_ratio:.1}% (paper: never above 55%)");
    let extra = Json::obj()
        .with("metadata_accesses", accesses.len())
        .with("max_hit_ratio_pct", max_ratio)
        .with("mesi_curve", Json::Arr(curve));
    exp.finish(vec![run], Some(extra)).expect("write results");
}
