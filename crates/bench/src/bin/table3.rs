//! Table 3: breakdown of computation bandwidth in instructions per cycle
//! per core, for six cores at 200 MHz at line rate. Writes
//! `results/table3.json` (the IPC breakdown is part of every run's
//! `stats.ipc_breakdown`).

use nicsim::NicConfig;
use nicsim_bench::{header, Args};
use nicsim_cpu::StallBucket;

fn main() {
    let args = Args::parse("table3");
    let exp = &args.exp;
    header(
        "Table 3: per-core IPC breakdown, 6 cores at 200 MHz",
        "paper: execution 0.72, I-miss 0.01, load 0.12, conflicts 0.05, pipeline 0.10",
    );
    let run = exp.run_labeled(
        "software@200",
        args.configure(NicConfig::software_only_200()),
    );
    let s = &run.stats;
    println!(
        "line rate achieved: {:.2} Gb/s of 19.15",
        s.total_udp_gbps()
    );
    println!("{:<30} {:>8}", "Component", "IPC");
    let mut total = 0.0;
    for b in StallBucket::ALL {
        let v = s.ipc_contribution(b);
        total += v;
        println!("{:<30} {:>8.2}", b.label(), v);
    }
    println!("{:<30} {:>8.2}", "Total", total);
    println!("achieved IPC (executed instructions): {:.2}", s.ipc());
    println!(
        "i-cache hit rate: {:.3}%",
        s.icache_hits as f64 * 100.0 / (s.icache_hits + s.icache_misses).max(1) as f64
    );
    exp.finish(vec![run], None).expect("write results");
}
