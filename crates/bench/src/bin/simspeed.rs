//! Simulation-speed benchmark: dense reference kernel vs the hybrid
//! event-driven kernel, on the workloads the paper's figures hinge on.
//!
//! Two saturated configurations bracket the polling speedup range:
//!
//! * 1 core @ 200 MHz (a Figure 7 point): the firmware is the
//!   bottleneck and core stall spans (multi-cycle ALU runs, I-miss
//!   fills) let the event kernel skip ~34% of cycles and bypass idle
//!   components on the rest — measured ~1.7x wall-clock, floor 1.4x.
//!   The skip fraction is structural, not an implementation gap: the
//!   paper's firmware is a *polling* design, so even a quiescent NIC
//!   keeps a scratchpad load in flight on roughly half of all cycles
//!   (the dispatch loop sweeps ten event sources), and saturated
//!   firmware issues an op every 1-2 cycles.
//! * 6 cores @ 200 MHz (the line-rate configuration): nearly every
//!   cycle has crossbar traffic, so nothing is skippable — the event
//!   kernel must at least break even (per-component gating pays for
//!   the wake checks; measured ~1.05x).
//!
//! Two moderate-load points (1 core, receive-only, 20k frames/s —
//! well under what one core sustains) expose the dispatch-mode ceiling
//! that motivates interrupt-driven firmware: polling busy-waits through
//! the quiet gaps so the event kernel still steps most cycles, while
//! under `--dispatch interrupt` the core parks in `wfi` and the doorbell
//! watch makes whole inter-frame gaps skippable — floor 3x over dense,
//! measured far above it. One more row times the domain-parallel kernel
//! (`run_until_parallel`) on the line-rate point; it is reported for
//! the record (the per-cycle rendezvous makes its profit host-and-load
//! dependent) but its stats must still be bit-identical.
//!
//! Each configuration runs on both kernels with identical windows; the
//! stats must be bit-identical (the equivalence guarantee, re-asserted
//! here on the real benchmark workload). Results land in
//! `results/BENCH_simspeed.json` with per-point wall times, simulated
//! cycles, cycles-per-host-second, and speedups.
//!
//! Smoke mode (`NICSIM_SIMSPEED_SMOKE=1`, implied by `NICSIM_QUICK=1`)
//! shrinks the windows and exits non-zero on a correctness mismatch or
//! an event-kernel slowdown beyond 30% — the CI guardrail.
//!
//! Overhead guard: `NICSIM_SIMSPEED_BASELINE=<results file>` compares
//! the saturated polling points' `cycles_per_host_sec` against the
//! committed baseline (`results/BENCH_simspeed.json`) and fails on a
//! regression beyond 5% (`NICSIM_BASELINE_TOL` overrides the
//! fraction; `scripts/check.sh` widens it — absolute throughput on a
//! shared CI host is noisy, and the in-process speedup floors are the
//! tight gates). This is how the
//! observability layer proves its disabled-probe ([`nicsim::NullProbe`])
//! path costs nothing: the simulator must still hit the throughput it
//! hit before the probe layer existed.

use nicsim::{DispatchMode, FwMode, NicConfig, NicSystem};
use nicsim_bench::{header, Args};
use nicsim_exp::{Json, RunReport};
use std::time::Instant;

/// Which fast kernel a point races against the dense reference.
#[derive(Clone, Copy, PartialEq)]
enum Kernel {
    Event,
    Parallel,
}

struct Point {
    label: &'static str,
    cfg: NicConfig,
    kernel: Kernel,
    /// Whether the absolute cycles-per-host-second baseline guard
    /// applies. Only the saturated polling points carry it: their wall
    /// times are long enough for the tolerance to be signal, while the
    /// interrupt and parallel rows finish in milliseconds and are
    /// already gated by their in-process speedup floors.
    guard_cps: bool,
    /// Minimum acceptable dense/fast wall-clock ratio: the saturated
    /// 1-core point must show a real speedup (measured ~1.7x, floored
    /// at 1.4x to ride out host timing noise), the interrupt point a
    /// 3x (the PR's headline claim), the 6-core point only "no
    /// meaningful regression", and 0.0 marks an informational row.
    target_speedup: f64,
}

fn main() {
    // The shared CLI gives this binary the standard flag surface, but
    // the points below own their dispatch/core settings — applying
    // `args.configure` here would collapse the very axis the benchmark
    // measures.
    let args = Args::parse("BENCH_simspeed");
    let exp = &args.exp;
    header(
        "Simulation speed: dense vs event-driven/parallel kernels",
        "event kernel >= 1.4x on 1-core Fig 7 point, >= 3x under interrupt dispatch at moderate load, no regression at 6-core line rate",
    );
    let smoke = env_is("NICSIM_SIMSPEED_SMOKE") || env_is("NICSIM_QUICK");
    // Smoke runs shrink further than NICSIM_QUICK's 1ms/1ms default:
    // wall-clock ratios stabilize within a 200us window and CI wants
    // this under a couple of seconds.
    let (warmup, window) = if smoke {
        (nicsim_sim::Ps::from_us(100), nicsim_sim::Ps::from_us(200))
    } else {
        (exp.warmup(), exp.window())
    };

    // The moderate-load pair: identical traffic, only the dispatch mode
    // differs. Receive-only keeps the host send pacing out of the
    // picture so the gap measured is purely polling-vs-parking.
    let moderate = NicConfig {
        cores: 1,
        cpu_mhz: 200,
        mode: FwMode::SoftwareOnly,
        send_enabled: false,
        offered_rx_fps: Some(20_000.0),
        ..NicConfig::default()
    };
    let points = [
        Point {
            label: "cores=1,cpu_mhz=200",
            cfg: NicConfig {
                cores: 1,
                cpu_mhz: 200,
                mode: FwMode::SoftwareOnly,
                ..NicConfig::default()
            },
            kernel: Kernel::Event,
            guard_cps: true,
            target_speedup: 1.4,
        },
        Point {
            label: "cores=6,cpu_mhz=200",
            cfg: NicConfig {
                cores: 6,
                cpu_mhz: 200,
                mode: FwMode::SoftwareOnly,
                ..NicConfig::default()
            },
            kernel: Kernel::Event,
            guard_cps: true,
            target_speedup: 0.95,
        },
        Point {
            label: "cores=1,rx=20kfps,polling",
            cfg: moderate,
            kernel: Kernel::Event,
            guard_cps: false,
            target_speedup: 0.95,
        },
        Point {
            label: "cores=1,rx=20kfps,interrupt",
            cfg: NicConfig {
                dispatch: DispatchMode::Interrupt,
                ..moderate
            },
            kernel: Kernel::Event,
            guard_cps: false,
            target_speedup: 3.0,
        },
        Point {
            label: "cores=6,cpu_mhz=200,parallel",
            cfg: NicConfig {
                cores: 6,
                cpu_mhz: 200,
                mode: FwMode::SoftwareOnly,
                ..NicConfig::default()
            },
            kernel: Kernel::Parallel,
            guard_cps: false,
            target_speedup: 0.0,
        },
    ];

    let mut runs = Vec::new();
    let mut detail = Vec::new();
    let mut failures = Vec::new();
    println!(
        "{:>22} {:>10} {:>10} {:>8} {:>14}",
        "point", "dense s", "event s", "speedup", "Mcycles/host-s"
    );
    for p in &points {
        // The parallel row pays the rendezvous per stepped cycle, so on
        // a host without a spare hardware thread a full window takes
        // minutes; its contract (bit-identity) is window-independent,
        // so it always runs on the smoke-sized window.
        let (warmup, window) = match p.kernel {
            Kernel::Parallel => (nicsim_sim::Ps::from_us(100), nicsim_sim::Ps::from_us(200)),
            Kernel::Event => (warmup, window),
        };
        // Construction (SDRAM/scratchpad allocation) stays outside the
        // timed region: the benchmark measures kernel throughput.
        let mut dense_sys = NicSystem::build(p.cfg).finish().unwrap();
        let t0 = Instant::now();
        let dense_stats = dense_sys.run_measured_dense(warmup, window);
        let dense_wall = t0.elapsed();

        let mut event_sys = NicSystem::build(p.cfg).finish().unwrap();
        let t0 = Instant::now();
        let event_stats = match p.kernel {
            Kernel::Event => event_sys.run_measured(warmup, window),
            Kernel::Parallel => event_sys.run_measured_parallel(warmup, window),
        };
        let event_wall = t0.elapsed();

        let stats_identical = event_stats == dense_stats;
        if !stats_identical {
            failures.push(format!("{}: kernels disagree on RunStats", p.label));
        }
        let (skipped, stepped) = event_sys.kernel_cycle_split();

        let sim_cycles = event_stats.core_ticks;
        let speedup = dense_wall.as_secs_f64() / event_wall.as_secs_f64().max(1e-9);
        let cps = sim_cycles as f64 / event_wall.as_secs_f64().max(1e-9);
        println!(
            "{:>22} {:>10.3} {:>10.3} {:>7.2}x {:>14.1}",
            p.label,
            dense_wall.as_secs_f64(),
            event_wall.as_secs_f64(),
            speedup,
            cps / 1e6
        );
        // In smoke mode only the 30% guardrail applies (tiny windows
        // make ratios noisy); full runs check each point's target.
        // Informational rows (target 0.0) are never gated.
        let floor = if smoke {
            p.target_speedup.min(0.7)
        } else {
            p.target_speedup
        };
        if speedup < floor {
            failures.push(format!(
                "{}: event kernel speedup {speedup:.2}x below floor {floor:.2}x",
                p.label
            ));
        }

        let kernel_name = match p.kernel {
            Kernel::Event => "event",
            Kernel::Parallel => "parallel",
        };
        runs.push(RunReport {
            label: format!("{kernel_name} {}", p.label),
            axes: Vec::new(),
            config: p.cfg,
            stats: event_stats,
            latency: None,
            wall: event_wall,
        });
        detail.push(
            Json::obj()
                .with("point", p.label)
                .with("dense_wall_s", dense_wall.as_secs_f64())
                .with("event_wall_s", event_wall.as_secs_f64())
                .with("speedup", speedup)
                .with("sim_cycles", sim_cycles)
                .with("cycles_per_host_sec", cps)
                .with("skipped_cycles", skipped)
                .with("stepped_cycles", stepped)
                .with("target_speedup", p.target_speedup)
                .with("stats_identical", stats_identical),
        );
        if let Some(base_cps) = baseline_cps(p.label).filter(|_| p.guard_cps) {
            let tol: f64 = std::env::var("NICSIM_BASELINE_TOL")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.05);
            let floor = base_cps * (1.0 - tol);
            println!(
                "{:>22} baseline {:.1} Mcycles/host-s, floor {:.1} (tol {:.0}%)",
                "",
                base_cps / 1e6,
                floor / 1e6,
                tol * 100.0
            );
            if cps < floor {
                failures.push(format!(
                    "{}: {:.1} Mcycles/host-s regressed more than {:.0}% below \
                     baseline {:.1}",
                    p.label,
                    cps / 1e6,
                    tol * 100.0,
                    base_cps / 1e6
                ));
            }
        }
    }

    // Smoke runs don't overwrite the committed full-run results.
    if smoke {
        println!("smoke mode: results file not written");
    } else {
        let extra = Json::obj()
            .with("warmup_us", warmup.0 / 1_000_000)
            .with("window_us", window.0 / 1_000_000)
            .with("kernels", Json::Arr(detail));
        exp.finish(runs, Some(extra)).expect("write results");
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}

fn env_is(key: &str) -> bool {
    std::env::var(key).is_ok_and(|v| v == "1")
}

/// The baseline `cycles_per_host_sec` for one benchmark point, from the
/// results file named by `NICSIM_SIMSPEED_BASELINE` (unset: no guard).
fn baseline_cps(label: &str) -> Option<f64> {
    let path = std::env::var("NICSIM_SIMSPEED_BASELINE").ok()?;
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("FAIL: baseline {path}: {e}");
            std::process::exit(1);
        }
    };
    let doc = match nicsim_exp::json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("FAIL: baseline {path}: invalid JSON: {e}");
            std::process::exit(1);
        }
    };
    let kernels = doc.get("extra")?.get("kernels")?;
    let Json::Arr(points) = kernels else {
        return None;
    };
    points
        .iter()
        .find(|p| p.get("point").and_then(|v| v.as_str()) == Some(label))?
        .get("cycles_per_host_sec")?
        .as_f64()
}
