//! Simulation-speed benchmark: dense reference kernel vs the hybrid
//! event-driven kernel, on the workloads the paper's figures hinge on —
//! plus the lookahead-batched domain-parallel kernel raced against the
//! event kernel it must now beat.
//!
//! Two saturated configurations bracket the polling speedup range:
//!
//! * 1 core @ 200 MHz (a Figure 7 point): the firmware is the
//!   bottleneck and core stall spans (multi-cycle ALU runs, I-miss
//!   fills) let the event kernel skip ~34% of cycles and bypass idle
//!   components on the rest — measured ~1.7x wall-clock, floor 1.4x.
//!   The skip fraction is structural, not an implementation gap: the
//!   paper's firmware is a *polling* design, so even a quiescent NIC
//!   keeps a scratchpad load in flight on roughly half of all cycles
//!   (the dispatch loop sweeps ten event sources), and saturated
//!   firmware issues an op every 1-2 cycles.
//! * 6 cores @ 200 MHz (the line-rate configuration): nearly every
//!   cycle has crossbar traffic, so nothing is skippable — the event
//!   kernel must at least break even (per-component gating pays for
//!   the wake checks; measured ~1.05x).
//!
//! Two moderate-load points (1 core, receive-only, 20k frames/s —
//! well under what one core sustains) expose the dispatch-mode ceiling
//! that motivates interrupt-driven firmware: polling busy-waits through
//! the quiet gaps so the event kernel still steps most cycles, while
//! under `--dispatch interrupt` the core parks in `wfi` and the doorbell
//! watch makes whole inter-frame gaps skippable — floor 3x over dense,
//! measured far above it.
//!
//! The parallel row runs the lookahead-batched domain-parallel kernel
//! (`run_until_parallel`) on the moderate-load *interrupt* point and
//! races it against the sequential **event** kernel — the reference
//! that matters, since both share the skip machinery and differ only in
//! who executes the stepped cycles. Its floor (1.4x) applies only on a
//! host with at least two hardware threads: with a single thread the
//! worker cannot spin and every rendezvous degrades to a park/unpark
//! syscall pair, so the row is reported for the record there. The
//! synchronization accounting is gated host-independently in full runs:
//! the lookahead machinery must keep the rendezvous count below 0.25
//! per stepped cycle, or batching has silently stopped engaging.
//!
//! Each configuration runs on both kernels with identical windows; the
//! stats must be bit-identical (the equivalence guarantee, re-asserted
//! here on the real benchmark workload). Results land in
//! `results/BENCH_simspeed.json` with per-point wall times, simulated
//! cycles, cycles-per-host-second, speedups, and the skip/rendezvous
//! split (`scripts/bench_compare.sh` diffs two such files).
//!
//! Smoke mode (`NICSIM_SIMSPEED_SMOKE=1`, implied by `NICSIM_QUICK=1`)
//! shrinks the windows and exits non-zero on a correctness mismatch or
//! an event-kernel slowdown beyond 30% — the CI guardrail. The
//! rendezvous-ratio gate is full-run only: smoke windows end inside the
//! cold-ring warm-up transient, where the frame side runs dense.
//!
//! Overhead guard: `NICSIM_SIMSPEED_BASELINE=<results file>` compares
//! the saturated polling points' `cycles_per_host_sec` against the
//! committed baseline (`results/BENCH_simspeed.json`) and fails on a
//! regression beyond 5% (`NICSIM_BASELINE_TOL` overrides the
//! fraction; `scripts/check.sh` widens it — absolute throughput on a
//! shared CI host is noisy, and the in-process speedup floors are the
//! tight gates). This is how the
//! observability layer proves its disabled-probe ([`nicsim::NullProbe`])
//! path costs nothing: the simulator must still hit the throughput it
//! hit before the probe layer existed.

use nicsim::{DispatchMode, FwMode, NicConfig, NicSystem, ParallelSyncStats};
use nicsim_bench::{header, Args};
use nicsim_exp::{Json, RunReport};
use std::time::Instant;

/// Which fast kernel a point measures, and implicitly its reference:
/// the event kernel races the dense kernel; the parallel kernel races
/// the event kernel.
#[derive(Clone, Copy, PartialEq)]
enum Kernel {
    Event,
    Parallel,
}

/// Ceiling on rendezvous per stepped cycle for parallel rows in full
/// runs: above this, the solo/batch lookahead has stopped doing its
/// job and the kernel is back to paying a barrier per cycle.
const MAX_RENDEZVOUS_PER_STEPPED: f64 = 0.25;

struct Point {
    label: &'static str,
    cfg: NicConfig,
    kernel: Kernel,
    /// Whether the absolute cycles-per-host-second baseline guard
    /// applies. Only the saturated polling points carry it: their wall
    /// times are long enough for the tolerance to be signal, while the
    /// interrupt and parallel rows finish in milliseconds and are
    /// already gated by their in-process speedup floors.
    guard_cps: bool,
    /// Minimum acceptable reference/fast wall-clock ratio: the
    /// saturated 1-core point must show a real speedup (measured ~1.7x,
    /// floored at 1.4x to ride out host timing noise), the interrupt
    /// point a 3x (that PR's headline claim), the parallel point a 1.4x
    /// over the event kernel (this PR's headline claim, applied only
    /// when the host has a second hardware thread to run the worker
    /// on), the 6-core point only "no meaningful regression", and 0.0
    /// marks an informational row.
    target_speedup: f64,
}

fn main() {
    // The shared CLI gives this binary the standard flag surface, but
    // the points below own their dispatch/core settings — applying
    // `args.configure` here would collapse the very axis the benchmark
    // measures.
    let args = Args::parse("BENCH_simspeed");
    let exp = &args.exp;
    header(
        "Simulation speed: dense vs event-driven vs batched-parallel kernels",
        "event kernel >= 1.4x on 1-core Fig 7 point, >= 3x under interrupt dispatch at moderate load, \
         no regression at 6-core line rate, parallel kernel >= 1.4x over event at the interrupt point \
         (>= 2 hw threads)",
    );
    let smoke = env_is("NICSIM_SIMSPEED_SMOKE") || env_is("NICSIM_QUICK");
    // Smoke runs shrink further than NICSIM_QUICK's 1ms/1ms default:
    // wall-clock ratios stabilize within a 200us window and CI wants
    // this under a couple of seconds.
    let (warmup, window) = if smoke {
        (nicsim_sim::Ps::from_us(100), nicsim_sim::Ps::from_us(200))
    } else {
        (exp.warmup(), exp.window())
    };
    let hw_threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    // The moderate-load pair: identical traffic, only the dispatch mode
    // differs. Receive-only keeps the host send pacing out of the
    // picture so the gap measured is purely polling-vs-parking.
    let moderate = NicConfig::builder()
        .cores(1)
        .cpu_mhz(200)
        .mode(FwMode::SoftwareOnly)
        .send_enabled(false)
        .offered_rx_fps(Some(20_000.0))
        .build()
        .unwrap();
    let points = [
        Point {
            label: "cores=1,cpu_mhz=200",
            cfg: NicConfig::builder()
                .cores(1)
                .cpu_mhz(200)
                .mode(FwMode::SoftwareOnly)
                .build()
                .unwrap(),
            kernel: Kernel::Event,
            guard_cps: true,
            target_speedup: 1.4,
        },
        Point {
            label: "cores=6,cpu_mhz=200",
            cfg: NicConfig::builder()
                .cores(6)
                .cpu_mhz(200)
                .mode(FwMode::SoftwareOnly)
                .build()
                .unwrap(),
            kernel: Kernel::Event,
            guard_cps: true,
            target_speedup: 0.95,
        },
        Point {
            label: "cores=1,rx=20kfps,polling",
            cfg: moderate,
            kernel: Kernel::Event,
            guard_cps: false,
            target_speedup: 0.95,
        },
        Point {
            label: "cores=1,rx=20kfps,interrupt",
            cfg: moderate
                .to_builder()
                .dispatch(DispatchMode::Interrupt)
                .build()
                .unwrap(),
            kernel: Kernel::Event,
            guard_cps: false,
            target_speedup: 3.0,
        },
        Point {
            label: "cores=1,rx=20kfps,interrupt,parallel",
            cfg: moderate
                .to_builder()
                .dispatch(DispatchMode::Interrupt)
                .build()
                .unwrap(),
            kernel: Kernel::Parallel,
            guard_cps: false,
            // Gated only with a hardware thread for the worker; the
            // single-thread fallback path is correctness-only.
            target_speedup: if hw_threads >= 2 { 1.4 } else { 0.0 },
        },
    ];

    let mut runs = Vec::new();
    let mut detail = Vec::new();
    let mut failures = Vec::new();
    println!(
        "{:>36} {:>8} {:>10} {:>10} {:>8} {:>14}",
        "point", "ref", "ref s", "fast s", "speedup", "Mcycles/host-s"
    );
    for p in &points {
        let ref_kernel = match p.kernel {
            Kernel::Event => "dense",
            Kernel::Parallel => "event",
        };
        // Construction (SDRAM/scratchpad allocation) stays outside the
        // timed region: the benchmark measures kernel throughput.
        let mut ref_sys = NicSystem::build(p.cfg).finish().unwrap();
        let t0 = Instant::now();
        let ref_stats = match p.kernel {
            Kernel::Event => ref_sys.run_measured_dense(warmup, window),
            Kernel::Parallel => ref_sys.run_measured(warmup, window),
        };
        let ref_wall = t0.elapsed();

        let mut fast_sys = NicSystem::build(p.cfg).finish().unwrap();
        let t0 = Instant::now();
        let fast_stats = match p.kernel {
            Kernel::Event => fast_sys.run_measured(warmup, window),
            Kernel::Parallel => fast_sys.run_measured_parallel(warmup, window),
        };
        let fast_wall = t0.elapsed();

        let stats_identical = fast_stats == ref_stats;
        if !stats_identical {
            failures.push(format!("{}: kernels disagree on RunStats", p.label));
        }
        let (skipped, stepped) = fast_sys.kernel_cycle_split();
        let sync = match p.kernel {
            Kernel::Event => ParallelSyncStats::default(),
            Kernel::Parallel => fast_sys.parallel_sync_stats(),
        };
        let skipped_fraction = skipped as f64 / (skipped + stepped).max(1) as f64;
        let rendezvous_per_stepped = sync.rendezvous as f64 / stepped.max(1) as f64;

        let sim_cycles = fast_stats.core_ticks;
        let speedup = ref_wall.as_secs_f64() / fast_wall.as_secs_f64().max(1e-9);
        let cps = sim_cycles as f64 / fast_wall.as_secs_f64().max(1e-9);
        println!(
            "{:>36} {:>8} {:>10.3} {:>10.3} {:>7.2}x {:>14.1}",
            p.label,
            ref_kernel,
            ref_wall.as_secs_f64(),
            fast_wall.as_secs_f64(),
            speedup,
            cps / 1e6
        );
        if p.kernel == Kernel::Parallel {
            println!(
                "{:>36} rendezvous/stepped {:.3} (batches {}, batched cycles {}, solo {})",
                "", rendezvous_per_stepped, sync.batches, sync.batched_cycles, sync.solo_cycles
            );
            // The lookahead contract is host-independent; only the
            // warm-up transient of a smoke window excuses a dense
            // frame side.
            if !smoke && rendezvous_per_stepped >= MAX_RENDEZVOUS_PER_STEPPED {
                failures.push(format!(
                    "{}: {rendezvous_per_stepped:.3} rendezvous per stepped cycle \
                     (ceiling {MAX_RENDEZVOUS_PER_STEPPED})",
                    p.label
                ));
            }
        }
        // In smoke mode only the 30% guardrail applies (tiny windows
        // make ratios noisy); full runs check each point's target.
        // Informational rows (target 0.0) are never gated.
        let floor = if smoke {
            p.target_speedup.min(0.7)
        } else {
            p.target_speedup
        };
        if speedup < floor {
            failures.push(format!(
                "{}: {} kernel speedup {speedup:.2}x over {ref_kernel} below floor {floor:.2}x",
                p.label,
                match p.kernel {
                    Kernel::Event => "event",
                    Kernel::Parallel => "parallel",
                }
            ));
        }

        let kernel_name = match p.kernel {
            Kernel::Event => "event",
            Kernel::Parallel => "parallel",
        };
        runs.push(RunReport {
            label: format!("{kernel_name} {}", p.label),
            axes: Vec::new(),
            config: p.cfg,
            stats: fast_stats,
            latency: None,
            wall: fast_wall,
        });
        detail.push(
            Json::obj()
                .with("point", p.label)
                .with("ref_kernel", ref_kernel)
                .with("fast_kernel", kernel_name)
                .with("dense_wall_s", ref_wall.as_secs_f64())
                .with("event_wall_s", fast_wall.as_secs_f64())
                .with("speedup", speedup)
                .with("sim_cycles", sim_cycles)
                .with("cycles_per_host_sec", cps)
                .with("skipped_cycles", skipped)
                .with("stepped_cycles", stepped)
                .with("skipped_fraction", skipped_fraction)
                .with("rendezvous", sync.rendezvous)
                .with("batches", sync.batches)
                .with("batched_cycles", sync.batched_cycles)
                .with("solo_cycles", sync.solo_cycles)
                .with("rendezvous_per_stepped", rendezvous_per_stepped)
                .with("target_speedup", p.target_speedup)
                .with("stats_identical", stats_identical),
        );
        if let Some(base_cps) = baseline_cps(p.label).filter(|_| p.guard_cps) {
            let tol: f64 = std::env::var("NICSIM_BASELINE_TOL")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.05);
            let floor = base_cps * (1.0 - tol);
            println!(
                "{:>36} baseline {:.1} Mcycles/host-s, floor {:.1} (tol {:.0}%)",
                "",
                base_cps / 1e6,
                floor / 1e6,
                tol * 100.0
            );
            if cps < floor {
                failures.push(format!(
                    "{}: {:.1} Mcycles/host-s regressed more than {:.0}% below \
                     baseline {:.1}",
                    p.label,
                    cps / 1e6,
                    tol * 100.0,
                    base_cps / 1e6
                ));
            }
        }
    }

    // Smoke runs don't overwrite the committed full-run results.
    if smoke {
        println!("smoke mode: results file not written");
    } else {
        let extra = Json::obj()
            .with("warmup_us", warmup.0 / 1_000_000)
            .with("window_us", window.0 / 1_000_000)
            .with("hw_threads", hw_threads as u64)
            .with("kernels", Json::Arr(detail));
        exp.finish(runs, Some(extra)).expect("write results");
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}

fn env_is(key: &str) -> bool {
    std::env::var(key).is_ok_and(|v| v == "1")
}

/// The baseline `cycles_per_host_sec` for one benchmark point, from the
/// results file named by `NICSIM_SIMSPEED_BASELINE` (unset: no guard).
fn baseline_cps(label: &str) -> Option<f64> {
    let path = std::env::var("NICSIM_SIMSPEED_BASELINE").ok()?;
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("FAIL: baseline {path}: {e}");
            std::process::exit(1);
        }
    };
    let doc = match nicsim_exp::json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("FAIL: baseline {path}: invalid JSON: {e}");
            std::process::exit(1);
        }
    };
    let kernels = doc.get("extra")?.get("kernels")?;
    let Json::Arr(points) = kernels else {
        return None;
    };
    points
        .iter()
        .find(|p| p.get("point").and_then(|v| v.as_str()) == Some(label))?
        .get("cycles_per_host_sec")?
        .as_f64()
}
