//! Table 6: cycles spent in each function per packet for the
//! software-only (200 MHz) and RMW-enhanced (166 MHz) configurations.
//! The two runs execute in parallel; writes `results/table6.json`.

use nicsim::NicConfig;
use nicsim_bench::{header, Args};
use nicsim_cpu::FwFunc;
use nicsim_exp::Sweep;

fn main() {
    let args = Args::parse("table6");
    let exp = &args.exp;
    header(
        "Table 6: per-packet cycles by function, software@200 vs RMW@166",
        "paper: RMW cuts send cycles 28.4%, receive cycles 4.7%; both reach line rate",
    );
    let sweep = Sweep::new(NicConfig::default()).axis_configs(
        "firmware",
        [
            (
                "software@200",
                args.configure(NicConfig::software_only_200()),
            ),
            ("rmw@166", args.configure(NicConfig::rmw_166())),
        ],
    );
    let report = exp.sweep(&sweep);
    let (sw, rmw) = (&report.runs[0].stats, &report.runs[1].stats);
    println!(
        "throughput: software {:.2} Gb/s, RMW {:.2} Gb/s (limit 19.15)",
        sw.total_udp_gbps(),
        rmw.total_udp_gbps()
    );
    let frames = |s: &nicsim::RunStats, f: FwFunc| match f {
        FwFunc::FetchSendBd | FwFunc::SendFrame | FwFunc::SendDispatch | FwFunc::SendLock => {
            s.tx_frames
        }
        _ => s.rx_frames,
    };
    println!(
        "{:<30} {:>14} {:>14}",
        "Function", "sw-only @200", "RMW @166"
    );
    let send = [
        FwFunc::FetchSendBd,
        FwFunc::SendFrame,
        FwFunc::SendDispatch,
        FwFunc::SendLock,
    ];
    let recv = [
        FwFunc::FetchRecvBd,
        FwFunc::RecvFrame,
        FwFunc::RecvDispatch,
        FwFunc::RecvLock,
    ];
    let mut totals = [[0.0f64; 2]; 2];
    for (d, rows) in [send, recv].iter().enumerate() {
        for f in rows {
            let a = sw.cycles_per_frame(*f, frames(sw, *f));
            let b = rmw.cycles_per_frame(*f, frames(rmw, *f));
            totals[d][0] += a;
            totals[d][1] += b;
            println!("{:<30} {:>14.1} {:>14.1}", f.label(), a, b);
        }
        let label = if d == 0 {
            "Send Total"
        } else {
            "Receive Total"
        };
        println!(
            "{:<30} {:>14.1} {:>14.1}",
            label, totals[d][0], totals[d][1]
        );
    }
    println!("----------------------------------------------------------------");
    println!(
        "RMW cycle reduction: send {:.1}% (paper 28.4%), receive {:.1}% (paper 4.7%)",
        100.0 * (1.0 - totals[0][1] / totals[0][0]),
        100.0 * (1.0 - totals[1][1] / totals[1][0]),
    );
    exp.write(&report).expect("write results");
}
