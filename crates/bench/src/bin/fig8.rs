//! Figure 8: full-duplex throughput for various UDP datagram sizes under
//! the software-only (200 MHz) and RMW-enhanced (166 MHz) configurations.

use nicsim::NicConfig;
use nicsim_bench::{header, measure};
use nicsim_net::link::max_udp_throughput_gbps;

fn main() {
    header(
        "Figure 8: throughput vs UDP datagram size",
        "both configurations scale together; small frames saturate ~2.2M frames/s",
    );
    let sizes = [18usize, 100, 200, 400, 600, 800, 1000, 1200, 1472];
    println!(
        "{:>6} {:>10} {:>12} {:>12} | {:>12} {:>12}",
        "bytes", "limit Gb/s", "sw@200 Gb/s", "rmw@166 Gb/s", "sw Mfps", "rmw Mfps"
    );
    for size in sizes {
        let limit = 2.0 * max_udp_throughput_gbps(size);
        let sw = measure(NicConfig {
            udp_payload: size,
            ..NicConfig::software_only_200()
        });
        let rmw = measure(NicConfig {
            udp_payload: size,
            ..NicConfig::rmw_166()
        });
        println!(
            "{:>6} {:>10.2} {:>12.2} {:>12.2} | {:>12.2} {:>12.2}",
            size,
            limit,
            sw.total_udp_gbps(),
            rmw.total_udp_gbps(),
            sw.total_fps() / 1e6,
            rmw.total_fps() / 1e6,
        );
    }
}
