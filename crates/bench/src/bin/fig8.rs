//! Figure 8: full-duplex throughput for various UDP datagram sizes under
//! the software-only (200 MHz) and RMW-enhanced (166 MHz) configurations.
//! The 18 runs execute in parallel; writes `results/fig8.json`.

use nicsim::NicConfig;
use nicsim_bench::{header, Args};
use nicsim_exp::Sweep;
use nicsim_net::link::max_udp_throughput_gbps;

fn main() {
    let args = Args::parse("fig8");
    let exp = &args.exp;
    header(
        "Figure 8: throughput vs UDP datagram size",
        "both configurations scale together; small frames saturate ~2.2M frames/s",
    );
    let sizes = [18usize, 100, 200, 400, 600, 800, 1000, 1200, 1472];
    // Axes apply in declaration order: the firmware axis installs the
    // whole preset, then the payload axis overrides the datagram size.
    let sweep = Sweep::new(NicConfig::default())
        .axis_configs(
            "firmware",
            [
                (
                    "software@200",
                    args.configure(NicConfig::software_only_200()),
                ),
                ("rmw@166", args.configure(NicConfig::rmw_166())),
            ],
        )
        .axis("udp_payload", sizes, |cfg, v| cfg.udp_payload = v);
    let report = exp.sweep(&sweep);

    println!(
        "{:>6} {:>10} {:>12} {:>12} | {:>12} {:>12}",
        "bytes", "limit Gb/s", "sw@200 Gb/s", "rmw@166 Gb/s", "sw Mfps", "rmw Mfps"
    );
    // Row-major over (firmware, size): sw runs first, then rmw.
    for (si, size) in sizes.iter().enumerate() {
        let limit = 2.0 * max_udp_throughput_gbps(*size);
        let sw = &report.runs[si].stats;
        let rmw = &report.runs[sizes.len() + si].stats;
        println!(
            "{:>6} {:>10.2} {:>12.2} {:>12.2} | {:>12.2} {:>12.2}",
            size,
            limit,
            sw.total_udp_gbps(),
            rmw.total_udp_gbps(),
            sw.total_fps() / 1e6,
            rmw.total_fps() / 1e6,
        );
    }
    exp.write(&report).expect("write results");
}
