//! Table 4: bandwidth required / peak / consumed for the instruction
//! memory, scratchpads, and frame memory in the six-core line-rate
//! configuration. Writes `results/table4.json`.

use nicsim::NicConfig;
use nicsim_bench::{header, Args};
use nicsim_exp::Json;

fn main() {
    let args = Args::parse("table4");
    let exp = &args.exp;
    header(
        "Table 4: memory-system bandwidth (6 cores at 200 MHz, line rate)",
        "paper: scratchpad 4.8 required / 9.4 consumed; frame 39.5 required / 39.7 consumed",
    );
    let cfg = args.configure(NicConfig::software_only_200());
    let run = exp.run_labeled("software@200", cfg);
    let s = &run.stats;
    println!(
        "line rate achieved: {:.2} Gb/s of 19.15",
        s.total_udp_gbps()
    );
    let sp_peak = cfg.banks as f64 * 4.0 * 8.0 * cfg.cpu_mhz as f64 * 1e6 / 1e9;
    let im_peak = 16.0 * 8.0 * cfg.cpu_mhz as f64 * 1e6 / 1e9;
    let fm_peak = 64.0;
    println!(
        "{:<24} {:>10} {:>10} {:>10}",
        "Memory", "Required", "Peak", "Consumed"
    );
    println!(
        "{:<24} {:>10} {:>10.1} {:>10.2}   (utilization {:.1}%)",
        "Instruction Mem (Gb/s)",
        "N/A",
        im_peak,
        s.instr_mem_gbps,
        s.instr_mem_utilization * 100.0
    );
    println!(
        "{:<24} {:>10.1} {:>10.1} {:>10.2}",
        "Scratchpads (Gb/s)", 4.8, sp_peak, s.scratchpad_gbps
    );
    println!(
        "{:<24} {:>10.1} {:>10.1} {:>10.2}   (misalignment waste {:.2} Gb/s)",
        "Frame Memory (Gb/s)",
        39.5,
        fm_peak,
        s.frame_mem_gbps,
        s.frame_mem_wasted_bytes as f64 * 8.0 / s.window.as_secs_f64() / 1e9
    );
    println!(
        "core scratchpad accesses/s: {:.1}M; assist accesses/s: {:.1}M (paper: 41.7M for assists)",
        s.core_sp_accesses as f64 / s.window.as_secs_f64() / 1e6,
        s.assist_sp_accesses as f64 / s.window.as_secs_f64() / 1e6
    );
    println!(
        "frame memory latency: mean {} max {} (paper: up to 27 SDRAM cycles = 54ns)",
        s.frame_mem_mean_latency, s.frame_mem_max_latency
    );
    let extra = Json::obj()
        .with("instr_mem_peak_gbps", im_peak)
        .with("scratchpad_peak_gbps", sp_peak)
        .with("frame_mem_peak_gbps", fm_peak);
    exp.finish(vec![run], Some(extra)).expect("write results");
}
