//! Figure 7: full-duplex UDP throughput while scaling core frequency and
//! the number of processors (maximum-sized frames, software-only
//! firmware as in §6.1).
//!
//! The 31 runs are independent, so they execute across the engine's
//! worker pool: `cargo run --release --bin fig7 -- --jobs 8`. Results
//! land in `results/fig7.json`.

use nicsim::{FwMode, NicConfig};
use nicsim_bench::{header, traced_run, Args};
use nicsim_exp::{RunSpec, Sweep};

fn main() {
    let args = Args::parse("fig7");
    let exp = &args.exp;
    header(
        "Figure 7: throughput vs core frequency and processor count",
        "6 cores @175MHz -> 96.3% of line rate; 8 @175 -> 98.7%; 6 and 8 @200 within 1%; 1 core needs ~800MHz",
    );
    let freqs = [100u64, 125, 150, 166, 175, 200];
    let core_counts = [1usize, 2, 4, 6, 8];
    let base = NicConfig::builder()
        .mode(FwMode::SoftwareOnly)
        .faults(exp.faults())
        .build()
        .unwrap();
    let sweep = Sweep::new(args.configure(base))
        .axis("cpu_mhz", freqs, |cfg, v| cfg.cpu_mhz = v)
        .axis("cores", core_counts, |cfg, v| cfg.cores = v);
    let mut specs = sweep.runs().expect("valid sweep");
    // The single-core scaling claim rides along in the same pool.
    specs.push(RunSpec::single(
        "cpu_mhz=800,cores=1",
        args.configure(base)
            .to_builder()
            .cores(1)
            .cpu_mhz(800)
            .build()
            .unwrap(),
    ));
    let mut report = exp.run_specs(specs);

    println!("Ethernet limit (duplex): 19.15 Gb/s of UDP payload");
    print!("{:>6}", "MHz");
    for c in core_counts {
        print!(" {:>9}", format!("{c} cores"));
    }
    println!();
    for (fi, mhz) in freqs.iter().enumerate() {
        print!("{mhz:>6}");
        for ci in 0..core_counts.len() {
            let s = &report.runs[fi * core_counts.len() + ci].stats;
            print!(" {:>9.2}", s.total_udp_gbps());
        }
        println!();
    }
    let fast = &report.runs.last().expect("800 MHz run").stats;
    println!(
        "1 core @ 800 MHz: {:.2} Gb/s ({:.1}% of line rate; paper: a single core needs 800 MHz)",
        fast.total_udp_gbps(),
        100.0 * fast.total_udp_gbps() / 19.15
    );
    // `--trace <path>`: re-run the headline point (6 cores @ 175 MHz,
    // the paper's 96.3%-of-line-rate configuration) with the full
    // observability bundle and append its traced report.
    if let Some(path) = exp.trace_path() {
        let traced = traced_run(
            exp,
            "cpu_mhz=175,cores=6+trace",
            NicConfig::builder()
                .cores(6)
                .cpu_mhz(175)
                .mode(FwMode::SoftwareOnly)
                .build()
                .unwrap(),
            path,
        );
        report.runs.push(traced);
    }
    exp.write(&report).expect("write results");
}
