//! Figure 7: full-duplex UDP throughput while scaling core frequency and
//! the number of processors (maximum-sized frames, software-only
//! firmware as in §6.1).

use nicsim::{FwMode, NicConfig};
use nicsim_bench::{header, measure};

fn main() {
    header(
        "Figure 7: throughput vs core frequency and processor count",
        "6 cores @175MHz -> 96.3% of line rate; 8 @175 -> 98.7%; 6 and 8 @200 within 1%; 1 core needs ~800MHz",
    );
    let freqs = [100u64, 125, 150, 166, 175, 200];
    let core_counts = [1usize, 2, 4, 6, 8];
    println!("Ethernet limit (duplex): 19.15 Gb/s of UDP payload");
    print!("{:>6}", "MHz");
    for c in core_counts {
        print!(" {:>9}", format!("{c} cores"));
    }
    println!();
    for mhz in freqs {
        print!("{mhz:>6}");
        for cores in core_counts {
            let cfg = NicConfig {
                cores,
                cpu_mhz: mhz,
                mode: FwMode::SoftwareOnly,
                ..NicConfig::default()
            };
            let s = measure(cfg);
            print!(" {:>9.2}", s.total_udp_gbps());
        }
        println!();
    }
    // The single-core scaling claim.
    let s = measure(NicConfig {
        cores: 1,
        cpu_mhz: 800,
        mode: FwMode::SoftwareOnly,
        ..NicConfig::default()
    });
    println!(
        "1 core @ 800 MHz: {:.2} Gb/s ({:.1}% of line rate; paper: a single core needs 800 MHz)",
        s.total_udp_gbps(),
        100.0 * s.total_udp_gbps() / 19.15
    );
}
