//! Ablation: scratchpad bank count. The paper provisions 4 banks so that
//! bank conflicts stay low (Table 3 charges only 0.05 IPC to conflicts);
//! this sweep shows the sensitivity. The four runs execute in parallel;
//! writes `results/ablation_banks.json`.

use nicsim::NicConfig;
use nicsim_bench::{header, Args};
use nicsim_cpu::StallBucket;
use nicsim_exp::Sweep;

fn main() {
    let args = Args::parse("ablation_banks");
    let exp = &args.exp;
    header(
        "Ablation: scratchpad banks (6 cores, RMW, 166 MHz)",
        "banked scratchpad overprovisions bandwidth to keep latency low (§2.3)",
    );
    let sweep = Sweep::new(args.configure(NicConfig::rmw_166())).axis(
        "banks",
        [1usize, 2, 4, 8],
        |cfg, v| {
            cfg.banks = v;
        },
    );
    let report = exp.sweep(&sweep);
    println!(
        "{:>6} {:>12} {:>16} {:>12}",
        "banks", "Gb/s", "conflict IPC", "IPC"
    );
    for run in &report.runs {
        let s = &run.stats;
        println!(
            "{:>6} {:>12.2} {:>16.3} {:>12.3}",
            run.config.banks,
            s.total_udp_gbps(),
            s.ipc_contribution(StallBucket::Conflict),
            s.ipc()
        );
    }
    exp.write(&report).expect("write results");
}
