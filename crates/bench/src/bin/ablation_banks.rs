//! Ablation: scratchpad bank count. The paper provisions 4 banks so that
//! bank conflicts stay low (Table 3 charges only 0.05 IPC to conflicts);
//! this sweep shows the sensitivity.

use nicsim::NicConfig;
use nicsim_bench::{header, measure};
use nicsim_cpu::StallBucket;

fn main() {
    header(
        "Ablation: scratchpad banks (6 cores, RMW, 166 MHz)",
        "banked scratchpad overprovisions bandwidth to keep latency low (§2.3)",
    );
    println!(
        "{:>6} {:>12} {:>16} {:>12}",
        "banks", "Gb/s", "conflict IPC", "IPC"
    );
    for banks in [1usize, 2, 4, 8] {
        let cfg = NicConfig {
            banks,
            ..NicConfig::rmw_166()
        };
        let s = measure(cfg);
        println!(
            "{:>6} {:>12.2} {:>16.3} {:>12.3}",
            banks,
            s.total_udp_gbps(),
            s.ipc_contribution(StallBucket::Conflict),
            s.ipc()
        );
    }
}
