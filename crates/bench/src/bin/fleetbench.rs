//! Fleet benchmark: multi-NIC simulation through the switch fabric,
//! measuring both what the fleet *simulates* and how fast the sharded
//! epoch engine *runs*.
//!
//! Three sections, landed together in `results/fleet.json`:
//!
//! * **Uniform** — every NIC sprays fixed-size datagrams at every
//!   other through the fabric (`--workload` overrides the spec).
//!   Reports aggregate delivered goodput and the merged
//!   [`FrameTracker`](nicsim::FrameTracker) per-stage latency
//!   percentiles: a frame's TX half (source NIC) and RX half
//!   (destination NIC) join into one fleet-wide timeline.
//! * **Incast** — everyone converges on NIC 0 through a deliberately
//!   shallow egress buffer; the section asserts the fabric actually
//!   drops and that the order-sensitive drop digest is identical at
//!   one shard and many.
//! * **Faulted** — the uniform fleet re-runs in reliable mode under a
//!   fault plan exercising every class at once: fabric corruption,
//!   link flaps, port-buffer squeezes, NIC crash/reset lifecycles, and
//!   the per-NIC DMA/link/ECC sites. The section asserts faults were
//!   actually injected, that at least one NIC crashed and reset, and
//!   that the faulted run is bit-identical sharded — the fault plane's
//!   determinism contract on the benchmark workload. The aggregated
//!   `err_*` table (per-NIC and fleet totals) lands under
//!   `"extra"."faults"`.
//! * **Scaling** — the uniform fleet re-runs at shard counts 1, 2, 4
//!   and each further power of two up to the host's hardware threads
//!   (capped at the NIC count; `--shards` adds a point). Every count
//!   must reproduce the single-shard result bit-for-bit — per-NIC
//!   stats, fabric digest, per-port counters, and skip decisions —
//!   which re-asserts the fleet determinism contract on the benchmark
//!   workload itself. Wall-clock throughput is reported as simulated
//!   NIC-cycles per host second.
//!
//! The speedup gate (4 shards at least 1.8x over 1) only binds on a
//! host with at least 4 hardware threads, at least 8 NICs, and a full
//! window; anywhere else the scaling rows are informational — a
//! single-threaded host runs every shard on one core and measures
//! barrier overhead, not parallelism.
//!
//! Quick mode (`NICSIM_QUICK=1`) shrinks the windows for CI smoke and
//! leaves the committed results file untouched; the determinism and
//! incast-drop assertions still bind.

use nicsim::{ErrorStats, FaultPlan, NicConfig};
use nicsim_bench::{header, Args};
use nicsim_exp::{latency_to_json, Json, RunReport};
use nicsim_fleet::{Fleet, FleetConfig, FleetStats};
use nicsim_net::workload::{Pattern, SizeMix, Workload};
use nicsim_net::FabricConfig;
use nicsim_sim::Ps;
use std::time::{Duration, Instant};

/// Wall-clock floor for 4 shards over 1, binding only where the host
/// can actually run 4 workers (and the window is long enough for the
/// ratio to be signal).
const SPEEDUP_FLOOR_AT_4: f64 = 1.8;

fn main() {
    let args = Args::parse("fleet");
    let exp = &args.exp;
    header(
        "Fleet: sharded multi-NIC simulation through the switch fabric",
        "bit-identical per-NIC stats and fabric digest at every shard count; \
         incast must drop; 4 shards >= 1.8x over 1 on a >= 4-thread host",
    );
    let quick = std::env::var("NICSIM_QUICK").is_ok_and(|v| v == "1");
    // Fleet windows are shorter than the single-NIC defaults: every
    // epoch advances N full NIC systems, and the scaling section runs
    // the whole fleet once per shard count.
    let (warmup, window) = if quick {
        (Ps::from_us(60), Ps::from_us(120))
    } else {
        (Ps::from_us(200), Ps::from_us(400))
    };
    let horizon = warmup + window;
    let hw_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let nics = args.nics.unwrap_or(8);

    let nic = args.configure(NicConfig::default());
    let uniform = FleetConfig {
        nics,
        shards: 1,
        nic,
        fabric: FabricConfig::default(),
        workload: args.workload.unwrap_or_default(),
    };

    let mut failures = Vec::new();

    // Shard counts under test: the determinism triple {1, 2, 4}, the
    // host's power-of-two ladder, and any explicit --shards point.
    let mut counts = vec![1usize, 2, 4];
    let mut p = 8;
    while p <= hw_threads {
        counts.push(p);
        p *= 2;
    }
    if let Some(s) = args.shards {
        counts.push(s);
    }
    counts.retain(|&s| s <= nics);
    counts.sort_unstable();
    counts.dedup();

    println!("uniform: {} NICs, workload {:?}", nics, uniform.workload);
    println!(
        "{:>8} {:>10} {:>16} {:>8} {:>10}",
        "shards", "wall s", "Mnic-cycles/s", "speedup", "identical"
    );
    let mut scaling: Vec<(usize, Duration, FleetStats)> = Vec::new();
    for &s in &counts {
        let cfg = FleetConfig {
            shards: s,
            ..uniform
        };
        let mut fleet = Fleet::new(cfg, horizon).unwrap_or_else(|e| {
            eprintln!("FAIL: fleet config: {e}");
            std::process::exit(1);
        });
        let t0 = Instant::now();
        let stats = fleet.run_measured(warmup, window);
        let wall = t0.elapsed();
        scaling.push((s, wall, stats));
    }
    let (_, base_wall, reference) = &scaling[0];
    let base_wall = *base_wall;
    if reference.fabric.delivered == 0 {
        failures.push("uniform: fabric delivered nothing — every check is vacuous".into());
    }
    let mut speedup_at_4 = None;
    for (s, wall, stats) in &scaling {
        let same = identical(reference, stats);
        let speedup = base_wall.as_secs_f64() / wall.as_secs_f64().max(1e-9);
        let ncps = (nics as u64 * stats.cycles_per_nic) as f64 / wall.as_secs_f64().max(1e-9);
        println!(
            "{:>8} {:>10.3} {:>16.1} {:>7.2}x {:>10}",
            s,
            wall.as_secs_f64(),
            ncps / 1e6,
            speedup,
            same
        );
        if !same {
            failures.push(format!(
                "uniform: {s} shards diverged from the single-shard reference"
            ));
        }
        if *s == 4 {
            speedup_at_4 = Some(speedup);
        }
    }
    let gate_binds = !quick && hw_threads >= 4 && nics >= 8;
    match speedup_at_4 {
        Some(sp) if gate_binds && sp < SPEEDUP_FLOOR_AT_4 => failures.push(format!(
            "scaling: 4 shards {sp:.2}x over 1, below the {SPEEDUP_FLOOR_AT_4}x floor \
             ({hw_threads} hw threads)"
        )),
        _ => {
            if !gate_binds {
                println!(
                    "scaling gate informational: quick={quick}, {hw_threads} hw threads, \
                     {nics} NICs (needs full run, >= 4 threads, >= 8 NICs)"
                );
            }
        }
    }
    println!(
        "uniform: {:.3} Gb/s aggregate goodput, {} delivered, {} dropped, \
         {} NIC-epochs skipped of {}",
        reference.goodput_gbps(),
        reference.fabric.delivered,
        reference.fabric_drops(),
        reference.nic_epochs_skipped,
        reference.epochs * nics as u64,
    );

    // Incast: everyone hammers NIC 0 through a shallow buffer. The
    // interesting output is the drop behavior — and that it replays
    // bit-identically when sharded.
    let incast_cfg = FleetConfig {
        nics,
        shards: 1,
        nic,
        fabric: FabricConfig {
            port_buffer_bytes: 16 * 1024,
            ..FabricConfig::default()
        },
        workload: Workload {
            pattern: Pattern::Incast { target: 0 },
            sizes: SizeMix::Fixed(1472),
            fps: 400_000.0,
            ..Workload::default()
        },
    };
    let mut fleet = Fleet::new(incast_cfg, horizon).expect("valid incast config");
    let incast = fleet.run_measured(warmup, window);
    let incast_shards = 4.min(nics);
    let mut fleet = Fleet::new(
        FleetConfig {
            shards: incast_shards,
            ..incast_cfg
        },
        horizon,
    )
    .expect("valid incast config");
    let incast_sharded = fleet.run_measured(warmup, window);
    if incast.fabric_drops() == 0 {
        failures.push("incast: no fabric drops through a 16 KB egress buffer".into());
    }
    if !identical(&incast, &incast_sharded) {
        failures.push(format!(
            "incast: {incast_shards} shards diverged from the single-shard reference"
        ));
    }
    println!(
        "incast:  {:.3} Gb/s to the victim, {} delivered, {} dropped \
         ({} bytes), victim port high-water {} bytes, digest {:016x}",
        incast.goodput_gbps(),
        incast.fabric.delivered,
        incast.fabric_drops(),
        incast.fabric.dropped_bytes,
        incast.ports[0].max_occupancy,
        incast.fabric.digest,
    );

    // Faulted: every fault class at once over the uniform workload in
    // reliable mode, run clean-sharded and re-sharded. The interesting
    // outputs are the aggregated err_* table and the determinism
    // re-check under fire.
    let fault_spec = "seed=23,rate=0.002,fab_crc=0.01,flap_us=200,flap_down_us=20,\
                      squeeze=0.005,crash_us=180,watchdog_us=60,poison=0.002,\
                      fw=0.001,stall_alpha=1.5";
    let plan = FaultPlan::parse(fault_spec).expect("valid fault spec");
    // Fixed window regardless of quick mode: the crash period needs
    // room for at least one full crash/reset cycle.
    let faulted_window = Ps::from_us(400);
    let faulted_cfg = FleetConfig {
        nics,
        shards: 1,
        nic: nic
            .to_builder()
            .faults(Some(plan))
            .build()
            .expect("valid faulted config"),
        fabric: FabricConfig::default(),
        workload: Workload {
            reliable: true,
            rto_us: 40,
            ..uniform.workload
        },
    };
    let mut fleet = Fleet::new(faulted_cfg, faulted_window).expect("valid faulted config");
    let faulted = fleet.run_measured(Ps::ZERO, faulted_window);
    let faulted_shards = 2.min(nics);
    let mut fleet = Fleet::new(
        FleetConfig {
            shards: faulted_shards,
            ..faulted_cfg
        },
        faulted_window,
    )
    .expect("valid faulted config");
    let faulted_sharded = fleet.run_measured(Ps::ZERO, faulted_window);
    if !identical(&faulted, &faulted_sharded) {
        failures.push(format!(
            "faulted: {faulted_shards} shards diverged from the single-shard reference"
        ));
    }
    let totals = faulted.errors_total().unwrap_or_default();
    if totals.injected() == 0 {
        failures.push("faulted: nothing injected — the fault plane is not wired through".into());
    }
    if totals.nic_resets == 0 {
        failures.push(format!(
            "faulted: no NIC crash/reset cycle completed (crash period 180us over \
             {} us)",
            faulted_window.0 / 1_000_000
        ));
    }
    println!("faulted: plan {fault_spec}");
    println!(
        "{:>5} {:>9} {:>7} {:>7} {:>7} {:>8} {:>7} {:>7}",
        "nic", "injected", "crc", "resets", "lost", "retrans", "dups", "fw"
    );
    for (i, s) in faulted.per_nic.iter().enumerate() {
        let e = s.errors.unwrap_or_default();
        println!(
            "{:>5} {:>9} {:>7} {:>7} {:>7} {:>8} {:>7} {:>7}",
            i,
            e.injected(),
            e.crc_dropped,
            e.nic_resets,
            e.nic_reset_lost_frames,
            e.tx_retransmits,
            e.rx_duplicates,
            e.fw_instr_faults,
        );
    }
    println!(
        "{:>5} {:>9} {:>7} {:>7} {:>7} {:>8} {:>7} {:>7}  ({} delivered, identical={})",
        "total",
        totals.injected(),
        totals.crc_dropped,
        totals.nic_resets,
        totals.nic_reset_lost_frames,
        totals.tx_retransmits,
        totals.rx_duplicates,
        totals.fw_instr_faults,
        faulted.fabric.delivered,
        identical(&faulted, &faulted_sharded),
    );

    let runs: Vec<RunReport> = scaling
        .iter()
        .map(|(s, wall, stats)| RunReport {
            label: format!("uniform,nics={nics},shards={s}"),
            axes: vec![("shards".into(), s.to_string())],
            config: nic,
            // One RunStats per report row: NIC 0's window (per-NIC
            // symmetry is not guaranteed) — the aggregate view lives
            // under "extra".
            stats: stats.per_nic[0].clone(),
            latency: (*s == 1).then(|| latency_to_json(&stats.latency)),
            wall: *wall,
        })
        .collect();
    let scaling_json: Vec<Json> = scaling
        .iter()
        .map(|(s, wall, stats)| {
            let ncps = (nics as u64 * stats.cycles_per_nic) as f64 / wall.as_secs_f64().max(1e-9);
            Json::obj()
                .with("shards", *s as u64)
                .with("wall_s", wall.as_secs_f64())
                .with("nic_cycles_per_host_sec", ncps)
                .with(
                    "speedup",
                    base_wall.as_secs_f64() / wall.as_secs_f64().max(1e-9),
                )
                .with("identical", identical(reference, stats))
        })
        .collect();
    let extra = Json::obj()
        .with("nics", nics as u64)
        .with("hw_threads", hw_threads as u64)
        .with("warmup_us", warmup.0 / 1_000_000)
        .with("window_us", window.0 / 1_000_000)
        .with("epochs", reference.epochs)
        .with(
            "uniform",
            fleet_json(reference, &format!("{:?}", uniform.workload)),
        )
        .with(
            "incast",
            fleet_json(&incast, &format!("{:?}", incast_cfg.workload)).with(
                "victim_port_max_occupancy_bytes",
                incast.ports[0].max_occupancy,
            ),
        )
        .with("scaling", Json::Arr(scaling_json))
        .with("speedup_gate_binding", gate_binds)
        .with(
            "faults",
            Json::obj()
                .with("plan", fault_spec)
                .with("window_us", faulted_window.0 / 1_000_000)
                .with("shards_checked", faulted_shards as u64)
                .with("identical", identical(&faulted, &faulted_sharded))
                .with("delivered", faulted.fabric.delivered)
                .with("goodput_gbps", faulted.goodput_gbps())
                .with(
                    "per_nic",
                    Json::Arr(
                        faulted
                            .per_nic
                            .iter()
                            .enumerate()
                            .map(|(i, s)| err_json(&s.errors.unwrap_or_default(), Some(i as u64)))
                            .collect(),
                    ),
                )
                .with("totals", err_json(&totals, None)),
        );
    if quick {
        println!("quick mode: results file not written");
    } else {
        exp.finish(runs, Some(extra)).expect("write results");
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}

/// The fleet determinism contract, as one predicate: everything a run
/// reports except wall-clock time must match.
fn identical(a: &FleetStats, b: &FleetStats) -> bool {
    a.per_nic == b.per_nic
        && a.fabric == b.fabric
        && a.ports == b.ports
        && a.epochs == b.epochs
        && a.nic_epochs_skipped == b.nic_epochs_skipped
}

/// One `err_*` table as JSON, row names matching the stable
/// `RunStats::summary()` rows; `nic` tags per-NIC entries.
fn err_json(e: &ErrorStats, nic: Option<u64>) -> Json {
    let mut j = Json::obj();
    if let Some(i) = nic {
        j = j.with("nic", i);
    }
    for (name, value) in e.summary() {
        j = j.with(name, value);
    }
    j
}

/// One fleet run's simulated-side results as JSON (the digest as hex:
/// `Json::Num` is an f64 and would round a 64-bit digest).
fn fleet_json(st: &FleetStats, workload: &str) -> Json {
    Json::obj()
        .with("workload", workload)
        .with("goodput_gbps", st.goodput_gbps())
        .with("offered", st.fabric.offered)
        .with("delivered", st.fabric.delivered)
        .with("dropped", st.fabric.dropped)
        .with("delivered_bytes", st.fabric.delivered_bytes)
        .with("dropped_bytes", st.fabric.dropped_bytes)
        .with("digest", format!("{:016x}", st.fabric.digest))
        .with("nic_epochs_skipped", st.nic_epochs_skipped)
        .with("cycles_per_nic", st.cycles_per_nic)
        .with("latency", latency_to_json(&st.latency))
}
