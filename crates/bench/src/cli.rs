//! The one command-line surface every bench binary shares.
//!
//! [`Args::parse`] wraps [`Experiment::from_args`] (which handles
//! `--jobs`, `--quiet`, `--trace`, `--faults` and ignores what it does
//! not know) and adds the simulator-level flags the binaries used to
//! hand-roll individually:
//!
//! * `--dispatch polling|interrupt` — the firmware dispatch mode
//!   ablation axis ([`DispatchMode`]);
//! * `--cores N` — override the core count of every configuration the
//!   binary builds;
//! * `--dma-engines N` / `--macs N` — frame-side topology overrides
//!   (the `SysDef` sweep axes): DMA engine pairs and MACs per
//!   configuration;
//! * `--nics N` / `--shards N` / `--workload SPEC` — fleet-level
//!   overrides for binaries that run multi-NIC fleets (fleet size,
//!   worker-thread shards, and a `nicsim_net::Workload` spec string
//!   such as `pattern=incast,target=0,fps=2e5`).
//!
//! Binaries route each configuration they construct through
//! [`Args::configure`], so the overrides apply uniformly — sweeps that
//! set their own core axis simply assign `cores` after `configure` and
//! win.

use nicsim::{DispatchMode, NicConfig};
use nicsim_exp::Experiment;

/// Parsed shared command line: the experiment engine plus the
/// simulator-level overrides.
pub struct Args {
    /// The experiment engine (windows, jobs, results output, tracing,
    /// fault plan).
    pub exp: Experiment,
    /// `--dispatch`: how the firmware waits for work (default polling,
    /// the paper's Figure 5).
    pub dispatch: DispatchMode,
    /// `--cores`: core-count override, if given.
    pub cores: Option<usize>,
    /// `--dma-engines`: DMA engine pair count override, if given.
    pub dma_engines: Option<usize>,
    /// `--macs`: MAC count override, if given.
    pub macs: Option<usize>,
    /// `--nics`: fleet size override, if given (fleet binaries only).
    pub nics: Option<usize>,
    /// `--shards`: fleet worker-thread override, if given (fleet
    /// binaries only).
    pub shards: Option<usize>,
    /// `--workload`: fleet workload spec override, if given (fleet
    /// binaries only; parsed eagerly so typos fail at startup).
    pub workload: Option<nicsim_net::Workload>,
}

impl Args {
    /// Parse the process's command line for experiment `name`.
    ///
    /// Exits with status 2 and a usage message on a malformed value;
    /// unknown flags are ignored (each layer parses only its own).
    pub fn parse(name: &str) -> Args {
        let exp = Experiment::from_args(name);
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut dispatch = DispatchMode::Polling;
        let mut cores = None;
        let mut dma_engines = None;
        let mut macs = None;
        let mut nics = None;
        let mut shards = None;
        let mut workload = None;
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            if let Some(v) = arg.strip_prefix("--dispatch=") {
                dispatch = parse_dispatch(v);
            } else if arg == "--dispatch" {
                i += 1;
                dispatch = parse_dispatch(argv.get(i).unwrap_or_else(|| usage_dispatch()));
            } else if let Some(v) = arg.strip_prefix("--cores=") {
                cores = Some(parse_cores(v));
            } else if arg == "--cores" {
                i += 1;
                cores = Some(parse_cores(argv.get(i).unwrap_or_else(|| usage_cores())));
            } else if let Some(v) = arg.strip_prefix("--dma-engines=") {
                dma_engines = Some(parse_count(v, "--dma-engines"));
            } else if arg == "--dma-engines" {
                i += 1;
                let v = argv.get(i).unwrap_or_else(|| usage_count("--dma-engines"));
                dma_engines = Some(parse_count(v, "--dma-engines"));
            } else if let Some(v) = arg.strip_prefix("--macs=") {
                macs = Some(parse_count(v, "--macs"));
            } else if arg == "--macs" {
                i += 1;
                let v = argv.get(i).unwrap_or_else(|| usage_count("--macs"));
                macs = Some(parse_count(v, "--macs"));
            } else if let Some(v) = arg.strip_prefix("--nics=") {
                nics = Some(parse_count(v, "--nics"));
            } else if arg == "--nics" {
                i += 1;
                let v = argv.get(i).unwrap_or_else(|| usage_count("--nics"));
                nics = Some(parse_count(v, "--nics"));
            } else if let Some(v) = arg.strip_prefix("--shards=") {
                shards = Some(parse_count(v, "--shards"));
            } else if arg == "--shards" {
                i += 1;
                let v = argv.get(i).unwrap_or_else(|| usage_count("--shards"));
                shards = Some(parse_count(v, "--shards"));
            } else if let Some(v) = arg.strip_prefix("--workload=") {
                workload = Some(parse_workload(v));
            } else if arg == "--workload" {
                i += 1;
                let v = argv
                    .get(i)
                    .unwrap_or_else(|| usage_workload("missing spec"));
                workload = Some(parse_workload(v));
            }
            i += 1;
        }
        Args {
            exp,
            dispatch,
            cores,
            dma_engines,
            macs,
            nics,
            shards,
            workload,
        }
    }

    /// Apply the shared overrides to one configuration.
    #[must_use]
    pub fn configure(&self, mut cfg: NicConfig) -> NicConfig {
        cfg.dispatch = self.dispatch;
        if let Some(c) = self.cores {
            cfg.cores = c;
        }
        if let Some(d) = self.dma_engines {
            cfg.topology.dma_engines = d;
        }
        if let Some(m) = self.macs {
            cfg.topology.macs = m;
        }
        cfg
    }
}

fn parse_dispatch(v: &str) -> DispatchMode {
    match v {
        "polling" => DispatchMode::Polling,
        "interrupt" => DispatchMode::Interrupt,
        _ => usage_dispatch(),
    }
}

fn parse_cores(v: &str) -> usize {
    match v.parse() {
        Ok(n) if n > 0 => n,
        _ => usage_cores(),
    }
}

fn usage_dispatch() -> ! {
    eprintln!("--dispatch needs 'polling' or 'interrupt'");
    std::process::exit(2);
}

fn usage_cores() -> ! {
    eprintln!("--cores needs a positive integer");
    std::process::exit(2);
}

fn parse_count(v: &str, flag: &str) -> usize {
    match v.parse() {
        Ok(n) if n > 0 => n,
        _ => usage_count(flag),
    }
}

fn usage_count(flag: &str) -> ! {
    eprintln!("{flag} needs a positive integer");
    std::process::exit(2);
}

fn parse_workload(v: &str) -> nicsim_net::Workload {
    match nicsim_net::Workload::parse(v) {
        Ok(w) => w,
        Err(e) => usage_workload(&e),
    }
}

fn usage_workload(why: &str) -> ! {
    eprintln!("--workload needs a spec like 'pattern=incast,target=0,fps=2e5': {why}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configure_applies_overrides() {
        let args = Args {
            exp: Experiment::new("t"),
            dispatch: DispatchMode::Interrupt,
            cores: Some(3),
            dma_engines: Some(2),
            macs: Some(2),
            nics: None,
            shards: None,
            workload: None,
        };
        let cfg = args.configure(NicConfig::default());
        assert_eq!(cfg.dispatch, DispatchMode::Interrupt);
        assert_eq!(cfg.cores, 3);
        assert_eq!(cfg.topology.dma_engines, 2);
        assert_eq!(cfg.topology.macs, 2);
        let args = Args {
            exp: Experiment::new("t"),
            dispatch: DispatchMode::Polling,
            cores: None,
            dma_engines: None,
            macs: None,
            nics: None,
            shards: None,
            workload: None,
        };
        let cfg = args.configure(NicConfig::default());
        assert_eq!(cfg.dispatch, DispatchMode::Polling);
        assert_eq!(cfg.cores, NicConfig::default().cores);
        assert_eq!(cfg.topology, nicsim::Topology::default());
    }
}
