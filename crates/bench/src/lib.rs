//! Shared infrastructure for the table/figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper through the [`nicsim_exp::Experiment`] engine, so all results
//! come from identical methodology:
//!
//! * warm up 2 ms of simulated time, then measure a 4 ms steady-state
//!   window (scaled down by `NICSIM_QUICK=1` for smoke runs);
//! * always validate: every run asserts zero corrupt, reordered, or
//!   invalid frames end to end;
//! * sweeps run in parallel (`--jobs N` / `NICSIM_JOBS`), and every
//!   binary writes its structured results to `results/<name>.json`
//!   (schema documented in EXPERIMENTS.md).
//!
//! This crate keeps only what the binaries share beyond the engine:
//! the report header, the ILP trace conversion, and the dependency-free
//! micro-benchmark harness used by `benches/`.

use nicsim::{ChromeTrace, FrameTracker, Metrics, NicConfig};
use nicsim_cpu::OpEvent;
use nicsim_exp::{latency_to_json, Experiment, RunReport};
use nicsim_ilp::TraceOp;
use std::path::Path;

pub mod cli;

pub use cli::Args;

/// Run `cfg` once with the full observability bundle — a Chrome
/// `trace_event` exporter, the per-frame latency tracker, and the
/// counter/histogram metrics — writing the Perfetto-openable trace
/// JSON to `path` and merging the latency stage breakdown into the
/// returned report (its `"latency"` key in `nicsim-exp/v1` results).
///
/// This is the `--trace <path>` implementation every bench binary
/// shares (see [`Experiment::trace_path`]).
///
/// # Panics
///
/// Panics if the configuration is invalid, the run fails validation,
/// the trace file cannot be written, or the frame lifecycle the probe
/// observed is inconsistent (a start without a matching completion).
pub fn traced_run(exp: &Experiment, label: &str, cfg: NicConfig, path: &Path) -> RunReport {
    let probe = (ChromeTrace::new(), (FrameTracker::new(), Metrics::new()));
    let (mut report, sys) = exp.run_with_probe(label, cfg, probe);
    let (chrome, (tracker, metrics)) = sys.unwrap_probe();

    let violations = tracker.violations();
    assert!(
        violations.is_empty(),
        "frame lifecycle violations: {violations:?}"
    );
    report.latency = Some(latency_to_json(&tracker.summary()));

    chrome.write(path).expect("write chrome trace");
    println!(
        "wrote {} ({} trace events{}) — open at https://ui.perfetto.dev",
        path.display(),
        chrome.len(),
        if chrome.dropped() > 0 {
            format!(", {} dropped at the entry limit", chrome.dropped())
        } else {
            String::new()
        }
    );
    let grants: u64 = metrics.sp_grants().iter().sum();
    let conflicts: u64 = metrics.sp_conflicts().iter().sum();
    let [dma_rd, dma_wr] = metrics.dma_depth();
    println!(
        "probed window: icache hit rate {:.1}%, {} crossbar grants / {} conflicts, \
         mean dma inflight rd {:.2} / wr {:.2}",
        metrics.icache_hit_rate() * 100.0,
        grants,
        conflicts,
        dma_rd.mean(),
        dma_wr.mean(),
    );
    report
}

/// Convert the core model's coarse operation events into the ILP
/// analyzer's trace alphabet.
pub fn to_ilp_trace(events: &[OpEvent]) -> Vec<TraceOp> {
    events
        .iter()
        .map(|e| match e {
            OpEvent::Alu(n) => TraceOp::Alu(*n),
            OpEvent::Load => TraceOp::Load,
            OpEvent::Store => TraceOp::Store,
            OpEvent::Rmw => TraceOp::Rmw,
            OpEvent::Branch { mispredict } => TraceOp::Branch {
                mispredict: *mispredict,
            },
        })
        .collect()
}

/// Print a standard experiment header.
pub fn header(what: &str, paper: &str) {
    println!("================================================================");
    println!("{what}");
    println!("(paper reference: {paper})");
    println!("================================================================");
}

/// A dependency-free micro-benchmark harness (the container this repo
/// builds in has no crates.io access, so no criterion).
pub mod micro {
    use std::hint::black_box;
    use std::time::{Duration, Instant};

    /// Time `f`, printing mean ns/iteration: warm up briefly, then run
    /// for ~300 ms of wall clock.
    pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
        for _ in 0..3 {
            black_box(f());
        }
        let target = Duration::from_millis(300);
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < target {
            black_box(f());
            iters += 1;
        }
        let per = start.elapsed().as_nanos() as f64 / iters as f64;
        println!("{name:<40} {per:>12.1} ns/iter  ({iters} iters)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ilp_trace_conversion_is_faithful() {
        let events = [
            OpEvent::Alu(3),
            OpEvent::Load,
            OpEvent::Store,
            OpEvent::Rmw,
            OpEvent::Branch { mispredict: true },
        ];
        let t = to_ilp_trace(&events);
        assert_eq!(t.len(), 5);
        assert_eq!(t[0], TraceOp::Alu(3));
        assert_eq!(t[4], TraceOp::Branch { mispredict: true });
    }
}
