//! Shared infrastructure for the table/figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper through the [`nicsim_exp::Experiment`] engine, so all results
//! come from identical methodology:
//!
//! * warm up 2 ms of simulated time, then measure a 4 ms steady-state
//!   window (scaled down by `NICSIM_QUICK=1` for smoke runs);
//! * always validate: every run asserts zero corrupt, reordered, or
//!   invalid frames end to end;
//! * sweeps run in parallel (`--jobs N` / `NICSIM_JOBS`), and every
//!   binary writes its structured results to `results/<name>.json`
//!   (schema documented in EXPERIMENTS.md).
//!
//! This crate keeps only what the binaries share beyond the engine:
//! the report header, the ILP trace conversion, and the dependency-free
//! micro-benchmark harness used by `benches/`.

use nicsim::{NicConfig, NicSystem, RunStats};
use nicsim_cpu::OpEvent;
use nicsim_ilp::TraceOp;
use nicsim_sim::Ps;

/// Warm-up and measurement window (milliseconds of simulated time).
#[deprecated(
    since = "0.2.0",
    note = "the engine reads NICSIM_QUICK itself; construct a nicsim_exp::Experiment instead"
)]
pub fn windows() -> (u64, u64) {
    if std::env::var("NICSIM_QUICK").is_ok_and(|v| v == "1") {
        (1, 1)
    } else {
        (2, 4)
    }
}

/// Run `cfg` with the standard methodology and return the statistics.
#[deprecated(
    since = "0.2.0",
    note = "use nicsim_exp::Experiment::run (re-exported as nicsim_repro::Experiment), \
            which also records config + wall-clock and serializes to JSON"
)]
pub fn measure(cfg: NicConfig) -> RunStats {
    #[allow(deprecated)]
    let (warm, win) = windows();
    let mut sys = NicSystem::new(cfg);
    let stats = sys.run_measured(Ps::from_ms(warm), Ps::from_ms(win));
    stats.assert_clean();
    stats
}

/// Run `cfg` and also return the system for post-run inspection
/// (trace extraction).
#[deprecated(
    since = "0.2.0",
    note = "use nicsim_exp::Experiment::run_with_system, which also records \
            config + wall-clock and serializes to JSON"
)]
pub fn measure_with_system(cfg: NicConfig) -> (RunStats, NicSystem) {
    #[allow(deprecated)]
    let (warm, win) = windows();
    let mut sys = NicSystem::new(cfg);
    let stats = sys.run_measured(Ps::from_ms(warm), Ps::from_ms(win));
    stats.assert_clean();
    (stats, sys)
}

/// Convert the core model's coarse operation events into the ILP
/// analyzer's trace alphabet.
pub fn to_ilp_trace(events: &[OpEvent]) -> Vec<TraceOp> {
    events
        .iter()
        .map(|e| match e {
            OpEvent::Alu(n) => TraceOp::Alu(*n),
            OpEvent::Load => TraceOp::Load,
            OpEvent::Store => TraceOp::Store,
            OpEvent::Rmw => TraceOp::Rmw,
            OpEvent::Branch { mispredict } => TraceOp::Branch {
                mispredict: *mispredict,
            },
        })
        .collect()
}

/// Print a standard experiment header.
pub fn header(what: &str, paper: &str) {
    println!("================================================================");
    println!("{what}");
    println!("(paper reference: {paper})");
    println!("================================================================");
}

/// A dependency-free micro-benchmark harness (the container this repo
/// builds in has no crates.io access, so no criterion).
pub mod micro {
    use std::hint::black_box;
    use std::time::{Duration, Instant};

    /// Time `f`, printing mean ns/iteration: warm up briefly, then run
    /// for ~300 ms of wall clock.
    pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
        for _ in 0..3 {
            black_box(f());
        }
        let target = Duration::from_millis(300);
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < target {
            black_box(f());
            iters += 1;
        }
        let per = start.elapsed().as_nanos() as f64 / iters as f64;
        println!("{name:<40} {per:>12.1} ns/iter  ({iters} iters)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ilp_trace_conversion_is_faithful() {
        let events = [
            OpEvent::Alu(3),
            OpEvent::Load,
            OpEvent::Store,
            OpEvent::Rmw,
            OpEvent::Branch { mispredict: true },
        ];
        let t = to_ilp_trace(&events);
        assert_eq!(t.len(), 5);
        assert_eq!(t[0], TraceOp::Alu(3));
        assert_eq!(t[4], TraceOp::Branch { mispredict: true });
    }
}
