//! Shared infrastructure for the table/figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper; this library holds the measurement conventions they share so
//! all results come from identical methodology:
//!
//! * warm up 2 ms of simulated time, then measure a 4 ms steady-state
//!   window (scaled down by `NICSIM_QUICK=1` for smoke runs);
//! * always validate: every run asserts zero corrupt, reordered, or
//!   invalid frames end to end.

use nicsim::{NicConfig, NicSystem, RunStats};
use nicsim_cpu::OpEvent;
use nicsim_ilp::TraceOp;
use nicsim_sim::Ps;

/// Warm-up and measurement window (milliseconds of simulated time).
pub fn windows() -> (u64, u64) {
    if std::env::var("NICSIM_QUICK").is_ok_and(|v| v == "1") {
        (1, 1)
    } else {
        (2, 4)
    }
}

/// Run `cfg` with the standard methodology and return the statistics.
pub fn measure(cfg: NicConfig) -> RunStats {
    let (warm, win) = windows();
    let mut sys = NicSystem::new(cfg);
    let stats = sys.run_measured(Ps::from_ms(warm), Ps::from_ms(win));
    stats.assert_clean();
    stats
}

/// Run `cfg` and also return the system for post-run inspection
/// (trace extraction).
pub fn measure_with_system(cfg: NicConfig) -> (RunStats, NicSystem) {
    let (warm, win) = windows();
    let mut sys = NicSystem::new(cfg);
    let stats = sys.run_measured(Ps::from_ms(warm), Ps::from_ms(win));
    stats.assert_clean();
    (stats, sys)
}

/// Convert the core model's coarse operation events into the ILP
/// analyzer's trace alphabet.
pub fn to_ilp_trace(events: &[OpEvent]) -> Vec<TraceOp> {
    events
        .iter()
        .map(|e| match e {
            OpEvent::Alu(n) => TraceOp::Alu(*n),
            OpEvent::Load => TraceOp::Load,
            OpEvent::Store => TraceOp::Store,
            OpEvent::Rmw => TraceOp::Rmw,
            OpEvent::Branch { mispredict } => TraceOp::Branch {
                mispredict: *mispredict,
            },
        })
        .collect()
}

/// Print a standard experiment header.
pub fn header(what: &str, paper: &str) {
    println!("================================================================");
    println!("{what}");
    println!("(paper reference: {paper})");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ilp_trace_conversion_is_faithful() {
        let events = [
            OpEvent::Alu(3),
            OpEvent::Load,
            OpEvent::Store,
            OpEvent::Rmw,
            OpEvent::Branch { mispredict: true },
        ];
        let t = to_ilp_trace(&events);
        assert_eq!(t.len(), 5);
        assert_eq!(t[0], TraceOp::Alu(3));
        assert_eq!(t[4], TraceOp::Branch { mispredict: true });
    }
}
