//! Fault-plane determinism and zero-fault bit-identity.
//!
//! The fault plane's contract has two halves:
//!
//! * **Zero-fault bit-identity** — a configuration without a plan, and
//!   one with a plan whose every probability is zero (and hangs off),
//!   produce identical `RunStats` apart from the `errors` field (`None`
//!   vs `Some(zeros)`). The fault-aware firmware branches, the CRC
//!   stamping, and the armed-but-silent sites must not move a single
//!   cycle or counter.
//! * **Reproducibility** — any `(seed, plan)` replays exactly: same
//!   stats and same `ErrorStats` across repeats *and* across the dense
//!   and event-driven kernels.

use nicsim::{ErrorStats, FaultPlan, FwMode, NicConfig, NicSystem, RunStats};
use nicsim_sim::Ps;

const WARMUP: Ps = Ps(100_000_000); // 100 us
const WINDOW: Ps = Ps(150_000_000); // 150 us

fn small(faults: Option<FaultPlan>) -> NicConfig {
    NicConfig::builder()
        .cores(2)
        .cpu_mhz(500)
        .faults(faults)
        .build()
        .unwrap()
}

fn run_event(cfg: NicConfig) -> RunStats {
    NicSystem::build(cfg)
        .finish()
        .unwrap()
        .run_measured(WARMUP, WINDOW)
}

fn run_dense(cfg: NicConfig) -> RunStats {
    NicSystem::build(cfg)
        .finish()
        .unwrap()
        .run_measured_dense(WARMUP, WINDOW)
}

#[test]
fn zero_probability_plan_is_bit_identical_to_no_plan() {
    let clean = run_event(small(None));
    let armed = run_event(small(Some(FaultPlan::default())));
    assert_eq!(
        armed.errors,
        Some(ErrorStats::default()),
        "a silent plan must report all-zero error counters"
    );
    let mut stripped = armed.clone();
    stripped.errors = None;
    assert_eq!(
        clean, stripped,
        "arming the fault plane at zero rates moved the simulation"
    );
    assert!(clean.tx_frames > 20 && clean.rx_frames > 20, "no traffic");
}

#[test]
fn faulted_runs_replay_and_match_across_kernels() {
    for (seed, rate) in [(1u64, 2e-3), (7, 5e-3)] {
        let mut plan = FaultPlan::with_rate(seed, rate);
        plan.hang_period_us = 400;
        plan.watchdog_us = 30;
        let cfg = small(Some(plan));
        let a = run_event(cfg);
        let b = run_event(cfg);
        assert_eq!(a, b, "seed {seed}: repeat run diverged");
        let d = run_dense(cfg);
        assert_eq!(a, d, "seed {seed}: kernels diverged under faults");
        assert_eq!(a.errors, d.errors, "seed {seed}: error stats diverged");
    }
}

#[test]
fn different_seeds_draw_different_fault_schedules() {
    let a = run_event(small(Some(FaultPlan::with_rate(3, 5e-3))));
    let b = run_event(small(Some(FaultPlan::with_rate(4, 5e-3))));
    let (ea, eb) = (a.errors.unwrap(), b.errors.unwrap());
    assert!(ea.injected() > 0 && eb.injected() > 0, "rates too low");
    assert_ne!(
        (ea, a.tx_frames, a.rx_frames),
        (eb, b.tx_frames, b.rx_frames),
        "independent seeds should not coincide"
    );
}

#[test]
fn heavy_faults_recover_without_wedging() {
    let mut plan = FaultPlan::with_rate(11, 2e-2);
    plan.hang_period_us = 150;
    plan.watchdog_us = 25;
    let cfg = small(Some(plan));
    let s = run_event(cfg);
    let e = s.errors.expect("plan configured");
    let injected = e.link_corrupt_injected + e.link_truncate_injected;
    assert!(e.crc_dropped > 0, "no CRC drops at 2% corruption: {e:?}");
    // Frames still on the wire when the window closes are injected but
    // not yet checked; the CRC check must catch everything else and
    // must never drop a clean frame.
    assert!(
        e.crc_dropped <= injected,
        "dropped more than injected: {e:?}"
    );
    assert!(
        injected - e.crc_dropped <= 4,
        "injected link faults escaped the CRC check: {e:?}"
    );
    assert!(e.dma_transient_errors > 0, "no DMA errors: {e:?}");
    assert!(e.dma_retries_ok > 0, "no successful retries: {e:?}");
    assert!(e.ecc_corrections > 0, "no ECC events: {e:?}");
    assert!(e.assist_hangs > 0, "no hangs at 150 us period: {e:?}");
    // At most one hang per engine may still be waiting on the watchdog.
    assert!(e.watchdog_resets > 0, "watchdog never fired: {e:?}");
    assert!(
        e.assist_hangs - e.watchdog_resets <= 2,
        "hangs outran the watchdog: {e:?}"
    );
    // Every error descriptor the driver consumed was a genuine drop;
    // a few may still be queued in the return ring at the cutoff.
    assert!(
        e.rx_error_returns > 0,
        "no error returns reached the driver"
    );
    assert!(
        e.rx_error_returns <= e.crc_dropped,
        "driver saw more error returns than drops: {e:?}"
    );
    // Traffic keeps flowing through the episode soup.
    assert!(s.tx_frames > 20, "tx starved: {}", s.tx_frames);
    assert!(s.rx_frames > 20, "rx starved: {}", s.rx_frames);
    assert_eq!(s.rx_corrupt, 0, "CRC-dropped frames must never validate");
    assert_eq!(s.rx_out_of_order, 0, "recovery must preserve ordering");
}

#[test]
fn dma_aborts_surface_as_tx_retries() {
    // Retries exhausted quickly: max_retries 0 turns every transient
    // error into an abort, which the driver must account and re-post.
    let plan = FaultPlan {
        dma_error: 5e-3,
        max_retries: 0,
        ..FaultPlan::default()
    };
    let s = run_event(small(Some(plan)));
    let e = s.errors.expect("plan configured");
    assert!(e.dma_aborts > 0, "no aborts: {e:?}");
    assert_eq!(e.dma_retries_ok, 0, "max_retries 0 can never retry-ok");
    assert!(
        e.tx_retries > 0,
        "driver saw no aborts to retry: {e:?} (stats {s:?})"
    );
    assert!(s.tx_frames > 20 && s.rx_frames > 20, "traffic starved");
}

#[test]
fn software_only_mode_survives_faults() {
    let cfg = NicConfig::builder()
        .cores(2)
        .cpu_mhz(500)
        .mode(FwMode::SoftwareOnly)
        .faults(Some(FaultPlan::with_rate(5, 5e-3)))
        .build()
        .unwrap();
    let a = run_event(cfg);
    let d = run_dense(cfg);
    assert_eq!(a, d, "software-only kernels diverged under faults");
    let e = a.errors.unwrap();
    assert!(e.injected() > 0, "no faults injected: {e:?}");
    assert!(a.rx_frames > 20, "rx starved");
}
