//! Dense-vs-event kernel equivalence.
//!
//! The hybrid event-driven kernel (`NicSystem::run_until`) skips cycles
//! it can prove no component will act on. Its contract is *bit-identical
//! results*: every counter, profile bucket, and derived statistic must
//! match what the dense reference kernel (`run_until_dense`) produces.
//! These tests run both kernels over identical configurations and assert
//! exact `RunStats` equality.

use nicsim::{FwMode, NicConfig, NicSystem, RunStats};
use nicsim_sim::Ps;

const WARMUP: Ps = Ps(100_000_000); // 100 us
const WINDOW: Ps = Ps(150_000_000); // 150 us

fn run_pair(cfg: NicConfig, warmup: Ps, window: Ps) -> (RunStats, RunStats, Ps, Ps) {
    let mut dense = NicSystem::try_new(cfg).unwrap();
    let d = dense.run_measured_dense(warmup, window);
    let mut event = NicSystem::try_new(cfg).unwrap();
    let e = event.run_measured(warmup, window);
    (d, e, dense.now(), event.now())
}

fn assert_identical(cfg: NicConfig, warmup: Ps, window: Ps, label: &str) {
    let (d, e, dense_now, event_now) = run_pair(cfg, warmup, window);
    assert_eq!(dense_now, event_now, "{label}: clocks diverged");
    assert_eq!(d, e, "{label}: stats diverged");
    // The configurations under test must exercise real traffic, or the
    // equivalence is vacuous.
    assert!(d.tx_frames > 0 || d.rx_frames > 0, "{label}: no traffic");
}

#[test]
fn kernels_match_across_core_counts_and_modes() {
    for cores in [1usize, 2, 6] {
        for mode in [FwMode::SoftwareOnly, FwMode::RmwEnhanced] {
            let cfg = NicConfig {
                cores,
                cpu_mhz: 300,
                mode,
                ..NicConfig::default()
            };
            assert_identical(cfg, WARMUP, WINDOW, &format!("{cores} cores, {mode:?}"));
        }
    }
}

#[test]
fn kernels_match_with_small_datagrams() {
    // Small frames arrive ~20x more often, stressing the MacRx arrival
    // bound and the drop path (small payloads overrun the firmware).
    for cores in [1usize, 6] {
        let cfg = NicConfig {
            cores,
            cpu_mhz: 300,
            mode: FwMode::RmwEnhanced,
            udp_payload: 18,
            ..NicConfig::default()
        };
        assert_identical(cfg, WARMUP, WINDOW, &format!("{cores} cores, 18B payload"));
    }
}

#[test]
fn kernels_match_in_ideal_mode_and_one_sided_traffic() {
    let cfg = NicConfig {
        mode: FwMode::Ideal,
        cores: 1,
        cpu_mhz: 300,
        ..NicConfig::default()
    };
    assert_identical(cfg, WARMUP, WINDOW, "ideal");

    // Receive-only: the send path is idle, so the event kernel leans
    // entirely on the arrival/completion bounds.
    let cfg = NicConfig {
        cores: 2,
        cpu_mhz: 300,
        send_enabled: false,
        ..NicConfig::default()
    };
    assert_identical(cfg, WARMUP, WINDOW, "recv-only");

    // Send-only: the generator is disabled (`next_arrival` = never);
    // wakes come from the driver interval and wire completions.
    let cfg = NicConfig {
        cores: 2,
        cpu_mhz: 300,
        recv_enabled: false,
        ..NicConfig::default()
    };
    assert_identical(cfg, WARMUP, WINDOW, "send-only");
}

#[test]
fn kernels_match_under_offered_load_pacing() {
    // Paced offered load makes the driver's send budget a function of
    // the clock, so a poll that does nothing *now* may act later without
    // any NIC-side write: the kernel must never mark the driver idle
    // here. Below-saturation rates leave the NIC with long quiet spells,
    // exercising exactly that path.
    for fps in [20_000.0, 200_000.0] {
        let cfg = NicConfig {
            cores: 2,
            cpu_mhz: 300,
            offered_tx_fps: Some(fps),
            offered_rx_fps: Some(fps),
            ..NicConfig::default()
        };
        assert_identical(cfg, WARMUP, WINDOW, &format!("paced {fps} fps"));
    }
}

/// xorshift64* — deterministic, dependency-free.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        options[(self.next() % options.len() as u64) as usize]
    }
}

#[test]
fn kernels_match_on_random_configurations() {
    let mut rng = XorShift(0x9e37_79b9_7f4a_7c15);
    for trial in 0..6 {
        let cfg = NicConfig {
            cores: rng.pick(&[1usize, 2, 3, 4, 6]),
            cpu_mhz: rng.pick(&[150u64, 200, 300, 500]),
            mode: rng.pick(&[FwMode::SoftwareOnly, FwMode::RmwEnhanced]),
            udp_payload: rng.pick(&[32usize, 256, 800, 1472]),
            driver_interval: rng.pick(&[500u64, 1000, 2000]),
            ..NicConfig::default()
        };
        let warmup = Ps::from_us(rng.pick(&[50u64, 80, 120]));
        let window = Ps::from_us(rng.pick(&[80u64, 100, 150]));
        assert_identical(cfg, warmup, window, &format!("trial {trial}: {cfg:?}"));
    }
}
