//! Dense-vs-event kernel equivalence.
//!
//! The hybrid event-driven kernel (`NicSystem::run_until`) skips cycles
//! it can prove no component will act on. Its contract is *bit-identical
//! results*: every counter, profile bucket, and derived statistic must
//! match what the dense reference kernel (`run_until_dense`) produces.
//! These tests run both kernels over identical configurations and assert
//! exact `RunStats` equality.

use nicsim::{
    DispatchMode, EventLog, FaultPlan, FrameTracker, FwMode, NicConfig, NicSystem, RunStats, SysDef,
};
use nicsim_sim::Ps;

const WARMUP: Ps = Ps(100_000_000); // 100 us
const WINDOW: Ps = Ps(150_000_000); // 150 us

fn run_pair(cfg: NicConfig, warmup: Ps, window: Ps) -> (RunStats, RunStats, Ps, Ps) {
    let mut dense = NicSystem::build(cfg).finish().unwrap();
    let d = dense.run_measured_dense(warmup, window);
    let mut event = NicSystem::build(cfg).finish().unwrap();
    let e = event.run_measured(warmup, window);
    (d, e, dense.now(), event.now())
}

fn assert_identical(cfg: NicConfig, warmup: Ps, window: Ps, label: &str) {
    let (d, e, dense_now, event_now) = run_pair(cfg, warmup, window);
    assert_eq!(dense_now, event_now, "{label}: clocks diverged");
    assert_eq!(d, e, "{label}: stats diverged");
    // The configurations under test must exercise real traffic, or the
    // equivalence is vacuous.
    assert!(d.tx_frames > 0 || d.rx_frames > 0, "{label}: no traffic");
}

#[test]
fn kernels_match_across_core_counts_and_modes() {
    for cores in [1usize, 2, 6] {
        for mode in [FwMode::SoftwareOnly, FwMode::RmwEnhanced] {
            let cfg = NicConfig::builder()
                .cores(cores)
                .cpu_mhz(300)
                .mode(mode)
                .build()
                .unwrap();
            assert_identical(cfg, WARMUP, WINDOW, &format!("{cores} cores, {mode:?}"));
        }
    }
}

#[test]
fn kernels_match_with_small_datagrams() {
    // Small frames arrive ~20x more often, stressing the MacRx arrival
    // bound and the drop path (small payloads overrun the firmware).
    for cores in [1usize, 6] {
        let cfg = NicConfig::builder()
            .cores(cores)
            .cpu_mhz(300)
            .mode(FwMode::RmwEnhanced)
            .udp_payload(18)
            .build()
            .unwrap();
        assert_identical(cfg, WARMUP, WINDOW, &format!("{cores} cores, 18B payload"));
    }
}

#[test]
fn kernels_match_in_ideal_mode_and_one_sided_traffic() {
    let cfg = NicConfig::builder()
        .mode(FwMode::Ideal)
        .cores(1)
        .cpu_mhz(300)
        .build()
        .unwrap();
    assert_identical(cfg, WARMUP, WINDOW, "ideal");

    // Receive-only: the send path is idle, so the event kernel leans
    // entirely on the arrival/completion bounds.
    let cfg = NicConfig::builder()
        .cores(2)
        .cpu_mhz(300)
        .send_enabled(false)
        .build()
        .unwrap();
    assert_identical(cfg, WARMUP, WINDOW, "recv-only");

    // Send-only: the generator is disabled (`next_arrival` = never);
    // wakes come from the driver interval and wire completions.
    let cfg = NicConfig::builder()
        .cores(2)
        .cpu_mhz(300)
        .recv_enabled(false)
        .build()
        .unwrap();
    assert_identical(cfg, WARMUP, WINDOW, "send-only");
}

#[test]
fn kernels_match_under_offered_load_pacing() {
    // Paced offered load makes the driver's send budget a function of
    // the clock, so a poll that does nothing *now* may act later without
    // any NIC-side write: the kernel must never mark the driver idle
    // here. Below-saturation rates leave the NIC with long quiet spells,
    // exercising exactly that path.
    for fps in [20_000.0, 200_000.0] {
        let cfg = NicConfig::builder()
            .cores(2)
            .cpu_mhz(300)
            .offered_tx_fps(Some(fps))
            .offered_rx_fps(Some(fps))
            .build()
            .unwrap();
        assert_identical(cfg, WARMUP, WINDOW, &format!("paced {fps} fps"));
    }
}

#[test]
fn kernels_match_in_interrupt_dispatch() {
    // Interrupt dispatch is where the event kernel's core-elision does
    // the most work (a parked core reports an unbounded wake), so the
    // equivalence matrix covers it across core counts, payloads, and
    // one-sided traffic.
    for cores in [1usize, 2, 6] {
        let cfg = NicConfig::builder()
            .cores(cores)
            .cpu_mhz(300)
            .dispatch(DispatchMode::Interrupt)
            .build()
            .unwrap();
        assert_identical(cfg, WARMUP, WINDOW, &format!("{cores} cores, interrupt"));
    }
    let cfg = NicConfig::builder()
        .cores(2)
        .cpu_mhz(300)
        .dispatch(DispatchMode::Interrupt)
        .udp_payload(18)
        .build()
        .unwrap();
    assert_identical(cfg, WARMUP, WINDOW, "interrupt, 18B payload");
    let cfg = NicConfig::builder()
        .cores(2)
        .cpu_mhz(300)
        .dispatch(DispatchMode::Interrupt)
        .send_enabled(false)
        .offered_rx_fps(Some(100_000.0))
        .build()
        .unwrap();
    assert_identical(cfg, WARMUP, WINDOW, "interrupt, paced recv-only");
}

#[test]
fn parallel_kernel_is_bit_identical_to_sequential_kernels() {
    // The domain-parallel kernel splits each cycle across two threads;
    // its contract is the same as the event kernel's: exact RunStats
    // equality with the dense reference, in both dispatch modes and
    // across core counts.
    for dispatch in [DispatchMode::Polling, DispatchMode::Interrupt] {
        for cores in [1usize, 2, 6] {
            let cfg = NicConfig::builder()
                .cores(cores)
                .cpu_mhz(300)
                .dispatch(dispatch)
                .build()
                .unwrap();
            let label = format!("parallel, {cores} cores, {dispatch:?}");
            let mut seq = NicSystem::build(cfg).finish().unwrap();
            let s = seq.run_measured(WARMUP, WINDOW);
            let mut par = NicSystem::build(cfg).finish().unwrap();
            let p = par.run_measured_parallel(WARMUP, WINDOW);
            assert_eq!(seq.now(), par.now(), "{label}: clocks diverged");
            assert_eq!(s, p, "{label}: stats diverged");
            assert_eq!(
                seq.kernel_cycle_split(),
                par.kernel_cycle_split(),
                "{label}: skip decisions diverged"
            );
            assert!(s.tx_frames > 0 || s.rx_frames > 0, "{label}: no traffic");
            let ss = par.parallel_sync_stats();
            if ss.sequential_fallback {
                // Single-hardware-thread host: the kernel ran the
                // sequential path (bit-identity already asserted above).
                assert_eq!(ss.rendezvous, 0, "{label}: fallback still met a barrier");
            } else {
                assert!(ss.rendezvous > 0, "{label}: no rendezvous at all");
                assert!(ss.solo_cycles > 0, "{label}: solo stepping never fired");
            }
        }
    }
}

#[test]
fn lookahead_batches_engage_at_moderate_load() {
    // Batching needs a horizon: every core parked, assists quiet, and a
    // frame-side event on the clock. Saturated runs rarely get there (a
    // core is always running), so the non-vacuity check lives on the
    // moderate-load interrupt point — the regime the batched kernel
    // targets — where the NIC sleeps between paced arrivals. The stats
    // must still match the sequential kernel exactly, and the
    // rendezvous amortization must be real: far fewer barrier
    // generations than stepped cycles.
    let cfg = NicConfig::builder()
        .cores(1)
        .cpu_mhz(200)
        .mode(FwMode::SoftwareOnly)
        .dispatch(DispatchMode::Interrupt)
        .send_enabled(false)
        .offered_rx_fps(Some(20_000.0))
        .build()
        .unwrap();
    // Long windows: the first few frames run against cold rings (buffer
    // prefetch storms keep the frame side dense), so the rendezvous
    // amortization only shows at steady state.
    let warmup = Ps::from_us(1_000);
    let window = Ps::from_us(4_000);
    let mut seq = NicSystem::build(cfg).finish().unwrap();
    let s = seq.run_measured(warmup, window);
    let mut par = NicSystem::build(cfg).finish().unwrap();
    let p = par.run_measured_parallel(warmup, window);
    assert_eq!(s, p, "moderate load: stats diverged");
    assert_eq!(
        seq.kernel_cycle_split(),
        par.kernel_cycle_split(),
        "moderate load: skip decisions diverged"
    );
    assert!(p.rx_frames > 0, "moderate load: no traffic");
    let ss = par.parallel_sync_stats();
    if ss.sequential_fallback {
        // Amortization is unobservable on a single-hardware-thread
        // host; the bit-identity assertions above are the whole check.
        return;
    }
    assert!(ss.batches > 0, "lookahead batching never fired");
    assert!(
        ss.batched_cycles >= 2 * ss.batches,
        "batches shorter than 2 cycles"
    );
    assert!(ss.solo_cycles > 0, "solo stepping never fired");
    let (_skipped, stepped) = par.kernel_cycle_split();
    assert!(
        ss.rendezvous * 4 < stepped,
        "rendezvous not amortized: {} generations over {} stepped cycles",
        ss.rendezvous,
        stepped
    );
}

#[test]
fn probed_parallel_event_stream_is_bit_identical() {
    // The parallel kernel's probe contract: the worker buffers its
    // domain's events and the coordinator replays them at the sequential
    // emission point, so a probed parallel run must produce the *same
    // event stream, in the same order*, as the probed event kernel —
    // not merely the same aggregate stats. Compare raw captures in both
    // dispatch modes (a shorter window keeps the captures tractable:
    // grants alone run to hundreds of thousands of events).
    let warmup = Ps::from_us(40);
    let window = Ps::from_us(60);
    for dispatch in [DispatchMode::Polling, DispatchMode::Interrupt] {
        let cfg = NicConfig::builder()
            .cores(2)
            .cpu_mhz(300)
            .dispatch(dispatch)
            .build()
            .unwrap();
        let label = format!("probed parallel, {dispatch:?}");
        let mut seq = NicSystem::build(cfg)
            .probe(EventLog::new())
            .finish()
            .unwrap();
        let s = seq.run_measured(warmup, window);
        let mut par = NicSystem::build(cfg)
            .probe(EventLog::new())
            .finish()
            .unwrap();
        let p = par.run_measured_parallel(warmup, window);
        assert_eq!(s, p, "{label}: stats diverged");
        let (se, pe) = (seq.probe().events(), par.probe().events());
        assert!(!se.is_empty(), "{label}: no events captured");
        if se != pe {
            let n = se.len().min(pe.len());
            let i = (0..n).find(|&i| se[i] != pe[i]).unwrap_or(n);
            panic!(
                "{label}: event streams diverged at index {i} \
                 (seq {} events, par {} events):\n  seq: {:?}\n  par: {:?}",
                se.len(),
                pe.len(),
                se.get(i),
                pe.get(i),
            );
        }
    }
}

#[test]
fn probed_parallel_frame_tracker_matches_sequential() {
    // A real sink (not just a raw log) on the parallel path: per-frame
    // stage timelines joined across both threads' events must come out
    // identical to the sequential kernel's, and internally consistent.
    let cfg = NicConfig::builder()
        .cores(2)
        .cpu_mhz(300)
        .dispatch(DispatchMode::Interrupt)
        .offered_rx_fps(Some(100_000.0))
        .build()
        .unwrap();
    let mut seq = NicSystem::build(cfg)
        .probe(FrameTracker::new())
        .finish()
        .unwrap();
    let s = seq.run_measured(WARMUP, WINDOW);
    let mut par = NicSystem::build(cfg)
        .probe(FrameTracker::new())
        .finish()
        .unwrap();
    let p = par.run_measured_parallel(WARMUP, WINDOW);
    assert_eq!(s, p, "frame-tracker config: stats diverged");
    let (st, pt) = (seq.probe(), par.probe());
    assert!(
        pt.violations().is_empty(),
        "parallel timeline violations: {:?}",
        pt.violations()
    );
    let (ss, ps) = (st.summary(), pt.summary());
    assert!(
        ss.tx_frames + ss.rx_frames > 0,
        "no complete frame timelines"
    );
    assert_eq!(
        format!("{ss:?}"),
        format!("{ps:?}"),
        "latency summaries diverged"
    );
}

#[test]
fn polling_and_interrupt_deliver_identical_frames() {
    // The dispatch modes differ only in the cost of waiting: at a paced
    // load both can sustain, every offered frame must flow through the
    // same descriptors in the same order. Cycle counts differ (that is
    // the point), so this compares the frame-visible record instead of
    // RunStats: the wire sequence numbers the MAC accepted and the
    // (src, dst, len) of every payload DMA write, under a fault plan
    // that exercises CRC drops and DMA retries in both modes.
    let plan = FaultPlan {
        seed: 7,
        link_corrupt: 0.01,
        dma_error: 0.005,
        ..FaultPlan::default()
    };
    let base = NicConfig::builder()
        .cores(2)
        .cpu_mhz(400)
        .offered_tx_fps(Some(60_000.0))
        .offered_rx_fps(Some(60_000.0))
        .faults(Some(plan))
        .build()
        .unwrap();
    let mut runs = Vec::new();
    for dispatch in [DispatchMode::Polling, DispatchMode::Interrupt] {
        let cfg = base.to_builder().dispatch(dispatch).build().unwrap();
        let mut sys = NicSystem::build(cfg).finish().unwrap();
        sys.run_until(Ps::from_us(400));
        let stats = sys.collect();
        assert!(stats.tx_frames > 10 && stats.rx_frames > 10, "no traffic");
        runs.push((
            sys.mac_accepted().to_vec(),
            sys.dmawr_payloads().to_vec(),
            stats.errors.expect("fault plan configured"),
            stats.tx_frames,
            stats.rx_frames,
        ));
    }
    let (p, i) = (&runs[0], &runs[1]);
    // The accepted-frame record is cut at the same *wall-clock* instant
    // in both runs, but in-flight tails may differ by a frame or two;
    // the common prefix must match exactly.
    let n = p.0.len().min(i.0.len());
    assert!(
        p.0.len().abs_diff(i.0.len()) <= 4,
        "acceptance counts diverged"
    );
    assert_eq!(p.0[..n], i.0[..n], "accepted wire sequences diverged");
    let n = p.1.len().min(i.1.len());
    assert!(
        p.1.len().abs_diff(i.1.len()) <= 4,
        "payload DMA counts diverged"
    );
    assert_eq!(p.1[..n], i.1[..n], "payload DMA commands diverged");
    assert!(
        p.3.abs_diff(i.3) <= 4 && p.4.abs_diff(i.4) <= 4,
        "delivered frame counts diverged: polling ({}, {}), interrupt ({}, {})",
        p.3,
        p.4,
        i.3,
        i.4
    );
    assert_eq!(
        p.2.crc_dropped, i.2.crc_dropped,
        "CRC drop accounting diverged"
    );
    assert_eq!(
        (p.2.link_corrupt_injected, p.2.link_truncate_injected),
        (i.2.link_corrupt_injected, i.2.link_truncate_injected),
        "link injection schedules diverged"
    );
}

#[test]
fn default_sysdef_reproduces_the_hand_wired_system() {
    // The system-definition layer's contract: composing the default
    // topology from the config must assemble the *same* SoC the
    // pre-sysdef hand-wired builder did. The definitions themselves
    // must be structurally equal, and a system built from the explicit
    // hand-wired definition must produce bit-identical RunStats and
    // frame timelines to one whose definition was derived from the
    // config — across both dispatch modes.
    assert_eq!(
        SysDef::from_config(&NicConfig::default()),
        SysDef::hand_wired_default(),
        "derived default definition diverged from the hand-wired wiring"
    );
    for dispatch in [DispatchMode::Polling, DispatchMode::Interrupt] {
        let cfg = NicConfig::builder()
            .cores(2)
            .cpu_mhz(300)
            .dispatch(dispatch)
            .build()
            .unwrap();
        let label = format!("sysdef default, {dispatch:?}");
        let mut derived = NicSystem::build(cfg)
            .probe(FrameTracker::new())
            .finish()
            .unwrap();
        let d = derived.run_measured(WARMUP, WINDOW);
        let mut wired = NicSystem::build(cfg)
            .sysdef(SysDef::compose(2, cfg.banks, cfg.topology))
            .probe(FrameTracker::new())
            .finish()
            .unwrap();
        let w = wired.run_measured(WARMUP, WINDOW);
        assert_eq!(d, w, "{label}: stats diverged");
        assert!(d.tx_frames > 0 && d.rx_frames > 0, "{label}: no traffic");
        assert_eq!(
            format!("{:?}", derived.probe().summary()),
            format!("{:?}", wired.probe().summary()),
            "{label}: frame summaries diverged"
        );
    }
}

#[test]
fn kernels_match_on_non_default_topologies() {
    // Non-default definitions (extra DMA engines, extra MACs) must hold
    // the same equivalence contract as the default: the event kernel
    // and the domain-parallel kernel each bit-identical to the dense
    // reference, with real traffic flowing through the striped engines.
    for (dma, macs) in [(2usize, 1usize), (2, 2)] {
        let cfg = NicConfig::builder()
            .cores(2)
            .cpu_mhz(300)
            .dma_engines(dma)
            .macs(macs)
            .build()
            .unwrap();
        let label = format!("{dma} engines, {macs} macs");
        assert_identical(cfg, WARMUP, WINDOW, &label);
        let mut seq = NicSystem::build(cfg).finish().unwrap();
        let s = seq.run_measured(WARMUP, WINDOW);
        let mut par = NicSystem::build(cfg).finish().unwrap();
        let p = par.run_measured_parallel(WARMUP, WINDOW);
        assert_eq!(s, p, "{label}: parallel stats diverged");
        assert_eq!(
            seq.kernel_cycle_split(),
            par.kernel_cycle_split(),
            "{label}: skip decisions diverged"
        );
        assert!(s.tx_frames > 0 && s.rx_frames > 0, "{label}: no traffic");
    }
}

#[test]
fn non_default_topology_in_interrupt_dispatch() {
    // The extra engines add dispatch sources past the default ten; the
    // doorbell watch list must cover their done counters or a parked
    // core sleeps through striped completions.
    let cfg = NicConfig::builder()
        .cores(2)
        .cpu_mhz(300)
        .dma_engines(2)
        .dispatch(DispatchMode::Interrupt)
        .build()
        .unwrap();
    assert_identical(cfg, WARMUP, WINDOW, "2 engines, interrupt");
}

/// xorshift64* — deterministic, dependency-free.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        options[(self.next() % options.len() as u64) as usize]
    }
}

#[test]
fn kernels_match_on_random_configurations() {
    let mut rng = XorShift(0x9e37_79b9_7f4a_7c15);
    for trial in 0..6 {
        let cfg = NicConfig::builder()
            .cores(rng.pick(&[1usize, 2, 3, 4, 6]))
            .cpu_mhz(rng.pick(&[150u64, 200, 300, 500]))
            .mode(rng.pick(&[FwMode::SoftwareOnly, FwMode::RmwEnhanced]))
            .udp_payload(rng.pick(&[32usize, 256, 800, 1472]))
            .driver_interval(rng.pick(&[500u64, 1000, 2000]))
            .build()
            .unwrap();
        let warmup = Ps::from_us(rng.pick(&[50u64, 80, 120]));
        let window = Ps::from_us(rng.pick(&[80u64, 100, 150]));
        assert_identical(cfg, warmup, window, &format!("trial {trial}: {cfg:?}"));
    }
}
