//! Frame-lifecycle invariants under the observability probe.
//!
//! Runs the kernel-equivalence configuration matrix with a
//! [`FrameTracker`] probe attached and asserts two contracts:
//!
//! * **Lifecycle consistency** — every stage timestamp the probe joins
//!   on a frame sequence number is strictly ordered (post < fetch <
//!   wire start < wire done; arrival < descriptor publish < delivery)
//!   and no frame reaches a stage without all earlier ones. In-flight
//!   prefixes are legal; orphans and misordering are not.
//! * **Probe transparency** — attaching a real probe must not change
//!   simulation results: `RunStats` from the probed run is bit-identical
//!   to the `NullProbe` run of the same configuration.

use nicsim::{FrameTracker, FwMode, NicConfig, NicSystem};
use nicsim_sim::Ps;

const WARMUP: Ps = Ps(100_000_000); // 100 us
const WINDOW: Ps = Ps(150_000_000); // 150 us

fn assert_lifecycle(cfg: NicConfig, label: &str) {
    let mut plain = NicSystem::build(cfg).finish().unwrap();
    let base = plain.run_measured(WARMUP, WINDOW);

    let mut probed = NicSystem::build(cfg)
        .probe(FrameTracker::new())
        .finish()
        .unwrap();
    let stats = probed.run_measured(WARMUP, WINDOW);
    assert_eq!(
        base, stats,
        "{label}: probed run diverged from the NullProbe run"
    );

    let tracker = probed.unwrap_probe();
    let violations = tracker.violations();
    assert!(
        violations.is_empty(),
        "{label}: {} lifecycle violations, first: {}",
        violations.len(),
        violations[0]
    );

    // Every frame that finished a lifecycle has the full timeline — a
    // completion without its earlier stages would mean a probe hook is
    // missing, which violations() only catches when the partial record
    // exists at all.
    for (seq, r) in tracker.tx_records() {
        if r.wire_done.is_some() {
            assert!(
                r.posted.is_some() && r.fetched.is_some() && r.wire_start.is_some(),
                "{label}: tx frame {seq} completed with an incomplete timeline: {r:?}"
            );
        }
    }
    for (seq, r) in tracker.rx_records() {
        if r.delivered.is_some() {
            assert!(
                r.arrival.is_some() && r.desc.is_some(),
                "{label}: rx frame {seq} delivered with an incomplete timeline: {r:?}"
            );
        }
    }

    // The matrix must exercise real traffic or the invariants are
    // vacuous; directions follow the configuration.
    let s = tracker.summary();
    if cfg.send_enabled {
        assert!(s.tx_frames > 0, "{label}: no complete tx frames in window");
    }
    if cfg.recv_enabled {
        assert!(s.rx_frames > 0, "{label}: no complete rx frames in window");
    }
}

#[test]
fn lifecycle_across_core_counts_and_modes() {
    for cores in [1usize, 2, 6] {
        for mode in [FwMode::SoftwareOnly, FwMode::RmwEnhanced] {
            let cfg = NicConfig::builder()
                .cores(cores)
                .cpu_mhz(300)
                .mode(mode)
                .build()
                .unwrap();
            assert_lifecycle(cfg, &format!("{cores} cores, {mode:?}"));
        }
    }
}

#[test]
fn lifecycle_with_small_datagrams() {
    // Small frames overrun the firmware, so the drop path (arrivals the
    // tracker must ignore) and high sequence churn are both exercised.
    for cores in [1usize, 6] {
        let cfg = NicConfig::builder()
            .cores(cores)
            .cpu_mhz(300)
            .mode(FwMode::RmwEnhanced)
            .udp_payload(18)
            .build()
            .unwrap();
        assert_lifecycle(cfg, &format!("{cores} cores, 18B payload"));
    }
}

#[test]
fn lifecycle_in_ideal_mode_and_one_sided_traffic() {
    let cfg = NicConfig::builder()
        .mode(FwMode::Ideal)
        .cores(1)
        .cpu_mhz(300)
        .build()
        .unwrap();
    assert_lifecycle(cfg, "ideal");

    let cfg = NicConfig::builder()
        .cores(2)
        .cpu_mhz(300)
        .send_enabled(false)
        .build()
        .unwrap();
    assert_lifecycle(cfg, "recv-only");

    let cfg = NicConfig::builder()
        .cores(2)
        .cpu_mhz(300)
        .recv_enabled(false)
        .build()
        .unwrap();
    assert_lifecycle(cfg, "send-only");
}

#[test]
fn lifecycle_under_offered_load_pacing() {
    // Below-saturation pacing leaves long quiet spells: frames cross
    // the warm-up boundary in flight, which is exactly where orphaned
    // stage records would show up.
    for fps in [20_000.0, 200_000.0] {
        let cfg = NicConfig::builder()
            .cores(2)
            .cpu_mhz(300)
            .offered_tx_fps(Some(fps))
            .offered_rx_fps(Some(fps))
            .build()
            .unwrap();
        assert_lifecycle(cfg, &format!("paced {fps} fps"));
    }
}
