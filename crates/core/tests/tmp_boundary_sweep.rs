//! Temporary review probe: sweep run-end boundaries.
use nicsim::{DispatchMode, FwMode, NicConfig, NicSystem};
use nicsim_sim::Ps;

#[test]
fn boundary_sweep() {
    let cfg = NicConfig::builder()
        .cores(1)
        .cpu_mhz(200)
        .mode(FwMode::SoftwareOnly)
        .dispatch(DispatchMode::Interrupt)
        .send_enabled(false)
        .offered_rx_fps(Some(20_000.0))
        .build()
        .unwrap();
    let period = Ps(1_000_000 / 200); // 200 MHz -> 5000 ps
    let mut mismatches = 0;
    for k in 0..4000u64 {
        let until = Ps(60_000_000 + k * period.0);
        let mut seq = NicSystem::build(cfg).finish().unwrap();
        seq.run_until(until);
        let mut par = NicSystem::build(cfg).finish().unwrap();
        par.run_until_parallel(until);
        assert_eq!(seq.now(), par.now(), "clock diverged at k={k}");
        if seq.kernel_cycle_split() != par.kernel_cycle_split() {
            mismatches += 1;
            if mismatches <= 5 {
                eprintln!(
                    "k={k} until={until:?}: seq {:?} vs par {:?}",
                    seq.kernel_cycle_split(),
                    par.kernel_cycle_split()
                );
            }
        }
    }
    eprintln!("total mismatches: {mismatches}/4000");
    assert_eq!(mismatches, 0);
}
