//! The domain-parallel kernel: intra-run parallelism across the NIC's
//! clock domains, with conservative lookahead batching.
//!
//! The sequential kernels tick all four clock domains (paper §3) in one
//! loop. This kernel splits the work across two threads along the
//! domain boundary:
//!
//! * **main thread** — the CPU domain: crossbar arbitration, the cores,
//!   and the instruction memory, plus the host driver;
//! * **worker thread** — the frame-side domains (SDRAM/frame bus, wire,
//!   host DMA): the four assists and frame-memory completion routing.
//!
//! Each stepped cycle runs in one of three modes, chosen at a
//! rendezvous point where all state is coherent:
//!
//! 1. **Solo** — the frame side is provably a no-op this cycle (every
//!    assist-section gate of `step_inner` evaluates false), so the main
//!    thread steps the cycle alone with no barrier traffic at all. This
//!    covers most firmware-execution cycles, where the crossbar is hot
//!    with core traffic but the assists are idle.
//! 2. **Per-cycle** — the domains interact this cycle (crossbar
//!    arbitration of assist requests, a doorbell, a driver poll): the
//!    classic three-phase protocol over a [`DomainBarrier`] generation.
//!    Phase 0 (main, exclusive) advances the clock and arbitrates the
//!    crossbar; phase 1 runs the cores (main) in parallel with the
//!    assists and frame-memory routing (worker); phase 2 (main,
//!    exclusive) runs the host driver and the doorbell wake fan-out.
//! 3. **Batch** — `NicSystem::batch_horizon` proves the next `h > 1`
//!    cycles are free of cross-domain interaction: no crossbar
//!    arbitration, no scratchpad write, no driver action, cores all
//!    mid-stall or parked. The main thread bulk-applies its whole-span
//!    effects (`skip_cycles(h)`: clock, crossbar, cores, driver
//!    countdown) *before* opening the generation, then the worker
//!    free-runs the frame side for the whole span — skipping
//!    frame-quiet cycles with the sequential kernel's own wake bounds
//!    and stepping the active ones — while the main thread waits. Two
//!    atomic handshakes amortize over the whole batch, and the
//!    frame-side work (frame DMA spans, wire transfers) overlaps the
//!    main thread's bookkeeping.
//!
//! Determinism follows from disjointness, not timing: within any
//! generation the two sides touch disjoint state (per-port crossbar
//! views ([`PortHandle`]), a read-only scratchpad, core-only I-memory,
//! worker-only frame/host memory), so any interleaving produces the
//! same state, and [`NicSystem::run_until_parallel`] is bit-identical
//! to [`NicSystem::run_until`] — stats, skip decisions, and probe
//! event streams alike.
//!
//! **Probes.** A probed system cannot hand both threads its probe (a
//! single sink would serialize exactly the work this kernel splits).
//! Instead the worker emits into a thread-local [`EventBuffer`] and the
//! main thread replays it into the real probe at each rendezvous — after
//! the cycle's core events, before the host-driver phase, which is
//! exactly where the sequential kernel emits the assist and
//! frame-memory events. Within a batch every event comes from the
//! worker (bulk-skipped cores and an inert driver emit nothing), so the
//! replayed stream equals the sequential one byte for byte. Fault plans
//! still force the sequential path — fault supervision couples the
//! frame-side units to the host status block mid-cycle.

use crate::stats::RunStats;
use crate::system::NicSystem;
use nicsim_assists::{dma_tag_engine, DmaRead, DmaWrite, MacRx, MacTx};
use nicsim_host::{HostMemory, Mailbox};
use nicsim_mem::{FrameMemory, PortHandle, Scratchpad, StreamId};
use nicsim_obs::{Event, EventBuffer, FaultKind, FaultUnit, NullProbe, Probe};
use nicsim_sim::{DomainBarrier, NextEvent, Ps, WakeTracker};

/// Raw pointers to the frame-side state the worker thread owns while a
/// generation is open. Disjointness contract: between `open(g, n)` and
/// `finish(g)` the main thread touches none of these fields (it ticks
/// cores and I-memory in per-cycle mode and nothing at all in batch
/// mode), and outside that window the worker is parked at the barrier,
/// so every pointer is exclusively held whenever dereferenced.
struct FrameSide {
    /// Every frame-side unit the definition declares, grouped by kind
    /// in port order (the same order the assist port handles take).
    dmards: *mut [DmaRead],
    dmawrs: *mut [DmaWrite],
    mactxs: *mut [MacTx],
    macrxs: *mut [MacRx],
    fm: *mut FrameMemory,
    host_mem: *mut HostMemory,
    /// Read-only while a generation is open: the scratchpad is written
    /// only by phase 0 (crossbar bank ops) and phase 2 (mailbox pokes),
    /// and never during a batch.
    sp: *const Scratchpad,
    /// Set by the worker when a host-memory write obliges the driver to
    /// poll for real; consumed by the main thread's host phase.
    driver_idle: *mut bool,
    fm_short_reads: *mut u64,
    /// Simulation time at the *end* of the open span, written by the
    /// main thread before the open.
    now: *const Ps,
    /// CPU clock period, for the worker's per-cycle clock within a
    /// batch.
    period: Ps,
    /// The worker's event buffer (drained by the main thread between
    /// `wait_done` and the next open). Dereferenced only when the
    /// system is probed.
    events: *mut EventBuffer,
    /// Worker-side stepped/skipped cycle accounting for batch spans,
    /// folded into the system's counters after the run.
    stepped: *mut u64,
    skipped: *mut u64,
}

// SAFETY: the pointers are dereferenced only under the FrameSide
// disjointness contract above; the barrier's Release/Acquire handshake
// publishes each side's writes to the other at the generation edges.
unsafe impl Send for FrameSide {}

/// One cycle of the frame-side domains: the sequential kernel's assist
/// section (`step_inner` with gating) verbatim, against raw per-port
/// crossbar views.
///
/// # Safety
///
/// Caller must hold the FrameSide disjointness contract: exclusive
/// access to everything `f` points at (shared read-only for `sp`), and
/// `h` must be the assist port handles in unit order (every dmard, then
/// every dmawr, mactx, macrx) with the crossbar quiescent.
unsafe fn frame_side_cycle<PB: Probe>(
    f: &FrameSide,
    h: &mut [PortHandle],
    now: Ps,
    probe: &mut PB,
) {
    let sp = &*f.sp;
    let dmards = &mut *f.dmards;
    let dmawrs = &mut *f.dmawrs;
    let mactxs = &mut *f.mactxs;
    let macrxs = &mut *f.macrxs;
    let fm = &mut *f.fm;
    let host_mem = &mut *f.host_mem;
    let (h_dmard, rest) = h.split_at_mut(dmards.len());
    let (h_dmawr, rest) = rest.split_at_mut(dmawrs.len());
    let (h_mactx, h_macrx) = rest.split_at_mut(mactxs.len());

    for (d, hp) in dmards.iter_mut().zip(h_dmard) {
        if d.busy(sp) {
            d.tick_probed(now, hp, sp, host_mem, fm, probe);
        }
    }
    for (d, hp) in dmawrs.iter_mut().zip(h_dmawr) {
        if d.busy(sp) {
            d.tick_probed(now, hp, sp, host_mem, fm, probe);
            *f.driver_idle = false;
        }
    }
    for (m, hp) in mactxs.iter_mut().zip(h_mactx) {
        if m.busy(sp) || m.next_event() <= now {
            m.tick_probed(now, hp, sp, fm, probe);
        }
    }
    for (m, hp) in macrxs.iter_mut().zip(h_macrx) {
        if m.busy() || m.next_event() <= now {
            m.tick_probed(now, hp, sp, fm, probe);
        }
    }

    if fm.next_event() <= now {
        for c in fm.advance_probed(now, probe) {
            match c.stream {
                StreamId::DmaRead => {
                    dmards[dma_tag_engine(c.tag)].on_sdram_complete_probed(c.tag, c.at, probe);
                }
                StreamId::DmaWrite => {
                    let data = match c.data.as_deref() {
                        Some(d) => d,
                        None => short_read(f, c.at, probe),
                    };
                    dmawrs[dma_tag_engine(c.tag)]
                        .on_sdram_complete_probed(c.tag, data, host_mem, c.at, probe);
                    *f.driver_idle = false;
                }
                StreamId::MacTx => {
                    let data = match c.data.as_deref() {
                        Some(d) => d,
                        None => short_read(f, c.at, probe),
                    };
                    mactxs[c.tag as usize].on_sdram_complete_probed(c.at, data, probe);
                }
                StreamId::MacRx => {
                    macrxs[c.tag as usize].on_sdram_complete_probed(c.at, probe);
                }
            }
        }
    }
}

/// Worker-side mirror of `NicSystem::on_short_read`: count the dataless
/// read completion, report it, substitute an empty transfer.
///
/// # Safety
///
/// FrameSide disjointness contract (see [`frame_side_cycle`]).
#[cold]
unsafe fn short_read<PB: Probe>(f: &FrameSide, at: Ps, probe: &mut PB) -> &'static [u8] {
    *f.fm_short_reads += 1;
    if PB::ENABLED {
        probe.emit(Event::Fault {
            kind: FaultKind::ShortRead,
            unit: FaultUnit::FrameMemory,
            info: 0,
            at,
        });
    }
    &[]
}

/// One open generation's worth of frame-side work: a single cycle for
/// the per-cycle protocol (`n == 1`, the main thread decided to step
/// it), or a free-running batch of `n` cycles in which the worker makes
/// its own step/skip decisions with the sequential kernel's frame-side
/// wake bounds.
///
/// Within a batch the cross-domain couplings are provably inert
/// (`NicSystem::batch_horizon`), so the sequential kernel's full wake
/// computation restricted to this span reduces to the frame-side terms
/// mirrored here: the core, driver, and crossbar bounds all land past
/// the batch's end and can neither force a step nor land a jump inside
/// it. The worker therefore steps exactly the cycles the sequential
/// kernel would, keeping the `kernel_cycle_split` accounting
/// bit-identical.
///
/// # Safety
///
/// FrameSide disjointness contract (see [`frame_side_cycle`]).
unsafe fn frame_side_span<PB: Probe>(f: &FrameSide, h: &mut [PortHandle], n: u64, probe: &mut PB) {
    let end = *f.now;
    if n == 1 {
        frame_side_cycle(f, h, end, probe);
        return;
    }
    let period = f.period;
    let mut j = 0u64;
    let mut stepped = 0u64;
    let mut skipped = 0u64;
    while j < n {
        // Frame-side wake bounds, evaluated exactly as the sequential
        // kernel's `wake_cycles` would at this point in the span. The
        // short-lived reborrows end before `frame_side_cycle` takes its
        // own.
        let busy = {
            let sp = &*f.sp;
            (*f.dmards).iter().any(|d| d.busy(sp))
                || (*f.dmawrs).iter().any(|d| d.busy(sp))
                || (*f.mactxs).iter().any(|m| m.busy(sp))
                || (*f.macrxs).iter().any(|m| m.busy())
        };
        let wake = if busy {
            1
        } else {
            let now_j = Ps(end.0 - period.0 * (n - j));
            let mut w = WakeTracker::new(now_j, period);
            w.at_time((*f.fm).next_event());
            for m in (*f.mactxs).iter() {
                w.at_time(m.next_event());
            }
            for m in (*f.macrxs).iter() {
                w.at_time(m.next_event());
            }
            w.wake_in()
        };
        if wake > 1 {
            // A jump landing past the batch's end consumes the rest of
            // the span as skipped, exactly as the sequential kernel's
            // larger jump would cross it.
            let s = (wake - 1).min(n - j);
            skipped += s;
            j += s;
            if j == n {
                break;
            }
        }
        stepped += 1;
        j += 1;
        frame_side_cycle(f, h, Ps(end.0 - period.0 * (n - j)), probe);
    }
    *f.stepped += stepped;
    *f.skipped += skipped;
}

/// The worker thread's generation loop, monomorphized over whether the
/// system is probed (`PROBED` mirrors `P::ENABLED`; the unprobed arm
/// compiles to the pre-observability code).
///
/// # Safety
///
/// FrameSide disjointness contract (see [`frame_side_cycle`]); `f.events`
/// must be valid when `PROBED`.
unsafe fn worker_loop<const PROBED: bool>(
    b: &DomainBarrier,
    f: &FrameSide,
    handles: &mut [PortHandle],
) {
    let mut last = 0;
    while let Some((gen, n)) = b.wait_open(last) {
        last = gen;
        if PROBED {
            let probe = &mut *f.events;
            frame_side_span(f, handles, n, probe);
        } else {
            frame_side_span(f, handles, n, &mut NullProbe);
        }
        b.finish(gen);
    }
}

impl<P: Probe> NicSystem<P> {
    /// Run until simulation time `until` on the domain-parallel kernel:
    /// the event-driven kernel's skip machinery between stepped cycles,
    /// and the solo / per-cycle / lookahead-batch modes documented at
    /// the module level within them. Results are bit-identical to
    /// [`NicSystem::run_until`] and [`NicSystem::run_until_dense`] —
    /// including the probe event stream when a probe is attached.
    ///
    /// Falls back to [`NicSystem::run_until`] when an armed fault plan
    /// is configured (fault supervision is inherently cross-domain; an
    /// all-zeros plan injects nothing and stays on the parallel path)
    /// or the host has a single hardware thread (a worker could never
    /// run concurrently, so every rendezvous would go straight to the
    /// scheduler and cost two context switches per stepped cycle).
    /// Either fallback sets
    /// [`ParallelSyncStats::sequential_fallback`].
    pub fn run_until_parallel(&mut self, until: Ps) {
        if self.faults_armed || std::thread::available_parallelism().map_or(1, |n| n.get()) < 2 {
            self.sync_stats.sequential_fallback = true;
            return self.run_until(until);
        }
        if self.now >= until {
            return;
        }

        let n_cores = self.cfg.cores;
        // SAFETY: the crossbar lives (unmoved, unresized) for the whole
        // scope below; handles are dereferenced only while a generation
        // is open, when no `&mut Crossbar` method runs and the cycle
        // counter is frozen (batch-mode bulk skips happen before the
        // open); core handles stay on this thread, assist handles move
        // to the worker, and the two sets are disjoint ports.
        let mut core_handles = unsafe { self.xbar.port_handles() };
        let assist_handles = core_handles.split_off(n_cores);

        // Worker-side accumulators, folded into the system after the
        // scope ends (the worker owns them while a generation is open).
        let mut worker_events = EventBuffer::new();
        let mut worker_stepped = 0u64;
        let mut worker_skipped = 0u64;
        let events_ptr: *mut EventBuffer = &mut worker_events;

        let frame = FrameSide {
            dmards: &mut self.dmards[..],
            dmawrs: &mut self.dmawrs[..],
            mactxs: &mut self.mactxs[..],
            macrxs: &mut self.macrxs[..],
            fm: &mut self.fm,
            host_mem: &mut self.host_mem,
            sp: &self.sp,
            driver_idle: &mut self.driver_idle,
            fm_short_reads: &mut self.fm_short_reads,
            now: &self.now,
            period: self.cpu_period,
            events: events_ptr,
            stepped: &mut worker_stepped,
            skipped: &mut worker_skipped,
        };

        let barrier = DomainBarrier::new();
        std::thread::scope(|scope| {
            let b = &barrier;
            let worker = scope.spawn(move || {
                // Poison the barrier if an assist panics, so the
                // coordinator fails fast instead of spinning.
                struct Guard<'a>(&'a DomainBarrier);
                impl Drop for Guard<'_> {
                    fn drop(&mut self) {
                        if std::thread::panicking() {
                            self.0.poison();
                        }
                    }
                }
                let _guard = Guard(b);
                let f = frame;
                let mut handles = assist_handles;
                // SAFETY: FrameSide contract — the main thread touches
                // no frame-side state while a generation is open, and
                // the handles are the assist ports in unit order.
                unsafe {
                    if P::ENABLED {
                        worker_loop::<true>(b, &f, &mut handles);
                    } else {
                        worker_loop::<false>(b, &f, &mut handles);
                    }
                }
            });
            barrier.register_worker(worker.thread().clone());

            let mut gen = 0u64;
            while self.now < until {
                // Inter-cycle skip: identical to the event kernel.
                let wake = self.wake_cycles();
                if wake > 1 {
                    let remaining = (until.0 - self.now.0).div_ceil(self.cpu_period.0);
                    let skip = (wake - 1).min(remaining.saturating_sub(1));
                    if skip > 0 {
                        self.skipped_cycles += skip;
                        self.skip_cycles(skip);
                    }
                }

                if self.frame_side_quiet_next() {
                    // Solo: the frame side provably no-ops this cycle,
                    // so the sequential step (which gates those
                    // sections off) runs it bit-identically on the main
                    // thread with no rendezvous. Checked first — it is
                    // the dominant mode on firmware-heavy cycles — and
                    // it implies a horizon of one (the cycle due now is
                    // a main-side one: a core, the crossbar, or a live
                    // driver poll, each of which caps the horizon), so
                    // the batch probe below would be wasted work here.
                    self.sync_stats.solo_cycles += 1;
                    self.stepped_cycles += 1;
                    self.step_inner(true);
                    continue;
                }
                let remaining = (until.0 - self.now.0).div_ceil(self.cpu_period.0);
                let h = self.batch_horizon().min(remaining);
                if h > 1 {
                    // Lookahead batch: the main side's whole-span effect
                    // is exactly a bulk skip (clock, crossbar, cores,
                    // driver countdown), applied *before* the open so
                    // the worker sees settled state; the worker then
                    // owns the span.
                    self.sync_stats.rendezvous += 1;
                    self.sync_stats.batches += 1;
                    self.sync_stats.batched_cycles += h;
                    self.skip_cycles(h);
                    gen += 1;
                    barrier.open(gen, h);
                    barrier.wait_done(gen);
                    if P::ENABLED {
                        // SAFETY: the worker is parked between
                        // generations; both sides use the same raw
                        // pointer to the buffer.
                        unsafe { (*events_ptr).drain_into(&mut self.probe) };
                    }
                } else {
                    // Per-cycle three-phase protocol.
                    self.sync_stats.rendezvous += 1;
                    self.stepped_cycles += 1;

                    // Phase 0 (exclusive): clock edge + crossbar
                    // arbitration into the scratchpad banks.
                    self.now += self.cpu_period;
                    let now = self.now;
                    if self.xbar.needs_tick() {
                        self.xbar.tick_probed(&mut self.sp, now, &mut self.probe);
                    } else {
                        self.xbar.skip_cycles(1);
                    }

                    // Phase 1 (parallel): cores here, frame side on the
                    // worker. The open publishes phase 0's writes; the
                    // rendezvous acquires the worker's.
                    gen += 1;
                    barrier.open(gen, 1);
                    for (core, port) in self.cores.iter_mut().zip(core_handles.iter_mut()) {
                        core.tick_probed(port, &mut self.imem, now, &mut self.probe);
                    }
                    barrier.wait_done(gen);
                    if P::ENABLED {
                        // Replay the worker's events where the
                        // sequential kernel emits them: after the
                        // cores, before the driver.
                        // SAFETY: worker parked between generations.
                        unsafe { (*events_ptr).drain_into(&mut self.probe) };
                    }

                    // Phase 2 (exclusive): host driver + doorbells.
                    self.host_phase(now);
                }
            }
            barrier.shutdown();
        });
        self.stepped_cycles += worker_stepped;
        self.skipped_cycles += worker_skipped;
    }

    /// Warm the system up, then measure a steady-state window, both on
    /// the domain-parallel kernel.
    pub fn run_measured_parallel(&mut self, warmup: Ps, window: Ps) -> RunStats {
        self.run_until_parallel(self.now + warmup);
        self.reset_window();
        self.run_until_parallel(self.now + window);
        self.collect()
    }

    /// Phase 2 of the parallel step: the driver section of the
    /// sequential kernel's `step_inner` (gated), followed by the
    /// doorbell wake fan-out.
    fn host_phase(&mut self, now: Ps) {
        if self.driver_countdown != u64::MAX {
            self.driver_countdown -= 1;
            if self.driver_countdown == 0 {
                self.driver_countdown = self.cfg.driver_interval;
                if !self.driver_idle {
                    let acted = self
                        .driver
                        .tick_probed(now, &mut self.host_mem, &mut self.probe);
                    self.driver_idle = !acted && !self.driver.time_sensitive();
                    for w in self.driver.take_mailbox_writes() {
                        let (addr, reg) = match w.reg {
                            Mailbox::SendBdProd => (self.map.sb_mailbox_prod, "send_bd_prod"),
                            Mailbox::RxBdProd => (self.map.rb_mailbox_prod, "rx_bd_prod"),
                        };
                        self.sp.poke(addr, w.value);
                        if P::ENABLED {
                            self.probe.emit(Event::MailboxWrite {
                                reg,
                                value: w.value,
                                at: now,
                            });
                        }
                    }
                }
            }
        }
        if self.sp.take_signal() {
            for core in &mut self.cores {
                core.raise_wake();
            }
        }
    }
}
