//! The domain-parallel kernel: intra-run parallelism across the NIC's
//! clock domains.
//!
//! The sequential kernels tick all four clock domains (paper §3) in one
//! loop. This kernel splits each simulated cycle across two threads
//! along the domain boundary:
//!
//! * **main thread** — the CPU domain: crossbar arbitration, the cores,
//!   and the instruction memory, plus the host driver;
//! * **worker thread** — the frame-side domains (SDRAM/frame bus, wire,
//!   host DMA): the four assists and frame-memory completion routing.
//!
//! Every stepped cycle runs a three-phase protocol over a
//! [`DomainBarrier`] rendezvous:
//!
//! 1. **Phase 0 (main, exclusive)** — advance the clock and arbitrate
//!    the crossbar into the scratchpad banks. This is the one point
//!    where the two sides' state meets, so it runs alone.
//! 2. **Phase 1 (parallel)** — the main thread ticks the cores against
//!    their crossbar ports and the I-memory while the worker ticks
//!    `dmard → dmawr → mactx → macrx` against theirs and routes
//!    frame-bus completions, in exactly the sequential kernel's order.
//!    The two slices touch disjoint state: per-port crossbar views
//!    ([`PortHandle`]), a read-only scratchpad, core-only I-memory, and
//!    worker-only frame/host memory.
//! 3. **Phase 2 (main, exclusive)** — the host driver's poll, its
//!    mailbox doorbells into the scratchpad, and the doorbell wake
//!    fan-out to the cores.
//!
//! Determinism follows from disjointness, not timing: any interleaving
//! of the two threads inside phase 1 produces the same state, so
//! [`NicSystem::run_until_parallel`] is bit-identical to
//! [`NicSystem::run_until`] — the equivalence tests assert exact
//! `RunStats` equality. Between cycles the main thread reuses the event
//! kernel's skip machinery unchanged; the worker only wakes for stepped
//! cycles.
//!
//! The kernel is implemented for unprobed systems only ([`NullProbe`]):
//! a probe is a single sink both sides would have to share, which is
//! exactly the serialization this kernel exists to avoid. Fault plans
//! also force the sequential path — fault supervision couples the
//! frame-side units to the host status block mid-cycle.

use crate::stats::RunStats;
use crate::system::NicSystem;
use nicsim_assists::{DmaRead, DmaWrite, MacRx, MacTx};
use nicsim_host::{HostMemory, Mailbox};
use nicsim_mem::{FrameMemory, PortHandle, Scratchpad, StreamId};
use nicsim_obs::NullProbe;
use nicsim_sim::{DomainBarrier, NextEvent, Ps};

/// Raw pointers to the frame-side state the worker thread owns during
/// phase 1. Disjointness contract: between `open(g)` and `finish(g)`
/// the main thread touches none of these fields (it ticks cores and
/// I-memory only), and outside that window the worker is parked at the
/// barrier, so every pointer is exclusively held whenever dereferenced.
struct FrameSide {
    dmard: *mut DmaRead,
    dmawr: *mut DmaWrite,
    mactx: *mut MacTx,
    macrx: *mut MacRx,
    fm: *mut FrameMemory,
    host_mem: *mut HostMemory,
    /// Read-only in phase 1: the scratchpad is written only by phase 0
    /// (crossbar bank ops) and phase 2 (mailbox pokes).
    sp: *const Scratchpad,
    /// Set by the worker when a host-memory write obliges the driver to
    /// poll for real; consumed by phase 2.
    driver_idle: *mut bool,
    fm_short_reads: *mut u64,
    /// Current simulation time, written by phase 0 before the open.
    now: *const Ps,
}

// SAFETY: the pointers are dereferenced only under the FrameSide
// disjointness contract above; the barrier's Release/Acquire handshake
// publishes each side's writes to the other at the phase edges.
unsafe impl Send for FrameSide {}

/// One phase-1 slice of the frame-side domains: the sequential kernel's
/// assist section (`step_inner` with gating) verbatim, against raw
/// per-port crossbar views.
///
/// # Safety
///
/// Caller must hold the FrameSide disjointness contract: exclusive
/// access to everything `f` points at (shared read-only for `sp` and
/// `now`), and `h` must be the assist port handles in unit order
/// (dmard, dmawr, mactx, macrx) with the crossbar quiescent.
unsafe fn frame_side_cycle(f: &FrameSide, h: &mut [PortHandle]) {
    let now = *f.now;
    let sp = &*f.sp;
    let dmard = &mut *f.dmard;
    let dmawr = &mut *f.dmawr;
    let mactx = &mut *f.mactx;
    let macrx = &mut *f.macrx;
    let fm = &mut *f.fm;
    let host_mem = &mut *f.host_mem;
    let (h_dmard, rest) = h.split_at_mut(1);
    let (h_dmawr, rest) = rest.split_at_mut(1);
    let (h_mactx, h_macrx) = rest.split_at_mut(1);

    if dmard.busy(sp) {
        dmard.tick_probed(now, &mut h_dmard[0], sp, host_mem, fm, &mut NullProbe);
    }
    if dmawr.busy(sp) {
        dmawr.tick_probed(now, &mut h_dmawr[0], sp, host_mem, fm, &mut NullProbe);
        *f.driver_idle = false;
    }
    if mactx.busy(sp) || mactx.next_event() <= now {
        mactx.tick_probed(now, &mut h_mactx[0], sp, fm, &mut NullProbe);
    }
    if macrx.busy() || macrx.next_event() <= now {
        macrx.tick_probed(now, &mut h_macrx[0], sp, fm, &mut NullProbe);
    }

    if fm.next_event() <= now {
        for c in fm.advance_probed(now, &mut NullProbe) {
            match c.stream {
                StreamId::DmaRead => {
                    dmard.on_sdram_complete_probed(c.tag, c.at, &mut NullProbe);
                }
                StreamId::DmaWrite => {
                    let data = match c.data.as_deref() {
                        Some(d) => d,
                        None => {
                            *f.fm_short_reads += 1;
                            &[]
                        }
                    };
                    dmawr.on_sdram_complete_probed(c.tag, data, host_mem, c.at, &mut NullProbe);
                    *f.driver_idle = false;
                }
                StreamId::MacTx => {
                    let data = match c.data.as_deref() {
                        Some(d) => d,
                        None => {
                            *f.fm_short_reads += 1;
                            &[]
                        }
                    };
                    mactx.on_sdram_complete_probed(c.at, data, &mut NullProbe);
                }
                StreamId::MacRx => macrx.on_sdram_complete_probed(c.at, &mut NullProbe),
            }
        }
    }
}

impl NicSystem {
    /// Run until simulation time `until` on the domain-parallel kernel:
    /// the event-driven kernel's skip machinery between cycles, and the
    /// three-phase split documented at the module level within them.
    /// Results are bit-identical to [`NicSystem::run_until`] and
    /// [`NicSystem::run_until_dense`].
    ///
    /// Falls back to [`NicSystem::run_until`] when a fault plan is
    /// configured (fault supervision is inherently cross-domain).
    pub fn run_until_parallel(&mut self, until: Ps) {
        if self.cfg.faults.is_some() {
            return self.run_until(until);
        }
        if self.now >= until {
            return;
        }

        let n_cores = self.cfg.cores;
        // SAFETY: the crossbar lives (unmoved, unresized) for the whole
        // scope below; handles are dereferenced only during phase 1,
        // when no `&mut Crossbar` method runs and the cycle counter is
        // frozen; core handles stay on this thread, assist handles move
        // to the worker, and the two sets are disjoint ports.
        let mut core_handles = unsafe { self.xbar.port_handles() };
        let assist_handles = core_handles.split_off(n_cores);

        let frame = FrameSide {
            dmard: &mut self.dmard,
            dmawr: &mut self.dmawr,
            mactx: &mut self.mactx,
            macrx: &mut self.macrx,
            fm: &mut self.fm,
            host_mem: &mut self.host_mem,
            sp: &self.sp,
            driver_idle: &mut self.driver_idle,
            fm_short_reads: &mut self.fm_short_reads,
            now: &self.now,
        };

        let barrier = DomainBarrier::new();
        std::thread::scope(|scope| {
            let b = &barrier;
            let worker = scope.spawn(move || {
                // Poison the barrier if an assist panics, so the
                // coordinator fails fast instead of spinning.
                struct Guard<'a>(&'a DomainBarrier);
                impl Drop for Guard<'_> {
                    fn drop(&mut self) {
                        if std::thread::panicking() {
                            self.0.poison();
                        }
                    }
                }
                let _guard = Guard(b);
                let f = frame;
                let mut handles = assist_handles;
                let mut last = 0;
                while let Some(gen) = b.wait_open(last) {
                    last = gen;
                    // SAFETY: FrameSide contract — the main thread
                    // touches no frame-side state between open(gen) and
                    // wait_done(gen), and the handles are the assist
                    // ports in unit order.
                    unsafe { frame_side_cycle(&f, &mut handles) };
                    b.finish(gen);
                }
            });
            barrier.register_worker(worker.thread().clone());

            let mut gen = 0u64;
            while self.now < until {
                // Inter-cycle skip: identical to the event kernel.
                let wake = self.wake_cycles();
                if wake > 1 {
                    let remaining = (until.0 - self.now.0).div_ceil(self.cpu_period.0);
                    let skip = (wake - 1).min(remaining.saturating_sub(1));
                    if skip > 0 {
                        self.skipped_cycles += skip;
                        self.skip_cycles(skip);
                    }
                }
                self.stepped_cycles += 1;

                // Phase 0 (exclusive): clock edge + crossbar
                // arbitration into the scratchpad banks.
                self.now += self.cpu_period;
                let now = self.now;
                if self.xbar.needs_tick() {
                    self.xbar.tick_probed(&mut self.sp, now, &mut NullProbe);
                } else {
                    self.xbar.skip_cycles(1);
                }

                // Phase 1 (parallel): cores here, frame side on the
                // worker. The open publishes phase 0's writes; the
                // rendezvous acquires the worker's.
                gen += 1;
                barrier.open(gen);
                for (core, port) in self.cores.iter_mut().zip(core_handles.iter_mut()) {
                    core.tick_probed(port, &mut self.imem, now, &mut NullProbe);
                }
                barrier.wait_done(gen);

                // Phase 2 (exclusive): host driver + doorbells.
                self.host_phase(now);
            }
            barrier.shutdown();
        });
    }

    /// Warm the system up, then measure a steady-state window, both on
    /// the domain-parallel kernel.
    pub fn run_measured_parallel(&mut self, warmup: Ps, window: Ps) -> RunStats {
        self.run_until_parallel(self.now + warmup);
        self.reset_window();
        self.run_until_parallel(self.now + window);
        self.collect()
    }

    /// Phase 2 of the parallel step: the driver section of the
    /// sequential kernel's `step_inner` (gated), followed by the
    /// doorbell wake fan-out.
    fn host_phase(&mut self, now: Ps) {
        if self.driver_countdown != u64::MAX {
            self.driver_countdown -= 1;
            if self.driver_countdown == 0 {
                self.driver_countdown = self.cfg.driver_interval;
                if !self.driver_idle {
                    let acted = self
                        .driver
                        .tick_probed(now, &mut self.host_mem, &mut NullProbe);
                    self.driver_idle = !acted && self.cfg.offered_tx_fps.is_none();
                    for w in self.driver.take_mailbox_writes() {
                        let addr = match w.reg {
                            Mailbox::SendBdProd => self.map.sb_mailbox_prod,
                            Mailbox::RxBdProd => self.map.rb_mailbox_prod,
                        };
                        self.sp.poke(addr, w.value);
                    }
                }
            }
        }
        if self.sp.take_signal() {
            for core in &mut self.cores {
                core.raise_wake();
            }
        }
    }
}
