//! # nicsim — a programmable 10 Gigabit Ethernet NIC, simulated
//!
//! A from-scratch reproduction of *An Efficient Programmable 10 Gigabit
//! Ethernet Network Interface Card* (Willmann, Kim, Rixner, Pai —
//! HPCA 2005): a cycle-level simulator of the paper's NIC controller
//! architecture plus its frame-level parallel firmware.
//!
//! The controller combines:
//!
//! * parallel single-issue in-order cores (a MIPS-like subset plus the
//!   paper's `set`/`update` atomic RMW instructions),
//! * a partitioned memory system — banked scratchpad behind a 32-bit
//!   crossbar for control data, external GDDR SDRAM behind a 128-bit
//!   frame bus for frame contents,
//! * four hardware assists (DMA read/write, MAC TX/RX), and
//! * four clock domains (CPU/scratchpad, frame bus + SDRAM, PCI,
//!   Ethernet).
//!
//! # Quick start
//!
//! ```
//! use nicsim::{NicConfig, NicSystem};
//! use nicsim_sim::Ps;
//!
//! // A small configuration so the doctest runs fast.
//! let cfg = NicConfig::builder()
//!     .cores(2)
//!     .cpu_mhz(500)
//!     .udp_payload(1472)
//!     .build()
//!     .expect("config validates");
//! let mut sys = NicSystem::build(cfg).finish().expect("config validates");
//! let stats = sys.run_measured(Ps::from_us(120), Ps::from_us(120));
//! assert!(stats.tx_frames > 0 && stats.rx_frames > 0);
//! stats.assert_clean();
//! ```
//!
//! # Fault injection
//!
//! A [`nicsim_fault::FaultPlan`] on [`NicConfig::faults`] arms the
//! deterministic fault plane: link corruption caught by the MAC RX
//! CRC32 check, transient DMA errors with retry/backoff/abort, PCI
//! stalls, correctable ECC events, and stuck-assist hangs recovered by
//! the system watchdog. Runs replay exactly from `(seed, plan)`, and
//! [`RunStats::errors`](stats::RunStats::errors) carries the injection
//! and recovery counters.

pub mod config;
pub mod parallel;
pub mod stats;
pub mod sysdef;
pub mod system;

pub use config::{ConfigError, NicConfig, NicConfigBuilder, Topology};
pub use nicsim_fault::{ErrorStats, FaultPlan};
pub use nicsim_firmware::{DispatchMode, FwMode};
pub use nicsim_obs::{
    ChromeTrace, DmaDir, Event, EventBuffer, EventLog, FmStream, FrameTracker, LatencySummary,
    Metrics, NullProbe, Probe, StageStats,
};
pub use stats::{RunStats, StatValue, SUMMARY_VERSION};
pub use sysdef::{Attachment, ComponentDef, ComponentKind, SysDef};
pub use system::{NicSystem, ParallelSyncStats, SystemBuilder};
