//! Aggregated run statistics: everything the paper's tables and figures
//! are built from.

use nicsim_cpu::{CoreProfile, FwFunc, StallBucket};
use nicsim_sim::Ps;

/// Statistics collected over one measurement window.
///
/// `PartialEq` compares every field (including the derived-rate `f64`s,
/// which are exact functions of the integer counters and the window):
/// the dense-vs-event kernel equivalence tests assert bit-identical
/// stats with it.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Window length.
    pub window: Ps,
    /// Number of cores.
    pub cores: usize,
    /// CPU frequency in MHz.
    pub cpu_mhz: u64,
    /// Frames transmitted (validated at the wire).
    pub tx_frames: u64,
    /// Frames received by the driver (validated end-to-end).
    pub rx_frames: u64,
    /// Transmit UDP payload throughput, Gb/s.
    pub tx_udp_gbps: f64,
    /// Receive UDP payload throughput, Gb/s.
    pub rx_udp_gbps: f64,
    /// Frames the MAC RX dropped (receiver overrun).
    pub rx_mac_drops: u64,
    /// Transmit frames that failed validation or arrived out of order.
    pub tx_errors: u64,
    /// Receive frames that failed validation.
    pub rx_corrupt: u64,
    /// Receive frames delivered out of order (must be 0).
    pub rx_out_of_order: u64,
    /// Merged per-function profile across all cores.
    pub profile: CoreProfile,
    /// Per-core total ticks in the window.
    pub core_ticks: u64,
    /// Scratchpad accesses by the cores.
    pub core_sp_accesses: u64,
    /// Scratchpad accesses by the assists.
    pub assist_sp_accesses: u64,
    /// Scratchpad bandwidth consumed, Gb/s (grants * 4 bytes / window).
    pub scratchpad_gbps: f64,
    /// Instruction-memory bandwidth consumed, Gb/s.
    pub instr_mem_gbps: f64,
    /// Instruction-memory interface utilization (0..1).
    pub instr_mem_utilization: f64,
    /// Frame-memory bandwidth consumed (including alignment padding),
    /// Gb/s.
    pub frame_mem_gbps: f64,
    /// Frame-memory bytes lost to 8-byte misalignment.
    pub frame_mem_wasted_bytes: u64,
    /// Mean frame-memory burst latency.
    pub frame_mem_mean_latency: Ps,
    /// Max frame-memory burst latency.
    pub frame_mem_max_latency: Ps,
    /// I-cache hits across cores.
    pub icache_hits: u64,
    /// I-cache misses across cores.
    pub icache_misses: u64,
}

impl RunStats {
    /// Total full-duplex UDP payload throughput, Gb/s.
    pub fn total_udp_gbps(&self) -> f64 {
        self.tx_udp_gbps + self.rx_udp_gbps
    }

    /// Total frames per second processed (both directions).
    pub fn total_fps(&self) -> f64 {
        (self.tx_frames + self.rx_frames) as f64 / self.window.as_secs_f64()
    }

    /// Average per-core IPC contribution of one stall bucket — the rows
    /// of Table 3 (they sum to 1.0 when cores never halt).
    pub fn ipc_contribution(&self, bucket: StallBucket) -> f64 {
        let total = self.core_ticks * self.cores as u64;
        if total == 0 {
            return 0.0;
        }
        self.profile.bucket_cycles(bucket) as f64 / total as f64
    }

    /// Achieved instructions per cycle per core.
    pub fn ipc(&self) -> f64 {
        let total = self.core_ticks * self.cores as u64;
        if total == 0 {
            return 0.0;
        }
        self.profile.total(|p| p.instructions) as f64 / total as f64
    }

    /// Instructions per frame charged to `func`, normalized by the given
    /// direction's frame count (Tables 1 and 5).
    pub fn instr_per_frame(&self, func: FwFunc, frames: u64) -> f64 {
        if frames == 0 {
            return 0.0;
        }
        self.profile.func(func).instructions as f64 / frames as f64
    }

    /// Memory accesses per frame charged to `func`.
    pub fn accesses_per_frame(&self, func: FwFunc, frames: u64) -> f64 {
        if frames == 0 {
            return 0.0;
        }
        self.profile.func(func).mem_accesses as f64 / frames as f64
    }

    /// Cycles per frame charged to `func` (Table 6).
    pub fn cycles_per_frame(&self, func: FwFunc, frames: u64) -> f64 {
        if frames == 0 {
            return 0.0;
        }
        self.profile.func(func).total_cycles() as f64 / frames as f64
    }

    /// Panic if any frame was corrupted, reordered, or spuriously
    /// errored — the end-to-end correctness contract.
    ///
    /// # Panics
    ///
    /// Panics when validation failed anywhere in the run.
    pub fn assert_clean(&self) {
        assert_eq!(self.tx_errors, 0, "transmit-side validation failures");
        assert_eq!(self.rx_corrupt, 0, "corrupt frames reached the driver");
        assert_eq!(
            self.rx_out_of_order, 0,
            "in-order delivery violated (paper §3.3 requires it)"
        );
    }
}
