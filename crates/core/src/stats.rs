//! Aggregated run statistics: everything the paper's tables and figures
//! are built from.
//!
//! Downstream code should prefer the versioned snapshot surface —
//! [`RunStats::summary`] and the derived-metric accessors — over direct
//! field access: the summary enumerates every scalar metric with a
//! stable name and order (the `nicsim-exp/v1` key order), so writers
//! and dashboards keep working when fields are added.

use nicsim_cpu::{CoreProfile, FwFunc, StallBucket};
use nicsim_fault::ErrorStats;
use nicsim_sim::Ps;

/// Version of the [`RunStats::summary`] field list. Bumped whenever a
/// field is added, removed, renamed, or reordered.
pub const SUMMARY_VERSION: u32 = 1;

/// One scalar statistic value, preserving whether the source field is
/// an exact counter or a derived rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StatValue {
    /// An exact integer counter (frame counts, accesses, picoseconds).
    Int(u64),
    /// A derived floating-point rate or ratio.
    Float(f64),
}

impl StatValue {
    /// The value as `f64` (counters convert losslessly up to 2^53 —
    /// far beyond any window's counts).
    pub fn as_f64(self) -> f64 {
        match self {
            StatValue::Int(v) => v as f64,
            StatValue::Float(v) => v,
        }
    }

    /// The value as an integer counter, if it is one.
    pub fn as_int(self) -> Option<u64> {
        match self {
            StatValue::Int(v) => Some(v),
            StatValue::Float(_) => None,
        }
    }
}

/// Statistics collected over one measurement window.
///
/// `PartialEq` compares every field (including the derived-rate `f64`s,
/// which are exact functions of the integer counters and the window):
/// the dense-vs-event kernel equivalence tests assert bit-identical
/// stats with it.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Window length.
    pub window: Ps,
    /// Number of cores.
    pub cores: usize,
    /// CPU frequency in MHz.
    pub cpu_mhz: u64,
    /// Frames transmitted (validated at the wire).
    pub tx_frames: u64,
    /// Frames received by the driver (validated end-to-end).
    pub rx_frames: u64,
    /// Transmit UDP payload throughput, Gb/s.
    pub tx_udp_gbps: f64,
    /// Receive UDP payload throughput, Gb/s.
    pub rx_udp_gbps: f64,
    /// Frames the MAC RX dropped (receiver overrun).
    pub rx_mac_drops: u64,
    /// Transmit frames that failed validation or arrived out of order.
    pub tx_errors: u64,
    /// Receive frames that failed validation.
    pub rx_corrupt: u64,
    /// Receive frames delivered out of order (must be 0).
    pub rx_out_of_order: u64,
    /// Merged per-function profile across all cores.
    pub profile: CoreProfile,
    /// Per-core total ticks in the window.
    pub core_ticks: u64,
    /// Scratchpad accesses by the cores.
    pub core_sp_accesses: u64,
    /// Scratchpad accesses by the assists.
    pub assist_sp_accesses: u64,
    /// Scratchpad bandwidth consumed, Gb/s (grants * 4 bytes / window).
    pub scratchpad_gbps: f64,
    /// Instruction-memory bandwidth consumed, Gb/s.
    pub instr_mem_gbps: f64,
    /// Instruction-memory interface utilization (0..1).
    pub instr_mem_utilization: f64,
    /// Frame-memory bandwidth consumed (including alignment padding),
    /// Gb/s.
    pub frame_mem_gbps: f64,
    /// Frame-memory bytes lost to 8-byte misalignment.
    pub frame_mem_wasted_bytes: u64,
    /// Mean frame-memory burst latency.
    pub frame_mem_mean_latency: Ps,
    /// Max frame-memory burst latency.
    pub frame_mem_max_latency: Ps,
    /// I-cache hits across cores.
    pub icache_hits: u64,
    /// I-cache misses across cores.
    pub icache_misses: u64,
    /// Fault-injection and recovery counters — `Some` exactly when the
    /// run had a [`nicsim_fault::FaultPlan`] configured. Clean runs
    /// report `None`, keeping their summary byte-identical to builds
    /// without the fault plane.
    pub errors: Option<ErrorStats>,
}

impl RunStats {
    /// Every scalar statistic as `(name, value)` pairs, in the
    /// `nicsim-exp/v1` schema's key order (see [`SUMMARY_VERSION`]).
    /// The two structured members — the per-bucket IPC breakdown and
    /// the per-function profile — are exposed through
    /// [`RunStats::stall_shares`] and [`RunStats::profile`] instead.
    ///
    /// This is the supported way to enumerate statistics without
    /// hard-coding field names; serializers should iterate this list
    /// rather than reaching into fields.
    pub fn summary(&self) -> Vec<(&'static str, StatValue)> {
        use StatValue::{Float, Int};
        let mut rows = vec![
            ("window_ps", Int(self.window.0)),
            ("cores", Int(self.cores as u64)),
            ("cpu_mhz", Int(self.cpu_mhz)),
            ("tx_frames", Int(self.tx_frames)),
            ("rx_frames", Int(self.rx_frames)),
            ("tx_udp_gbps", Float(self.tx_udp_gbps)),
            ("rx_udp_gbps", Float(self.rx_udp_gbps)),
            ("total_udp_gbps", Float(self.total_udp_gbps())),
            ("total_fps", Float(self.total_fps())),
            ("rx_mac_drops", Int(self.rx_mac_drops)),
            ("tx_errors", Int(self.tx_errors)),
            ("rx_corrupt", Int(self.rx_corrupt)),
            ("rx_out_of_order", Int(self.rx_out_of_order)),
            ("ipc", Float(self.ipc())),
            ("core_ticks", Int(self.core_ticks)),
            ("core_sp_accesses", Int(self.core_sp_accesses)),
            ("assist_sp_accesses", Int(self.assist_sp_accesses)),
            ("scratchpad_gbps", Float(self.scratchpad_gbps)),
            ("instr_mem_gbps", Float(self.instr_mem_gbps)),
            ("instr_mem_utilization", Float(self.instr_mem_utilization)),
            ("frame_mem_gbps", Float(self.frame_mem_gbps)),
            ("frame_mem_wasted_bytes", Int(self.frame_mem_wasted_bytes)),
            (
                "frame_mem_mean_latency_ps",
                Int(self.frame_mem_mean_latency.0),
            ),
            (
                "frame_mem_max_latency_ps",
                Int(self.frame_mem_max_latency.0),
            ),
            ("icache_hits", Int(self.icache_hits)),
            ("icache_misses", Int(self.icache_misses)),
        ];
        // The err_* rows appear only under a fault plan, so clean runs
        // keep the exact `nicsim-exp/v1` field list of prior builds.
        if let Some(e) = self.errors {
            rows.extend(e.summary().into_iter().map(|(n, v)| (n, Int(v))));
        }
        rows
    }

    /// Per-stall-bucket IPC contributions as `(label, share)` pairs, in
    /// the schema's `ipc_breakdown` key order. Shares sum to 1.0 when
    /// cores never halt.
    pub fn stall_shares(&self) -> Vec<(&'static str, f64)> {
        StallBucket::ALL
            .into_iter()
            .map(|b| (b.label(), self.ipc_contribution(b)))
            .collect()
    }

    /// Total full-duplex UDP payload throughput, Gb/s.
    pub fn total_udp_gbps(&self) -> f64 {
        self.tx_udp_gbps + self.rx_udp_gbps
    }

    /// Total frames per second processed (both directions).
    pub fn total_fps(&self) -> f64 {
        (self.tx_frames + self.rx_frames) as f64 / self.window.as_secs_f64()
    }

    /// Average per-core IPC contribution of one stall bucket — the rows
    /// of Table 3 (they sum to 1.0 when cores never halt).
    pub fn ipc_contribution(&self, bucket: StallBucket) -> f64 {
        let total = self.core_ticks * self.cores as u64;
        if total == 0 {
            return 0.0;
        }
        self.profile.bucket_cycles(bucket) as f64 / total as f64
    }

    /// Achieved instructions per cycle per core.
    pub fn ipc(&self) -> f64 {
        let total = self.core_ticks * self.cores as u64;
        if total == 0 {
            return 0.0;
        }
        self.profile.total(|p| p.instructions) as f64 / total as f64
    }

    /// Instructions per frame charged to `func`, normalized by the given
    /// direction's frame count (Tables 1 and 5).
    pub fn instr_per_frame(&self, func: FwFunc, frames: u64) -> f64 {
        if frames == 0 {
            return 0.0;
        }
        self.profile.func(func).instructions as f64 / frames as f64
    }

    /// Memory accesses per frame charged to `func`.
    pub fn accesses_per_frame(&self, func: FwFunc, frames: u64) -> f64 {
        if frames == 0 {
            return 0.0;
        }
        self.profile.func(func).mem_accesses as f64 / frames as f64
    }

    /// Cycles per frame charged to `func` (Table 6).
    pub fn cycles_per_frame(&self, func: FwFunc, frames: u64) -> f64 {
        if frames == 0 {
            return 0.0;
        }
        self.profile.func(func).total_cycles() as f64 / frames as f64
    }

    /// Panic if any frame was corrupted, reordered, or spuriously
    /// errored — the end-to-end correctness contract.
    ///
    /// # Panics
    ///
    /// Panics when validation failed anywhere in the run.
    pub fn assert_clean(&self) {
        assert_eq!(self.tx_errors, 0, "transmit-side validation failures");
        assert_eq!(self.rx_corrupt, 0, "corrupt frames reached the driver");
        assert_eq!(
            self.rx_out_of_order, 0,
            "in-order delivery violated (paper §3.3 requires it)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunStats {
        RunStats {
            window: Ps(1_000_000),
            cores: 6,
            cpu_mhz: 166,
            tx_frames: 100,
            rx_frames: 200,
            tx_udp_gbps: 3.5,
            rx_udp_gbps: 4.5,
            rx_mac_drops: 1,
            tx_errors: 0,
            rx_corrupt: 0,
            rx_out_of_order: 0,
            profile: CoreProfile::new(),
            core_ticks: 1000,
            core_sp_accesses: 42,
            assist_sp_accesses: 24,
            scratchpad_gbps: 1.25,
            instr_mem_gbps: 0.5,
            instr_mem_utilization: 0.1,
            frame_mem_gbps: 9.0,
            frame_mem_wasted_bytes: 8,
            frame_mem_mean_latency: Ps(123),
            frame_mem_max_latency: Ps(456),
            icache_hits: 900,
            icache_misses: 100,
            errors: None,
        }
    }

    /// Pins the `nicsim-exp/v1` scalar field list: name set, order, and
    /// Int/Float classification (see [`SUMMARY_VERSION`]).
    #[test]
    fn summary_order_and_values_are_stable() {
        let s = sample();
        let fields = s.summary();
        let names: Vec<&str> = fields.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            [
                "window_ps",
                "cores",
                "cpu_mhz",
                "tx_frames",
                "rx_frames",
                "tx_udp_gbps",
                "rx_udp_gbps",
                "total_udp_gbps",
                "total_fps",
                "rx_mac_drops",
                "tx_errors",
                "rx_corrupt",
                "rx_out_of_order",
                "ipc",
                "core_ticks",
                "core_sp_accesses",
                "assist_sp_accesses",
                "scratchpad_gbps",
                "instr_mem_gbps",
                "instr_mem_utilization",
                "frame_mem_gbps",
                "frame_mem_wasted_bytes",
                "frame_mem_mean_latency_ps",
                "frame_mem_max_latency_ps",
                "icache_hits",
                "icache_misses",
            ]
        );
        let get = |name: &str| {
            fields
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("tx_frames"), StatValue::Int(100));
        assert_eq!(get("total_udp_gbps"), StatValue::Float(8.0));
        assert_eq!(get("frame_mem_mean_latency_ps"), StatValue::Int(123));
        assert_eq!(get("window_ps").as_f64(), 1e6);
        assert_eq!(get("cores").as_int(), Some(6));
        assert_eq!(get("ipc").as_int(), None);
        assert_eq!(SUMMARY_VERSION, 1);
    }

    /// Under a fault plan the 19 `err_*` rows are appended after the
    /// clean-run field list, in `ErrorStats::summary()` order (the six
    /// fleet-plane rows extend the original 13 at the end, so existing
    /// row positions are stable).
    #[test]
    fn summary_appends_error_rows_only_under_a_plan() {
        let clean = sample();
        let mut faulted = sample();
        faulted.errors = Some(ErrorStats {
            crc_dropped: 7,
            tx_retries: 2,
            tx_retransmits: 4,
            ..ErrorStats::default()
        });
        let base = clean.summary();
        let rows = faulted.summary();
        assert_eq!(rows.len(), base.len() + 19);
        assert_eq!(rows[..base.len()], base[..]);
        assert_eq!(rows[base.len() + 2], ("err_crc_dropped", StatValue::Int(7)));
        assert_eq!(rows[base.len() + 11], ("err_tx_retries", StatValue::Int(2)));
        assert_eq!(
            rows[base.len() + 17],
            ("err_tx_retransmits", StatValue::Int(4))
        );
    }

    #[test]
    fn stall_shares_cover_all_buckets() {
        let s = sample();
        let shares = s.stall_shares();
        assert_eq!(shares.len(), StallBucket::ALL.len());
        for (label, share) in shares {
            assert!(!label.is_empty());
            assert_eq!(share, 0.0, "empty profile has no cycles");
        }
    }
}
