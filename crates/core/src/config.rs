//! Full-system configuration.

use nicsim_firmware::FwMode;
use nicsim_mem::{FrameMemoryConfig, ICacheConfig};

/// Configuration of the simulated NIC and its workload.
///
/// The defaults are the paper's headline configuration: 6 cores and 4
/// scratchpad banks at 166 MHz, 8 KB 2-way I-caches with 32-byte lines,
/// 500 MHz GDDR SDRAM, RMW-enhanced firmware, and full-duplex streams of
/// maximum-sized (1472-byte) UDP datagrams.
#[derive(Debug, Clone, Copy)]
pub struct NicConfig {
    /// Number of processing cores (paper sweeps 1–8).
    pub cores: usize,
    /// CPU / scratchpad / crossbar clock in MHz (paper sweeps 100–200).
    pub cpu_mhz: u64,
    /// Scratchpad banks (paper: 4).
    pub banks: usize,
    /// Scratchpad capacity in bytes (paper: 256 KB).
    pub scratchpad_bytes: usize,
    /// Per-core instruction cache geometry.
    pub icache: ICacheConfig,
    /// Frame memory (GDDR SDRAM + frame bus) parameters.
    pub frame_memory: FrameMemoryConfig,
    /// Firmware synchronization mode.
    pub mode: FwMode,
    /// UDP datagram size for both directions.
    pub udp_payload: usize,
    /// Whether the host transmits.
    pub send_enabled: bool,
    /// Whether the wire delivers inbound traffic.
    pub recv_enabled: bool,
    /// Offered transmit load in frames/s (`None` = saturate).
    pub offered_tx_fps: Option<f64>,
    /// Offered receive load in frames/s (`None` = line rate).
    pub offered_rx_fps: Option<f64>,
    /// CPU cycles between driver invocations (host-side polling period).
    pub driver_interval: u64,
    /// Record a scratchpad access trace (for the coherence study).
    pub capture_trace: bool,
    /// Maximum trace records kept when capturing.
    pub trace_limit: usize,
    /// Record core 0's operation trace (for the ILP study).
    pub capture_ilp: bool,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            cores: 6,
            cpu_mhz: 166,
            banks: 4,
            scratchpad_bytes: 256 * 1024,
            icache: ICacheConfig::default(),
            frame_memory: FrameMemoryConfig::default(),
            mode: FwMode::RmwEnhanced,
            udp_payload: 1472,
            send_enabled: true,
            recv_enabled: true,
            offered_tx_fps: None,
            offered_rx_fps: None,
            driver_interval: 16,
            capture_trace: false,
            trace_limit: 4_000_000,
            capture_ilp: false,
        }
    }
}

impl NicConfig {
    /// The paper's software-only baseline at 200 MHz.
    pub fn software_only_200() -> NicConfig {
        NicConfig {
            mode: FwMode::SoftwareOnly,
            cpu_mhz: 200,
            ..NicConfig::default()
        }
    }

    /// The paper's RMW-enhanced configuration at 166 MHz.
    pub fn rmw_166() -> NicConfig {
        NicConfig::default()
    }

    /// The idealized single-core configuration used for Table 1.
    pub fn ideal() -> NicConfig {
        NicConfig {
            cores: 1,
            cpu_mhz: 1000,
            mode: FwMode::Ideal,
            ..NicConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_headline() {
        let c = NicConfig::default();
        assert_eq!(c.cores, 6);
        assert_eq!(c.cpu_mhz, 166);
        assert_eq!(c.banks, 4);
        assert_eq!(c.mode, FwMode::RmwEnhanced);
        assert_eq!(c.udp_payload, 1472);
    }

    #[test]
    fn presets_differ_in_mode_and_clock() {
        let sw = NicConfig::software_only_200();
        assert_eq!(sw.mode, FwMode::SoftwareOnly);
        assert_eq!(sw.cpu_mhz, 200);
        let ideal = NicConfig::ideal();
        assert_eq!(ideal.cores, 1);
        assert_eq!(ideal.mode, FwMode::Ideal);
    }
}
