//! Full-system configuration.

use nicsim_fault::FaultPlan;
use nicsim_firmware::{DispatchMode, FwMode, MemMap, MAX_DMA_ENGINES, MAX_MACS};
use nicsim_mem::{FrameMemoryConfig, ICacheConfig};

/// How many of each frame-side unit the SoC instantiates.
///
/// The default (one DMA engine pair, one MAC) is the paper's board; extra
/// units are the architecture-exploration axis the system-definition
/// layer ([`crate::sysdef`]) exposes. Each DMA "engine" is a read/write
/// pair with its own command rings, scratchpad ports, and crossbar
/// attachments; extra MACs are attached structurally (ports, clocking,
/// completion routing) but the firmware drives MAC 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// DMA engine pairs (read + write), 1..=4. Firmware stripes BD
    /// fetches and frame transfers across engines round-robin.
    pub dma_engines: usize,
    /// Ethernet MACs, 1..=2. MAC 0 carries traffic; extras are
    /// structural (attached and clocked, but quiescent).
    pub macs: usize,
}

impl Default for Topology {
    fn default() -> Self {
        Topology {
            dma_engines: 1,
            macs: 1,
        }
    }
}

/// Configuration of the simulated NIC and its workload.
///
/// The defaults are the paper's headline configuration: 6 cores and 4
/// scratchpad banks at 166 MHz, 8 KB 2-way I-caches with 32-byte lines,
/// 500 MHz GDDR SDRAM, RMW-enhanced firmware, and full-duplex streams of
/// maximum-sized (1472-byte) UDP datagrams.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct NicConfig {
    /// Number of processing cores (paper sweeps 1–8).
    pub cores: usize,
    /// CPU / scratchpad / crossbar clock in MHz (paper sweeps 100–200).
    pub cpu_mhz: u64,
    /// Scratchpad banks (paper: 4).
    pub banks: usize,
    /// Scratchpad capacity in bytes (paper: 256 KB).
    pub scratchpad_bytes: usize,
    /// Per-core instruction cache geometry.
    pub icache: ICacheConfig,
    /// Frame memory (GDDR SDRAM + frame bus) parameters.
    pub frame_memory: FrameMemoryConfig,
    /// Firmware synchronization mode.
    pub mode: FwMode,
    /// How the dispatch loop waits for work: polling (the paper's
    /// Figure 5) or interrupt-driven doorbells (the ablation axis; same
    /// frames and descriptors, different cycle counts, and far faster to
    /// simulate on the event-driven kernel).
    pub dispatch: DispatchMode,
    /// UDP datagram size for both directions.
    pub udp_payload: usize,
    /// Whether the host transmits.
    pub send_enabled: bool,
    /// Whether the wire delivers inbound traffic.
    pub recv_enabled: bool,
    /// Offered transmit load in frames/s (`None` = saturate).
    pub offered_tx_fps: Option<f64>,
    /// Offered receive load in frames/s (`None` = line rate).
    pub offered_rx_fps: Option<f64>,
    /// CPU cycles between driver invocations (host-side polling period).
    pub driver_interval: u64,
    /// Record core 0's operation trace (for the ILP study).
    pub capture_ilp: bool,
    /// Deterministic fault-injection plan (`None` = clean run, the
    /// default). A configured plan enables the MAC RX CRC32 check, the
    /// DMA retry/abort machinery, ECC events, assist hangs with the
    /// system watchdog, and the firmware/driver recovery paths; runs are
    /// reproducible from `(plan.seed, plan)`.
    pub faults: Option<FaultPlan>,
    /// Frame-side unit counts (DMA engine pairs, MACs). The default is
    /// the paper's board: one of each.
    pub topology: Topology,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            cores: 6,
            cpu_mhz: 166,
            banks: 4,
            scratchpad_bytes: 256 * 1024,
            icache: ICacheConfig::default(),
            frame_memory: FrameMemoryConfig::default(),
            mode: FwMode::RmwEnhanced,
            dispatch: DispatchMode::Polling,
            udp_payload: 1472,
            send_enabled: true,
            recv_enabled: true,
            offered_tx_fps: None,
            offered_rx_fps: None,
            driver_interval: 16,
            capture_ilp: false,
            faults: None,
            topology: Topology::default(),
        }
    }
}

/// Why a [`NicConfig`] was rejected by validation.
///
/// Returned by [`NicConfigBuilder::build`], [`NicConfig::validate`], and
/// the system builder's `finish`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `cores` was zero — the firmware needs at least one core.
    ZeroCores,
    /// `banks` was zero — the scratchpad crossbar needs at least one bank.
    ZeroBanks,
    /// `udp_payload` was zero — frames carry at least one payload byte.
    ZeroPayload,
    /// `udp_payload` exceeded the 1472-byte maximum that fits a
    /// standard 1518-byte Ethernet frame.
    PayloadTooLarge {
        /// The rejected payload size.
        payload: usize,
    },
    /// `FwMode::Ideal` with more than one core — the idealized firmware
    /// is synchronization-free and therefore single-core by definition.
    IdealMultiCore {
        /// The rejected core count.
        cores: usize,
    },
    /// `topology.dma_engines` outside `1..=MAX_DMA_ENGINES`.
    BadDmaEngines {
        /// The rejected engine count.
        engines: usize,
    },
    /// `topology.macs` outside `1..=MAX_MACS`.
    BadMacs {
        /// The rejected MAC count.
        macs: usize,
    },
    /// The scratchpad memory map for this topology (command rings and
    /// registers for every DMA engine and MAC) does not fit in
    /// `scratchpad_bytes`.
    TopologyTooLarge {
        /// Bytes the memory map needs.
        needed: usize,
        /// Bytes the scratchpad has.
        available: usize,
    },
    /// [`NicConfigBuilder::faults_spec`] could not parse the fault
    /// specification string.
    FaultSpec(String),
    /// [`NicConfigBuilder::assists`] could not parse the assist
    /// specification string.
    AssistSpec(String),
    /// A [`crate::sysdef::SysDef`] handed to the system builder failed
    /// its structural check or disagrees with the configuration.
    Definition(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroCores => write!(f, "need at least one core"),
            ConfigError::ZeroBanks => write!(f, "need at least one scratchpad bank"),
            ConfigError::ZeroPayload => write!(f, "UDP payload must be nonzero"),
            ConfigError::PayloadTooLarge { payload } => write!(
                f,
                "UDP payload of {payload} bytes exceeds the 1472-byte Ethernet maximum"
            ),
            ConfigError::IdealMultiCore { cores } => write!(
                f,
                "ideal mode is single-core by definition (got {cores} cores)"
            ),
            ConfigError::BadDmaEngines { engines } => write!(
                f,
                "dma_engines must be in 1..={MAX_DMA_ENGINES} (got {engines})"
            ),
            ConfigError::BadMacs { macs } => {
                write!(f, "macs must be in 1..={MAX_MACS} (got {macs})")
            }
            ConfigError::TopologyTooLarge { needed, available } => write!(
                f,
                "topology needs a {needed}-byte scratchpad map but only \
                 {available} bytes are configured"
            ),
            ConfigError::FaultSpec(msg) => write!(f, "bad fault spec: {msg}"),
            ConfigError::AssistSpec(msg) => write!(f, "bad assist spec: {msg}"),
            ConfigError::Definition(msg) => write!(f, "bad system definition: {msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`NicConfig`] whose [`build`](NicConfigBuilder::build)
/// validates the configuration instead of letting an inconsistent one
/// surface as an error deep inside the system builder's `finish`.
///
/// ```
/// use nicsim::{ConfigError, NicConfig};
///
/// let cfg = NicConfig::builder().cores(4).cpu_mhz(200).build().unwrap();
/// assert_eq!(cfg.cores, 4);
/// assert_eq!(
///     NicConfig::builder().cores(0).build(),
///     Err(ConfigError::ZeroCores)
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NicConfigBuilder {
    cfg: NicConfig,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $name:ident: $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            #[must_use]
            pub fn $name(mut self, $name: $ty) -> Self {
                self.cfg.$name = $name;
                self
            }
        )*
    };
}

impl NicConfigBuilder {
    builder_setters! {
        /// Number of processing cores (paper sweeps 1–8).
        cores: usize,
        /// CPU / scratchpad / crossbar clock in MHz.
        cpu_mhz: u64,
        /// Scratchpad banks (paper: 4).
        banks: usize,
        /// Scratchpad capacity in bytes (paper: 256 KB).
        scratchpad_bytes: usize,
        /// Per-core instruction cache geometry.
        icache: ICacheConfig,
        /// Frame memory (GDDR SDRAM + frame bus) parameters.
        frame_memory: FrameMemoryConfig,
        /// Firmware synchronization mode.
        mode: FwMode,
        /// How the dispatch loop waits for work (polling or interrupt).
        dispatch: DispatchMode,
        /// UDP datagram size for both directions (1..=1472).
        udp_payload: usize,
        /// Whether the host transmits.
        send_enabled: bool,
        /// Whether the wire delivers inbound traffic.
        recv_enabled: bool,
        /// Offered transmit load in frames/s (`None` = saturate).
        offered_tx_fps: Option<f64>,
        /// Offered receive load in frames/s (`None` = line rate).
        offered_rx_fps: Option<f64>,
        /// CPU cycles between driver invocations.
        driver_interval: u64,
        /// Record core 0's operation trace (ILP study).
        capture_ilp: bool,
        /// Deterministic fault-injection plan (`None` = clean run).
        faults: Option<FaultPlan>,
        /// Frame-side unit counts (DMA engine pairs, MACs).
        topology: Topology,
    }

    /// Number of DMA engine pairs (1..=4).
    #[must_use]
    pub fn dma_engines(mut self, dma_engines: usize) -> Self {
        self.cfg.topology.dma_engines = dma_engines;
        self
    }

    /// Number of Ethernet MACs (1..=2).
    #[must_use]
    pub fn macs(mut self, macs: usize) -> Self {
        self.cfg.topology.macs = macs;
        self
    }

    /// Set the frame-side unit counts from a compact spec string,
    /// e.g. `"dma=2,mac=1"`. Recognized keys: `dma` (engine pairs) and
    /// `mac` (MAC count); omitted keys keep their current value.
    ///
    /// # Errors
    ///
    /// [`ConfigError::AssistSpec`] on an unknown key or unparsable value.
    pub fn assists(mut self, spec: &str) -> Result<Self, ConfigError> {
        for item in spec.split(',').filter(|s| !s.trim().is_empty()) {
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| ConfigError::AssistSpec(format!("'{item}': expected key=value")))?;
            let (key, value) = (key.trim(), value.trim());
            let n: usize = value.parse().map_err(|_| {
                ConfigError::AssistSpec(format!("'{key}': expected a count, got '{value}'"))
            })?;
            match key {
                "dma" => self.cfg.topology.dma_engines = n,
                "mac" => self.cfg.topology.macs = n,
                _ => {
                    return Err(ConfigError::AssistSpec(format!(
                        "unknown assist '{key}' (expected dma or mac)"
                    )))
                }
            }
        }
        Ok(self)
    }

    /// Parse a [`FaultPlan`] spec string (the `--faults` grammar, e.g.
    /// `"seed=7,crc=1e-3,dma=1e-4"`) and install it as the fault plan.
    /// An empty spec installs the all-zero-rates plan, which still
    /// enables the checking/recovery machinery.
    ///
    /// # Errors
    ///
    /// [`ConfigError::FaultSpec`] when the spec does not parse.
    pub fn faults_spec(mut self, spec: &str) -> Result<Self, ConfigError> {
        let plan = FaultPlan::parse(spec).map_err(ConfigError::FaultSpec)?;
        self.cfg.faults = Some(plan);
        Ok(self)
    }

    /// Validate and produce the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] the configuration violates.
    pub fn build(self) -> Result<NicConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

impl NicConfig {
    /// Start building a configuration from the paper's defaults.
    pub fn builder() -> NicConfigBuilder {
        NicConfigBuilder {
            cfg: NicConfig::default(),
        }
    }

    /// Start building from an existing configuration (e.g. a preset).
    pub fn to_builder(self) -> NicConfigBuilder {
        NicConfigBuilder { cfg: self }
    }

    /// Check the configuration's internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] the configuration violates.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores == 0 {
            return Err(ConfigError::ZeroCores);
        }
        if self.banks == 0 {
            return Err(ConfigError::ZeroBanks);
        }
        if self.udp_payload == 0 {
            return Err(ConfigError::ZeroPayload);
        }
        if self.udp_payload > 1472 {
            return Err(ConfigError::PayloadTooLarge {
                payload: self.udp_payload,
            });
        }
        if self.mode == FwMode::Ideal && self.cores != 1 {
            return Err(ConfigError::IdealMultiCore { cores: self.cores });
        }
        let t = self.topology;
        if t.dma_engines == 0 || t.dma_engines > MAX_DMA_ENGINES {
            return Err(ConfigError::BadDmaEngines {
                engines: t.dma_engines,
            });
        }
        if t.macs == 0 || t.macs > MAX_MACS {
            return Err(ConfigError::BadMacs { macs: t.macs });
        }
        let map = MemMap::for_topology(t.dma_engines, t.macs);
        if map.end as usize > self.scratchpad_bytes {
            return Err(ConfigError::TopologyTooLarge {
                needed: map.end as usize,
                available: self.scratchpad_bytes,
            });
        }
        Ok(())
    }

    /// The paper's software-only baseline at 200 MHz.
    pub fn software_only_200() -> NicConfig {
        NicConfig {
            mode: FwMode::SoftwareOnly,
            cpu_mhz: 200,
            ..NicConfig::default()
        }
    }

    /// The paper's RMW-enhanced configuration at 166 MHz.
    pub fn rmw_166() -> NicConfig {
        NicConfig::default()
    }

    /// The idealized single-core configuration used for Table 1.
    pub fn ideal() -> NicConfig {
        NicConfig {
            cores: 1,
            cpu_mhz: 1000,
            mode: FwMode::Ideal,
            ..NicConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_headline() {
        let c = NicConfig::default();
        assert_eq!(c.cores, 6);
        assert_eq!(c.cpu_mhz, 166);
        assert_eq!(c.banks, 4);
        assert_eq!(c.mode, FwMode::RmwEnhanced);
        assert_eq!(c.udp_payload, 1472);
    }

    #[test]
    fn builder_validates() {
        assert_eq!(
            NicConfig::builder().cores(0).build(),
            Err(ConfigError::ZeroCores)
        );
        assert_eq!(
            NicConfig::builder().banks(0).build(),
            Err(ConfigError::ZeroBanks)
        );
        assert_eq!(
            NicConfig::builder().udp_payload(0).build(),
            Err(ConfigError::ZeroPayload)
        );
        assert_eq!(
            NicConfig::builder().udp_payload(1473).build(),
            Err(ConfigError::PayloadTooLarge { payload: 1473 })
        );
        assert_eq!(
            NicConfig::builder().mode(FwMode::Ideal).cores(2).build(),
            Err(ConfigError::IdealMultiCore { cores: 2 })
        );
        let cfg = NicConfig::builder()
            .cores(2)
            .cpu_mhz(500)
            .udp_payload(256)
            .build()
            .unwrap();
        assert_eq!((cfg.cores, cfg.cpu_mhz, cfg.udp_payload), (2, 500, 256));
    }

    #[test]
    fn presets_validate_and_roundtrip_through_builder() {
        for cfg in [
            NicConfig::default(),
            NicConfig::software_only_200(),
            NicConfig::rmw_166(),
            NicConfig::ideal(),
        ] {
            cfg.validate().unwrap();
            let rebuilt = cfg.to_builder().build().unwrap();
            assert_eq!(rebuilt.cores, cfg.cores);
            assert_eq!(rebuilt.mode, cfg.mode);
        }
    }

    #[test]
    fn topology_builder_and_validation() {
        let cfg = NicConfig::builder().dma_engines(2).macs(2).build().unwrap();
        assert_eq!(
            cfg.topology,
            Topology {
                dma_engines: 2,
                macs: 2
            }
        );
        assert_eq!(
            NicConfig::builder().dma_engines(0).build(),
            Err(ConfigError::BadDmaEngines { engines: 0 })
        );
        assert_eq!(
            NicConfig::builder()
                .dma_engines(MAX_DMA_ENGINES + 1)
                .build(),
            Err(ConfigError::BadDmaEngines {
                engines: MAX_DMA_ENGINES + 1
            })
        );
        assert_eq!(
            NicConfig::builder().macs(MAX_MACS + 1).build(),
            Err(ConfigError::BadMacs { macs: MAX_MACS + 1 })
        );
        // A wide topology's memory map must fit the scratchpad.
        let err = NicConfig::builder()
            .dma_engines(MAX_DMA_ENGINES)
            .macs(MAX_MACS)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::TopologyTooLarge { .. }));
        NicConfig::builder()
            .dma_engines(MAX_DMA_ENGINES)
            .macs(MAX_MACS)
            .scratchpad_bytes(512 * 1024)
            .build()
            .unwrap();
    }

    #[test]
    fn assists_spec_parses_and_rejects() {
        let cfg = NicConfig::builder()
            .assists("dma=2, mac=2")
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(
            cfg.topology,
            Topology {
                dma_engines: 2,
                macs: 2
            }
        );
        // Omitted keys keep their values.
        let cfg = NicConfig::builder()
            .assists("dma=3")
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(
            cfg.topology,
            Topology {
                dma_engines: 3,
                macs: 1
            }
        );
        assert!(matches!(
            NicConfig::builder().assists("dma=two"),
            Err(ConfigError::AssistSpec(_))
        ));
        assert!(matches!(
            NicConfig::builder().assists("phy=1"),
            Err(ConfigError::AssistSpec(_))
        ));
        assert!(matches!(
            NicConfig::builder().assists("dma"),
            Err(ConfigError::AssistSpec(_))
        ));
    }

    #[test]
    fn faults_spec_installs_a_plan() {
        let cfg = NicConfig::builder()
            .faults_spec("seed=7,crc=1e-3,dma=1e-4")
            .unwrap()
            .build()
            .unwrap();
        let plan = cfg.faults.expect("plan installed");
        assert_eq!(plan.seed, 7);
        assert!(matches!(
            NicConfig::builder().faults_spec("crc=notarate"),
            Err(ConfigError::FaultSpec(_))
        ));
    }

    /// The fleet-plane spec keys ride through the builder, and their
    /// parse failures surface as [`ConfigError::FaultSpec`] with the
    /// offending item named in the message.
    #[test]
    fn faults_spec_covers_the_fleet_plane_keys() {
        let cfg = NicConfig::builder()
            .faults_spec("seed=3,fab_crc=1e-3,flap_us=200,squeeze=1e-2,crash_us=500,poison=1e-4,fw=1e-5,stall_alpha=1.2")
            .unwrap()
            .build()
            .unwrap();
        let plan = cfg.faults.expect("plan installed");
        assert_eq!(plan.fabric_corrupt, 1e-3);
        assert_eq!(plan.crash_period_us, 500);
        assert_eq!(plan.stall_alpha, 1.2);
        for (spec, needle) in [
            ("fab_crc=2.0", "fab_crc"),
            ("squeeze=-0.5", "squeeze"),
            ("stall_alpha=-1", "stall_alpha"),
            ("crash_us=soon", "crash_us"),
        ] {
            let err = NicConfig::builder().faults_spec(spec).unwrap_err();
            let ConfigError::FaultSpec(msg) = err else {
                panic!("{spec}: wrong error variant");
            };
            assert!(
                msg.contains(needle),
                "{spec}: message {msg:?} does not name the bad item"
            );
        }
    }

    #[test]
    fn presets_differ_in_mode_and_clock() {
        let sw = NicConfig::software_only_200();
        assert_eq!(sw.mode, FwMode::SoftwareOnly);
        assert_eq!(sw.cpu_mhz, 200);
        let ideal = NicConfig::ideal();
        assert_eq!(ideal.cores, 1);
        assert_eq!(ideal.mode, FwMode::Ideal);
    }
}
