//! Full-system assembly and the main simulation loop.
//!
//! `NicSystem` owns every component of Figure 6 — the cores, the
//! crossbar and scratchpad banks, the instruction memory, the frame
//! memory, the assists — plus the host (driver + main memory) and
//! the network model. The component roster is no longer hand-wired:
//! [`SystemBuilder::finish`] assembles whatever the system definition
//! ([`SysDef`], derived from the configuration's topology section)
//! declares — any number of DMA engine pairs and MACs, each with its
//! own crossbar port, command rings, and clock-domain membership. The
//! main loop advances the CPU clock domain cycle by cycle; the
//! frame-side components keep picosecond-resolution state internally
//! and are polled at each CPU tick, and the host's mailbox writes land
//! between cycles as memory-mapped register writes.

use crate::config::{ConfigError, NicConfig};
use crate::stats::RunStats;
use crate::sysdef::SysDef;
use nicsim_assists::{
    dma_tag_engine, DmaConfig, DmaRead, DmaWrite, MacRx, MacRxConfig, MacTx, MacTxConfig,
};
use nicsim_cpu::{CodeLayout, Core, CoreCtx, CoreProfile, OpEvent};
use nicsim_fault::{
    DmaFaults, EccFaults, ErrorStats, FwFaults, LinkFaults, SITE_DMA_READ, SITE_DMA_WRITE,
};
use nicsim_firmware::handlers::HostRegs;
use nicsim_firmware::map::{DMA_RING, MACRX_RING, MACTX_RING, RXBUF_BASE, RXBUF_BYTES, SLOTS};
use nicsim_firmware::mode::Fw;
use nicsim_firmware::{dispatch_loop, DispatchMode, MemMap};
use nicsim_host::{Driver, DriverConfig, HostLayout, HostMemory, Mailbox};
use nicsim_mem::{Crossbar, FrameMemory, InstrMemory, Scratchpad, StreamId};
use nicsim_net::link::RxGenerator;
use nicsim_obs::{Event, FaultKind, FaultUnit, NullProbe, Probe, RecoveryKind};
use nicsim_sim::{Freq, NextEvent, Ps, WakeTracker};

/// The assembled NIC + host + network simulation.
///
/// The type parameter is the observability [`Probe`] every component
/// reports frame-lifecycle events to. The default, [`NullProbe`],
/// disables observation at compile time: emission sites are gated on
/// `P::ENABLED` (an associated constant), so the unprobed system
/// monomorphizes to exactly the code it had before the probe layer
/// existed — timing, statistics, and the event-driven kernel's
/// skip decisions are bit-identical. Build a probed system with
/// [`NicSystem::build`] + [`SystemBuilder::probe`].
pub struct NicSystem<P: Probe = NullProbe> {
    pub(crate) probe: P,
    pub(crate) cfg: NicConfig,
    pub(crate) sysdef: SysDef,
    pub(crate) map: MemMap,
    pub(crate) now: Ps,
    pub(crate) cpu_period: Ps,
    pub(crate) sp: Scratchpad,
    pub(crate) xbar: Crossbar,
    pub(crate) imem: InstrMemory,
    pub(crate) fm: FrameMemory,
    pub(crate) cores: Vec<Core>,
    /// DMA read engines, indexed by engine id (completion tags carry
    /// the id in their high word).
    pub(crate) dmards: Vec<DmaRead>,
    /// DMA write engines, indexed by engine id.
    pub(crate) dmawrs: Vec<DmaWrite>,
    /// Transmit MACs, indexed by MAC id (MAC 0 carries traffic).
    pub(crate) mactxs: Vec<MacTx>,
    /// Receive MACs, indexed by MAC id.
    pub(crate) macrxs: Vec<MacRx>,
    pub(crate) host_mem: HostMemory,
    pub(crate) driver: Driver,
    /// Cycles until the next driver poll (replaces a per-cycle
    /// frequency-division-and-modulo check); `u64::MAX` when the driver
    /// never polls.
    pub(crate) driver_countdown: u64,
    /// The driver's last poll changed nothing and the NIC has not
    /// written host memory since, so every poll until the next host
    /// write is a provable no-op: the event kernel elides them and may
    /// skip across poll boundaries. Never set while the driver is
    /// time-sensitive — offered-load pacing, or a fleet schedule with
    /// sends pending — since those act on the clock alone.
    pub(crate) driver_idle: bool,
    /// Cycles elided by the event-driven kernel (diagnostics).
    pub(crate) skipped_cycles: u64,
    /// Cycles simulated for real by the event-driven kernel.
    pub(crate) stepped_cycles: u64,
    pub(crate) window_start: Ps,
    pub(crate) stopped: bool,
    /// Host-memory address the system publishes the cumulative DMA-read
    /// abort count to (`status + 8`); the driver turns the delta into
    /// transmit retries.
    pub(crate) status_aborts_addr: u32,
    /// Last abort count published to the host status block.
    pub(crate) aborts_published: u32,
    /// Frame-bus read completions that arrived without data, recovered
    /// by substituting an empty transfer instead of panicking.
    pub(crate) fm_short_reads: u64,
    /// Whether the configured fault plan actually injects anything.
    /// An all-zeros plan keeps this false, and every fault gate in the
    /// hot path keys off it, so `--faults rate=0` costs nothing and is
    /// bit-identical to a clean run (collect() still reports a zeroed
    /// error table, preserving the zero-rate output contract).
    pub(crate) faults_armed: bool,
    /// Per-core instruction-fault sites, shared with the firmware's
    /// dispatch loops. Empty unless the plan is armed.
    pub(crate) fw_faults: Vec<std::rc::Rc<std::cell::RefCell<FwFaults>>>,
    /// Error counters inherited from a previous incarnation of this NIC
    /// (fleet crash/reset lifecycle): the fleet engine folds the dead
    /// system's error table — plus the reset itself and the frames it
    /// lost — into its replacement, so per-NIC error accounting survives
    /// the reset. Merged into [`NicSystem::collect`]'s error table.
    pub(crate) carried_errors: Option<ErrorStats>,
    /// Domain-parallel kernel sync accounting: barrier rendezvous
    /// opened, lookahead batches among them, cycles covered by batches,
    /// and stepped cycles executed main-only (frame side provably
    /// quiet, no barrier touched). Zero outside `run_until_parallel`.
    pub(crate) sync_stats: ParallelSyncStats,
}

/// Synchronization accounting for the domain-parallel kernel (see
/// [`NicSystem::parallel_sync_stats`]). Not part of [`RunStats`]: the
/// kernels' statistics contract is bit-identity, and how often the
/// threads met is a property of the kernel, not the simulated NIC.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParallelSyncStats {
    /// Barrier generations opened (each costs two atomic handshakes).
    pub rendezvous: u64,
    /// Rendezvous that opened a lookahead batch (`n_cycles > 1`).
    pub batches: u64,
    /// Simulated cycles covered by those batches.
    pub batched_cycles: u64,
    /// Stepped cycles run entirely on the main thread because the frame
    /// side was provably quiet — no rendezvous at all.
    pub solo_cycles: u64,
    /// The parallel kernel declined to spawn a worker and ran the
    /// sequential event kernel instead (single-hardware-thread host, or
    /// an active fault plan). Results are bit-identical either way;
    /// the flag records that no parallelism was actually exercised.
    pub sequential_fallback: bool,
}

/// Staged constructor for [`NicSystem`], the one assembly path for
/// probed and unprobed systems alike.
///
/// [`NicSystem::build`] starts a builder with observation disabled
/// ([`NullProbe`]); [`SystemBuilder::probe`] swaps in an observability
/// probe (changing the builder's type parameter); [`SystemBuilder::finish`]
/// validates the configuration and assembles the system.
///
/// ```
/// use nicsim::{NicConfig, NicSystem};
///
/// let sys = NicSystem::build(NicConfig::default()).finish().unwrap();
/// assert_eq!(sys.config().cores, 6);
/// ```
#[derive(Debug)]
pub struct SystemBuilder<P: Probe = NullProbe> {
    cfg: NicConfig,
    sysdef: Option<SysDef>,
    probe: P,
}

impl NicSystem {
    /// Start building a system from `cfg` with observation disabled.
    /// Attach a probe with [`SystemBuilder::probe`]; assemble with
    /// [`SystemBuilder::finish`].
    pub fn build(cfg: NicConfig) -> SystemBuilder {
        SystemBuilder {
            cfg,
            sysdef: None,
            probe: NullProbe,
        }
    }
}

impl<P: Probe> SystemBuilder<P> {
    /// Attach an observability probe, replacing the current one. Every
    /// frame-lifecycle edge — host posts, mailbox doorbells, firmware
    /// handler entries, crossbar grants, DMA and frame-memory bursts,
    /// wire occupancy, driver completions — is reported to it.
    pub fn probe<Q: Probe>(self, probe: Q) -> SystemBuilder<Q> {
        SystemBuilder {
            cfg: self.cfg,
            sysdef: self.sysdef,
            probe,
        }
    }

    /// Assemble from an explicit system definition instead of deriving
    /// one from the configuration ([`SysDef::from_config`]). The
    /// definition's core, bank, and frame-side unit counts must agree
    /// with the configuration; [`SystemBuilder::finish`] rejects a
    /// mismatched or structurally unsound definition with
    /// [`ConfigError::Definition`].
    pub fn sysdef(mut self, def: SysDef) -> Self {
        self.sysdef = Some(def);
        self
    }

    /// Validate the configuration, derive (or take) the system
    /// definition, and assemble the system it declares.
    ///
    /// # Errors
    ///
    /// Returns the same [`ConfigError`] as [`NicConfig::validate`],
    /// plus [`ConfigError::Definition`] for an explicit definition that
    /// fails its structural check or disagrees with the configuration.
    pub fn finish(self) -> Result<NicSystem<P>, ConfigError> {
        let SystemBuilder { cfg, sysdef, probe } = self;
        cfg.validate()?;
        let def = sysdef.unwrap_or_else(|| SysDef::from_config(&cfg));
        def.check().map_err(ConfigError::Definition)?;
        if def.n_cores() != cfg.cores
            || def.n_banks() != cfg.banks
            || def.topology() != cfg.topology
        {
            return Err(ConfigError::Definition(format!(
                "definition declares {} cores / {} banks / {:?}, config says {} / {} / {:?}",
                def.n_cores(),
                def.n_banks(),
                def.topology(),
                cfg.cores,
                cfg.banks,
                cfg.topology
            )));
        }
        let t = def.topology();
        let faults_armed = cfg.faults.as_ref().is_some_and(|p| !p.is_noop());
        let map = MemMap::for_topology(t.dma_engines, t.macs);
        let mut sp = Scratchpad::new(cfg.scratchpad_bytes, cfg.banks);
        if cfg.dispatch == DispatchMode::Interrupt {
            // Doorbell words: every scratchpad location whose write can
            // make a future dispatch-loop peek succeed. Progress
            // counters and mailboxes cover the pointer sources (one
            // done counter per DMA engine and direction); the three
            // status-bit arrays cover the pending-commit peeks; the
            // stop flag covers shutdown. Claim counters, commit
            // pointers, and locks are deliberately unwatched: writes to
            // them only ever *consume* work, and the watched write that
            // produced the work already woke every core. Extra MACs are
            // quiescent and never polled, so their pointers go
            // unwatched too.
            for addr in [
                map.sb_mailbox_prod,
                map.rb_mailbox_prod,
                map.dmard_done,
                map.dmawr_done,
                map.mactx_done,
                map.macrx_prod,
                map.sbd_parsed,
                map.stop_flag,
            ] {
                sp.watch_range(addr, 4);
            }
            for k in 1..t.dma_engines {
                sp.watch_range(map.dmard(k).done, 4);
                sp.watch_range(map.dmawr(k).done, 4);
            }
            for bits in [
                map.send_ready_bits,
                map.send_txdone_bits,
                map.recv_done_bits,
            ] {
                sp.watch_range(bits, SLOTS / 8);
            }
        }
        let xbar = Crossbar::new(def.xbar_ports(), cfg.banks);
        let imem = InstrMemory::new();
        let mut fm = FrameMemory::new(cfg.frame_memory);

        // Host.
        let layout = HostLayout::default();
        let host_mem = HostMemory::new(layout.memory_size());
        let driver = Driver::new(
            DriverConfig {
                udp_payload: cfg.udp_payload,
                offered_fps: cfg.offered_tx_fps,
                send_enabled: cfg.send_enabled,
                post_burst: 32,
                fault_aware: faults_armed,
            },
            layout,
        );
        let host_regs = HostRegs {
            send_bd_ring: layout.send_bd_ring,
            rx_bd_ring: layout.rx_bd_ring,
            return_ring: layout.return_ring,
            status_send_cons: layout.status,
            status_ret_prod: layout.status + 4,
        };

        // Frame-side units, one per definition entry, each on the
        // crossbar port and command rings the definition assigns.
        let mut dmards = Vec::with_capacity(t.dma_engines);
        let mut dmawrs = Vec::with_capacity(t.dma_engines);
        for k in 0..t.dma_engines {
            let rd = map.dmard(k);
            dmards.push(DmaRead::new(DmaConfig {
                port: def.dmard_port(k),
                cmd_ring: rd.ring,
                cmd_entries: DMA_RING,
                prod_addr: rd.prod,
                done_addr: rd.done,
                engine: k as u32,
            }));
            let wr = map.dmawr(k);
            dmawrs.push(DmaWrite::new(DmaConfig {
                port: def.dmawr_port(k),
                cmd_ring: wr.ring,
                cmd_entries: DMA_RING,
                prod_addr: wr.prod,
                done_addr: wr.done,
                engine: k as u32,
            }));
        }
        let mut mactxs = Vec::with_capacity(t.macs);
        let mut macrxs = Vec::with_capacity(t.macs);
        for j in 0..t.macs {
            let mi = map.mac(j);
            mactxs.push(MacTx::new(MacTxConfig {
                port: def.mactx_port(j),
                ring: mi.tx_ring,
                entries: MACTX_RING,
                prod_addr: mi.tx_prod,
                done_addr: mi.tx_done,
                mac: j as u32,
            }));
            // Only MAC 0 carries traffic: extras get a disabled
            // generator (attached and clocked, but the wire never
            // delivers to them).
            let mut generator = match cfg.offered_rx_fps {
                Some(fps) => RxGenerator::with_fps(cfg.udp_payload, fps),
                None => RxGenerator::new(cfg.udp_payload),
            };
            if !cfg.recv_enabled || j != 0 {
                generator.disable();
            }
            if let Some(plan) = cfg.faults.as_ref().filter(|p| !p.is_noop()) {
                if j == 0 {
                    generator.set_faults(LinkFaults::new(plan));
                }
            }
            macrxs.push(MacRx::new(
                MacRxConfig {
                    port: def.macrx_port(j),
                    ring: mi.rx_ring,
                    entries: MACRX_RING,
                    prod_addr: mi.rx_prod,
                    claim_addr: map.recv_claim,
                    claim_slack: 64,
                    buf_base: RXBUF_BASE,
                    buf_bytes: RXBUF_BYTES,
                    tail_addr: map.rxbuf_tail,
                    mac: j as u32,
                },
                generator,
            ));
        }
        let mut fw_faults = Vec::new();
        if let Some(plan) = cfg.faults.as_ref().filter(|_| faults_armed) {
            // Arm every injection site and its recovery mechanism. The
            // CRC check only runs under an armed plan: clean builds —
            // and all-zeros plans — never pay for (or depend on) FCS
            // computation. Each extra engine is its own fault site
            // (offset so engine 0 keeps the legacy site ids and default
            // runs replay unchanged).
            macrxs[0].set_crc_check(true);
            for (k, d) in dmards.iter_mut().enumerate() {
                d.set_faults(DmaFaults::new(plan, SITE_DMA_READ + 8 * k as u64));
            }
            for (k, d) in dmawrs.iter_mut().enumerate() {
                d.set_faults(DmaFaults::new(plan, SITE_DMA_WRITE + 8 * k as u64));
            }
            fm.set_faults(EccFaults::new(plan));
            fw_faults = (0..cfg.cores)
                .map(|id| std::rc::Rc::new(std::cell::RefCell::new(FwFaults::new(plan, id))))
                .collect();
        }

        // Cores + firmware.
        let mut cores = Vec::with_capacity(cfg.cores);
        for id in 0..cfg.cores {
            let mut core = Core::new(id, cfg.icache, CodeLayout::new());
            let ctx = CoreCtx::new(core.slot(), id);
            if cfg.capture_ilp && id == 0 {
                core.slot().borrow_mut().trace = Some(Vec::new());
            }
            let fw = Fw {
                ctx: ctx.clone(),
                m: map,
                mode: cfg.mode,
                dispatch: cfg.dispatch,
                fault_aware: faults_armed,
                fw_faults: fw_faults.get(id).cloned(),
            };
            core.install(dispatch_loop(ctx, fw, host_regs));
            cores.push(core);
        }

        Ok(NicSystem {
            probe,
            cfg,
            sysdef: def,
            map,
            now: Ps::ZERO,
            cpu_period: Freq::from_mhz(cfg.cpu_mhz).period(),
            sp,
            xbar,
            imem,
            fm,
            cores,
            dmards,
            dmawrs,
            mactxs,
            macrxs,
            host_mem,
            driver,
            driver_countdown: if cfg.driver_interval == 0 {
                u64::MAX
            } else {
                cfg.driver_interval
            },
            driver_idle: false,
            skipped_cycles: 0,
            stepped_cycles: 0,
            window_start: Ps::ZERO,
            stopped: false,
            status_aborts_addr: layout.status + 8,
            aborts_published: 0,
            fm_short_reads: 0,
            faults_armed,
            fw_faults,
            carried_errors: None,
            sync_stats: ParallelSyncStats::default(),
        })
    }
}

impl<P: Probe> NicSystem<P> {
    /// The attached probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// The attached probe, mutably (e.g. to drain a sink mid-run).
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    /// Consume the system and return the probe with everything it
    /// collected.
    pub fn unwrap_probe(self) -> P {
        self.probe
    }

    /// Current simulation time.
    pub fn now(&self) -> Ps {
        self.now
    }

    /// The scratchpad memory map in use.
    pub fn map(&self) -> MemMap {
        self.map
    }

    /// The configuration.
    pub fn config(&self) -> NicConfig {
        self.cfg
    }

    /// The system definition this system was assembled from.
    pub fn sysdef(&self) -> &SysDef {
        &self.sysdef
    }

    /// Direct scratchpad access for inspection and tests.
    pub fn scratchpad(&self) -> &Scratchpad {
        &self.sp
    }

    /// One CPU clock period.
    pub fn cpu_period(&self) -> Ps {
        self.cpu_period
    }

    /// Switch this system into fleet mode: the driver transmits the
    /// given flow schedule (frames addressed and sequence-namespaced by
    /// `src`) instead of the fixed-size full-duplex generator, MAC 0
    /// records every wire-completed egress frame for the fabric to
    /// collect via [`NicSystem::take_egress`], and MAC 0's receive
    /// generator stops synthesizing and serves only frames injected
    /// with [`NicSystem::inject_rx`].
    ///
    /// Build fleet members with `send_enabled` and `recv_enabled` both
    /// set (the defaults): the schedule replaces the legacy transmit
    /// stream inside the driver's posting path, and injected arrivals
    /// replace the receive generator's synthesized stream.
    pub fn enable_fleet(&mut self, src: u16, schedule: Vec<nicsim_net::workload::TxPacket>) {
        self.driver.set_fleet(src, schedule);
        self.mactxs[0].capture_egress();
        self.macrxs[0].generator.set_external();
        // The schedule makes the driver time-sensitive again.
        self.driver_idle = false;
    }

    /// Drain the frames MAC 0 completed on the wire since the last
    /// drain, as `(wire-done time, frame bytes)` in completion order.
    /// Fleet mode only (see [`NicSystem::enable_fleet`]).
    pub fn take_egress(&mut self) -> Vec<(Ps, Vec<u8>)> {
        self.mactxs[0].take_egress()
    }

    /// Switch the fleet driver into reliable-delivery mode (see
    /// [`nicsim_host::Driver::set_reliable`]): unacked transmits are
    /// retransmitted on timeout with exponential backoff, and received
    /// frames are deduplicated and acknowledged. Call after
    /// [`NicSystem::enable_fleet`].
    pub fn enable_reliable(&mut self, rto: Ps) {
        self.driver.set_reliable(rto);
        self.driver_idle = false;
    }

    /// Deliver an acknowledgment for fleet sequence `seq`, applied at
    /// the driver's first poll at or after `at`. Reliable mode only.
    pub fn deliver_ack(&mut self, at: Ps, seq: u32) {
        self.driver.deliver_ack(at, seq);
        self.driver_idle = false;
    }

    /// Drain the acknowledgments the driver owes, as
    /// `(source NIC, fleet seq, receive time)`. Reliable mode only.
    pub fn take_acks(&mut self) -> Vec<(u16, u32, Ps)> {
        self.driver.take_acks()
    }

    /// Transmit frames posted to the NIC but not yet completed — work
    /// that dies with the NIC if it crashes now.
    pub fn tx_in_flight(&self) -> u32 {
        self.driver.tx_in_flight()
    }

    /// The next fleet sequence number the driver would assign.
    pub fn fleet_seq_next(&self) -> u32 {
        self.driver.fleet_seq_next()
    }

    /// Continue a predecessor's fleet sequence numbering (crash/reset
    /// lifecycle): the replacement NIC's first frame takes sequence `n`,
    /// so receivers see a gap for the lost in-flight frames, never a
    /// regression. Call before the first tick.
    pub fn resume_fleet_seq(&mut self, n: u32) {
        self.driver.resume_fleet_seq(n);
    }

    /// Restart this (freshly built) system's clock at absolute time
    /// `at` — the crash/reset lifecycle's "firmware re-initialised,
    /// rings re-posted" moment. Seeded fault timers that were laid out
    /// relative to time zero (the DMA hang schedule) are rebased so the
    /// replacement's fault exposure matches a NIC that had booted at
    /// `at`.
    pub fn restart_at(&mut self, at: Ps) {
        debug_assert_eq!(self.now, Ps::ZERO, "restart_at expects a fresh build");
        self.now = at;
        self.window_start = at;
        for d in &mut self.dmards {
            if let Some(f) = d.faults_mut() {
                f.rebase(at);
            }
        }
        for d in &mut self.dmawrs {
            if let Some(f) = d.faults_mut() {
                f.rebase(at);
            }
        }
    }

    /// Fold a dead predecessor's error table into this replacement
    /// (crash/reset lifecycle), so per-NIC error accounting survives
    /// the reset. The fleet engine adds the reset itself and the frames
    /// it lost to `prev` before calling.
    pub fn carry_errors(&mut self, prev: ErrorStats) {
        match &mut self.carried_errors {
            Some(c) => c.merge(&prev),
            None => self.carried_errors = Some(prev),
        }
    }

    /// Schedule a frame to arrive on MAC 0's wire at absolute time
    /// `at`. Fleet mode only; arrivals must be injected in
    /// non-decreasing time order and strictly after the current time.
    pub fn inject_rx(&mut self, at: Ps, frame: Vec<u8>) {
        debug_assert!(at > self.now, "injected arrival is already due");
        self.macrxs[0].generator.inject(at, frame);
    }

    /// Undelivered injected arrivals still queued on MAC 0.
    pub fn pending_rx(&self) -> usize {
        self.macrxs[0].generator.pending_injections()
    }

    /// Absolute time of the earliest cycle on which this system may
    /// change architectural state; `Ps::MAX` when nothing is pending.
    /// Any `run_until(until)` with `until` strictly before this time is
    /// provably a no-op (every stepped cycle would be gated), so the
    /// fleet engine skips the call — and the whole epoch — outright.
    pub fn next_activity(&self) -> Ps {
        let wake = self.wake_cycles();
        Ps(self
            .now
            .0
            .saturating_add(self.cpu_period.0.saturating_mul(wake)))
    }

    /// Advance one CPU cycle, ticking every component — the dense
    /// reference semantics. When `gate` is set, components whose tick is
    /// provably a no-op this cycle are bypassed: each bypass condition
    /// below is exact ("the tick would change nothing"), so gated and
    /// ungated steps are bit-identical.
    #[inline]
    pub(crate) fn step_inner(&mut self, gate: bool) {
        self.now += self.cpu_period;
        let now = self.now;

        // Crossbar arbitration, then the cores. A tick only does work
        // when a request awaits a grant; unconsumed responses ride
        // through `skip_cycles` untouched.
        if !gate || self.xbar.needs_tick() {
            self.xbar.tick_probed(&mut self.sp, now, &mut self.probe);
        } else {
            self.xbar.skip_cycles(1);
        }
        for core in &mut self.cores {
            let id = core.id();
            core.tick_probed(
                &mut self.xbar.port(id),
                &mut self.imem,
                now,
                &mut self.probe,
            );
        }

        // Frame-side units, in definition order (reads, writes, MAC TX,
        // MAC RX). Each `busy` predicate mirrors its tick's gates
        // exactly (scratchpad traffic queued or in flight, a done
        // counter owed, a doorbell fetch ready); the MACs additionally
        // act at their next timed event (wire completion, arrival).
        for d in &mut self.dmards {
            if !gate || d.busy(&self.sp) {
                let p = d.port();
                d.tick_probed(
                    now,
                    &mut self.xbar.port(p),
                    &self.sp,
                    &self.host_mem,
                    &mut self.fm,
                    &mut self.probe,
                );
            }
        }
        for d in &mut self.dmawrs {
            if !gate || d.busy(&self.sp) {
                let p = d.port();
                d.tick_probed(
                    now,
                    &mut self.xbar.port(p),
                    &self.sp,
                    &mut self.host_mem,
                    &mut self.fm,
                    &mut self.probe,
                );
                // The write engine may have touched host memory
                // (immediate status updates, scratchpad-source copies):
                // the driver must poll for real again.
                self.driver_idle = false;
            }
        }
        for m in &mut self.mactxs {
            if !gate || m.busy(&self.sp) || m.next_event() <= now {
                let p = m.port();
                m.tick_probed(
                    now,
                    &mut self.xbar.port(p),
                    &self.sp,
                    &mut self.fm,
                    &mut self.probe,
                );
            }
        }
        for m in &mut self.macrxs {
            if !gate || m.busy() || m.next_event() <= now {
                let p = m.port();
                m.tick_probed(
                    now,
                    &mut self.xbar.port(p),
                    &self.sp,
                    &mut self.fm,
                    &mut self.probe,
                );
            }
        }

        // Fault supervision: the per-assist watchdog and the abort-count
        // publication to the host status block. Only live under an armed
        // plan — clean runs (and all-zeros plans) take one branch here
        // and nothing else.
        if self.faults_armed {
            self.fault_supervision(now);
        }

        // Frame-memory completions route back to their streams — and,
        // within a stream, to the owning unit: DMA tags carry the
        // engine id in their high word, MAC tags are the MAC id. The
        // controller changes state only at `next_event` (a burst start
        // or completion falling due).
        if !gate || self.fm.next_event() <= now {
            for c in self.fm.advance_probed(now, &mut self.probe) {
                match c.stream {
                    StreamId::DmaRead => self.dmards[dma_tag_engine(c.tag)]
                        .on_sdram_complete_probed(c.tag, c.at, &mut self.probe),
                    StreamId::DmaWrite => {
                        let data = match c.data.as_deref() {
                            Some(d) => d,
                            None => self.on_short_read(c.at),
                        };
                        self.dmawrs[dma_tag_engine(c.tag)].on_sdram_complete_probed(
                            c.tag,
                            data,
                            &mut self.host_mem,
                            c.at,
                            &mut self.probe,
                        );
                        self.driver_idle = false;
                    }
                    StreamId::MacTx => {
                        let data = match c.data.as_deref() {
                            Some(d) => d,
                            None => self.on_short_read(c.at),
                        };
                        self.mactxs[c.tag as usize].on_sdram_complete_probed(
                            c.at,
                            data,
                            &mut self.probe,
                        )
                    }
                    StreamId::MacRx => {
                        self.macrxs[c.tag as usize].on_sdram_complete_probed(c.at, &mut self.probe)
                    }
                }
            }
        }

        // Host driver (polling period models interrupt mitigation). An
        // idle driver's poll is elided when gating: nothing wrote host
        // memory since a poll that did nothing, so this one would too.
        if self.driver_countdown != u64::MAX {
            self.driver_countdown -= 1;
            if self.driver_countdown == 0 {
                self.driver_countdown = self.cfg.driver_interval;
                if !gate || !self.driver_idle {
                    let acted = self
                        .driver
                        .tick_probed(now, &mut self.host_mem, &mut self.probe);
                    // A time-sensitive driver (offered-load pacing, or a
                    // fleet schedule with sends still pending) may act on
                    // a later poll with no external write in between, so
                    // its polls are never elided.
                    self.driver_idle = !acted && !self.driver.time_sensitive();
                    for w in self.driver.take_mailbox_writes() {
                        let (addr, reg) = match w.reg {
                            Mailbox::SendBdProd => (self.map.sb_mailbox_prod, "send_bd_prod"),
                            Mailbox::RxBdProd => (self.map.rb_mailbox_prod, "rx_bd_prod"),
                        };
                        self.sp.poke(addr, w.value);
                        if P::ENABLED {
                            self.probe.emit(Event::MailboxWrite {
                                reg,
                                value: w.value,
                                at: now,
                            });
                        }
                    }
                }
            }
        }

        // Doorbell fan-out (interrupt dispatch only — an unwatched
        // scratchpad never signals): any write that landed on a watched
        // word this cycle raises every core's wake line. The wake is
        // level-triggered and sticky, and both kernels take this branch
        // at the end of every simulated cycle, so a parked core resumes
        // on the same cycle under dense and event-driven stepping.
        if self.sp.take_signal() {
            for core in &mut self.cores {
                core.raise_wake();
            }
        }
    }

    /// Advance one CPU cycle, ticking every component (the dense
    /// reference kernel's step).
    fn step(&mut self) {
        self.step_inner(false);
    }

    /// Recover a frame-bus read completion that arrived without data:
    /// count it, report it, and substitute an empty transfer. The
    /// downstream unit completes its descriptor with nothing written,
    /// which end-to-end validation then surfaces as a frame error.
    #[cold]
    fn on_short_read(&mut self, at: Ps) -> &'static [u8] {
        self.fm_short_reads += 1;
        if P::ENABLED {
            self.probe.emit(Event::Fault {
                kind: FaultKind::ShortRead,
                unit: FaultUnit::FrameMemory,
                info: 0,
                at,
            });
        }
        &[]
    }

    /// Watchdog pass over the DMA engines plus the abort-count
    /// publication the driver's transmit-retry accounting reads.
    ///
    /// A hung engine with work pending is "stuck"; the first stuck
    /// observation counts the hang, and once the observation is older
    /// than the plan's watchdog timeout the system resets the unit.
    /// Both kernels observe identical cycles here: a stuck engine's
    /// pending work keeps `busy()` true, which pins the event-driven
    /// kernel to dense stepping for the whole episode.
    fn fault_supervision(&mut self, now: Ps) {
        for (k, d) in self.dmards.iter_mut().enumerate() {
            let busy = d.busy(&self.sp);
            if let Some(f) = d.faults_mut() {
                if f.hung && busy {
                    let first = f.stuck_since.is_none();
                    if f.observe_stuck(now) {
                        f.watchdog_reset(now);
                        if P::ENABLED {
                            self.probe.emit(Event::Recovery {
                                kind: RecoveryKind::WatchdogReset,
                                unit: FaultUnit::DmaRead,
                                info: k as u32,
                                at: now,
                            });
                        }
                    } else if first && P::ENABLED {
                        self.probe.emit(Event::Fault {
                            kind: FaultKind::AssistHang,
                            unit: FaultUnit::DmaRead,
                            info: k as u32,
                            at: now,
                        });
                    }
                }
            }
        }
        for (k, d) in self.dmawrs.iter_mut().enumerate() {
            let busy = d.busy(&self.sp);
            if let Some(f) = d.faults_mut() {
                if f.hung && busy {
                    let first = f.stuck_since.is_none();
                    if f.observe_stuck(now) {
                        f.watchdog_reset(now);
                        if P::ENABLED {
                            self.probe.emit(Event::Recovery {
                                kind: RecoveryKind::WatchdogReset,
                                unit: FaultUnit::DmaWrite,
                                info: k as u32,
                                at: now,
                            });
                        }
                    } else if first && P::ENABLED {
                        self.probe.emit(Event::Fault {
                            kind: FaultKind::AssistHang,
                            unit: FaultUnit::DmaWrite,
                            info: k as u32,
                            at: now,
                        });
                    }
                }
            }
        }
        // Aborted DMA reads are aborted transmit frames: publish the
        // cumulative count (summed over every read engine) so the
        // driver can re-post them.
        let aborts: u32 = self
            .dmards
            .iter()
            .filter_map(|d| d.faults())
            .map(|f| f.aborts as u32)
            .sum();
        if self.dmards.iter().any(|d| d.faults().is_some()) && aborts != self.aborts_published {
            self.aborts_published = aborts;
            self.host_mem.write_u32(self.status_aborts_addr, aborts);
            self.driver_idle = false;
        }
    }

    /// How many cycles the clock may jump before any component can
    /// change architectural state: 1 means "simulate the next cycle for
    /// real", `n > 1` means cycles `1..n` are provably no-ops.
    ///
    /// Every bound here is a lower bound on the component's next state
    /// change (the [`NextEvent`] contract), so skipping `n - 1` cycles
    /// and simulating the `n`-th is bit-identical to ticking densely.
    pub(crate) fn wake_cycles(&self) -> u64 {
        // An ungranted request keeps the crossbar arbitration hot:
        // simulate every cycle. Granted-but-unconsumed *responses* don't:
        // they ride through skips untouched, and every possible owner is
        // bounded below — a core awaiting load data is in a wake-1 state,
        // an assist with an in-flight transaction reports `busy`, and a
        // buffered store's drain happens at the owning core's next real
        // tick wherever that lands (draining late is unobservable: no
        // stats accrue and the core consults the store buffer only in
        // wake-1 states).
        if self.xbar.needs_tick() {
            return 1;
        }
        let mut w = WakeTracker::new(self.now, self.cpu_period);
        // An idle driver's polls are no-ops, so they don't bound the
        // skip; skipped cycles can't write host memory (nothing acts),
        // so the driver stays idle across the jump.
        if !self.driver_idle {
            w.at_most(self.driver_countdown);
        }
        for core in &self.cores {
            w.at_most(core.wake_in());
            if w.is_immediate() {
                return 1;
            }
        }
        // Assists poll doorbells as registers: if one could issue work
        // on the next tick, no skip.
        if self.frame_side_busy() {
            return 1;
        }
        // Time-driven events: frame-memory burst starts/completions,
        // wire completions, frame arrivals.
        w.at_time(self.fm.next_event());
        for m in &self.mactxs {
            w.at_time(m.next_event());
        }
        for m in &self.macrxs {
            w.at_time(m.next_event());
        }
        w.wake_in()
    }

    /// Whether any frame-side unit could issue work on its next tick —
    /// the fold of every unit's `busy` predicate, over however many
    /// units the definition declares.
    #[inline]
    pub(crate) fn frame_side_busy(&self) -> bool {
        self.dmards.iter().any(|d| d.busy(&self.sp))
            || self.dmawrs.iter().any(|d| d.busy(&self.sp))
            || self.mactxs.iter().any(|m| m.busy(&self.sp))
            || self.macrxs.iter().any(|m| m.busy())
    }

    /// Jump the clock over `n` provably-idle cycles, keeping every
    /// counter exactly as `n` dense steps would have left it.
    pub(crate) fn skip_cycles(&mut self, n: u64) {
        self.now += Ps(self.cpu_period.0 * n);
        self.xbar.skip_cycles(n);
        for core in &mut self.cores {
            core.skip_cycles(n);
        }
        if self.driver_countdown != u64::MAX {
            if n < self.driver_countdown {
                self.driver_countdown -= n;
            } else {
                // The skip crossed driver poll boundaries — legal only
                // while the driver is provably idle (those polls are
                // no-ops). Realign the countdown to the next boundary
                // after the jump.
                debug_assert!(self.driver_idle, "skipped a live driver poll");
                let past = (n - self.driver_countdown) % self.cfg.driver_interval;
                self.driver_countdown = self.cfg.driver_interval - past;
            }
        }
    }

    /// Run until simulation time `until` on the hybrid event-driven
    /// kernel: cycles on which no component can act are skipped in bulk,
    /// and within simulated cycles, components whose tick is provably a
    /// no-op are bypassed. Results are bit-identical to
    /// [`NicSystem::run_until_dense`].
    pub fn run_until(&mut self, until: Ps) {
        while self.now < until {
            let wake = self.wake_cycles();
            if wake > 1 {
                // Never skip past `until`: the loop must terminate on
                // the same cycle the dense kernel would.
                let remaining = (until.0 - self.now.0).div_ceil(self.cpu_period.0);
                let skip = (wake - 1).min(remaining.saturating_sub(1));
                if skip > 0 {
                    self.skipped_cycles += skip;
                    self.skip_cycles(skip);
                }
            }
            self.stepped_cycles += 1;
            self.step_inner(true);
        }
    }

    /// `(skipped, simulated)` cycle counts accumulated by the
    /// event-driven kernel, for diagnostics and the simulation-speed
    /// benchmark. Dense runs leave both at zero.
    pub fn kernel_cycle_split(&self) -> (u64, u64) {
        (self.skipped_cycles, self.stepped_cycles)
    }

    /// Synchronization accounting accumulated by the domain-parallel
    /// kernel: rendezvous opened, lookahead batches, batch-covered
    /// cycles, and main-only solo cycles. Sequential runs leave every
    /// field at zero.
    pub fn parallel_sync_stats(&self) -> ParallelSyncStats {
        self.sync_stats
    }

    /// How many consecutive cycles, starting at the next one, the frame
    /// side may free-run on the worker thread without any cross-domain
    /// interaction — the lookahead horizon of the batched parallel
    /// kernel. 1 means "run the next cycle under the per-cycle
    /// protocol" (or solo, if the frame side is also quiet).
    ///
    /// A batch of `h` cycles is sound when, for every cycle in it:
    ///
    /// * **no crossbar arbitration is needed** — no request is pending
    ///   now (`needs_tick`), no core submits one (a core only submits at
    ///   the end of a `Busy` span, ≥ `wake_in()` cycles away, and the
    ///   cores are bulk-skipped with `h < wake_in`), and any *assist*
    ///   submission happens at the earliest on the batch's final cycle
    ///   (see the frame-event bounds below), leaving its arbitration for
    ///   the rendezvous that follows;
    /// * **no scratchpad word changes** — grants (phase 0) and driver
    ///   mailbox pokes (phase 2) are the only writers and neither runs
    ///   mid-batch — so assist `busy(&sp)` predicates and doorbell
    ///   watches are frozen: a not-busy assist stays not-busy until a
    ///   frame-memory completion routes to it, and no doorbell can
    ///   raise a parked core;
    /// * **the driver cannot act** — when it is live (`!driver_idle`),
    ///   the batch ends before the countdown reaches its poll; when it
    ///   is idle, its polls are no-ops unless a DMA-write host store
    ///   revives it, which the frame-event bound confines to the final
    ///   two cycles of the batch — so the batch additionally ends
    ///   before the first poll boundary at or after the first possible
    ///   host store.
    ///
    /// The frame-side bounds mirror [`NicSystem::wake_cycles`]: a busy
    /// assist may submit scratchpad traffic on the very next tick
    /// (horizon 1), and each timed event source (frame-memory burst
    /// edges, wire completions, frame arrivals) bounds the horizon at
    /// its event cycle *plus one* — the cycle in which the woken unit
    /// may push and submit a scratchpad transaction, which is legal as
    /// the batch's last cycle because the submission itself happens on
    /// the worker's own port view and arbitration follows at the next
    /// rendezvous, exactly one cycle later, as in the sequential
    /// kernel.
    pub(crate) fn batch_horizon(&self) -> u64 {
        if self.xbar.needs_tick() {
            return 1;
        }
        if self.frame_side_busy() {
            return 1;
        }
        let mut h = u64::MAX;
        for core in &self.cores {
            // Bulk-skip contract: skip strictly fewer cycles than
            // `wake_in`. A due core (wake_in 1) collapses the horizon.
            h = h.min(core.wake_in().saturating_sub(1));
            if h == 0 {
                return 1;
            }
        }
        let fm_cycles = self.cycles_until(self.fm.next_event());
        if self.driver_countdown != u64::MAX {
            if !self.driver_idle {
                h = h.min(self.driver_countdown - 1);
            } else if let Some(c) = fm_cycles {
                // Idle polls are elided, but the first frame-memory
                // completion may be a DMA host store that revives them:
                // end the batch before the first poll boundary at or
                // after that cycle (earlier boundaries are provable
                // no-ops and may be crossed, with the countdown
                // realigned exactly as `skip_cycles` does).
                let cd = self.driver_countdown;
                let boundary = if cd >= c {
                    cd
                } else {
                    cd + (c - cd).div_ceil(self.cfg.driver_interval) * self.cfg.driver_interval
                };
                h = h.min(boundary - 1);
            }
        }
        // Timed frame-side events: event cycle + 1 (the submit cycle).
        let mac_events = self
            .mactxs
            .iter()
            .map(|m| m.next_event())
            .chain(self.macrxs.iter().map(|m| m.next_event()));
        for c in std::iter::once(fm_cycles)
            .chain(mac_events.map(|t| self.cycles_until(t)))
            .flatten()
        {
            h = h.min(c.saturating_add(1));
        }
        h.max(1)
    }

    /// Cycles from `now` until the cycle in which an absolute event
    /// time falls due, with [`WakeTracker::at_time`]'s exact semantics
    /// (a due-or-past event is 1 cycle away); `None` for "never".
    fn cycles_until(&self, t: Ps) -> Option<u64> {
        if t == Ps::MAX {
            return None;
        }
        Some(if t <= self.now {
            1
        } else {
            (t.0 - self.now.0).div_ceil(self.cpu_period.0)
        })
    }

    /// Whether the frame side is provably a no-op on the *next* cycle:
    /// every assist-section gate of [`NicSystem::step_inner`] evaluates
    /// false at `now + 1 cycle`. Such a cycle can run entirely on the
    /// main thread — no rendezvous — and remain bit-identical.
    pub(crate) fn frame_side_quiet_next(&self) -> bool {
        let next = self.now + self.cpu_period;
        !self.frame_side_busy()
            && self.mactxs.iter().all(|m| m.next_event() > next)
            && self.macrxs.iter().all(|m| m.next_event() > next)
            && self.fm.next_event() > next
    }

    /// Run until simulation time `until`, simulating every cycle (the
    /// reference kernel the equivalence tests compare against).
    pub fn run_until_dense(&mut self, until: Ps) {
        while self.now < until {
            self.step();
        }
    }

    /// Discard statistics gathered so far and restart the measurement
    /// window at the current time. The probe observes this as an
    /// [`Event::WindowReset`], so sinks can align with the measurement
    /// window (e.g. [`nicsim_obs::FrameTracker`] filters its summary to
    /// in-window frames, and [`nicsim_mem::AccessTrace`] discards
    /// warmup accesses).
    pub fn reset_window(&mut self) {
        let now = self.now;
        if P::ENABLED {
            self.probe.emit(Event::WindowReset { at: now });
        }
        self.window_start = now;
        // Counter resets change what the next driver poll observes.
        self.driver_idle = false;
        for c in &mut self.cores {
            c.reset_stats();
        }
        self.xbar.reset_stats();
        self.imem.reset_stats();
        self.fm.reset_stats();
        for d in &mut self.dmards {
            d.reset_stats();
        }
        for d in &mut self.dmawrs {
            d.reset_stats();
        }
        for m in &mut self.mactxs {
            m.monitor.reset(now);
            m.reset_stats();
        }
        for m in &mut self.macrxs {
            m.reset_stats();
        }
        self.driver.reset_window(now);
    }

    /// Warm the system up, then measure a steady-state window.
    pub fn run_measured(&mut self, warmup: Ps, window: Ps) -> RunStats {
        self.run_until(self.now + warmup);
        self.reset_window();
        self.run_until(self.now + window);
        self.collect()
    }

    /// [`NicSystem::run_measured`] on the dense reference kernel.
    pub fn run_measured_dense(&mut self, warmup: Ps, window: Ps) -> RunStats {
        self.run_until_dense(self.now + warmup);
        self.reset_window();
        self.run_until_dense(self.now + window);
        self.collect()
    }

    /// Collect statistics for the current window.
    pub fn collect(&self) -> RunStats {
        let window = self.now.saturating_sub(self.window_start);
        let secs = window.as_secs_f64().max(1e-15);
        let mut profile = CoreProfile::new();
        let mut core_ticks = 0;
        let mut icache_hits = 0;
        let mut icache_misses = 0;
        for c in &self.cores {
            profile.merge(c.profile());
            core_ticks = core_ticks.max(c.engine_stats().ticks);
            icache_hits += c.icache().hits();
            icache_misses += c.icache().misses();
        }
        let core_sp: u64 = (0..self.cfg.cores)
            .map(|p| self.xbar.port_stats(p).grants)
            .sum();
        let assist_sp: u64 = self.dmards.iter().map(|d| d.sp_accesses()).sum::<u64>()
            + self.dmawrs.iter().map(|d| d.sp_accesses()).sum::<u64>()
            + self.mactxs.iter().map(|m| m.sp_accesses()).sum::<u64>()
            + self.macrxs.iter().map(|m| m.sp_accesses()).sum::<u64>();
        let d = self.driver.stats();
        let window_cycles = core_ticks.max(1) as f64;
        let errors = self.cfg.faults.map(|_| {
            let (link_corrupt_injected, link_truncate_injected) =
                self.macrxs.iter().fold((0, 0), |(c, t), m| {
                    let (mc, mt) = m.generator.injected();
                    (c + mc, t + mt)
                });
            let sum = |pick: fn(&DmaFaults) -> u64| -> u64 {
                self.dmards
                    .iter()
                    .filter_map(|d| d.faults())
                    .chain(self.dmawrs.iter().filter_map(|d| d.faults()))
                    .map(pick)
                    .sum()
            };
            let mut e = ErrorStats {
                link_corrupt_injected,
                link_truncate_injected,
                crc_dropped: self.macrxs.iter().map(|m| m.crc_dropped()).sum(),
                dma_transient_errors: sum(|f| f.transient_errors),
                dma_retries_ok: sum(|f| f.retries_ok),
                dma_aborts: sum(|f| f.aborts),
                pci_stalls: sum(|f| f.stalls),
                ecc_corrections: self.fm.ecc_corrections(),
                assist_hangs: sum(|f| f.hangs),
                watchdog_resets: sum(|f| f.watchdog_resets),
                rx_error_returns: d.rx_error_returns,
                tx_retries: d.tx_retries,
                fm_short_reads: self.fm_short_reads,
                host_poison_injected: self
                    .dmawrs
                    .iter()
                    .filter_map(|w| w.faults())
                    .map(|f| f.poisons)
                    .sum(),
                fw_instr_faults: self.fw_faults.iter().map(|f| f.borrow().injected).sum(),
                nic_resets: 0,
                nic_reset_lost_frames: 0,
                tx_retransmits: d.tx_retransmits,
                rx_duplicates: d.rx_duplicates,
            };
            if let Some(carried) = &self.carried_errors {
                e.merge(carried);
            }
            e
        });
        RunStats {
            window,
            cores: self.cfg.cores,
            cpu_mhz: self.cfg.cpu_mhz,
            tx_frames: self.mactxs.iter().map(|m| m.monitor.frames()).sum(),
            rx_frames: d.rx_frames,
            tx_udp_gbps: self
                .mactxs
                .iter()
                .map(|m| m.monitor.udp_gbps(self.now))
                .sum(),
            rx_udp_gbps: self.driver.rx_udp_gbps(self.now),
            rx_mac_drops: self.macrxs.iter().map(|m| m.drops()).sum(),
            tx_errors: self
                .mactxs
                .iter()
                .map(|m| m.monitor.errors().len() as u64 + m.monitor.out_of_order())
                .sum(),
            rx_corrupt: d.rx_corrupt,
            rx_out_of_order: d.rx_out_of_order,
            profile,
            core_ticks,
            core_sp_accesses: core_sp,
            assist_sp_accesses: assist_sp,
            scratchpad_gbps: (core_sp + assist_sp) as f64 * 4.0 * 8.0 / secs / 1e9,
            instr_mem_gbps: self.imem.bytes_transferred() as f64 * 8.0 / secs / 1e9,
            instr_mem_utilization: self.imem.busy_cycles() as f64 / window_cycles,
            frame_mem_gbps: self.fm.padded_bytes() as f64 * 8.0 / secs / 1e9,
            frame_mem_wasted_bytes: self.fm.wasted_bytes(),
            frame_mem_mean_latency: self.fm.mean_latency(),
            frame_mem_max_latency: self.fm.max_latency(),
            icache_hits,
            icache_misses,
            errors,
        }
    }

    /// Ask the firmware to stop and run until every core has halted.
    ///
    /// # Panics
    ///
    /// Panics if the cores fail to halt within `timeout`.
    pub fn stop(&mut self, timeout: Ps) {
        self.sp.poke(self.map.stop_flag, 1);
        self.stopped = true;
        let deadline = self.now + timeout;
        while self.cores.iter().any(|c| !c.halted()) {
            assert!(self.now < deadline, "firmware failed to halt");
            self.step();
        }
    }

    /// Whether all cores have halted.
    pub fn halted(&self) -> bool {
        self.cores.iter().all(|c| c.halted())
    }

    /// Take core 0's operation trace (requires `capture_ilp`).
    pub fn take_ilp_trace(&mut self) -> Option<Vec<OpEvent>> {
        self.cores[0].slot().borrow_mut().trace.take()
    }

    /// MAC receive drops so far (overruns), summed over every MAC.
    pub fn rx_drops(&self) -> u64 {
        self.macrxs.iter().map(|m| m.drops()).sum()
    }

    /// Out-of-order receive samples (expected, got, ret_cons, fw_seq),
    /// for debugging.
    pub fn driver_ooo(&self) -> &[(u32, u32, u32, u32)] {
        self.driver.ooo_samples()
    }

    /// Debug: returns of buffers that were not outstanding.
    pub fn driver_bad_returns(&self) -> u64 {
        self.driver.dbg_bad_returns
    }

    /// Debug: wire seq of accepted frames on MAC 0, in acceptance order.
    pub fn mac_accepted(&self) -> &[u32] {
        &self.macrxs[0].dbg_accepted
    }

    /// Debug: payload DMA-write commands (src, dst, len) on engine 0.
    pub fn dmawr_payloads(&self) -> &[(u32, u32, u32)] {
        &self.dmawrs[0].dbg_payloads
    }
}

impl<P: Probe> std::fmt::Debug for NicSystem<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NicSystem")
            .field("cores", &self.cfg.cores)
            .field("cpu_mhz", &self.cfg.cpu_mhz)
            .field("mode", &self.cfg.mode)
            .field("now", &self.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nicsim_firmware::FwMode;

    #[test]
    fn build_rejects_what_validate_rejects() {
        let cfg = NicConfig {
            cores: 0,
            ..NicConfig::default()
        };
        assert_eq!(
            NicSystem::build(cfg).finish().err(),
            Some(ConfigError::ZeroCores)
        );
        let cfg = NicConfig {
            cores: 2,
            mode: FwMode::Ideal,
            ..NicConfig::default()
        };
        assert_eq!(
            NicSystem::build(cfg).finish().err(),
            Some(ConfigError::IdealMultiCore { cores: 2 })
        );
    }

    /// End-to-end smoke test: a fast small system moves real frames both
    /// directions with full validation.
    #[test]
    fn end_to_end_duplex_traffic() {
        let cfg = NicConfig {
            cores: 2,
            cpu_mhz: 500,
            ..NicConfig::default()
        };
        let mut sys = NicSystem::build(cfg).finish().unwrap();
        let stats = sys.run_measured(Ps::from_us(150), Ps::from_us(150));
        assert!(stats.tx_frames > 20, "tx_frames = {}", stats.tx_frames);
        assert!(stats.rx_frames > 20, "rx_frames = {}", stats.rx_frames);
        stats.assert_clean();
    }

    #[test]
    fn firmware_stops_cleanly() {
        let cfg = NicConfig {
            cores: 2,
            cpu_mhz: 500,
            ..NicConfig::default()
        };
        let mut sys = NicSystem::build(cfg).finish().unwrap();
        sys.run_until(Ps::from_us(50));
        sys.stop(Ps::from_ms(5));
        assert!(sys.halted());
    }

    #[test]
    fn ideal_mode_processes_frames() {
        let mut sys = NicSystem::build(NicConfig::ideal()).finish().unwrap();
        let stats = sys.run_measured(Ps::from_us(200), Ps::from_us(200));
        assert!(stats.tx_frames > 10);
        assert!(stats.rx_frames > 10);
        stats.assert_clean();
    }

    #[test]
    fn software_only_mode_processes_frames() {
        let cfg = NicConfig {
            cores: 2,
            cpu_mhz: 500,
            mode: FwMode::SoftwareOnly,
            ..NicConfig::default()
        };
        let mut sys = NicSystem::build(cfg).finish().unwrap();
        let stats = sys.run_measured(Ps::from_us(150), Ps::from_us(150));
        assert!(stats.tx_frames > 10);
        assert!(stats.rx_frames > 10);
        stats.assert_clean();
    }
}
