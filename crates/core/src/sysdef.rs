//! The system-definition layer: declarative SoC composition.
//!
//! The paper's architecture is programmable precisely so that design
//! points — core counts, assist mix, memory banking — can be explored
//! without respinning hardware. This module makes the simulator match:
//! instead of `NicSystem::build` hand-wiring one fixed topology, a
//! [`SysDef`] *describes* the SoC as a list of components, each with a
//! declared clock-domain membership and interconnect attachment, and
//! the system builder assembles whatever the definition says.
//!
//! A definition is derived from [`NicConfig`] (via
//! [`SysDef::from_config`], driven by the config's `topology` section),
//! so architecture exploration is a config diff: `NicConfig::builder()
//! .cores(8).dma_engines(2)` composes an eight-core, two-DMA-engine
//! SoC with no simulator changes. The default definition reproduces
//! the paper's board — 6 cores, 4 banks, one DMA engine pair, one MAC
//! — bit-identically to the pre-sysdef hand-wired system (the
//! kernel-equivalence suite pins this).
//!
//! ## Port assignment
//!
//! The crossbar is the paper's "P+4 × S+1" switch generalized to
//! `cores + 2·dma_engines + 2·macs` ports: cores take ports
//! `0..cores`, then every DMA-read engine, every DMA-write engine,
//! every MAC TX, every MAC RX, in that order. With one engine pair and
//! one MAC this is exactly the legacy assignment (`cores`, `cores+1`,
//! `cores+2`, `cores+3`).
//!
//! ## Domains
//!
//! Each component declares the clock domain it belongs to
//! ([`ClockDomain`]): cores, scratchpad banks, and the instruction
//! memory are `Cpu`; DMA engines and the frame memory are `Sdram`
//! (frame-bus side); MACs are `Wire`; the host bridge (driver + host
//! memory) is `Host`. The domain-parallel kernel derives its thread
//! split from this: the worker owns every non-`Cpu`, non-`Host`
//! component ([`ComponentDef::frame_side`]), the main thread the rest.

use crate::config::{NicConfig, Topology};
use nicsim_sim::ClockDomain;

/// What a component *is* — the discriminant the system builder
/// constructs from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentKind {
    /// A processing core running the firmware dispatch loop.
    Core {
        /// Core id (also its crossbar port).
        id: usize,
    },
    /// One scratchpad bank behind the crossbar.
    ScratchpadBank {
        /// Bank index.
        id: usize,
    },
    /// The per-core instruction memory path.
    InstrMemory,
    /// A DMA read engine (host memory → NIC).
    DmaRead {
        /// Engine id within the topology.
        engine: usize,
    },
    /// A DMA write engine (NIC → host memory).
    DmaWrite {
        /// Engine id within the topology.
        engine: usize,
    },
    /// A transmit MAC.
    MacTx {
        /// MAC id within the topology.
        mac: usize,
    },
    /// A receive MAC.
    MacRx {
        /// MAC id within the topology.
        mac: usize,
    },
    /// The GDDR SDRAM frame memory and its bus.
    FrameMemory,
    /// The host bridge: driver, mailboxes, host memory.
    HostBridge,
}

/// How a component connects to the rest of the SoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attachment {
    /// A requester port on the scratchpad crossbar.
    XbarPort(usize),
    /// A responder (bank) side of the crossbar.
    XbarBank(usize),
    /// The frame bus (shared per-stream queues into the SDRAM).
    FrameBus,
    /// The host bus (PCI in the paper).
    HostBus,
    /// No interconnect attachment (e.g. the instruction memory, which
    /// every core reaches over its private fetch path).
    None,
}

/// One registered component: name, kind, clock domain, attachment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentDef {
    /// Stable display name (`core0`, `dmard1`, `mactx0`, ...).
    pub name: String,
    /// What to construct.
    pub kind: ComponentKind,
    /// Clock domain membership; the parallel kernel's thread split is
    /// derived from this.
    pub domain: ClockDomain,
    /// Interconnect attachment.
    pub attachment: Attachment,
}

impl ComponentDef {
    /// Whether the domain-parallel kernel's worker thread owns this
    /// component: everything outside the `Cpu` and `Host` domains.
    pub fn frame_side(&self) -> bool {
        !matches!(self.domain, ClockDomain::Cpu | ClockDomain::Host)
    }
}

/// The declarative SoC definition the system builder assembles from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SysDef {
    /// Every component, in construction order. Frame-side units appear
    /// grouped by kind (reads, writes, MAC TX, MAC RX) — also their
    /// per-cycle tick order, matching the legacy hand-wired sequence.
    pub components: Vec<ComponentDef>,
    topology: Topology,
    n_cores: usize,
    n_banks: usize,
}

impl SysDef {
    /// Compose the definition for `cfg` — the single source of truth
    /// for how config becomes topology.
    pub fn from_config(cfg: &NicConfig) -> SysDef {
        SysDef::compose(cfg.cores, cfg.banks, cfg.topology)
    }

    /// Compose a definition from explicit counts.
    pub fn compose(cores: usize, banks: usize, topology: Topology) -> SysDef {
        let mut components = Vec::new();
        for id in 0..cores {
            components.push(ComponentDef {
                name: format!("core{id}"),
                kind: ComponentKind::Core { id },
                domain: ClockDomain::Cpu,
                attachment: Attachment::XbarPort(id),
            });
        }
        for id in 0..banks {
            components.push(ComponentDef {
                name: format!("bank{id}"),
                kind: ComponentKind::ScratchpadBank { id },
                domain: ClockDomain::Cpu,
                attachment: Attachment::XbarBank(id),
            });
        }
        components.push(ComponentDef {
            name: "imem".into(),
            kind: ComponentKind::InstrMemory,
            domain: ClockDomain::Cpu,
            attachment: Attachment::None,
        });
        let mut port = cores;
        for engine in 0..topology.dma_engines {
            components.push(ComponentDef {
                name: format!("dmard{engine}"),
                kind: ComponentKind::DmaRead { engine },
                domain: ClockDomain::Sdram,
                attachment: Attachment::XbarPort(port),
            });
            port += 1;
        }
        for engine in 0..topology.dma_engines {
            components.push(ComponentDef {
                name: format!("dmawr{engine}"),
                kind: ComponentKind::DmaWrite { engine },
                domain: ClockDomain::Sdram,
                attachment: Attachment::XbarPort(port),
            });
            port += 1;
        }
        for mac in 0..topology.macs {
            components.push(ComponentDef {
                name: format!("mactx{mac}"),
                kind: ComponentKind::MacTx { mac },
                domain: ClockDomain::Wire,
                attachment: Attachment::XbarPort(port),
            });
            port += 1;
        }
        for mac in 0..topology.macs {
            components.push(ComponentDef {
                name: format!("macrx{mac}"),
                kind: ComponentKind::MacRx { mac },
                domain: ClockDomain::Wire,
                attachment: Attachment::XbarPort(port),
            });
            port += 1;
        }
        components.push(ComponentDef {
            name: "fm".into(),
            kind: ComponentKind::FrameMemory,
            domain: ClockDomain::Sdram,
            attachment: Attachment::FrameBus,
        });
        components.push(ComponentDef {
            name: "host".into(),
            kind: ComponentKind::HostBridge,
            domain: ClockDomain::Host,
            attachment: Attachment::HostBus,
        });
        SysDef {
            components,
            topology,
            n_cores: cores,
            n_banks: banks,
        }
    }

    /// The pre-refactor hand-wired system, written out literally: 6
    /// cores and 4 banks at ports `0..6`, the four assists at ports
    /// `6..10` in read / write / MAC-TX / MAC-RX order, one frame
    /// memory, one host bridge. The equivalence suite checks that
    /// [`SysDef::from_config`] of the default config reproduces this
    /// exactly — the declarative path composes the same SoC the
    /// hand-wired builder used to.
    pub fn hand_wired_default() -> SysDef {
        let mk = |name: &str, kind, domain, attachment| ComponentDef {
            name: name.into(),
            kind,
            domain,
            attachment,
        };
        use Attachment::*;
        use ClockDomain::*;
        use ComponentKind::*;
        let mut components = Vec::new();
        for id in 0..6 {
            components.push(mk(&format!("core{id}"), Core { id }, Cpu, XbarPort(id)));
        }
        for id in 0..4 {
            components.push(mk(
                &format!("bank{id}"),
                ScratchpadBank { id },
                Cpu,
                XbarBank(id),
            ));
        }
        components.push(mk("imem", InstrMemory, Cpu, Attachment::None));
        components.push(mk("dmard0", DmaRead { engine: 0 }, Sdram, XbarPort(6)));
        components.push(mk("dmawr0", DmaWrite { engine: 0 }, Sdram, XbarPort(7)));
        components.push(mk("mactx0", MacTx { mac: 0 }, Wire, XbarPort(8)));
        components.push(mk("macrx0", MacRx { mac: 0 }, Wire, XbarPort(9)));
        components.push(mk("fm", FrameMemory, Sdram, FrameBus));
        components.push(mk("host", HostBridge, Host, HostBus));
        SysDef {
            components,
            topology: Topology::default(),
            n_cores: 6,
            n_banks: 4,
        }
    }

    /// Number of processing cores.
    pub fn n_cores(&self) -> usize {
        self.n_cores
    }

    /// Number of scratchpad banks.
    pub fn n_banks(&self) -> usize {
        self.n_banks
    }

    /// The frame-side unit counts.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Total crossbar requester ports (cores + one per frame-side
    /// scratchpad client).
    pub fn xbar_ports(&self) -> usize {
        self.n_cores + 2 * self.topology.dma_engines + 2 * self.topology.macs
    }

    /// Crossbar port of a component kind, if it has one.
    pub fn port_of(&self, kind: ComponentKind) -> Option<usize> {
        self.components.iter().find_map(|c| match c.attachment {
            Attachment::XbarPort(p) if c.kind == kind => Some(p),
            _ => None,
        })
    }

    /// Crossbar port of DMA-read engine `k`.
    pub fn dmard_port(&self, k: usize) -> usize {
        self.port_of(ComponentKind::DmaRead { engine: k })
            .expect("engine in definition")
    }

    /// Crossbar port of DMA-write engine `k`.
    pub fn dmawr_port(&self, k: usize) -> usize {
        self.port_of(ComponentKind::DmaWrite { engine: k })
            .expect("engine in definition")
    }

    /// Crossbar port of MAC TX `j`.
    pub fn mactx_port(&self, j: usize) -> usize {
        self.port_of(ComponentKind::MacTx { mac: j })
            .expect("mac in definition")
    }

    /// Crossbar port of MAC RX `j`.
    pub fn macrx_port(&self, j: usize) -> usize {
        self.port_of(ComponentKind::MacRx { mac: j })
            .expect("mac in definition")
    }

    /// Components the domain-parallel kernel's worker thread owns.
    pub fn frame_side_components(&self) -> impl Iterator<Item = &ComponentDef> {
        self.components.iter().filter(|c| c.frame_side())
    }

    /// Components in clock domain `d`.
    pub fn domain_members(&self, d: ClockDomain) -> impl Iterator<Item = &ComponentDef> + '_ {
        self.components.iter().filter(move |c| c.domain == d)
    }

    /// Structural consistency: crossbar ports are unique and cover
    /// `0..xbar_ports()`, banks cover `0..n_banks`, and exactly one
    /// frame memory and host bridge exist. The system builder asserts
    /// this before assembling.
    pub fn check(&self) -> Result<(), String> {
        let mut ports = vec![false; self.xbar_ports()];
        let mut banks = vec![false; self.n_banks];
        let (mut fms, mut hosts) = (0, 0);
        for c in &self.components {
            match c.attachment {
                Attachment::XbarPort(p) => {
                    if p >= ports.len() || ports[p] {
                        return Err(format!("{}: bad or duplicate port {p}", c.name));
                    }
                    ports[p] = true;
                }
                Attachment::XbarBank(b) => {
                    if b >= banks.len() || banks[b] {
                        return Err(format!("{}: bad or duplicate bank {b}", c.name));
                    }
                    banks[b] = true;
                }
                Attachment::FrameBus => fms += 1,
                Attachment::HostBus => hosts += 1,
                Attachment::None => {}
            }
        }
        if !ports.into_iter().all(|p| p) {
            return Err("unattached crossbar port".into());
        }
        if !banks.into_iter().all(|b| b) {
            return Err("unattached scratchpad bank".into());
        }
        if fms != 1 || hosts != 1 {
            return Err(format!(
                "need exactly one frame memory and host bridge (got {fms}, {hosts})"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_composes_the_hand_wired_system() {
        let derived = SysDef::from_config(&NicConfig::default());
        let wired = SysDef::hand_wired_default();
        assert_eq!(derived, wired);
        derived.check().unwrap();
    }

    #[test]
    fn legacy_port_assignment_is_preserved() {
        let d = SysDef::from_config(&NicConfig::default());
        assert_eq!(d.xbar_ports(), 10);
        assert_eq!(d.dmard_port(0), 6);
        assert_eq!(d.dmawr_port(0), 7);
        assert_eq!(d.mactx_port(0), 8);
        assert_eq!(d.macrx_port(0), 9);
    }

    #[test]
    fn non_default_topologies_check_out() {
        for (cores, dma, macs) in [(2, 2, 1), (8, 2, 2), (4, 1, 2)] {
            let d = SysDef::compose(
                cores,
                4,
                Topology {
                    dma_engines: dma,
                    macs,
                },
            );
            d.check().unwrap();
            assert_eq!(d.xbar_ports(), cores + 2 * dma + 2 * macs);
            // Grouped-by-kind port order: reads, writes, TX, RX.
            assert_eq!(d.dmard_port(0), cores);
            assert_eq!(d.dmawr_port(0), cores + dma);
            assert_eq!(d.mactx_port(0), cores + 2 * dma);
            assert_eq!(d.macrx_port(0), cores + 2 * dma + macs);
        }
    }

    #[test]
    fn frame_side_membership_is_derived_from_domains() {
        let d = SysDef::from_config(&NicConfig::default());
        let frame: Vec<&str> = d.frame_side_components().map(|c| c.name.as_str()).collect();
        assert_eq!(frame, ["dmard0", "dmawr0", "mactx0", "macrx0", "fm"]);
        assert_eq!(d.domain_members(ClockDomain::Cpu).count(), 6 + 4 + 1);
        assert_eq!(d.domain_members(ClockDomain::Host).count(), 1);
    }
}
