//! Round-robin arbitration.
//!
//! The paper's crossbar "allows one transaction to each scratchpad bank and
//! to the external memory bus interface per cycle with round-robin
//! arbitration for each resource" (§4), and the frame bus round-robins
//! among the four assist streams. This helper owns the rotating priority
//! pointer for one such resource.

/// Round-robin arbiter over `n` requesters for a single resource.
///
/// Each call to [`RoundRobin::grant`] picks the requesting index closest
/// (cyclically) after the previous winner, so every requester is served
/// within `n` grants of asserting its request.
///
/// # Example
///
/// ```
/// use nicsim_sim::RoundRobin;
///
/// let mut rr = RoundRobin::new(3);
/// assert_eq!(rr.grant(|i| i != 1), Some(0));
/// assert_eq!(rr.grant(|i| i != 1), Some(2));
/// assert_eq!(rr.grant(|i| i != 1), Some(0));
/// assert_eq!(rr.grant(|_| false), None);
/// ```
#[derive(Debug, Clone)]
pub struct RoundRobin {
    n: usize,
    last: usize,
}

impl RoundRobin {
    /// Create an arbiter over `n` requesters.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> RoundRobin {
        assert!(n > 0, "arbiter needs at least one requester");
        RoundRobin { n, last: n - 1 }
    }

    /// Number of requesters.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false; arbiters are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Grant to the first requester (in rotating order after the previous
    /// winner) for which `requesting(i)` is true. Returns the winner, or
    /// `None` when nobody is requesting. The priority pointer only advances
    /// on a successful grant.
    pub fn grant(&mut self, mut requesting: impl FnMut(usize) -> bool) -> Option<usize> {
        for off in 1..=self.n {
            let i = (self.last + off) % self.n;
            if requesting(i) {
                self.last = i;
                return Some(i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_rotation_among_all() {
        let mut rr = RoundRobin::new(4);
        let wins: Vec<_> = (0..8).map(|_| rr.grant(|_| true).unwrap()).collect();
        assert_eq!(wins, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn skips_idle_requesters() {
        let mut rr = RoundRobin::new(4);
        // Only 1 and 3 request.
        let wins: Vec<_> = (0..4)
            .map(|_| rr.grant(|i| i == 1 || i == 3).unwrap())
            .collect();
        assert_eq!(wins, vec![1, 3, 1, 3]);
    }

    #[test]
    fn none_when_idle() {
        let mut rr = RoundRobin::new(2);
        assert_eq!(rr.grant(|_| false), None);
        // Pointer unchanged: next grant still starts at 0.
        assert_eq!(rr.grant(|_| true), Some(0));
    }

    #[test]
    fn single_requester() {
        let mut rr = RoundRobin::new(1);
        assert_eq!(rr.grant(|_| true), Some(0));
        assert_eq!(rr.grant(|_| true), Some(0));
        assert_eq!(rr.len(), 1);
    }

    #[test]
    fn starvation_freedom_bound() {
        // Any continuously-requesting index is served within n grants.
        let mut rr = RoundRobin::new(5);
        for target in 0..5usize {
            let mut waited = 0;
            loop {
                let w = rr.grant(|_| true).unwrap();
                if w == target {
                    break;
                }
                waited += 1;
                assert!(waited < 5, "requester {target} starved");
            }
        }
    }
}
