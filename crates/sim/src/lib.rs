//! Cycle/event simulation kernel for the `nicsim` 10 GbE NIC reproduction.
//!
//! This crate plays the role that the Liberty Simulation Environment (LSE)
//! plays for Spinach in the paper: it provides the time base, clock-domain
//! bookkeeping, a deterministic event heap, round-robin arbitration, and
//! bandwidth/stat counters that every other subsystem builds on.
//!
//! Everything is single-threaded and deterministic: ties on the event heap
//! are broken by insertion sequence number, and all arbiters are
//! round-robin with a fixed requester order.
//!
//! # Example
//!
//! ```
//! use nicsim_sim::{EventHeap, Freq, Ps};
//!
//! let clk = Freq::from_mhz(200);
//! let mut heap = EventHeap::new();
//! heap.push(clk.cycles(3), "third");
//! heap.push(clk.cycles(1), "first");
//! assert_eq!(heap.pop_before(Ps::from_ns(100)), Some((clk.cycles(1), "first")));
//! ```

pub mod arbiter;
pub mod domain;
pub mod events;
pub mod sched;
pub mod stats;
pub mod time;

pub use arbiter::RoundRobin;
pub use domain::{ClockDomain, DomainBarrier, EpochBarrier};
pub use events::{DrainBefore, EventHeap};
pub use sched::{NextEvent, WakeTracker};
pub use stats::{BandwidthMeter, Counter};
pub use time::{Freq, Ps};
