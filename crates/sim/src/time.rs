//! Simulation time base: picosecond timestamps and clock frequencies.
//!
//! The paper's controller spans four clock domains (CPU/scratchpad, frame
//! bus + GDDR SDRAM, PCI, and the Ethernet clock), so the global timeline
//! is kept in integer picoseconds and each domain derives its tick times
//! from its own period. Picoseconds are exact for every frequency used in
//! the evaluation (e.g. 166 MHz -> 6024 ps, 10 Gb/s -> 100 ps per byte*0.8).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point (or span) on the global simulation timeline, in picoseconds.
///
/// `Ps` is a transparent newtype over `u64`; at 1 ps resolution this wraps
/// after ~213 days of simulated time, far beyond any run in this repo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ps(pub u64);

impl Ps {
    /// Time zero.
    pub const ZERO: Ps = Ps(0);
    /// The largest representable time; used as "never".
    pub const MAX: Ps = Ps(u64::MAX);

    /// Construct from nanoseconds.
    pub fn from_ns(ns: u64) -> Ps {
        Ps(ns * 1_000)
    }

    /// Construct from microseconds.
    pub fn from_us(us: u64) -> Ps {
        Ps(us * 1_000_000)
    }

    /// Construct from milliseconds.
    pub fn from_ms(ms: u64) -> Ps {
        Ps(ms * 1_000_000_000)
    }

    /// This time expressed in (truncated) nanoseconds.
    pub fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// This time expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// Saturating subtraction: `self - rhs`, or zero if `rhs` is later.
    pub fn saturating_sub(self, rhs: Ps) -> Ps {
        Ps(self.0.saturating_sub(rhs.0))
    }

    /// The later of two times.
    pub fn max(self, rhs: Ps) -> Ps {
        Ps(self.0.max(rhs.0))
    }

    /// The earlier of two times.
    pub fn min(self, rhs: Ps) -> Ps {
        Ps(self.0.min(rhs.0))
    }
}

impl Add for Ps {
    type Output = Ps;
    fn add(self, rhs: Ps) -> Ps {
        Ps(self.0 + rhs.0)
    }
}

impl AddAssign for Ps {
    fn add_assign(&mut self, rhs: Ps) {
        self.0 += rhs.0;
    }
}

impl Sub for Ps {
    type Output = Ps;
    fn sub(self, rhs: Ps) -> Ps {
        Ps(self.0 - rhs.0)
    }
}

impl fmt::Display for Ps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ns", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

/// A clock frequency, stored in hertz.
///
/// Provides the period (rounded to whole picoseconds, as LSE does with its
/// integral time base) and helpers to convert cycle counts to time spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Freq {
    hz: u64,
}

impl Freq {
    /// Construct from hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero or above 1 THz (period would round to 0 ps).
    pub fn from_hz(hz: u64) -> Freq {
        assert!(hz > 0, "frequency must be nonzero");
        assert!(hz <= 1_000_000_000_000, "frequency above time resolution");
        Freq { hz }
    }

    /// Construct from megahertz.
    pub fn from_mhz(mhz: u64) -> Freq {
        Freq::from_hz(mhz * 1_000_000)
    }

    /// The frequency in hertz.
    pub fn hz(self) -> u64 {
        self.hz
    }

    /// The frequency in (fractional) megahertz.
    pub fn as_mhz(self) -> f64 {
        self.hz as f64 / 1e6
    }

    /// The clock period, rounded to the nearest picosecond.
    pub fn period(self) -> Ps {
        Ps((1_000_000_000_000u64 + self.hz / 2) / self.hz)
    }

    /// The duration of `n` cycles.
    pub fn cycles(self, n: u64) -> Ps {
        Ps(self.period().0 * n)
    }

    /// How many full cycles fit in `span`.
    pub fn cycles_in(self, span: Ps) -> u64 {
        span.0 / self.period().0
    }
}

impl fmt::Display for Freq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}MHz", self.hz / 1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ps_constructors_scale() {
        assert_eq!(Ps::from_ns(3), Ps(3_000));
        assert_eq!(Ps::from_us(2), Ps(2_000_000));
        assert_eq!(Ps::from_ms(1), Ps(1_000_000_000));
        assert_eq!(Ps::from_ms(1).as_ns(), 1_000_000);
    }

    #[test]
    fn ps_arithmetic() {
        let a = Ps(500);
        let b = Ps(200);
        assert_eq!(a + b, Ps(700));
        assert_eq!(a - b, Ps(300));
        assert_eq!(b.saturating_sub(a), Ps::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        let mut c = a;
        c += b;
        assert_eq!(c, Ps(700));
    }

    #[test]
    fn freq_periods_match_paper_domains() {
        // The paper's key clock domains.
        assert_eq!(Freq::from_mhz(200).period(), Ps(5_000));
        assert_eq!(Freq::from_mhz(500).period(), Ps(2_000));
        // 166 MHz rounds to 6024 ps.
        assert_eq!(Freq::from_mhz(166).period(), Ps(6_024));
    }

    #[test]
    fn freq_cycle_conversions() {
        let f = Freq::from_mhz(100);
        assert_eq!(f.cycles(7), Ps(70_000));
        assert_eq!(f.cycles_in(Ps(70_000)), 7);
        assert_eq!(f.cycles_in(Ps(69_999)), 6);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn freq_zero_rejected() {
        let _ = Freq::from_hz(0);
    }

    #[test]
    fn ps_display_units() {
        assert_eq!(format!("{}", Ps(12)), "12ps");
        assert_eq!(format!("{}", Ps(1_500)), "1.500ns");
        assert_eq!(format!("{}", Ps(2_500_000_000)), "2500.000us");
    }
}
