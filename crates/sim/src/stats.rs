//! Statistics primitives: event counters and bandwidth meters.
//!
//! Tables 3 and 4 of the paper are built from exactly these quantities:
//! per-core cycle-bucket counters and bytes-moved meters on the
//! instruction memory, scratchpad banks, and frame memory.

use crate::time::Ps;

/// A saturating event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(pub u64);

impl Counter {
    /// Create a zeroed counter.
    pub fn new() -> Counter {
        Counter(0)
    }

    /// Add one event.
    pub fn incr(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Add `n` events.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current count.
    pub fn get(self) -> u64 {
        self.0
    }

    /// Reset to zero, returning the previous value.
    pub fn take(&mut self) -> u64 {
        std::mem::take(&mut self.0)
    }
}

/// Measures bytes transferred over a window of simulated time.
///
/// `rate_gbps` divides bytes moved by the elapsed window, producing the
/// "consumed bandwidth" rows of Table 4 directly.
#[derive(Debug, Clone, Copy, Default)]
pub struct BandwidthMeter {
    bytes: u64,
    window_start: Ps,
}

impl BandwidthMeter {
    /// Create a meter whose window starts at time zero.
    pub fn new() -> BandwidthMeter {
        BandwidthMeter::default()
    }

    /// Record `n` bytes moved.
    pub fn add_bytes(&mut self, n: u64) {
        self.bytes += n;
    }

    /// Bytes recorded since the window started.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Restart the measurement window at `now`, discarding prior bytes.
    /// Used to exclude warm-up from steady-state measurements.
    pub fn reset(&mut self, now: Ps) {
        self.bytes = 0;
        self.window_start = now;
    }

    /// Average rate in Gb/s between the window start and `now`.
    /// Returns 0.0 for an empty window.
    pub fn rate_gbps(&self, now: Ps) -> f64 {
        let elapsed = now.saturating_sub(self.window_start);
        if elapsed == Ps::ZERO {
            return 0.0;
        }
        (self.bytes as f64 * 8.0) / elapsed.as_secs_f64() / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.take(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter(u64::MAX - 1);
        c.add(100);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn bandwidth_rate() {
        let mut m = BandwidthMeter::new();
        // 1250 bytes in 1 us = 10 Gb/s.
        m.add_bytes(1250);
        assert!((m.rate_gbps(Ps::from_us(1)) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_reset_window() {
        let mut m = BandwidthMeter::new();
        m.add_bytes(999_999);
        m.reset(Ps::from_us(1));
        m.add_bytes(2500);
        // 2500 bytes over the 1us window after reset = 20 Gb/s.
        assert!((m.rate_gbps(Ps::from_us(2)) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_empty_window_is_zero() {
        let m = BandwidthMeter::new();
        assert_eq!(m.rate_gbps(Ps::ZERO), 0.0);
    }
}
