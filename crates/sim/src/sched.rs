//! Next-event scheduling for the hybrid event-driven kernel.
//!
//! The main loop is still clocked in whole CPU cycles (the cores and the
//! crossbar are cycle-accurate state machines), but most components are
//! idle for long stretches: a core charging a multi-cycle stall, an
//! assist waiting for a frame-memory burst, the SDRAM controller waiting
//! for a completion, the host driver between polling intervals. Each
//! such component reports the earliest instant at which it can next
//! change architectural state — either as a [`NextEvent`] timestamp or
//! as a cycle count — and a [`WakeTracker`] folds them into the number
//! of cycles the clock may jump without simulating anything.
//!
//! The contract that keeps results bit-identical: a component's reported
//! wakeup must be a *lower bound* on its next state change. Reporting
//! too early only costs a no-op cycle; reporting too late would skip
//! real work and is a correctness bug (guarded by the dense-vs-event
//! equivalence tests in `nicsim`).

use crate::time::Ps;

/// A component that can report the time of its next self-initiated
/// state change.
///
/// Return [`Ps::MAX`] for "never" (nothing pending), and any time at or
/// before the current instant for "I have work right now". The value
/// must never be later than the component's actual next state change,
/// but may be earlier (a conservative bound costs only an extra polled
/// cycle).
pub trait NextEvent {
    /// Earliest time at which this component can change state on its
    /// own (without new input arriving).
    fn next_event(&self) -> Ps;
}

/// Folds component wakeups into "how many whole CPU cycles may the
/// clock jump".
///
/// The tracker starts at "never" and takes the minimum over
/// cycle-denominated wakeups ([`WakeTracker::at_most`]) and
/// time-denominated events ([`WakeTracker::at_time`]); the result of
/// [`WakeTracker::wake_in`] is always at least 1 — the next cycle is
/// always simulated for real, a skip of `n` only elides the `n`
/// provably-idle cycles before it.
#[derive(Debug, Clone, Copy)]
pub struct WakeTracker {
    now: Ps,
    period: Ps,
    cycles: u64,
}

impl WakeTracker {
    /// Start a wake computation at time `now` on a clock of the given
    /// `period`.
    pub fn new(now: Ps, period: Ps) -> WakeTracker {
        debug_assert!(period.0 > 0, "clock period must be nonzero");
        WakeTracker {
            now,
            period,
            cycles: u64::MAX,
        }
    }

    /// Bound the wakeup to at most `cycles` cycles from now.
    pub fn at_most(&mut self, cycles: u64) {
        self.cycles = self.cycles.min(cycles.max(1));
    }

    /// Bound the wakeup by an absolute event time: the clock may not
    /// jump past the first cycle whose timestamp reaches `t`.
    /// [`Ps::MAX`] means "never" and leaves the bound unchanged.
    pub fn at_time(&mut self, t: Ps) {
        if t == Ps::MAX {
            return;
        }
        let c = if t <= self.now {
            1
        } else {
            (t.0 - self.now.0).div_ceil(self.period.0)
        };
        self.cycles = self.cycles.min(c);
    }

    /// Whether the bound has already collapsed to "next cycle" (callers
    /// can stop folding early).
    pub fn is_immediate(&self) -> bool {
        self.cycles <= 1
    }

    /// Cycles until the next cycle that must be simulated (>= 1).
    pub fn wake_in(&self) -> u64 {
        self.cycles.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_never_and_takes_minima() {
        let mut w = WakeTracker::new(Ps(10_000), Ps(2_000));
        assert_eq!(w.wake_in(), u64::MAX);
        w.at_most(40);
        assert_eq!(w.wake_in(), 40);
        w.at_most(7);
        w.at_most(100);
        assert_eq!(w.wake_in(), 7);
        assert!(!w.is_immediate());
    }

    #[test]
    fn time_bounds_convert_to_ceil_cycles() {
        // now = 10ns, period = 2ns.
        let mut w = WakeTracker::new(Ps(10_000), Ps(2_000));
        w.at_time(Ps(16_000)); // exactly 3 periods out
        assert_eq!(w.wake_in(), 3);
        let mut w = WakeTracker::new(Ps(10_000), Ps(2_000));
        w.at_time(Ps(16_001)); // just past: needs a 4th cycle
        assert_eq!(w.wake_in(), 4);
    }

    #[test]
    fn due_and_past_events_are_immediate() {
        let mut w = WakeTracker::new(Ps(10_000), Ps(2_000));
        w.at_time(Ps(10_000));
        assert_eq!(w.wake_in(), 1);
        assert!(w.is_immediate());
        let mut w = WakeTracker::new(Ps(10_000), Ps(2_000));
        w.at_time(Ps(3));
        assert_eq!(w.wake_in(), 1);
    }

    #[test]
    fn never_leaves_bound_unchanged() {
        let mut w = WakeTracker::new(Ps::ZERO, Ps(5_000));
        w.at_time(Ps::MAX);
        assert_eq!(w.wake_in(), u64::MAX);
        w.at_most(12);
        w.at_time(Ps::MAX);
        assert_eq!(w.wake_in(), 12);
    }

    #[test]
    fn wake_is_at_least_one() {
        let mut w = WakeTracker::new(Ps::ZERO, Ps(5_000));
        w.at_most(0);
        assert_eq!(w.wake_in(), 1);
    }

    #[test]
    fn next_event_trait_is_object_safe() {
        struct Fixed(Ps);
        impl NextEvent for Fixed {
            fn next_event(&self) -> Ps {
                self.0
            }
        }
        let parts: Vec<Box<dyn NextEvent>> = vec![
            Box::new(Fixed(Ps(9_000))),
            Box::new(Fixed(Ps::MAX)),
            Box::new(Fixed(Ps(4_000))),
        ];
        let mut w = WakeTracker::new(Ps::ZERO, Ps(1_000));
        for p in &parts {
            w.at_time(p.next_event());
        }
        assert_eq!(w.wake_in(), 4);
    }
}
