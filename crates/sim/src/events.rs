//! Deterministic event heap.
//!
//! The frame-side components of the simulator (GDDR SDRAM controller, MAC,
//! DMA engines, host model) are event-driven rather than ticked every
//! cycle; they schedule completion events on this heap. Ties are broken by
//! insertion order so a simulation is reproducible run-to-run.

use crate::time::Ps;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: Ps,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of `(time, event)` pairs with FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use nicsim_sim::{EventHeap, Ps};
///
/// let mut h = EventHeap::new();
/// h.push(Ps(30), 'c');
/// h.push(Ps(10), 'a');
/// h.push(Ps(10), 'b'); // same time: FIFO order
/// assert_eq!(h.pop_before(Ps(20)), Some((Ps(10), 'a')));
/// assert_eq!(h.pop_before(Ps(20)), Some((Ps(10), 'b')));
/// assert_eq!(h.pop_before(Ps(20)), None);
/// ```
pub struct EventHeap<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> EventHeap<E> {
    /// Create an empty heap.
    pub fn new() -> EventHeap<E> {
        EventHeap {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `event` to fire at time `at`.
    pub fn push(&mut self, at: Ps, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Ps> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the earliest event if it fires at or before `now`.
    pub fn pop_before(&mut self, now: Ps) -> Option<(Ps, E)> {
        if self.heap.peek().is_some_and(|e| e.at <= now) {
            self.heap.pop().map(|e| (e.at, e.event))
        } else {
            None
        }
    }

    /// Pop the earliest event unconditionally.
    pub fn pop(&mut self) -> Option<(Ps, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Iterate over (and remove) every event firing at or before `now`,
    /// in time order with FIFO tie-breaking — the loop shape every
    /// caller of [`EventHeap::pop_before`] otherwise hand-rolls.
    ///
    /// The iterator is lazy: events left unconsumed stay on the heap.
    pub fn drain_before(&mut self, now: Ps) -> DrainBefore<'_, E> {
        DrainBefore { heap: self, now }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Iterator returned by [`EventHeap::drain_before`].
pub struct DrainBefore<'a, E> {
    heap: &'a mut EventHeap<E>,
    now: Ps,
}

impl<E> Iterator for DrainBefore<'_, E> {
    type Item = (Ps, E);

    fn next(&mut self) -> Option<(Ps, E)> {
        self.heap.pop_before(self.now)
    }
}

impl<E> Default for EventHeap<E> {
    fn default() -> Self {
        EventHeap::new()
    }
}

impl<E> std::fmt::Debug for EventHeap<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventHeap")
            .field("len", &self.heap.len())
            .field("next", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut h = EventHeap::new();
        h.push(Ps(5), 5);
        h.push(Ps(1), 1);
        h.push(Ps(3), 3);
        assert_eq!(h.pop(), Some((Ps(1), 1)));
        assert_eq!(h.pop(), Some((Ps(3), 3)));
        assert_eq!(h.pop(), Some((Ps(5), 5)));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn fifo_on_ties() {
        let mut h = EventHeap::new();
        for i in 0..100 {
            h.push(Ps(7), i);
        }
        for i in 0..100 {
            assert_eq!(h.pop(), Some((Ps(7), i)));
        }
    }

    #[test]
    fn pop_before_respects_now() {
        let mut h = EventHeap::new();
        h.push(Ps(10), "later");
        assert_eq!(h.pop_before(Ps(9)), None);
        assert_eq!(h.pop_before(Ps(10)), Some((Ps(10), "later")));
        assert!(h.is_empty());
    }

    #[test]
    fn drain_before_yields_in_time_order() {
        let mut h = EventHeap::new();
        h.push(Ps(30), 'c');
        h.push(Ps(10), 'a');
        h.push(Ps(20), 'b');
        h.push(Ps(40), 'd');
        let got: Vec<_> = h.drain_before(Ps(30)).collect();
        assert_eq!(got, vec![(Ps(10), 'a'), (Ps(20), 'b'), (Ps(30), 'c')]);
        // Later events stay queued.
        assert_eq!(h.len(), 1);
        assert_eq!(h.pop(), Some((Ps(40), 'd')));
    }

    #[test]
    fn drain_before_breaks_ties_fifo() {
        let mut h = EventHeap::new();
        for i in 0..50 {
            h.push(Ps(7), i);
        }
        let got: Vec<_> = h.drain_before(Ps(7)).map(|(_, e)| e).collect();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        assert!(h.is_empty());
    }

    #[test]
    fn drain_before_is_lazy() {
        let mut h = EventHeap::new();
        h.push(Ps(1), 1);
        h.push(Ps(2), 2);
        let first = h.drain_before(Ps(5)).next();
        assert_eq!(first, Some((Ps(1), 1)));
        // The unconsumed event is still there.
        assert_eq!(h.len(), 1);
        assert_eq!(h.peek_time(), Some(Ps(2)));
    }

    #[test]
    fn drain_before_empty_heap() {
        let mut h: EventHeap<u32> = EventHeap::new();
        assert_eq!(h.drain_before(Ps(100)).count(), 0);
    }

    #[test]
    fn peek_time_tracks_min() {
        let mut h = EventHeap::new();
        assert_eq!(h.peek_time(), None);
        h.push(Ps(42), ());
        h.push(Ps(17), ());
        assert_eq!(h.peek_time(), Some(Ps(17)));
        assert_eq!(h.len(), 2);
    }
}
