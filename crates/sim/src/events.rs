//! Deterministic event heap.
//!
//! The frame-side components of the simulator (GDDR SDRAM controller, MAC,
//! DMA engines, host model) are event-driven rather than ticked every
//! cycle; they schedule completion events on this heap. Ties are broken by
//! insertion order so a simulation is reproducible run-to-run.

use crate::time::Ps;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: Ps,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of `(time, event)` pairs with FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use nicsim_sim::{EventHeap, Ps};
///
/// let mut h = EventHeap::new();
/// h.push(Ps(30), 'c');
/// h.push(Ps(10), 'a');
/// h.push(Ps(10), 'b'); // same time: FIFO order
/// assert_eq!(h.pop_before(Ps(20)), Some((Ps(10), 'a')));
/// assert_eq!(h.pop_before(Ps(20)), Some((Ps(10), 'b')));
/// assert_eq!(h.pop_before(Ps(20)), None);
/// ```
pub struct EventHeap<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> EventHeap<E> {
    /// Create an empty heap.
    pub fn new() -> EventHeap<E> {
        EventHeap {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `event` to fire at time `at`.
    pub fn push(&mut self, at: Ps, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Ps> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the earliest event if it fires at or before `now`.
    pub fn pop_before(&mut self, now: Ps) -> Option<(Ps, E)> {
        if self.heap.peek().is_some_and(|e| e.at <= now) {
            self.heap.pop().map(|e| (e.at, e.event))
        } else {
            None
        }
    }

    /// Pop the earliest event unconditionally.
    pub fn pop(&mut self) -> Option<(Ps, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventHeap<E> {
    fn default() -> Self {
        EventHeap::new()
    }
}

impl<E> std::fmt::Debug for EventHeap<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventHeap")
            .field("len", &self.heap.len())
            .field("next", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut h = EventHeap::new();
        h.push(Ps(5), 5);
        h.push(Ps(1), 1);
        h.push(Ps(3), 3);
        assert_eq!(h.pop(), Some((Ps(1), 1)));
        assert_eq!(h.pop(), Some((Ps(3), 3)));
        assert_eq!(h.pop(), Some((Ps(5), 5)));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn fifo_on_ties() {
        let mut h = EventHeap::new();
        for i in 0..100 {
            h.push(Ps(7), i);
        }
        for i in 0..100 {
            assert_eq!(h.pop(), Some((Ps(7), i)));
        }
    }

    #[test]
    fn pop_before_respects_now() {
        let mut h = EventHeap::new();
        h.push(Ps(10), "later");
        assert_eq!(h.pop_before(Ps(9)), None);
        assert_eq!(h.pop_before(Ps(10)), Some((Ps(10), "later")));
        assert!(h.is_empty());
    }

    #[test]
    fn peek_time_tracks_min() {
        let mut h = EventHeap::new();
        assert_eq!(h.peek_time(), None);
        h.push(Ps(42), ());
        h.push(Ps(17), ());
        assert_eq!(h.peek_time(), Some(Ps(17)));
        assert_eq!(h.len(), 2);
    }
}
