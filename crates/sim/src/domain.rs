//! Clock domains and the two-party rendezvous used by the
//! domain-parallel kernel.
//!
//! The paper's NIC has four clock domains (§3): the processor/scratchpad
//! core clock, the SDRAM/frame-bus clock, the wire-side MAC clock, and
//! the host-side PCI clock. The simulator normally folds all four into
//! one sequential loop; the domain-parallel kernel instead ticks the
//! frame-side domains (assists, frame bus, host memory) on a worker
//! thread concurrently with the core-side domains (cores, I-memory) on
//! the main thread, with a deterministic rendezvous at every
//! cross-domain edge (crossbar arbitration, doorbell fan-out).
//!
//! [`DomainBarrier`] is that rendezvous: a generation-numbered, two
//! party open/finish handshake. The main thread *opens* generation `g`
//! (publishing all prior writes), both sides do their disjoint slice of
//! work, the worker *finishes* `g`, and the main thread *waits* for the
//! finish (acquiring all the worker's writes). Determinism follows from
//! the disjointness of the two slices, not from timing: any interleaving
//! of the two threads between open and finish produces the same state.
//!
//! Each open carries a **batch length**: the number of simulated cycles
//! the worker may free-run before the next rendezvous. A length of 1 is
//! the classic per-cycle protocol; the lookahead-batched kernel opens
//! longer generations whenever it can prove the domains cannot interact
//! within the span (no crossbar traffic, no doorbell, no driver poll),
//! amortizing the two atomic handshakes over the whole batch.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::thread::Thread;
use std::time::Duration;

/// The four clock domains of the NIC (paper §3). The domain-parallel
/// kernel partitions them across two threads; the enum names the
/// partition for diagnostics and documentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClockDomain {
    /// Processor cores, scratchpad, crossbar (the CPU clock).
    Cpu,
    /// Frame memory / SDRAM and its bus.
    Sdram,
    /// Wire-side MACs.
    Wire,
    /// Host-side PCI / DMA.
    Host,
}

/// Generation published when the barrier shuts down.
const STOP: u64 = u64::MAX;

/// Spin iterations before a waiting side falls back to yielding. The
/// per-cycle phases are sub-microsecond, so with a free hardware thread
/// the rendezvous almost always completes within the spin. On a host
/// with a single hardware thread the peer cannot run while we spin, so
/// the spin budget drops to zero and waits go straight to the scheduler.
const SPIN: u32 = 4096;

/// Yield iterations between spinning and parking on the worker side:
/// `yield_now` costs a syscall but lets an oversubscribed peer run,
/// while `park_timeout` adds a full sleep/wake round trip.
const YIELDS: u32 = 64;

/// Two-party generation rendezvous between the main (coordinator)
/// thread and one worker thread.
#[derive(Debug)]
pub struct DomainBarrier {
    /// Latest generation the coordinator has opened (STOP = shut down).
    go: AtomicU64,
    /// Batch length (simulated cycles) of the open generation. Written
    /// before the release-store to `go`, so the worker's acquire-load of
    /// `go` makes it visible; a plain relaxed load then suffices.
    batch: AtomicU64,
    /// Latest generation the worker has finished.
    done: AtomicU64,
    /// Worker thread handle for unparking (set once, before first open).
    worker: std::sync::Mutex<Option<Thread>>,
    /// Set if the worker panicked; poisons the coordinator's waits.
    worker_dead: AtomicBool,
    /// Per-wait spin budget: [`SPIN`] when a second hardware thread can
    /// make progress underneath the spin, 0 when there is none.
    spin: u32,
}

impl Default for DomainBarrier {
    fn default() -> Self {
        Self::new()
    }
}

impl DomainBarrier {
    /// Create a barrier at generation 0 (nothing open, nothing done).
    pub fn new() -> DomainBarrier {
        let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::with_spin(if parallelism > 1 { SPIN } else { 0 })
    }

    /// A barrier with an explicit spin budget. `with_spin(0)` is the
    /// path a 1-hardware-thread host takes: every wait goes straight to
    /// yield/park, which must still make progress (the unit tests pin
    /// this down without needing such a host).
    pub fn with_spin(spin: u32) -> DomainBarrier {
        DomainBarrier {
            go: AtomicU64::new(0),
            batch: AtomicU64::new(1),
            done: AtomicU64::new(0),
            worker: std::sync::Mutex::new(None),
            worker_dead: AtomicBool::new(false),
            spin,
        }
    }

    /// Register the worker thread so `open`/`shutdown` can unpark it.
    /// Must be called before the first [`DomainBarrier::open`].
    pub fn register_worker(&self, t: Thread) {
        *self.worker.lock().expect("barrier lock") = Some(t);
    }

    /// Coordinator side: open generation `gen` (> the previous one) for
    /// a batch of `n_cycles` simulated cycles, releasing all writes made
    /// so far to the worker. `n_cycles == 1` is the per-cycle protocol.
    pub fn open(&self, gen: u64, n_cycles: u64) {
        debug_assert!(gen != STOP && gen > self.done.load(Ordering::Relaxed));
        debug_assert!(n_cycles >= 1, "a generation covers at least one cycle");
        self.batch.store(n_cycles, Ordering::Relaxed);
        self.go.store(gen, Ordering::Release);
        if let Some(t) = self.worker.lock().expect("barrier lock").as_ref() {
            t.unpark();
        }
    }

    /// Worker side: block until a generation newer than `last` is
    /// opened; returns it and its batch length, or `None` on shutdown.
    /// Acquires all coordinator writes made before the open.
    pub fn wait_open(&self, last: u64) -> Option<(u64, u64)> {
        let mut spins = 0u32;
        loop {
            let g = self.go.load(Ordering::Acquire);
            if g == STOP {
                return None;
            }
            if g > last {
                return Some((g, self.batch.load(Ordering::Relaxed)));
            }
            spins = spins.saturating_add(1);
            if spins <= self.spin {
                std::hint::spin_loop();
            } else if spins <= self.spin + YIELDS {
                std::thread::yield_now();
            } else {
                // Parking races with unpark benignly: unpark on a
                // not-yet-parked thread makes the next park return
                // immediately, and the timeout bounds lost wakeups.
                std::thread::park_timeout(Duration::from_millis(1));
            }
        }
    }

    /// Worker side: mark generation `gen` finished, releasing the
    /// worker's writes to the coordinator.
    pub fn finish(&self, gen: u64) {
        self.done.store(gen, Ordering::Release);
    }

    /// Worker side: mark the worker as dead (call from a panic guard so
    /// the coordinator fails fast instead of spinning forever).
    pub fn poison(&self) {
        self.worker_dead.store(true, Ordering::Release);
    }

    /// Coordinator side: block until the worker finishes generation
    /// `gen`, acquiring all its writes.
    ///
    /// # Panics
    ///
    /// Panics if the worker died without finishing (see
    /// [`DomainBarrier::poison`]).
    pub fn wait_done(&self, gen: u64) {
        let mut spins = 0u32;
        while self.done.load(Ordering::Acquire) < gen {
            assert!(
                !self.worker_dead.load(Ordering::Acquire),
                "domain worker thread died mid-cycle"
            );
            spins = spins.saturating_add(1);
            if spins > self.spin {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Coordinator side: tell the worker to exit its wait loop.
    pub fn shutdown(&self) {
        self.go.store(STOP, Ordering::Release);
        if let Some(t) = self.worker.lock().expect("barrier lock").as_ref() {
            t.unpark();
        }
    }
}

/// A per-worker completion slot, padded to a cache line so workers on
/// different shards never false-share their `done` counters.
#[derive(Debug)]
#[repr(align(64))]
struct DoneSlot(AtomicU64);

/// N-party generation rendezvous between one coordinator and `n`
/// worker threads — the multi-worker generalization of
/// [`DomainBarrier`], used by the fleet engine to run NIC shards in
/// epoch lockstep.
///
/// Protocol per epoch: the coordinator *opens* generation `g`
/// (publishing the frames injected since the last epoch), every worker
/// runs its shard of NICs up to the epoch boundary and *finishes* `g`,
/// and the coordinator *waits* for all `n` finishes (acquiring every
/// shard's writes) before exchanging frames through the fabric.
/// Determinism follows from the disjointness of the shards plus the
/// fabric's canonical ordering, not from thread timing.
#[derive(Debug)]
pub struct EpochBarrier {
    /// Latest generation the coordinator has opened (STOP = shut down).
    go: AtomicU64,
    /// Per-worker latest finished generation.
    done: Vec<DoneSlot>,
    /// Worker thread handles for unparking (set before first open).
    workers: std::sync::Mutex<Vec<Thread>>,
    /// Set if any worker panicked; poisons the coordinator's waits.
    worker_dead: AtomicBool,
    /// Per-wait spin budget, sized like [`DomainBarrier`]'s: full when
    /// every worker can plausibly have its own hardware thread, zero
    /// otherwise so waits go straight to the scheduler.
    spin: u32,
}

impl EpochBarrier {
    /// A barrier for `n` workers at generation 0 (nothing open,
    /// nothing done).
    pub fn new(n: usize) -> EpochBarrier {
        let parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
        Self::with_spin(n, if parallelism > n { SPIN } else { 0 })
    }

    /// A barrier with an explicit spin budget (see
    /// [`DomainBarrier::with_spin`] for the zero-spin rationale).
    pub fn with_spin(n: usize, spin: u32) -> EpochBarrier {
        assert!(n >= 1, "a barrier needs at least one worker");
        EpochBarrier {
            go: AtomicU64::new(0),
            done: (0..n).map(|_| DoneSlot(AtomicU64::new(0))).collect(),
            workers: std::sync::Mutex::new(Vec::new()),
            worker_dead: AtomicBool::new(false),
            spin,
        }
    }

    /// Number of workers this barrier rendezvouses.
    pub fn workers(&self) -> usize {
        self.done.len()
    }

    /// Register worker `idx`'s thread so `open`/`shutdown` can unpark
    /// it. Must be called for every worker before the first
    /// [`EpochBarrier::open`]. Registration order does not matter.
    pub fn register_worker(&self, t: Thread) {
        let mut workers = self.workers.lock().expect("barrier lock");
        assert!(workers.len() < self.done.len(), "more workers than slots");
        workers.push(t);
    }

    /// Coordinator side: open generation `gen` (> the previous one) to
    /// all workers, releasing the coordinator's writes.
    pub fn open(&self, gen: u64) {
        debug_assert!(gen != STOP);
        self.go.store(gen, Ordering::Release);
        for t in self.workers.lock().expect("barrier lock").iter() {
            t.unpark();
        }
    }

    /// Worker side: block until a generation newer than `last` is
    /// opened; returns it, or `None` on shutdown. Acquires all
    /// coordinator writes made before the open.
    pub fn wait_open(&self, last: u64) -> Option<u64> {
        let mut spins = 0u32;
        loop {
            let g = self.go.load(Ordering::Acquire);
            if g == STOP {
                return None;
            }
            if g > last {
                return Some(g);
            }
            spins = spins.saturating_add(1);
            if spins <= self.spin {
                std::hint::spin_loop();
            } else if spins <= self.spin + YIELDS {
                std::thread::yield_now();
            } else {
                // Same benign park/unpark race as DomainBarrier: the
                // timeout bounds any lost wakeup.
                std::thread::park_timeout(Duration::from_millis(1));
            }
        }
    }

    /// Worker `idx` marks generation `gen` finished, releasing its
    /// shard's writes to the coordinator.
    pub fn finish(&self, idx: usize, gen: u64) {
        self.done[idx].0.store(gen, Ordering::Release);
    }

    /// Worker side: mark the barrier poisoned (call from a panic guard
    /// so the coordinator fails fast instead of spinning forever).
    pub fn poison(&self) {
        self.worker_dead.store(true, Ordering::Release);
    }

    /// Coordinator side: block until every worker finishes generation
    /// `gen`, acquiring all their writes.
    ///
    /// # Panics
    ///
    /// Panics if a worker died without finishing (see
    /// [`EpochBarrier::poison`]).
    pub fn wait_done(&self, gen: u64) {
        for slot in &self.done {
            let mut spins = 0u32;
            while slot.0.load(Ordering::Acquire) < gen {
                assert!(
                    !self.worker_dead.load(Ordering::Acquire),
                    "epoch worker thread died mid-epoch"
                );
                spins = spins.saturating_add(1);
                if spins > self.spin {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Coordinator side: tell every worker to exit its wait loop.
    pub fn shutdown(&self) {
        self.go.store(STOP, Ordering::Release);
        for t in self.workers.lock().expect("barrier lock").iter() {
            t.unpark();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domains_are_nameable_and_hashable() {
        use std::collections::HashSet;
        let all = [
            ClockDomain::Cpu,
            ClockDomain::Sdram,
            ClockDomain::Wire,
            ClockDomain::Host,
        ];
        let set: HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn rendezvous_orders_disjoint_work_deterministically() {
        // The worker doubles cell B each open; the coordinator
        // increments cell A between cycles. Neither touches the other's
        // cell during an open generation; the handshake's Release /
        // Acquire pairs make both sides' writes visible at the edges.
        struct Cells {
            a: u64,
            b: u64,
        }
        let barrier = DomainBarrier::new();
        let mut cells = Cells { a: 0, b: 1 };
        let cells_ptr = &mut cells as *mut Cells as usize;
        std::thread::scope(|scope| {
            let b = &barrier;
            let worker = scope.spawn(move || {
                let cells = cells_ptr as *mut Cells;
                let mut last = 0;
                while let Some((g, _)) = b.wait_open(last) {
                    last = g;
                    // SAFETY: the coordinator does not touch `b`
                    // between open(g) and wait_done(g).
                    unsafe { (*cells).b *= 2 };
                    b.finish(g);
                }
            });
            barrier.register_worker(worker.thread().clone());
            for gen in 1..=20u64 {
                barrier.open(gen, 1);
                // Coordinator's disjoint slice: cell A only.
                // SAFETY: the worker only touches `b`.
                unsafe { (*(cells_ptr as *mut Cells)).a += 1 };
                barrier.wait_done(gen);
                // Exclusive section: both cells visible and coherent.
                let c = unsafe { &*(cells_ptr as *mut Cells) };
                assert_eq!(c.a, gen);
                assert_eq!(c.b, 1 << gen);
            }
            barrier.shutdown();
        });
        assert_eq!(cells.a, 20);
        assert_eq!(cells.b, 1 << 20);
    }

    #[test]
    fn shutdown_unblocks_a_waiting_worker() {
        let barrier = DomainBarrier::new();
        std::thread::scope(|scope| {
            let b = &barrier;
            let worker = scope.spawn(move || b.wait_open(0));
            barrier.register_worker(worker.thread().clone());
            barrier.shutdown();
            assert_eq!(worker.join().expect("worker"), None);
        });
    }

    #[test]
    fn dead_worker_poisons_the_wait() {
        let barrier = DomainBarrier::new();
        barrier.poison();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            barrier.open(1, 1);
            barrier.wait_done(1);
        }));
        assert!(r.is_err(), "wait_done must panic on a dead worker");
    }

    #[test]
    fn worker_panic_propagates_to_waiting_coordinator() {
        // A worker that dies mid-generation (its panic guard calls
        // `poison`) must turn the coordinator's wait into a panic, not
        // an infinite spin. This is the guard the parallel kernel
        // installs around its frame-side slice.
        let barrier = DomainBarrier::new();
        let handle = std::thread::scope(|scope| {
            let b = &barrier;
            let worker = scope.spawn(move || {
                struct Guard<'a>(&'a DomainBarrier);
                impl Drop for Guard<'_> {
                    fn drop(&mut self) {
                        if std::thread::panicking() {
                            self.0.poison();
                        }
                    }
                }
                let _guard = Guard(b);
                let (g, _) = b.wait_open(0).expect("open before shutdown");
                let _ = g;
                panic!("assist blew up");
            });
            barrier.register_worker(worker.thread().clone());
            barrier.open(1, 1);
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                barrier.wait_done(1);
            }));
            assert!(r.is_err(), "coordinator must fail fast, not spin");
            // Consume the worker's panic so the scope exits cleanly.
            worker.join()
        });
        assert!(handle.is_err(), "worker must have panicked");
    }

    #[test]
    fn zero_spin_path_makes_progress() {
        // `with_spin(0)` is what `new()` builds on a 1-hardware-thread
        // host: both sides go straight to yield/park. The handshake must
        // still complete — a lost unpark would hang here (bounded by the
        // park timeout, caught by the harness timeout if regressed).
        let barrier = DomainBarrier::with_spin(0);
        let mut total = 0u64;
        std::thread::scope(|scope| {
            let b = &barrier;
            let total_ptr = &mut total as *mut u64 as usize;
            let worker = scope.spawn(move || {
                let total = total_ptr as *mut u64;
                let mut last = 0;
                while let Some((g, n)) = b.wait_open(last) {
                    last = g;
                    // SAFETY: coordinator is blocked in wait_done(g).
                    unsafe { *total += n };
                    b.finish(g);
                }
            });
            barrier.register_worker(worker.thread().clone());
            for gen in 1..=200u64 {
                barrier.open(gen, gen);
                barrier.wait_done(gen);
            }
            barrier.shutdown();
        });
        assert_eq!(total, (1..=200u64).sum::<u64>());
    }

    #[test]
    fn epoch_barrier_synchronizes_disjoint_shards() {
        // Four workers each own one cell of a shared array; the
        // coordinator sums the array in the exclusive section after
        // every wait_done. Any visibility or ordering bug shows up as
        // a stale sum.
        const WORKERS: usize = 4;
        let barrier = EpochBarrier::new(WORKERS);
        let mut cells = [0u64; WORKERS];
        let cells_ptr = cells.as_mut_ptr() as usize;
        std::thread::scope(|scope| {
            let b = &barrier;
            let handles: Vec<_> = (0..WORKERS)
                .map(|idx| {
                    scope.spawn(move || {
                        let cells = cells_ptr as *mut u64;
                        let mut last = 0;
                        while let Some(g) = b.wait_open(last) {
                            last = g;
                            // SAFETY: worker idx owns cell idx; the
                            // coordinator only reads between
                            // wait_done(g) and open(g + 1).
                            unsafe { *cells.add(idx) += g };
                            b.finish(idx, g);
                        }
                    })
                })
                .collect();
            for h in &handles {
                barrier.register_worker(h.thread().clone());
            }
            for gen in 1..=100u64 {
                barrier.open(gen);
                barrier.wait_done(gen);
                let sum: u64 = unsafe {
                    std::slice::from_raw_parts(cells_ptr as *const u64, WORKERS)
                        .iter()
                        .sum()
                };
                assert_eq!(sum, WORKERS as u64 * (gen * (gen + 1)) / 2);
            }
            barrier.shutdown();
        });
    }

    #[test]
    fn epoch_barrier_zero_spin_makes_progress() {
        let barrier = EpochBarrier::with_spin(2, 0);
        let mut counts = [0u64; 2];
        let counts_ptr = counts.as_mut_ptr() as usize;
        std::thread::scope(|scope| {
            let b = &barrier;
            let handles: Vec<_> = (0..2)
                .map(|idx| {
                    scope.spawn(move || {
                        let counts = counts_ptr as *mut u64;
                        let mut last = 0;
                        while let Some(g) = b.wait_open(last) {
                            last = g;
                            // SAFETY: disjoint cells, coordinator
                            // blocked in wait_done(g).
                            unsafe { *counts.add(idx) += 1 };
                            b.finish(idx, g);
                        }
                    })
                })
                .collect();
            for h in &handles {
                barrier.register_worker(h.thread().clone());
            }
            for gen in 1..=200u64 {
                barrier.open(gen);
                barrier.wait_done(gen);
            }
            barrier.shutdown();
        });
        assert_eq!(counts, [200, 200]);
    }

    #[test]
    fn epoch_barrier_shutdown_unblocks_all_workers() {
        let barrier = EpochBarrier::new(3);
        std::thread::scope(|scope| {
            let b = &barrier;
            let handles: Vec<_> = (0..3)
                .map(|_| scope.spawn(move || b.wait_open(0)))
                .collect();
            for h in &handles {
                barrier.register_worker(h.thread().clone());
            }
            barrier.shutdown();
            for h in handles {
                assert_eq!(h.join().expect("worker"), None);
            }
        });
    }

    #[test]
    fn epoch_barrier_poison_fails_the_wait() {
        let barrier = EpochBarrier::new(2);
        barrier.poison();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            barrier.open(1);
            barrier.wait_done(1);
        }));
        assert!(r.is_err(), "wait_done must panic on a dead worker");
    }

    #[test]
    fn generation_numbering_survives_long_runs() {
        // Generations are strictly increasing and need not be dense
        // (the kernel skips main-only cycles without opening one); the
        // worker must track arbitrary jumps over a long run, and batch
        // lengths must arrive with their own generation, never a stale
        // one.
        let barrier = DomainBarrier::new();
        let mut seen: Vec<(u64, u64)> = Vec::new();
        std::thread::scope(|scope| {
            let b = &barrier;
            let seen_ptr = &mut seen as *mut Vec<(u64, u64)> as usize;
            let worker = scope.spawn(move || {
                let seen = seen_ptr as *mut Vec<(u64, u64)>;
                let mut last = 0;
                while let Some((g, n)) = b.wait_open(last) {
                    last = g;
                    // SAFETY: coordinator is blocked in wait_done(g).
                    unsafe { (*seen).push((g, n)) };
                    b.finish(g);
                }
            });
            barrier.register_worker(worker.thread().clone());
            let mut gen = 0u64;
            for i in 1..=50_000u64 {
                // Sparse generations: jump by 1..=7, batch tied to gen.
                gen += 1 + (i % 7);
                barrier.open(gen, gen % 13 + 1);
                barrier.wait_done(gen);
            }
            barrier.shutdown();
        });
        assert_eq!(seen.len(), 50_000);
        let mut prev = 0;
        for &(g, n) in &seen {
            assert!(g > prev, "generations must be strictly increasing");
            assert_eq!(n, g % 13 + 1, "batch length detached from its gen");
            prev = g;
        }
    }
}
