//! Expansion of coarse firmware operations into register-level
//! instructions with dependences.
//!
//! The cycle simulator records what the firmware *did* (ALU batches,
//! loads, stores, RMWs, branches). For the ILP study those operations
//! must become MIPS-like instructions with register dependences. The
//! expansion uses a rotating virtual register allocator and a
//! deterministic LCG to reproduce the statistical structure of the real
//! handlers: address-generation chains feeding memory operations,
//! load-use dependences on about half the loads (§6.1: "50% of all loads
//! in this firmware cause load-to-use dependences"), and branch
//! conditions computed shortly before the branch.

/// A coarse firmware operation, as recorded by the core model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// `n` ALU instructions.
    Alu(u32),
    /// A load.
    Load,
    /// A store.
    Store,
    /// An atomic read-modify-write (timed like a load).
    Rmw,
    /// A branch; `mispredict` is the static predictor's outcome (used
    /// only for reporting, not by the idealized models).
    Branch {
        /// Whether the static predictor missed.
        mispredict: bool,
    },
}

/// Instruction class, for the pipeline models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstKind {
    /// Single-cycle integer operation.
    Alu,
    /// Memory read (result available late in the stalls model).
    Load,
    /// Memory write.
    Store,
    /// Conditional branch.
    Branch,
}

/// One register-level instruction of the expanded trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inst {
    /// Instruction class.
    pub kind: InstKind,
    /// Destination register (`None` for stores and branches).
    pub dst: Option<u8>,
    /// Source registers (up to two).
    pub srcs: [Option<u8>; 2],
}

/// Deterministic LCG so expansion is reproducible.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u32 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as u32
    }

    fn chance(&mut self, percent: u32) -> bool {
        self.next() % 100 < percent
    }
}

/// Rotating register allocator over the MIPS integer register file.
///
/// Registers 25–28 are long-lived base registers (ring bases, structure
/// pointers): real NIC firmware addresses most of its loads and stores
/// off such stable bases, which is what lets out-of-order issue overlap
/// memory latency.
struct RegAlloc {
    next: u8,
    /// Recently written registers, most recent last.
    recent: Vec<u8>,
}

const BASES: [u8; 4] = [25, 26, 27, 28];

impl RegAlloc {
    fn new() -> RegAlloc {
        RegAlloc {
            next: 1,
            recent: vec![1, 2, 3],
        }
    }

    fn fresh(&mut self) -> u8 {
        let r = self.next;
        self.next = if self.next >= 24 { 1 } else { self.next + 1 };
        self.recent.push(r);
        if self.recent.len() > 8 {
            self.recent.remove(0);
        }
        r
    }

    /// A recently-produced register (depth 1 = the most recent).
    fn recent(&self, depth: usize) -> u8 {
        let n = self.recent.len();
        self.recent[n.saturating_sub(depth.min(n))]
    }
}

/// Expand a coarse trace into register-level instructions.
///
/// # Example
///
/// ```
/// use nicsim_ilp::{expand, TraceOp};
///
/// let insts = expand(&[TraceOp::Alu(2), TraceOp::Load, TraceOp::Branch { mispredict: false }]);
/// assert_eq!(insts.len(), 4);
/// ```
pub fn expand(ops: &[TraceOp]) -> Vec<Inst> {
    let mut out = Vec::new();
    let mut regs = RegAlloc::new();
    let mut rng = Lcg(0x9e3779b97f4a7c15);
    // Register holding the result of the previous load, if the next
    // instruction should consume it (load-use chain).
    let mut pending_load_use: Option<u8> = None;
    for op in ops {
        let forced_src = pending_load_use.take();
        match op {
            TraceOp::Alu(n) => {
                for _ in 0..*n {
                    // Unforced sources skip the most recent producer so
                    // the load-use fraction is governed by the explicit
                    // 50% chain below.
                    let s0 =
                        forced_src.unwrap_or_else(|| regs.recent(2 + (rng.next() % 3) as usize));
                    let s1 = if rng.chance(45) {
                        Some(regs.recent(2 + (rng.next() % 4) as usize))
                    } else {
                        None
                    };
                    let d = regs.fresh();
                    out.push(Inst {
                        kind: InstKind::Alu,
                        dst: Some(d),
                        srcs: [Some(s0), s1],
                    });
                }
            }
            TraceOp::Load | TraceOp::Rmw => {
                // Most addresses index off a long-lived base register;
                // the rest chain off a recent producer (pointer chase).
                let addr = forced_src.unwrap_or_else(|| {
                    if rng.chance(85) {
                        BASES[(rng.next() % 4) as usize]
                    } else {
                        regs.recent(1 + (rng.next() % 4) as usize)
                    }
                });
                let d = regs.fresh();
                out.push(Inst {
                    kind: InstKind::Load,
                    dst: Some(d),
                    srcs: [Some(addr), None],
                });
                // ~50% of loads feed the very next instruction.
                if rng.chance(50) {
                    pending_load_use = Some(d);
                }
            }
            TraceOp::Store => {
                let addr = if rng.chance(85) {
                    BASES[(rng.next() % 4) as usize]
                } else {
                    regs.recent(2 + (rng.next() % 4) as usize)
                };
                let data = forced_src.unwrap_or_else(|| regs.recent(1));
                out.push(Inst {
                    kind: InstKind::Store,
                    dst: None,
                    srcs: [Some(addr), Some(data)],
                });
            }
            TraceOp::Branch { .. } => {
                // Condition computed from a recent register.
                let cond = forced_src.unwrap_or_else(|| regs.recent(1 + (rng.next() % 2) as usize));
                out.push(Inst {
                    kind: InstKind::Branch,
                    dst: None,
                    srcs: [Some(cond), None],
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_counts_match() {
        let insts = expand(&[
            TraceOp::Alu(5),
            TraceOp::Load,
            TraceOp::Store,
            TraceOp::Rmw,
            TraceOp::Branch { mispredict: true },
        ]);
        assert_eq!(insts.len(), 9);
        assert_eq!(insts.iter().filter(|i| i.kind == InstKind::Load).count(), 2);
        assert_eq!(
            insts.iter().filter(|i| i.kind == InstKind::Store).count(),
            1
        );
        assert_eq!(
            insts.iter().filter(|i| i.kind == InstKind::Branch).count(),
            1
        );
    }

    #[test]
    fn expansion_is_deterministic() {
        let ops = [
            TraceOp::Alu(10),
            TraceOp::Load,
            TraceOp::Branch { mispredict: false },
        ];
        assert_eq!(expand(&ops), expand(&ops));
    }

    #[test]
    fn loads_feed_consumers_about_half_the_time() {
        let ops: Vec<TraceOp> = (0..2000)
            .flat_map(|_| [TraceOp::Load, TraceOp::Alu(1)])
            .collect();
        let insts = expand(&ops);
        // Count ALU instructions whose first source is the immediately
        // preceding load's destination.
        let mut uses = 0;
        let mut loads = 0;
        for w in insts.windows(2) {
            if w[0].kind == InstKind::Load {
                loads += 1;
                if w[1].srcs[0] == w[0].dst {
                    uses += 1;
                }
            }
        }
        let frac = uses as f64 / loads as f64;
        assert!(
            (0.4..=0.6).contains(&frac),
            "load-use fraction {frac} should be near the paper's 50%"
        );
    }

    #[test]
    fn stores_and_branches_have_no_destination() {
        let insts = expand(&[TraceOp::Store, TraceOp::Branch { mispredict: false }]);
        assert!(insts.iter().all(|i| i.dst.is_none()));
    }
}
