//! Offline ILP-limit analysis of NIC firmware (paper §2.2, Table 2).
//!
//! The paper derives theoretical peak IPCs from a dynamic instruction
//! trace of idealized firmware under combinations of:
//!
//! * in-order vs. out-of-order issue, widths 1/2/4;
//! * a perfect pipeline (single-cycle completion) vs. a five-stage
//!   pipeline with dependence stalls (load-use takes an extra cycle, one
//!   memory operation per cycle);
//! * perfect branch prediction (PBP — any number of branches per cycle),
//!   a single perfectly-predicted branch per cycle (PBP1), and no branch
//!   prediction (a branch stops further issue until the next cycle).
//!
//! The conclusion — that a simple single-issue in-order core captures
//! most of the available ILP, so the complexity of wide/out-of-order
//! issue is better spent on more cores — motivates the architecture.
//!
//! This crate expands a coarse operation trace of the running firmware
//! into register-level instructions with realistic dependence chains
//! ([`expand`]) and computes the idealized IPC for each processor
//! configuration ([`analyze`]).

pub mod analyze;
pub mod expand;

pub use analyze::{analyze, BranchModel, IssueOrder, PipelineModel, ProcessorConfig};
pub use expand::{expand, Inst, InstKind, TraceOp};
