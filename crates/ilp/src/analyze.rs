//! The idealized IPC computation for Table 2.
//!
//! For each processor configuration the analyzer schedules the expanded
//! trace onto an infinite machine with only the configured constraints
//! active:
//!
//! * **issue width** — at most `width` instructions begin per cycle;
//! * **issue order** — in-order machines cannot issue instruction *i+1*
//!   before instruction *i*'s issue cycle; out-of-order machines issue
//!   any instruction whose operands are ready (infinite window);
//! * **pipeline** — `Perfect` completes everything in one cycle (the
//!   only limit is that dependent instructions cannot issue in the same
//!   cycle); `Stalls` models the five-stage pipeline with full
//!   forwarding: a load's consumer must wait one extra cycle, and only
//!   one memory operation can issue per cycle;
//! * **branch prediction** — `Perfect` (any number of correct branches
//!   per cycle), `Pbp1` (one perfectly-predicted branch per cycle), or
//!   `None` (a branch stops all further issue until the next cycle).

use crate::expand::{Inst, InstKind};

/// In-order or out-of-order issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueOrder {
    /// Instructions issue in program order.
    InOrder,
    /// Any ready instruction may issue (infinite window).
    OutOfOrder,
}

/// Pipeline model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineModel {
    /// All instructions complete in a single cycle.
    Perfect,
    /// Five-stage pipeline with forwarding: load-use stalls one cycle;
    /// one memory operation per cycle.
    Stalls,
}

/// Branch prediction model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchModel {
    /// Unlimited correctly-predicted branches per cycle.
    Perfect,
    /// A single correctly-predicted branch per cycle.
    Pbp1,
    /// No prediction: nothing after a branch (in program order) issues
    /// until the next cycle (the paper's definition: "a branch stops any
    /// further instructions from issuing until the next cycle").
    None,
}

/// One processor configuration of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessorConfig {
    /// Issue order.
    pub order: IssueOrder,
    /// Issue width.
    pub width: u32,
    /// Pipeline model.
    pub pipeline: PipelineModel,
    /// Branch model.
    pub branches: BranchModel,
}

#[derive(Default, Clone, Copy)]
struct CycleState {
    issued: u32,
    mem_issued: u32,
    branches: u32,
    branch_blocked: bool,
}

/// Compute the theoretical IPC of `trace` under `cfg`.
///
/// Returns 0.0 for an empty trace.
pub fn analyze(trace: &[Inst], cfg: ProcessorConfig) -> f64 {
    if trace.is_empty() {
        return 0.0;
    }
    // Register -> cycle at which its value becomes usable by a
    // dependent instruction's issue.
    let mut ready_at = [0u64; 32];
    // Per-cycle issue bookkeeping. The schedule only moves forward, so
    // a ring of recent cycles suffices for in-order; out-of-order can
    // schedule into the past relative to the scan point, so keep a map.
    let mut cycles: std::collections::HashMap<u64, CycleState> = std::collections::HashMap::new();
    let mut prev_issue = 0u64;
    let mut last_cycle = 0u64;
    // With no branch prediction, instructions after a branch cannot
    // issue before this cycle.
    let mut branch_fence = 0u64;
    // Saturation skip pointers (keep the scan amortized-linear): every
    // cycle below `width_full_below` has all issue slots taken; every
    // cycle below `mem_full_below` has its memory slot taken. Skipping
    // them is sound — such cycles can never accept the instruction.
    let mut width_full_below = 0u64;
    let mut mem_full_below = 0u64;

    for (idx, inst) in trace.iter().enumerate() {
        // Earliest cycle permitted by data dependences. The global rate
        // bound (at most `width` instructions per cycle, so instruction
        // i can never issue before cycle i/width) keeps the scan pinned
        // near the frontier.
        let mut earliest = branch_fence
            .max(width_full_below)
            .max(idx as u64 / cfg.width as u64);
        if cfg.pipeline == PipelineModel::Stalls
            && matches!(inst.kind, InstKind::Load | InstKind::Store)
        {
            earliest = earliest.max(mem_full_below);
        }
        for s in inst.srcs.into_iter().flatten() {
            earliest = earliest.max(ready_at[s as usize]);
        }
        if cfg.order == IssueOrder::InOrder {
            earliest = earliest.max(prev_issue);
        }
        // Find a cycle with a free slot satisfying structural rules.
        let mut c = earliest;
        loop {
            let st = cycles.entry(c).or_default();
            let width_ok = st.issued < cfg.width;
            let mem_ok = cfg.pipeline == PipelineModel::Perfect
                || inst.kind == InstKind::Alu
                || inst.kind == InstKind::Branch
                || st.mem_issued < 1;
            let branch_ok = match (cfg.branches, inst.kind) {
                (BranchModel::Perfect, _) => true,
                (BranchModel::Pbp1, InstKind::Branch) => st.branches < 1,
                (BranchModel::Pbp1, _) => true,
                (BranchModel::None, _) => !st.branch_blocked,
            };
            if width_ok && mem_ok && branch_ok {
                st.issued += 1;
                let issued_now = st.issued;
                let is_mem = matches!(inst.kind, InstKind::Load | InstKind::Store);
                if is_mem {
                    st.mem_issued += 1;
                }
                if inst.kind == InstKind::Branch {
                    st.branches += 1;
                    if cfg.branches == BranchModel::None {
                        st.branch_blocked = true;
                        branch_fence = c + 1;
                    }
                }
                // Advance the saturation skip pointers (amortized O(1)).
                if issued_now >= cfg.width {
                    while cycles
                        .get(&width_full_below)
                        .is_some_and(|s| s.issued >= cfg.width)
                    {
                        width_full_below += 1;
                    }
                }
                if is_mem {
                    while cycles
                        .get(&mem_full_below)
                        .is_some_and(|s| s.mem_issued >= 1)
                    {
                        mem_full_below += 1;
                    }
                }
                break;
            }
            c += 1;
        }
        // Producer latency.
        if let Some(d) = inst.dst {
            let lat = match (cfg.pipeline, inst.kind) {
                (PipelineModel::Stalls, InstKind::Load) => 2,
                _ => 1,
            };
            ready_at[d as usize] = c + lat;
        }
        prev_issue = c;
        last_cycle = last_cycle.max(c);
    }
    trace.len() as f64 / (last_cycle + 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::{expand, TraceOp};

    fn cfg(order: IssueOrder, width: u32, pipe: PipelineModel, bp: BranchModel) -> ProcessorConfig {
        ProcessorConfig {
            order,
            width,
            pipeline: pipe,
            branches: bp,
        }
    }

    fn firmware_like_trace() -> Vec<Inst> {
        // Mimics the firmware mix: ~1/3 memory operations, frequent
        // load-use chains, a branch roughly every seven instructions.
        let mut ops = Vec::new();
        for i in 0..800u32 {
            ops.push(TraceOp::Load);
            ops.push(TraceOp::Alu(1));
            ops.push(TraceOp::Load);
            ops.push(TraceOp::Alu(1 + i % 2));
            ops.push(TraceOp::Branch {
                mispredict: i % 3 == 0,
            });
            ops.push(TraceOp::Store);
        }
        expand(&ops)
    }

    #[test]
    fn single_issue_in_order_cannot_exceed_one() {
        let t = firmware_like_trace();
        let ipc = analyze(
            &t,
            cfg(
                IssueOrder::InOrder,
                1,
                PipelineModel::Perfect,
                BranchModel::Perfect,
            ),
        );
        assert!(ipc <= 1.0 + 1e-9);
        assert!(ipc > 0.5);
    }

    #[test]
    fn width_never_hurts() {
        let t = firmware_like_trace();
        for order in [IssueOrder::InOrder, IssueOrder::OutOfOrder] {
            let mut prev = 0.0;
            for w in [1, 2, 4] {
                let ipc = analyze(&t, cfg(order, w, PipelineModel::Stalls, BranchModel::Pbp1));
                assert!(ipc + 1e-9 >= prev, "width {w} regressed: {ipc} < {prev}");
                prev = ipc;
            }
        }
    }

    #[test]
    fn out_of_order_at_least_in_order() {
        let t = firmware_like_trace();
        for w in [1, 2, 4] {
            for pipe in [PipelineModel::Perfect, PipelineModel::Stalls] {
                for bp in [BranchModel::Perfect, BranchModel::Pbp1, BranchModel::None] {
                    let io = analyze(&t, cfg(IssueOrder::InOrder, w, pipe, bp));
                    let ooo = analyze(&t, cfg(IssueOrder::OutOfOrder, w, pipe, bp));
                    assert!(ooo + 1e-9 >= io, "w={w} {pipe:?} {bp:?}: {ooo} < {io}");
                }
            }
        }
    }

    #[test]
    fn stalls_reduce_ipc() {
        let t = firmware_like_trace();
        let perfect = analyze(
            &t,
            cfg(
                IssueOrder::InOrder,
                2,
                PipelineModel::Perfect,
                BranchModel::Perfect,
            ),
        );
        let stalls = analyze(
            &t,
            cfg(
                IssueOrder::InOrder,
                2,
                PipelineModel::Stalls,
                BranchModel::Perfect,
            ),
        );
        assert!(stalls < perfect);
    }

    #[test]
    fn branch_models_order_correctly() {
        let t = firmware_like_trace();
        let perfect = analyze(
            &t,
            cfg(
                IssueOrder::OutOfOrder,
                4,
                PipelineModel::Stalls,
                BranchModel::Perfect,
            ),
        );
        let pbp1 = analyze(
            &t,
            cfg(
                IssueOrder::OutOfOrder,
                4,
                PipelineModel::Stalls,
                BranchModel::Pbp1,
            ),
        );
        let none = analyze(
            &t,
            cfg(
                IssueOrder::OutOfOrder,
                4,
                PipelineModel::Stalls,
                BranchModel::None,
            ),
        );
        // Greedy program-order list scheduling is within a small
        // tolerance of monotone across branch models.
        assert!(perfect * 1.03 >= pbp1, "{perfect} vs {pbp1}");
        assert!(pbp1 * 1.03 >= none, "{pbp1} vs {none}");
    }

    #[test]
    fn paper_trend_in_order_prefers_hazard_removal() {
        // "For an in-order processor, it is more important to eliminate
        // pipeline hazards than to predict branches."
        let t = firmware_like_trace();
        let fix_pipe = analyze(
            &t,
            cfg(
                IssueOrder::InOrder,
                4,
                PipelineModel::Perfect,
                BranchModel::None,
            ),
        );
        let fix_bp = analyze(
            &t,
            cfg(
                IssueOrder::InOrder,
                4,
                PipelineModel::Stalls,
                BranchModel::Perfect,
            ),
        );
        assert!(
            fix_pipe > fix_bp,
            "perfect pipeline ({fix_pipe:.2}) should beat perfect BP ({fix_bp:.2}) in order"
        );
    }

    #[test]
    fn paper_trend_branch_prediction_matters_more_out_of_order() {
        // "Conversely, for an out-of-order processor, it is more
        // important to accurately predict branches" — branch prediction
        // buys an out-of-order machine more than it buys an in-order
        // machine (which hides little behind a branch anyway).
        let t = firmware_like_trace();
        let gain = |order| {
            analyze(
                &t,
                cfg(order, 4, PipelineModel::Stalls, BranchModel::Perfect),
            ) - analyze(&t, cfg(order, 4, PipelineModel::Stalls, BranchModel::None))
        };
        let ooo = gain(IssueOrder::OutOfOrder);
        let io = gain(IssueOrder::InOrder);
        assert!(
            ooo > io,
            "BP gain out-of-order ({ooo:.2}) should exceed in-order ({io:.2})"
        );
    }

    #[test]
    fn empty_trace_is_zero() {
        assert_eq!(
            analyze(
                &[],
                cfg(
                    IssueOrder::InOrder,
                    1,
                    PipelineModel::Perfect,
                    BranchModel::Perfect
                )
            ),
            0.0
        );
    }

    #[test]
    fn serial_dependence_chain_caps_ipc_at_one() {
        // A pure chain: each ALU reads the previous result.
        let insts: Vec<Inst> = (0..100)
            .map(|i| Inst {
                kind: InstKind::Alu,
                dst: Some((i % 30 + 1) as u8),
                srcs: [Some(((i + 29) % 30 + 1) as u8), None],
            })
            .collect();
        let ipc = analyze(
            &insts,
            cfg(
                IssueOrder::OutOfOrder,
                4,
                PipelineModel::Perfect,
                BranchModel::Perfect,
            ),
        );
        assert!((ipc - 1.0).abs() < 0.05, "chain IPC {ipc}");
    }
}
