//! Per-frame latency tracking: joins lifecycle events on the frame
//! sequence number and reports stage-by-stage breakdowns.
//!
//! sPIN/PsPIN-style time-in-NIC accounting: for every transmitted frame
//! the tracker records host post -> ring fetch -> first bit on the wire
//! -> last bit; for every received frame, wire arrival -> descriptor
//! publish -> driver delivery. [`FrameTracker::summary`] reduces the
//! timelines to per-stage count/mean/p50/p99/max over the measurement
//! window.

use crate::{Event, Probe};
use nicsim_sim::Ps;
use std::collections::HashMap;

/// Timeline of one transmitted frame.
#[derive(Debug, Clone, Copy, Default)]
pub struct TxFrameRecord {
    /// Driver wrote the buffer descriptors (host enqueue).
    pub posted: Option<Ps>,
    /// MAC TX consumed the ring entry and issued the frame-memory read.
    pub fetched: Option<Ps>,
    /// First bit on the wire.
    pub wire_start: Option<Ps>,
    /// Last bit on the wire.
    pub wire_done: Option<Ps>,
}

impl TxFrameRecord {
    /// Stage timestamps in lifecycle order, with stable labels.
    pub fn stages(&self) -> [(&'static str, Option<Ps>); 4] {
        [
            ("posted", self.posted),
            ("fetched", self.fetched),
            ("wire_start", self.wire_start),
            ("wire_done", self.wire_done),
        ]
    }
}

/// Timeline of one received frame.
#[derive(Debug, Clone, Copy, Default)]
pub struct RxFrameRecord {
    /// Frame arrived from the wire (accepted, not dropped).
    pub arrival: Option<Ps>,
    /// MAC RX published the receive descriptor.
    pub desc: Option<Ps>,
    /// Driver validated and delivered the frame.
    pub delivered: Option<Ps>,
}

impl RxFrameRecord {
    /// Stage timestamps in lifecycle order, with stable labels.
    pub fn stages(&self) -> [(&'static str, Option<Ps>); 3] {
        [
            ("arrival", self.arrival),
            ("desc", self.desc),
            ("delivered", self.delivered),
        ]
    }
}

/// Latency distribution of one lifecycle stage.
#[derive(Debug, Clone, Copy)]
pub struct StageStats {
    /// Stable stage label.
    pub name: &'static str,
    /// Completed frames measured.
    pub count: u64,
    /// Mean latency.
    pub mean_ps: f64,
    /// Median (nearest-rank).
    pub p50_ps: u64,
    /// 99th percentile (nearest-rank).
    pub p99_ps: u64,
    /// Maximum.
    pub max_ps: u64,
}

/// Stage breakdown over the measurement window.
#[derive(Debug, Clone, Default)]
pub struct LatencySummary {
    /// TX frames with a complete timeline inside the window.
    pub tx_frames: u64,
    /// RX frames with a complete timeline inside the window.
    pub rx_frames: u64,
    /// TX stage distributions (`post_to_fetch`, `fetch_to_wire`, `wire`,
    /// `total`).
    pub tx_stages: Vec<StageStats>,
    /// RX stage distributions (`arrival_to_desc`, `desc_to_deliver`,
    /// `total`).
    pub rx_stages: Vec<StageStats>,
}

/// The per-frame latency tracker sink.
///
/// Keeps every frame timeline since construction; [`Event::WindowReset`]
/// does not discard them, it only marks the window start so
/// [`FrameTracker::summary`] can restrict itself to frames that completed
/// inside the measurement window.
#[derive(Debug, Clone, Default)]
pub struct FrameTracker {
    tx: HashMap<u32, TxFrameRecord>,
    rx: HashMap<u32, RxFrameRecord>,
    window_start: Ps,
}

impl FrameTracker {
    /// An empty tracker.
    pub fn new() -> FrameTracker {
        FrameTracker::default()
    }

    /// All TX frame timelines, keyed by sequence number.
    pub fn tx_records(&self) -> &HashMap<u32, TxFrameRecord> {
        &self.tx
    }

    /// All RX frame timelines, keyed by sequence number.
    pub fn rx_records(&self) -> &HashMap<u32, RxFrameRecord> {
        &self.rx
    }

    /// Start of the measurement window (last [`Event::WindowReset`]).
    pub fn window_start(&self) -> Ps {
        self.window_start
    }

    /// Lifecycle-invariant violations across every recorded frame:
    /// timestamps out of lifecycle order, or a stage reached without all
    /// earlier stages (an orphaned done-without-start). Frames still in
    /// flight — a timeline that is a prefix of the full lifecycle — are
    /// legal. Returns human-readable descriptions; empty means clean.
    pub fn violations(&self) -> Vec<String> {
        fn check(out: &mut Vec<String>, path: &str, seq: u32, stages: &[(&str, Option<Ps>)]) {
            let mut last: Option<(&str, Ps)> = None;
            let mut missing: Option<&str> = None;
            for (name, t) in stages {
                match t {
                    Some(t) => {
                        if let Some(gap) = missing {
                            out.push(format!(
                                "{path} frame {seq}: reached `{name}` without `{gap}`"
                            ));
                        }
                        if let Some((prev, pt)) = last {
                            if *t <= pt {
                                out.push(format!(
                                    "{path} frame {seq}: `{name}` at {t:?} not after `{prev}` at {pt:?}"
                                ));
                            }
                        }
                        last = Some((name, *t));
                    }
                    None => missing = missing.or(Some(name)),
                }
            }
        }
        let mut out = Vec::new();
        for (seq, r) in &self.tx {
            check(&mut out, "tx", *seq, &r.stages());
        }
        for (seq, r) in &self.rx {
            check(&mut out, "rx", *seq, &r.stages());
        }
        out.sort();
        out
    }

    /// Reduce the timelines to per-stage distributions over frames that
    /// completed at or after the window start.
    pub fn summary(&self) -> LatencySummary {
        let w = self.window_start;
        let mut tx_deltas: [Vec<u64>; 4] = Default::default();
        for r in self.tx.values() {
            let (Some(p), Some(f), Some(ws), Some(wd)) =
                (r.posted, r.fetched, r.wire_start, r.wire_done)
            else {
                continue;
            };
            if wd < w {
                continue;
            }
            if f < p || ws < f || wd < ws {
                // A non-monotonic timeline: a retransmission re-posted
                // the sequence after an earlier attempt's later stages
                // were stamped (or a NIC reset spliced two incarnations'
                // records). Not a completed lifecycle — skip it.
                continue;
            }
            tx_deltas[0].push((f - p).0);
            tx_deltas[1].push((ws - f).0);
            tx_deltas[2].push((wd - ws).0);
            tx_deltas[3].push((wd - p).0);
        }
        let mut rx_deltas: [Vec<u64>; 3] = Default::default();
        for r in self.rx.values() {
            let (Some(a), Some(d), Some(dl)) = (r.arrival, r.desc, r.delivered) else {
                continue;
            };
            if dl < w {
                continue;
            }
            if d < a || dl < d {
                // Non-monotonic (a duplicate delivery's re-stamped
                // arrival) — not a completed lifecycle.
                continue;
            }
            rx_deltas[0].push((d - a).0);
            rx_deltas[1].push((dl - d).0);
            rx_deltas[2].push((dl - a).0);
        }
        const TX_NAMES: [&str; 4] = ["post_to_fetch", "fetch_to_wire", "wire", "total"];
        const RX_NAMES: [&str; 3] = ["arrival_to_desc", "desc_to_deliver", "total"];
        LatencySummary {
            tx_frames: tx_deltas[3].len() as u64,
            rx_frames: rx_deltas[2].len() as u64,
            tx_stages: TX_NAMES
                .iter()
                .zip(tx_deltas.iter_mut())
                .map(|(n, d)| stage_stats(n, d))
                .collect(),
            rx_stages: RX_NAMES
                .iter()
                .zip(rx_deltas.iter_mut())
                .map(|(n, d)| stage_stats(n, d))
                .collect(),
        }
    }

    /// Fold another tracker's records into this one — the fleet path to
    /// cross-NIC percentiles: each NIC keeps its own tracker during the
    /// run, and the merged tracker's [`FrameTracker::summary`] weighs
    /// every frame individually, exactly as if one tracker had observed
    /// the whole fleet (asserted by `merge_matches_combined_tracker`).
    ///
    /// Sequence keys must not collide across trackers (fleet sequence
    /// numbers are namespaced per source NIC, so they never do); if a
    /// key does appear in both, the records are joined field-by-field
    /// with `other` filling this tracker's gaps — the TX half observed
    /// at the source and the RX half at the destination combine into
    /// one frame's view.
    ///
    /// The later window start wins, so merged summaries use the same
    /// measurement boundary as the per-NIC ones.
    pub fn merge(&mut self, other: &FrameTracker) {
        for (seq, r) in &other.tx {
            let mine = self.tx.entry(*seq).or_default();
            mine.posted = mine.posted.or(r.posted);
            mine.fetched = mine.fetched.or(r.fetched);
            mine.wire_start = mine.wire_start.or(r.wire_start);
            mine.wire_done = mine.wire_done.or(r.wire_done);
        }
        for (seq, r) in &other.rx {
            let mine = self.rx.entry(*seq).or_default();
            mine.arrival = mine.arrival.or(r.arrival);
            mine.desc = mine.desc.or(r.desc);
            mine.delivered = mine.delivered.or(r.delivered);
        }
        self.window_start = self.window_start.max(other.window_start);
    }
}

/// Nearest-rank percentile over a sorted slice.
fn percentile(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as u64 * pct / 100) as usize]
}

fn stage_stats(name: &'static str, deltas: &mut [u64]) -> StageStats {
    deltas.sort_unstable();
    let count = deltas.len() as u64;
    StageStats {
        name,
        count,
        mean_ps: if count == 0 {
            0.0
        } else {
            deltas.iter().sum::<u64>() as f64 / count as f64
        },
        p50_ps: percentile(deltas, 50),
        p99_ps: percentile(deltas, 99),
        max_ps: deltas.last().copied().unwrap_or(0),
    }
}

impl Probe for FrameTracker {
    fn emit(&mut self, ev: Event) {
        match ev {
            Event::HostTxPost { seq, at } => {
                self.tx.entry(seq).or_default().posted = Some(at);
            }
            Event::MacTxFetch { seq, at } => {
                self.tx.entry(seq).or_default().fetched = Some(at);
            }
            Event::MacTxWireStart { seq, at } => {
                self.tx.entry(seq).or_default().wire_start = Some(at);
            }
            Event::MacTxWireDone { seq, at } => {
                self.tx.entry(seq).or_default().wire_done = Some(at);
            }
            Event::MacRxArrival {
                seq,
                dropped: false,
                at,
                ..
            } => {
                self.rx.entry(seq).or_default().arrival = Some(at);
            }
            Event::MacRxDescPublish { seq, at } => {
                self.rx.entry(seq).or_default().desc = Some(at);
            }
            Event::HostRxDeliver { seq, at, .. } => {
                self.rx.entry(seq).or_default().delivered = Some(at);
            }
            Event::WindowReset { at } => self.window_start = at,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx_frame(t: &mut FrameTracker, seq: u32, base: u64) {
        t.emit(Event::HostTxPost { seq, at: Ps(base) });
        t.emit(Event::MacTxFetch {
            seq,
            at: Ps(base + 100),
        });
        t.emit(Event::MacTxWireStart {
            seq,
            at: Ps(base + 250),
        });
        t.emit(Event::MacTxWireDone {
            seq,
            at: Ps(base + 1250),
        });
    }

    #[test]
    fn tracks_tx_stage_breakdown() {
        let mut t = FrameTracker::new();
        for seq in 0..10 {
            tx_frame(&mut t, seq, 10_000 * seq as u64);
        }
        let s = t.summary();
        assert_eq!(s.tx_frames, 10);
        assert_eq!(s.tx_stages[0].name, "post_to_fetch");
        assert_eq!(s.tx_stages[0].p50_ps, 100);
        assert_eq!(s.tx_stages[3].name, "total");
        assert_eq!(s.tx_stages[3].p50_ps, 1250);
        assert_eq!(s.tx_stages[3].p99_ps, 1250);
    }

    #[test]
    fn window_reset_excludes_warmup_frames() {
        let mut t = FrameTracker::new();
        tx_frame(&mut t, 0, 0);
        t.emit(Event::WindowReset { at: Ps(5_000) });
        tx_frame(&mut t, 1, 10_000);
        let s = t.summary();
        assert_eq!(s.tx_frames, 1, "warm-up frame excluded");
    }

    #[test]
    fn rx_path_and_drops() {
        let mut t = FrameTracker::new();
        t.emit(Event::MacRxArrival {
            seq: 7,
            len: 1514,
            dropped: false,
            at: Ps(100),
        });
        t.emit(Event::MacRxArrival {
            seq: 8,
            len: 1514,
            dropped: true,
            at: Ps(150),
        });
        t.emit(Event::MacRxDescPublish {
            seq: 7,
            at: Ps(900),
        });
        t.emit(Event::HostRxDeliver {
            seq: 7,
            udp_payload: 1472,
            at: Ps(4000),
        });
        let s = t.summary();
        assert_eq!(s.rx_frames, 1);
        assert_eq!(s.rx_stages[0].p50_ps, 800);
        assert_eq!(s.rx_stages[2].max_ps, 3900);
        assert!(t.violations().is_empty());
    }

    #[test]
    fn violations_catch_orphans_and_misordering() {
        let mut t = FrameTracker::new();
        // Orphan: wire done without fetch/start.
        t.emit(Event::HostTxPost { seq: 1, at: Ps(10) });
        t.emit(Event::MacTxWireDone { seq: 1, at: Ps(20) });
        let v = t.violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("without"));

        // Misordered timestamps.
        let mut t = FrameTracker::new();
        t.emit(Event::MacRxArrival {
            seq: 2,
            len: 60,
            dropped: false,
            at: Ps(500),
        });
        t.emit(Event::MacRxDescPublish {
            seq: 2,
            at: Ps(400),
        });
        assert_eq!(t.violations().len(), 1);
    }

    #[test]
    fn in_flight_prefix_is_legal() {
        let mut t = FrameTracker::new();
        t.emit(Event::HostTxPost { seq: 3, at: Ps(10) });
        t.emit(Event::MacTxFetch { seq: 3, at: Ps(60) });
        assert!(t.violations().is_empty());
        assert_eq!(t.summary().tx_frames, 0, "incomplete frames not counted");
    }

    #[test]
    fn merge_matches_combined_tracker() {
        // Three "NICs" with namespaced sequences and very different
        // latency scales, so the fleet percentiles genuinely depend on
        // every tracker's weight.
        let mut combined = FrameTracker::new();
        let mut parts: Vec<FrameTracker> = (0..3).map(|_| FrameTracker::new()).collect();
        for nic in 0..3u32 {
            for n in 0..(10 + nic * 7) {
                let seq = (nic << 24) | n;
                let base = (nic as u64 + 1) * 1000 * n as u64;
                tx_frame(&mut parts[nic as usize], seq, base);
                tx_frame(&mut combined, seq, base);
                // RX half observed on a different tracker than TX, as
                // in a fleet (source tracks TX, destination tracks RX).
                let rx_on = ((nic + 1) % 3) as usize;
                for t in [&mut parts[rx_on], &mut combined] {
                    t.emit(Event::MacRxArrival {
                        seq,
                        len: 1514,
                        dropped: false,
                        at: Ps(base + 2000),
                    });
                    t.emit(Event::MacRxDescPublish {
                        seq,
                        at: Ps(base + 2000 + 300 * (nic as u64 + 1)),
                    });
                    t.emit(Event::HostRxDeliver {
                        seq,
                        udp_payload: 1472,
                        at: Ps(base + 4000 + 500 * (nic as u64 + 1)),
                    });
                }
            }
        }
        let mut merged = FrameTracker::new();
        for p in &parts {
            merged.merge(p);
        }
        let (a, b) = (merged.summary(), combined.summary());
        assert_eq!(a.tx_frames, b.tx_frames);
        assert_eq!(a.rx_frames, b.rx_frames);
        for (x, y) in a.tx_stages.iter().zip(&b.tx_stages) {
            assert_eq!(x.count, y.count);
            assert_eq!(x.mean_ps, y.mean_ps);
            assert_eq!(x.p50_ps, y.p50_ps);
            assert_eq!(x.p99_ps, y.p99_ps);
            assert_eq!(x.max_ps, y.max_ps);
        }
        for (x, y) in a.rx_stages.iter().zip(&b.rx_stages) {
            assert_eq!(x.count, y.count);
            assert_eq!(x.mean_ps, y.mean_ps);
            assert_eq!(x.p50_ps, y.p50_ps);
            assert_eq!(x.p99_ps, y.p99_ps);
            assert_eq!(x.max_ps, y.max_ps);
        }
        assert!(merged.violations().is_empty());
    }

    #[test]
    fn merge_takes_latest_window_start() {
        let mut a = FrameTracker::new();
        let mut b = FrameTracker::new();
        a.emit(Event::WindowReset { at: Ps(100) });
        b.emit(Event::WindowReset { at: Ps(300) });
        a.merge(&b);
        assert_eq!(a.window_start(), Ps(300));
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 100), 100);
        assert_eq!(percentile(&[], 50), 0);
    }
}
