//! # nicsim-obs — frame-lifecycle observability behind one Probe API
//!
//! The paper's evaluation (§4–5) hinges on per-component visibility:
//! stall buckets, scratchpad contention, assist utilization, frame
//! ordering. This crate turns those ad-hoc side channels into a single
//! redesigned instrumentation surface: every component exposes a
//! `*_probed` variant of its tick that emits typed [`Event`]s at each
//! frame-lifecycle edge, and anything that wants to observe a run
//! implements [`Probe`].
//!
//! ## The contract
//!
//! * **Monomorphized.** `Probe` is a generic bound, never a trait object.
//!   Every emission site is gated on the associated constant
//!   [`Probe::ENABLED`]:
//!
//!   ```ignore
//!   if P::ENABLED {
//!       probe.emit(Event::SpGrant { port, bank, addr, write, at: now });
//!   }
//!   ```
//!
//! * **Zero-cost when off.** [`NullProbe`] sets `ENABLED = false`, so the
//!   branch above is a compile-time constant and the whole arm — event
//!   construction included — folds away. The simulator with `NullProbe`
//!   compiles to the same hot loop as before the probe existed; `RunStats`
//!   is bit-identical (asserted by the kernel-equivalence suite) and
//!   wall-clock stays within noise (guarded by the simspeed benchmark).
//!
//! * **Timing-neutral when on.** Probes observe; they never feed back.
//!   An enabled probe must not change any simulation outcome, only record
//!   it. Emission sites may maintain small side queues (e.g. pending
//!   frame sequence numbers) to label events, but only under `P::ENABLED`
//!   and never in a way that alters component state machines.
//!
//! ## Sinks
//!
//! * [`FrameTracker`] — joins events on the frame sequence number into
//!   per-frame stage timelines and reports p50/p99 stage breakdowns.
//! * [`ChromeTrace`] — exports a Chrome `trace_event` JSON (one track per
//!   core, assist, and scratchpad bank) openable at <https://ui.perfetto.dev>.
//! * [`Metrics`] — counters and depth histograms (crossbar grants and
//!   retries per bank, I-cache hit rate, DMA/wire queue depths).
//! * [`EventLog`] — a bounded raw event capture for tests.
//! * `nicsim_mem::AccessTrace` — the Figure 3 coherence capture is itself
//!   a `Probe` sink over [`Event::SpGrant`].
//!
//! Compose sinks with tuples: `(ChromeTrace, (FrameTracker, Metrics))`
//! is a `Probe` that feeds all three.

pub mod chrome;
pub mod event;
pub mod frame;
pub mod metrics;

pub use chrome::ChromeTrace;
pub use event::{DmaDir, Event, FaultKind, FaultUnit, FmStream, RecoveryKind};
pub use frame::{FrameTracker, LatencySummary, StageStats};
pub use metrics::{DepthHistogram, Metrics};

/// An observer of frame-lifecycle [`Event`]s.
///
/// Implementations are monomorphized into the simulator; see the crate
/// docs for the zero-cost and timing-neutrality contract. `ENABLED`
/// defaults to `true` — only [`NullProbe`] turns it off.
pub trait Probe {
    /// Compile-time switch checked at every emission site. When `false`
    /// (the [`NullProbe`] default), event construction and emission fold
    /// away entirely.
    const ENABLED: bool = true;

    /// Receive one event. Events arrive in simulation order per
    /// component; events from different components within the same cycle
    /// arrive in the system's fixed component order.
    fn emit(&mut self, ev: Event);
}

/// The default probe: observes nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {
    const ENABLED: bool = false;

    #[inline(always)]
    fn emit(&mut self, _ev: Event) {}
}

/// Fan-out composition: a pair of probes is a probe.
impl<A: Probe, B: Probe> Probe for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline]
    fn emit(&mut self, ev: Event) {
        if A::ENABLED {
            self.0.emit(ev);
        }
        if B::ENABLED {
            self.1.emit(ev);
        }
    }
}

/// A bounded in-order capture of raw events, mainly for tests and
/// debugging.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<Event>,
    /// Stop recording beyond this many events (0 = unlimited).
    pub limit: usize,
}

impl EventLog {
    /// An unlimited log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// A log that stops recording after `limit` events.
    pub fn with_limit(limit: usize) -> EventLog {
        EventLog {
            events: Vec::new(),
            limit,
        }
    }

    /// The captured events, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drop all captured events (keeps the limit).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

impl Probe for EventLog {
    fn emit(&mut self, ev: Event) {
        if self.limit == 0 || self.events.len() < self.limit {
            self.events.push(ev);
        }
    }
}

/// A per-domain event buffer for the domain-parallel kernel: a probe
/// that records events locally on the emitting thread, to be drained
/// into the user's real probe at the next rendezvous.
///
/// The parallel kernel cannot hand both threads the user's probe (a
/// single sink would serialize exactly the work it splits), so the
/// worker thread emits into one of these and the coordinator replays
/// the buffer with [`EventBuffer::drain_into`] at the point of the
/// sequential kernel's emission order — after the core events of the
/// batch's cycles, before the host-driver phase. Buffered events stay
/// in emission order, so the replayed stream is byte-identical to a
/// sequential probed run.
#[derive(Debug, Clone, Default)]
pub struct EventBuffer {
    events: Vec<Event>,
}

impl EventBuffer {
    /// An empty buffer.
    pub fn new() -> EventBuffer {
        EventBuffer::default()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Replay every buffered event into `probe` in emission order and
    /// clear the buffer (capacity is kept: the parallel kernel drains
    /// once per rendezvous and reuses the allocation).
    pub fn drain_into<P: Probe>(&mut self, probe: &mut P) {
        for ev in self.events.drain(..) {
            probe.emit(ev);
        }
    }
}

impl Probe for EventBuffer {
    fn emit(&mut self, ev: Event) {
        self.events.push(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nicsim_sim::Ps;

    #[test]
    fn null_probe_is_disabled() {
        const { assert!(!NullProbe::ENABLED) };
        const { assert!(EventLog::ENABLED) };
    }

    #[test]
    fn tuple_composition_fans_out() {
        let mut pair = (EventLog::new(), EventLog::new());
        pair.emit(Event::WindowReset { at: Ps(5) });
        assert_eq!(pair.0.len(), 1);
        assert_eq!(pair.1.len(), 1);
        const { assert!(<(EventLog, EventLog)>::ENABLED) };
    }

    #[test]
    fn tuple_with_null_stays_enabled() {
        let mut pair = (NullProbe, EventLog::new());
        pair.emit(Event::WindowReset { at: Ps::ZERO });
        assert_eq!(pair.1.len(), 1);
        const { assert!(<(NullProbe, EventLog)>::ENABLED) };
        const { assert!(!<(NullProbe, NullProbe)>::ENABLED) };
    }

    #[test]
    fn event_log_limit() {
        let mut log = EventLog::with_limit(2);
        for i in 0..5 {
            log.emit(Event::WindowReset { at: Ps(i) });
        }
        assert_eq!(log.len(), 2);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn event_at_extracts_timestamp() {
        let ev = Event::FmBurst {
            stream: FmStream::MacRx,
            write: true,
            bytes: 64,
            start: Ps(10),
            done: Ps(90),
            queued: 1,
        };
        assert_eq!(ev.at(), Ps(90));
        assert_eq!(Event::WindowReset { at: Ps(3) }.at(), Ps(3));
    }
}
