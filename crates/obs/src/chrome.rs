//! Chrome `trace_event` JSON export: one track per core, assist, and
//! scratchpad bank, openable at <https://ui.perfetto.dev> (or
//! `chrome://tracing`).
//!
//! The exporter renders:
//!
//! * firmware handler slices per core (from [`Event::HandlerEnter`]
//!   edges),
//! * DMA descriptor spans and MAC wire spans (start/done pairs),
//! * frame-bus burst slices per stream (from [`Event::FmBurst`]),
//! * host/driver instants (posts, doorbells, deliveries), and
//! * cumulative grant/conflict counters per scratchpad bank, sampled
//!   every [`BANK_SAMPLE`] grants so bank activity does not dominate the
//!   file.
//!
//! Timestamps convert from simulated picoseconds to the trace format's
//! microseconds; `displayTimeUnit` is nanoseconds. The writer is
//! hand-rolled (the workspace is dependency-free); all event names are
//! program constants, so no JSON escaping is required.

use crate::{Event, Probe};
use nicsim_sim::Ps;
use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Emit one bank counter sample per this many grants on that bank.
pub const BANK_SAMPLE: u64 = 256;

/// Default cap on rendered trace entries (~100 MB of JSON).
pub const DEFAULT_LIMIT: usize = 1_000_000;

/// A rendering track (becomes a Chrome `tid` plus a `thread_name`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Track {
    Core(usize),
    DmaRead,
    DmaWrite,
    MacTx,
    MacRx,
    FrameBus,
    Driver,
    Bank(usize),
}

impl Track {
    fn tid(self) -> u32 {
        match self {
            Track::Core(i) => 1 + i as u32,
            Track::DmaRead => 64,
            Track::DmaWrite => 65,
            Track::MacTx => 66,
            Track::MacRx => 67,
            Track::FrameBus => 68,
            Track::Driver => 69,
            Track::Bank(b) => 128 + b as u32,
        }
    }

    fn name(self) -> String {
        match self {
            Track::Core(i) => format!("core{i}"),
            Track::DmaRead => "dma_read".into(),
            Track::DmaWrite => "dma_write".into(),
            Track::MacTx => "mac_tx".into(),
            Track::MacRx => "mac_rx".into(),
            Track::FrameBus => "frame_bus".into(),
            Track::Driver => "driver".into(),
            Track::Bank(b) => format!("bank{b}"),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    track: Track,
    name: &'static str,
    /// Chrome phase: `X` complete, `i` instant, `C` counter.
    ph: u8,
    ts: Ps,
    dur: Ps,
    args: [(&'static str, u64); 2],
    nargs: u8,
}

/// The Chrome trace sink. Accumulates entries in memory; call
/// [`ChromeTrace::write`] after the run.
#[derive(Debug, Clone)]
pub struct ChromeTrace {
    entries: Vec<Entry>,
    dropped: u64,
    limit: usize,
    /// Open handler slice per core: (handler, entered-at).
    open_handler: Vec<Option<(&'static str, Ps)>>,
    /// Open DMA descriptor spans: (engine index, descriptor) -> start.
    dma_open: HashMap<(u8, u32), Ps>,
    /// Wire span in progress: (seq, start).
    wire_open: Option<(u32, Ps)>,
    /// Cumulative per-bank grant/conflict counts for counter sampling.
    bank_grants: Vec<u64>,
    bank_conflicts: Vec<u64>,
}

impl Default for ChromeTrace {
    fn default() -> Self {
        ChromeTrace::new()
    }
}

impl ChromeTrace {
    /// A trace with the default entry cap.
    pub fn new() -> ChromeTrace {
        ChromeTrace::with_limit(DEFAULT_LIMIT)
    }

    /// A trace that stops rendering after `limit` entries (0 = unlimited).
    pub fn with_limit(limit: usize) -> ChromeTrace {
        ChromeTrace {
            entries: Vec::new(),
            dropped: 0,
            limit,
            open_handler: Vec::new(),
            dma_open: HashMap::new(),
            wire_open: None,
            bank_grants: Vec::new(),
            bank_conflicts: Vec::new(),
        }
    }

    /// Rendered entries so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been rendered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries discarded after the cap was hit.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn push(&mut self, e: Entry) {
        if self.limit != 0 && self.entries.len() >= self.limit {
            self.dropped += 1;
        } else {
            self.entries.push(e);
        }
    }

    fn instant(
        &mut self,
        track: Track,
        name: &'static str,
        at: Ps,
        arg: Option<(&'static str, u64)>,
    ) {
        let (args, nargs) = match arg {
            Some(a) => ([a, ("", 0)], 1),
            None => ([("", 0); 2], 0),
        };
        self.push(Entry {
            track,
            name,
            ph: b'i',
            ts: at,
            dur: Ps::ZERO,
            args,
            nargs,
        });
    }

    fn span(
        &mut self,
        track: Track,
        name: &'static str,
        start: Ps,
        end: Ps,
        arg: Option<(&'static str, u64)>,
    ) {
        let (args, nargs) = match arg {
            Some(a) => ([a, ("", 0)], 1),
            None => ([("", 0); 2], 0),
        };
        self.push(Entry {
            track,
            name,
            ph: b'X',
            ts: start,
            dur: end - start,
            args,
            nargs,
        });
    }

    /// Serialize to `path` as a Chrome trace JSON object.
    pub fn write(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        self.write_to(&mut w)?;
        w.flush()
    }

    /// Serialize to an arbitrary writer.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(w, "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")?;
        // Process + thread metadata first.
        write!(
            w,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{{\"name\":\"nicsim\"}}}}"
        )?;
        let mut tracks: Vec<Track> = self.entries.iter().map(|e| e.track).collect();
        tracks.sort();
        tracks.dedup();
        for t in &tracks {
            write!(
                w,
                ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                t.tid(),
                t.name()
            )?;
            write!(
                w,
                ",\n{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"sort_index\":{tid}}}}}",
                tid = t.tid()
            )?;
        }
        for e in &self.entries {
            let ts = e.ts.0 as f64 / 1e6;
            match e.ph {
                b'X' => write!(
                    w,
                    ",\n{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{ts},\
                     \"dur\":{}",
                    e.name,
                    e.track.tid(),
                    e.dur.0 as f64 / 1e6
                )?,
                b'i' => write!(
                    w,
                    ",\n{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\
                     \"ts\":{ts}",
                    e.name,
                    e.track.tid()
                )?,
                _ => write!(
                    w,
                    ",\n{{\"name\":\"{} {}\",\"ph\":\"C\",\"pid\":1,\"ts\":{ts}",
                    e.track.name(),
                    e.name
                )?,
            }
            if e.nargs > 0 {
                write!(w, ",\"args\":{{")?;
                for (i, (k, v)) in e.args[..e.nargs as usize].iter().enumerate() {
                    if i > 0 {
                        write!(w, ",")?;
                    }
                    write!(w, "\"{k}\":{v}")?;
                }
                write!(w, "}}")?;
            }
            write!(w, "}}")?;
        }
        writeln!(w, "\n]}}")
    }
}

/// Which track a fault/recovery instant renders on.
fn unit_track(unit: crate::FaultUnit) -> Track {
    match unit {
        crate::FaultUnit::Link | crate::FaultUnit::MacRx => Track::MacRx,
        crate::FaultUnit::MacTx => Track::MacTx,
        crate::FaultUnit::DmaRead => Track::DmaRead,
        crate::FaultUnit::DmaWrite => Track::DmaWrite,
        crate::FaultUnit::FrameMemory => Track::FrameBus,
        crate::FaultUnit::Driver | crate::FaultUnit::System => Track::Driver,
        // Fleet-level units have no dedicated track; fold them onto the
        // driver track (where reset/retransmit consequences surface).
        crate::FaultUnit::Fabric | crate::FaultUnit::Core => Track::Driver,
    }
}

impl Probe for ChromeTrace {
    fn emit(&mut self, ev: Event) {
        match ev {
            Event::HandlerEnter { core, func, at } => {
                if self.open_handler.len() <= core {
                    self.open_handler.resize(core + 1, None);
                }
                if let Some((prev, since)) = self.open_handler[core].replace((func, at)) {
                    if at > since {
                        self.span(Track::Core(core), prev, since, at, None);
                    }
                }
            }
            Event::DmaStart { dir, idx, at, .. } => {
                self.dma_open.insert((dir as u8, idx), at);
            }
            Event::DmaDone { dir, idx, at } => {
                if let Some(start) = self.dma_open.remove(&(dir as u8, idx)) {
                    let track = match dir {
                        crate::DmaDir::Read => Track::DmaRead,
                        crate::DmaDir::Write => Track::DmaWrite,
                    };
                    self.span(track, "xfer", start, at, Some(("idx", idx as u64)));
                }
            }
            Event::FmBurst {
                stream,
                bytes,
                start,
                done,
                ..
            } => {
                self.span(
                    Track::FrameBus,
                    stream.label(),
                    start,
                    done,
                    Some(("bytes", bytes as u64)),
                );
            }
            Event::MacTxFetch { seq, at } => {
                self.instant(Track::MacTx, "fetch", at, Some(("seq", seq as u64)));
            }
            Event::MacTxWireStart { seq, at } => {
                self.wire_open = Some((seq, at));
            }
            Event::MacTxWireDone { seq, at } => {
                if let Some((s, start)) = self.wire_open.take() {
                    if s == seq {
                        self.span(Track::MacTx, "wire", start, at, Some(("seq", seq as u64)));
                    }
                }
            }
            Event::MacRxArrival {
                seq, dropped, at, ..
            } => {
                let name = if dropped { "drop" } else { "arrival" };
                self.instant(Track::MacRx, name, at, Some(("seq", seq as u64)));
            }
            Event::MacRxDescPublish { seq, at } => {
                self.instant(Track::MacRx, "desc", at, Some(("seq", seq as u64)));
            }
            Event::HostTxPost { seq, at } => {
                self.instant(Track::Driver, "tx_post", at, Some(("seq", seq as u64)));
            }
            Event::HostRxDeliver { seq, at, .. } => {
                self.instant(Track::Driver, "rx_deliver", at, Some(("seq", seq as u64)));
            }
            Event::MailboxWrite { reg, value, at } => {
                let _ = reg;
                self.instant(Track::Driver, "doorbell", at, Some(("value", value as u64)));
            }
            Event::SpGrant { bank, at, .. } => {
                if self.bank_grants.len() <= bank {
                    self.bank_grants.resize(bank + 1, 0);
                    self.bank_conflicts.resize(bank + 1, 0);
                }
                self.bank_grants[bank] += 1;
                if self.bank_grants[bank].is_multiple_of(BANK_SAMPLE) {
                    let args = [
                        ("grants", self.bank_grants[bank]),
                        ("conflicts", self.bank_conflicts[bank]),
                    ];
                    self.push(Entry {
                        track: Track::Bank(bank),
                        name: "sp",
                        ph: b'C',
                        ts: at,
                        dur: Ps::ZERO,
                        args,
                        nargs: 2,
                    });
                }
            }
            Event::SpConflict { bank, .. } => {
                if self.bank_conflicts.len() <= bank {
                    self.bank_grants.resize(bank + 1, 0);
                    self.bank_conflicts.resize(bank + 1, 0);
                }
                self.bank_conflicts[bank] += 1;
            }
            Event::WindowReset { at } => {
                self.instant(Track::Driver, "window_reset", at, None);
            }
            Event::Fault {
                kind,
                unit,
                info,
                at,
            } => {
                self.instant(
                    unit_track(unit),
                    kind.label(),
                    at,
                    Some(("info", info as u64)),
                );
            }
            Event::Recovery {
                kind,
                unit,
                info,
                at,
            } => {
                self.instant(
                    unit_track(unit),
                    kind.label(),
                    at,
                    Some(("info", info as u64)),
                );
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DmaDir;

    #[test]
    fn handler_edges_become_slices() {
        let mut t = ChromeTrace::new();
        t.emit(Event::HandlerEnter {
            core: 0,
            func: "fetch_bd",
            at: Ps(100),
        });
        t.emit(Event::HandlerEnter {
            core: 0,
            func: "send_frame",
            at: Ps(900),
        });
        assert_eq!(t.len(), 1);
        let mut out = Vec::new();
        t.write_to(&mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("\"fetch_bd\""), "{s}");
        assert!(s.contains("\"thread_name\""));
        assert!(s.contains("core0"));
    }

    #[test]
    fn dma_spans_pair_start_done() {
        let mut t = ChromeTrace::new();
        t.emit(Event::DmaStart {
            dir: DmaDir::Read,
            idx: 5,
            bytes: 1514,
            at: Ps(10),
        });
        t.emit(Event::DmaDone {
            dir: DmaDir::Read,
            idx: 5,
            at: Ps(500),
        });
        assert_eq!(t.len(), 1);
        let mut out = Vec::new();
        t.write_to(&mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("\"idx\":5"));
    }

    #[test]
    fn limit_caps_entries() {
        let mut t = ChromeTrace::with_limit(2);
        for i in 0..5u64 {
            t.emit(Event::MacRxArrival {
                seq: i as u32,
                len: 60,
                dropped: false,
                at: Ps(i * 100),
            });
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn fault_and_recovery_become_instants() {
        let mut t = ChromeTrace::new();
        t.emit(Event::Fault {
            kind: crate::FaultKind::DmaError,
            unit: crate::FaultUnit::DmaRead,
            info: 3,
            at: Ps(100),
        });
        t.emit(Event::Recovery {
            kind: crate::RecoveryKind::WatchdogReset,
            unit: crate::FaultUnit::System,
            info: 0,
            at: Ps(200),
        });
        assert_eq!(t.len(), 2);
        let mut out = Vec::new();
        t.write_to(&mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("fault:dma_error"), "{s}");
        assert!(s.contains("recovery:watchdog_reset"), "{s}");
        assert!(s.contains("\"info\":3"), "{s}");
    }

    #[test]
    fn output_is_json_shaped() {
        let mut t = ChromeTrace::new();
        t.emit(Event::WindowReset { at: Ps(42) });
        let mut out = Vec::new();
        t.write_to(&mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with('{') && s.trim_end().ends_with('}'));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }
}
