//! The typed event vocabulary of the observability layer.
//!
//! One [`Event`] is emitted at every frame-lifecycle edge the simulator
//! models: the host posting a send descriptor, the mailbox doorbell, the
//! firmware entering a handler, scratchpad crossbar grants and retries,
//! DMA and frame-memory bursts, the MAC putting bits on the wire, and the
//! driver consuming a return descriptor. Events are small `Copy` values —
//! identifiers, byte counts, and picosecond timestamps — so a disabled
//! probe pays nothing and an enabled one pays a few stores per event.
//!
//! Frame identity: the simulated workload stamps a 32-bit sequence number
//! into every UDP payload (bytes 42..46 of the Ethernet frame), and the
//! descriptor rings carry the same number, so TX events from
//! [`Event::HostTxPost`] through [`Event::MacTxWireDone`] and RX events
//! from [`Event::MacRxArrival`] through [`Event::HostRxDeliver`] can be
//! joined on `seq` to reconstruct a per-frame timeline.

use nicsim_sim::Ps;

/// The four frame-data streams over the shared frame bus, mirroring
/// `nicsim_mem::StreamId` (this crate sits below `nicsim-mem` in the
/// dependency order, so it defines its own copy of the vocabulary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FmStream {
    /// DMA read assist: host memory -> frame memory (transmit path).
    DmaRead,
    /// DMA write assist: frame memory -> host memory (receive path).
    DmaWrite,
    /// MAC transmit: frame memory -> wire.
    MacTx,
    /// MAC receive: wire -> frame memory.
    MacRx,
}

impl FmStream {
    /// Dense index, matching `StreamId::index`.
    pub fn index(self) -> usize {
        match self {
            FmStream::DmaRead => 0,
            FmStream::DmaWrite => 1,
            FmStream::MacTx => 2,
            FmStream::MacRx => 3,
        }
    }

    /// Stable display label.
    pub fn label(self) -> &'static str {
        match self {
            FmStream::DmaRead => "dma_read",
            FmStream::DmaWrite => "dma_write",
            FmStream::MacTx => "mac_tx",
            FmStream::MacRx => "mac_rx",
        }
    }

    /// All streams in index order.
    pub const ALL: [FmStream; 4] = [
        FmStream::DmaRead,
        FmStream::DmaWrite,
        FmStream::MacTx,
        FmStream::MacRx,
    ];
}

/// Which DMA engine an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DmaDir {
    /// The DMA read engine (host -> NIC, transmit path).
    Read,
    /// The DMA write engine (NIC -> host, receive path).
    Write,
}

impl DmaDir {
    /// Stable display label.
    pub fn label(self) -> &'static str {
        match self {
            DmaDir::Read => "dma_read",
            DmaDir::Write => "dma_write",
        }
    }
}

/// The unit a fault or recovery event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultUnit {
    /// The inbound 10 GbE link (generator side).
    Link,
    /// The MAC receive assist.
    MacRx,
    /// The MAC transmit assist.
    MacTx,
    /// The DMA read engine (host -> NIC).
    DmaRead,
    /// The DMA write engine (NIC -> host).
    DmaWrite,
    /// The SDRAM frame memory.
    FrameMemory,
    /// The host device driver.
    Driver,
    /// System-level machinery (the watchdog).
    System,
    /// The inter-NIC fabric (fleet runs).
    Fabric,
    /// A firmware core (instruction faults).
    Core,
}

impl FaultUnit {
    /// Stable display label.
    pub fn label(self) -> &'static str {
        match self {
            FaultUnit::Link => "link",
            FaultUnit::MacRx => "mac_rx",
            FaultUnit::MacTx => "mac_tx",
            FaultUnit::DmaRead => "dma_read",
            FaultUnit::DmaWrite => "dma_write",
            FaultUnit::FrameMemory => "frame_memory",
            FaultUnit::Driver => "driver",
            FaultUnit::System => "system",
            FaultUnit::Fabric => "fabric",
            FaultUnit::Core => "core",
        }
    }
}

/// A fault the injection plane introduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A bit flipped in a frame on the inbound link.
    LinkCorrupt,
    /// A frame truncated on the inbound link.
    LinkTruncate,
    /// A transient DMA completion error (one failed attempt).
    DmaError,
    /// A bounded PCI stall before a DMA command executed.
    PciStall,
    /// A correctable single-bit ECC event on a frame-memory read burst.
    EccSingleBit,
    /// An assist unit wedged (stuck until the watchdog resets it).
    AssistHang,
    /// A frame-bus read completion arrived without data (short read).
    ShortRead,
    /// A bit flipped in a frame crossing a fabric link (fleet runs).
    FabricCorrupt,
    /// A fabric link flapped down; frames offered meanwhile are lost.
    LinkFlap,
    /// A transient port-buffer squeeze dropped an admission.
    PortSqueeze,
    /// A DMA write poisoned a payload byte as it landed in host memory.
    HostPoison,
    /// A firmware instruction fault aborted a handler before it ran.
    FwInstrFault,
    /// A whole NIC crashed (wedged until the fleet watchdog resets it).
    NicCrash,
}

impl FaultKind {
    /// Stable display label.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::LinkCorrupt => "fault:link_corrupt",
            FaultKind::LinkTruncate => "fault:link_truncate",
            FaultKind::DmaError => "fault:dma_error",
            FaultKind::PciStall => "fault:pci_stall",
            FaultKind::EccSingleBit => "fault:ecc",
            FaultKind::AssistHang => "fault:hang",
            FaultKind::ShortRead => "fault:short_read",
            FaultKind::FabricCorrupt => "fault:fabric_corrupt",
            FaultKind::LinkFlap => "fault:link_flap",
            FaultKind::PortSqueeze => "fault:port_squeeze",
            FaultKind::HostPoison => "fault:host_poison",
            FaultKind::FwInstrFault => "fault:fw_instr",
            FaultKind::NicCrash => "fault:nic_crash",
        }
    }
}

/// A recovery action the firmware, hardware, or driver took.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecoveryKind {
    /// MAC RX caught a CRC-bad frame and published an error descriptor
    /// instead of delivering garbage.
    CrcDrop,
    /// A DMA command succeeded after transient-error retries.
    DmaRetried,
    /// A DMA command was aborted after exhausting retries; the
    /// descriptor was completed so ring ordering never wedges.
    FrameAbort,
    /// The watchdog reset a stuck assist.
    WatchdogReset,
    /// The driver consumed an error return descriptor and recycled its
    /// buffer.
    RxErrorReturn,
    /// The driver accounted an aborted transmit frame and re-posted a
    /// replacement.
    TxRetry,
    /// The reliable-mode driver retransmitted an unacked frame after a
    /// timeout with exponential backoff.
    Retransmit,
    /// The fleet watchdog reset a crashed NIC (firmware re-init, rings
    /// re-posted, in-flight frames accounted as lost).
    NicReset,
}

impl RecoveryKind {
    /// Stable display label.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryKind::CrcDrop => "recovery:crc_drop",
            RecoveryKind::DmaRetried => "recovery:dma_retry",
            RecoveryKind::FrameAbort => "recovery:frame_abort",
            RecoveryKind::WatchdogReset => "recovery:watchdog_reset",
            RecoveryKind::RxErrorReturn => "recovery:rx_error_return",
            RecoveryKind::TxRetry => "recovery:tx_retry",
            RecoveryKind::Retransmit => "recovery:retransmit",
            RecoveryKind::NicReset => "recovery:nic_reset",
        }
    }
}

/// One frame-lifecycle edge. Every variant carries the simulated time
/// `at` (or an explicit start/done pair) in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// The host driver posted one send frame (buffer descriptors written
    /// to host memory; the mailbox write follows in the same driver poll).
    HostTxPost {
        /// Frame sequence number.
        seq: u32,
        /// Simulated time.
        at: Ps,
    },
    /// The driver observed the NIC's send-completion count advance: all
    /// frames with `seq < upto` are now reclaimable.
    HostTxComplete {
        /// One past the highest completed frame sequence number.
        upto: u32,
        /// Simulated time.
        at: Ps,
    },
    /// The driver consumed a return descriptor and delivered a validated
    /// frame to the host stack.
    HostRxDeliver {
        /// Frame sequence number recovered from the payload.
        seq: u32,
        /// UDP payload bytes delivered.
        udp_payload: u32,
        /// Simulated time.
        at: Ps,
    },
    /// The driver rang a doorbell: a mailbox register write crossed the
    /// PCI bus into the scratchpad.
    MailboxWrite {
        /// Stable register name (`"send_bd_prod"` or `"rx_bd_prod"`).
        reg: &'static str,
        /// Value written.
        value: u32,
        /// Simulated time.
        at: Ps,
    },
    /// A core entered a firmware handler (the fetch target moved to a
    /// different firmware function).
    HandlerEnter {
        /// Core index.
        core: usize,
        /// Stable handler label (`FwFunc::label`).
        func: &'static str,
        /// Simulated time.
        at: Ps,
    },
    /// The crossbar granted a scratchpad transaction.
    SpGrant {
        /// Requester port (cores first, then the four assists).
        port: usize,
        /// Scratchpad bank that serviced the access.
        bank: usize,
        /// Byte address.
        addr: u32,
        /// Store or atomic RMW (coherence-relevant write).
        write: bool,
        /// Simulated time.
        at: Ps,
    },
    /// A pending scratchpad request lost arbitration this cycle and
    /// retries next cycle (one bank-conflict stall cycle).
    SpConflict {
        /// Requester port.
        port: usize,
        /// Contended bank.
        bank: usize,
        /// Simulated time.
        at: Ps,
    },
    /// An instruction-cache line access.
    IcacheAccess {
        /// Core index.
        core: usize,
        /// Hit (false = miss + fill from instruction memory).
        hit: bool,
        /// Simulated time.
        at: Ps,
    },
    /// A DMA engine accepted a descriptor and started moving payload
    /// (for the read engine this is the descriptor-fetch completion that
    /// launches the host-to-NIC transfer).
    DmaStart {
        /// Which engine.
        dir: DmaDir,
        /// Descriptor ring index.
        idx: u32,
        /// Payload bytes.
        bytes: u32,
        /// Simulated time.
        at: Ps,
    },
    /// A DMA descriptor completed (payload landed and the engine marked
    /// the descriptor done).
    DmaDone {
        /// Which engine.
        dir: DmaDir,
        /// Descriptor ring index.
        idx: u32,
        /// Simulated time.
        at: Ps,
    },
    /// The frame-memory controller serviced one burst over the shared
    /// frame bus.
    FmBurst {
        /// Which stream issued the burst.
        stream: FmStream,
        /// Write (toward SDRAM) or read.
        write: bool,
        /// Burst length before alignment padding.
        bytes: u32,
        /// Bus grant time.
        start: Ps,
        /// Completion time.
        done: Ps,
        /// Bursts still queued on this stream after the grant
        /// (frame-memory occupancy).
        queued: u32,
    },
    /// The MAC TX assist consumed a transmit-ring entry and issued the
    /// frame-memory read for the frame contents.
    MacTxFetch {
        /// Frame sequence number (ring entry word 3).
        seq: u32,
        /// Simulated time.
        at: Ps,
    },
    /// First bit of a frame on the wire.
    MacTxWireStart {
        /// Frame sequence number.
        seq: u32,
        /// Simulated time.
        at: Ps,
    },
    /// Last bit of a frame on the wire; the frame counts as sent.
    MacTxWireDone {
        /// Frame sequence number.
        seq: u32,
        /// Simulated time.
        at: Ps,
    },
    /// A frame arrived from the wire at the MAC RX assist.
    MacRxArrival {
        /// Frame sequence number.
        seq: u32,
        /// Frame length in bytes (without FCS).
        len: u32,
        /// True if the assist dropped it (receive ring full).
        dropped: bool,
        /// Simulated time.
        at: Ps,
    },
    /// The MAC RX assist published the receive descriptor for a frame
    /// whose contents finished landing in frame memory.
    MacRxDescPublish {
        /// Frame sequence number.
        seq: u32,
        /// Simulated time.
        at: Ps,
    },
    /// The measurement window (re)started: warm-up state is being
    /// discarded. Sinks that mirror `RunStats` window semantics reset
    /// here.
    WindowReset {
        /// Simulated time.
        at: Ps,
    },
    /// The fault plane injected a fault at `unit`.
    Fault {
        /// What was injected.
        kind: FaultKind,
        /// Where.
        unit: FaultUnit,
        /// Kind-specific detail (frame seq, descriptor index, or failed
        /// attempt count).
        info: u32,
        /// Simulated time.
        at: Ps,
    },
    /// A recovery action completed at `unit`.
    Recovery {
        /// What recovered.
        kind: RecoveryKind,
        /// Where.
        unit: FaultUnit,
        /// Kind-specific detail (frame seq or descriptor index).
        info: u32,
        /// Simulated time.
        at: Ps,
    },
}

impl Event {
    /// The timestamp of the event (for span-shaped events, the end).
    pub fn at(&self) -> Ps {
        match *self {
            Event::HostTxPost { at, .. }
            | Event::HostTxComplete { at, .. }
            | Event::HostRxDeliver { at, .. }
            | Event::MailboxWrite { at, .. }
            | Event::HandlerEnter { at, .. }
            | Event::SpGrant { at, .. }
            | Event::SpConflict { at, .. }
            | Event::IcacheAccess { at, .. }
            | Event::DmaStart { at, .. }
            | Event::DmaDone { at, .. }
            | Event::MacTxFetch { at, .. }
            | Event::MacTxWireStart { at, .. }
            | Event::MacTxWireDone { at, .. }
            | Event::MacRxArrival { at, .. }
            | Event::MacRxDescPublish { at, .. }
            | Event::Fault { at, .. }
            | Event::Recovery { at, .. }
            | Event::WindowReset { at } => at,
            Event::FmBurst { done, .. } => done,
        }
    }
}
