//! Counter and histogram metrics derived from the probe event stream.
//!
//! These replace the scattered hand-rolled debug counters that used to
//! live inside individual components: crossbar grant/retry counts per
//! bank, the I-cache hit rate, DMA descriptor throughput, and
//! event-queue depth histograms for the frame-memory streams and the DMA
//! engines. Counters follow `RunStats` window semantics — they reset on
//! [`Event::WindowReset`] — while in-flight gauges persist across the
//! reset (work in flight at the window edge is still in flight).

use crate::{Event, Probe};

/// Number of buckets in a [`DepthHistogram`]; the last bucket clamps.
pub const DEPTH_BUCKETS: usize = 17;

/// A small fixed-bucket histogram of queue depths (0..=15, then 16+).
#[derive(Debug, Clone, Copy)]
pub struct DepthHistogram {
    counts: [u64; DEPTH_BUCKETS],
}

impl Default for DepthHistogram {
    fn default() -> Self {
        DepthHistogram {
            counts: [0; DEPTH_BUCKETS],
        }
    }
}

impl DepthHistogram {
    /// Record one observation of `depth`.
    pub fn record(&mut self, depth: u32) {
        let b = (depth as usize).min(DEPTH_BUCKETS - 1);
        self.counts[b] += 1;
    }

    /// Per-bucket observation counts (index = depth, last bucket = 16+).
    pub fn counts(&self) -> &[u64; DEPTH_BUCKETS] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean observed depth (clamped observations count at the clamp).
    pub fn mean(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(d, c)| d as u64 * c)
            .sum();
        sum as f64 / total as f64
    }

    /// Highest non-empty bucket.
    pub fn max(&self) -> u32 {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |d| d as u32)
    }

    fn clear(&mut self) {
        self.counts = [0; DEPTH_BUCKETS];
    }
}

/// The counter/histogram metrics sink.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    sp_grants: Vec<u64>,
    sp_conflicts: Vec<u64>,
    icache_hits: u64,
    icache_misses: u64,
    mailbox_writes: u64,
    host_tx_posted: u64,
    host_rx_delivered: u64,
    /// Indexed by `DmaDir as usize` (0 = read, 1 = write).
    dma_started: [u64; 2],
    dma_done: [u64; 2],
    dma_inflight: [u32; 2],
    dma_depth: [DepthHistogram; 2],
    mac_tx_fetched: u64,
    mac_tx_sent: u64,
    mac_rx_accepted: u64,
    mac_rx_dropped: u64,
    /// Indexed by `FmStream::index()`.
    fm_bursts: [u64; 4],
    fm_bytes: [u64; 4],
    fm_depth: [DepthHistogram; 4],
}

impl Metrics {
    /// An empty metrics sink.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Crossbar grants per scratchpad bank.
    pub fn sp_grants(&self) -> &[u64] {
        &self.sp_grants
    }

    /// Crossbar retry (conflict) cycles per scratchpad bank.
    pub fn sp_conflicts(&self) -> &[u64] {
        &self.sp_conflicts
    }

    /// I-cache line accesses that hit.
    pub fn icache_hits(&self) -> u64 {
        self.icache_hits
    }

    /// I-cache line accesses that missed.
    pub fn icache_misses(&self) -> u64 {
        self.icache_misses
    }

    /// Hit fraction in [0, 1]; 0 when no accesses were observed.
    pub fn icache_hit_rate(&self) -> f64 {
        let total = self.icache_hits + self.icache_misses;
        if total == 0 {
            0.0
        } else {
            self.icache_hits as f64 / total as f64
        }
    }

    /// Doorbell writes observed.
    pub fn mailbox_writes(&self) -> u64 {
        self.mailbox_writes
    }

    /// Frames the driver posted for transmit.
    pub fn host_tx_posted(&self) -> u64 {
        self.host_tx_posted
    }

    /// Frames the driver delivered to the host stack.
    pub fn host_rx_delivered(&self) -> u64 {
        self.host_rx_delivered
    }

    /// DMA descriptors started, per engine (0 = read, 1 = write).
    pub fn dma_started(&self) -> [u64; 2] {
        self.dma_started
    }

    /// DMA descriptors completed, per engine.
    pub fn dma_done(&self) -> [u64; 2] {
        self.dma_done
    }

    /// Histogram of DMA descriptors in flight, sampled at each start.
    pub fn dma_depth(&self) -> &[DepthHistogram; 2] {
        &self.dma_depth
    }

    /// MAC TX ring entries fetched / frames fully on the wire.
    pub fn mac_tx(&self) -> (u64, u64) {
        (self.mac_tx_fetched, self.mac_tx_sent)
    }

    /// MAC RX frames accepted / dropped at the ring.
    pub fn mac_rx(&self) -> (u64, u64) {
        (self.mac_rx_accepted, self.mac_rx_dropped)
    }

    /// Frame-bus bursts per stream (`FmStream::index()` order).
    pub fn fm_bursts(&self) -> [u64; 4] {
        self.fm_bursts
    }

    /// Frame-bus bytes per stream, before alignment padding.
    pub fn fm_bytes(&self) -> [u64; 4] {
        self.fm_bytes
    }

    /// Histogram of per-stream queue depth, sampled at each bus grant.
    pub fn fm_depth(&self) -> &[DepthHistogram; 4] {
        &self.fm_depth
    }

    fn reset_window(&mut self) {
        self.sp_grants.iter_mut().for_each(|c| *c = 0);
        self.sp_conflicts.iter_mut().for_each(|c| *c = 0);
        self.icache_hits = 0;
        self.icache_misses = 0;
        self.mailbox_writes = 0;
        self.host_tx_posted = 0;
        self.host_rx_delivered = 0;
        self.dma_started = [0; 2];
        self.dma_done = [0; 2];
        self.dma_depth.iter_mut().for_each(DepthHistogram::clear);
        self.mac_tx_fetched = 0;
        self.mac_tx_sent = 0;
        self.mac_rx_accepted = 0;
        self.mac_rx_dropped = 0;
        self.fm_bursts = [0; 4];
        self.fm_bytes = [0; 4];
        self.fm_depth.iter_mut().for_each(DepthHistogram::clear);
    }
}

fn bump(v: &mut Vec<u64>, idx: usize) {
    if v.len() <= idx {
        v.resize(idx + 1, 0);
    }
    v[idx] += 1;
}

impl Probe for Metrics {
    fn emit(&mut self, ev: Event) {
        match ev {
            Event::SpGrant { bank, .. } => bump(&mut self.sp_grants, bank),
            Event::SpConflict { bank, .. } => bump(&mut self.sp_conflicts, bank),
            Event::IcacheAccess { hit, .. } => {
                if hit {
                    self.icache_hits += 1;
                } else {
                    self.icache_misses += 1;
                }
            }
            Event::MailboxWrite { .. } => self.mailbox_writes += 1,
            Event::HostTxPost { .. } => self.host_tx_posted += 1,
            Event::HostRxDeliver { .. } => self.host_rx_delivered += 1,
            Event::DmaStart { dir, .. } => {
                let e = dir as usize;
                self.dma_started[e] += 1;
                self.dma_inflight[e] += 1;
                self.dma_depth[e].record(self.dma_inflight[e]);
            }
            Event::DmaDone { dir, .. } => {
                let e = dir as usize;
                self.dma_done[e] += 1;
                self.dma_inflight[e] = self.dma_inflight[e].saturating_sub(1);
            }
            Event::MacTxFetch { .. } => self.mac_tx_fetched += 1,
            Event::MacTxWireDone { .. } => self.mac_tx_sent += 1,
            Event::MacRxArrival { dropped, .. } => {
                if dropped {
                    self.mac_rx_dropped += 1;
                } else {
                    self.mac_rx_accepted += 1;
                }
            }
            Event::FmBurst {
                stream,
                bytes,
                queued,
                ..
            } => {
                let s = stream.index();
                self.fm_bursts[s] += 1;
                self.fm_bytes[s] += bytes as u64;
                self.fm_depth[s].record(queued);
            }
            Event::WindowReset { .. } => self.reset_window(),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DmaDir, FmStream};
    use nicsim_sim::Ps;

    #[test]
    fn counts_grants_and_conflicts_per_bank() {
        let mut m = Metrics::new();
        for bank in [0usize, 0, 1, 3] {
            m.emit(Event::SpGrant {
                port: 0,
                bank,
                addr: 0,
                write: false,
                at: Ps::ZERO,
            });
        }
        m.emit(Event::SpConflict {
            port: 1,
            bank: 3,
            at: Ps::ZERO,
        });
        assert_eq!(m.sp_grants(), &[2, 1, 0, 1]);
        assert_eq!(m.sp_conflicts(), &[0, 0, 0, 1]);
    }

    #[test]
    fn icache_hit_rate() {
        let mut m = Metrics::new();
        for hit in [true, true, true, false] {
            m.emit(Event::IcacheAccess {
                core: 0,
                hit,
                at: Ps::ZERO,
            });
        }
        assert_eq!(m.icache_hit_rate(), 0.75);
    }

    #[test]
    fn dma_inflight_histogram() {
        let mut m = Metrics::new();
        let start = |m: &mut Metrics, idx| {
            m.emit(Event::DmaStart {
                dir: DmaDir::Read,
                idx,
                bytes: 64,
                at: Ps::ZERO,
            })
        };
        start(&mut m, 0);
        start(&mut m, 1); // depth 2 while both outstanding
        m.emit(Event::DmaDone {
            dir: DmaDir::Read,
            idx: 0,
            at: Ps(10),
        });
        start(&mut m, 2);
        assert_eq!(m.dma_started()[0], 3);
        assert_eq!(m.dma_done()[0], 1);
        assert_eq!(m.dma_depth()[0].counts()[1], 1);
        assert_eq!(m.dma_depth()[0].counts()[2], 2);
        assert_eq!(m.dma_depth()[0].max(), 2);
    }

    #[test]
    fn window_reset_clears_counters() {
        let mut m = Metrics::new();
        m.emit(Event::FmBurst {
            stream: FmStream::MacRx,
            write: true,
            bytes: 1518,
            start: Ps(0),
            done: Ps(100),
            queued: 1,
        });
        m.emit(Event::WindowReset { at: Ps(200) });
        assert_eq!(m.fm_bursts(), [0; 4]);
        assert_eq!(m.fm_depth()[3].total(), 0);
    }

    #[test]
    fn depth_histogram_clamps() {
        let mut h = DepthHistogram::default();
        h.record(100);
        assert_eq!(h.counts()[DEPTH_BUCKETS - 1], 1);
        assert_eq!(h.max() as usize, DEPTH_BUCKETS - 1);
        assert!(h.mean() > 0.0);
    }
}
