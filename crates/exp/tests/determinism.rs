//! The engine's central guarantee: a sweep produces bit-identical
//! statistics whether its runs execute serially or across a worker
//! pool. Each `NicSystem` is single-threaded and deterministic, and the
//! engine stores results by declaration index, so the only way this can
//! fail is a scheduling bug — which is exactly what the test guards.

use nicsim::NicConfig;
use nicsim_exp::{stats_to_json, Experiment, Sweep};

fn sweep() -> Sweep {
    // Four cheap configurations: small core counts keep the simulated
    // windows fast in debug builds while still exercising distinct
    // firmware schedules per run.
    Sweep::new(NicConfig::default())
        .axis("cores", [1usize, 2], |cfg, v| cfg.cores = v)
        .axis("cpu_mhz", [100u64, 166], |cfg, v| cfg.cpu_mhz = v)
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let serial = Experiment::new("determinism-serial")
        .windows_ms(1, 1)
        .quiet()
        .jobs(1)
        .sweep(&sweep());
    let parallel = Experiment::new("determinism-parallel")
        .windows_ms(1, 1)
        .quiet()
        .jobs(4)
        .sweep(&sweep());

    assert_eq!(serial.runs.len(), 4);
    assert_eq!(parallel.runs.len(), 4);
    for (s, p) in serial.runs.iter().zip(&parallel.runs) {
        // Same declaration order regardless of completion order...
        assert_eq!(s.label, p.label);
        assert_eq!(s.axes, p.axes);
        // ...and byte-identical serialized statistics: shortest-roundtrip
        // float formatting means bit-identical stats give identical JSON.
        assert_eq!(
            stats_to_json(&s.stats).pretty(),
            stats_to_json(&p.stats).pretty(),
            "run '{}' diverged between serial and parallel execution",
            s.label
        );
    }
}
