//! Structured results: one run's config + stats + wall-clock, a whole
//! sweep's report, and their stable JSON schema (`nicsim-exp/v1`).
//!
//! The schema is documented in the repository's `EXPERIMENTS.md`; the
//! golden/round-trip tests in this module pin it. Every numeric field
//! is serialized with shortest-roundtrip formatting, so two reports
//! built from bit-identical `RunStats` produce byte-identical JSON.

use crate::json::Json;
use nicsim::{FwMode, NicConfig, RunStats};
use nicsim_cpu::{FwFunc, StallBucket};
use std::time::Duration;

/// Version tag written into every results file.
pub const SCHEMA: &str = "nicsim-exp/v1";

/// The result of one simulated run: the configuration that produced
/// it, the measured statistics, and the host wall-clock cost.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Run label (`"axis=value,..."` within a sweep).
    pub label: String,
    /// `(axis name, point label)` coordinates within the sweep.
    pub axes: Vec<(String, String)>,
    /// The configuration simulated.
    pub config: NicConfig,
    /// Statistics of the measurement window.
    pub stats: RunStats,
    /// Host wall-clock time the run took.
    pub wall: Duration,
}

impl RunReport {
    /// The run as a `nicsim-exp/v1` JSON object.
    pub fn to_json(&self) -> Json {
        let mut axes = Json::obj();
        for (name, value) in &self.axes {
            axes.set(name, value.as_str());
        }
        Json::obj()
            .with("label", self.label.as_str())
            .with("axes", axes)
            .with("config", config_to_json(&self.config))
            .with("stats", stats_to_json(&self.stats))
            .with("wall_s", self.wall.as_secs_f64())
    }
}

/// The result of a whole experiment: every run plus methodology
/// metadata, writable as `results/<experiment>.json`.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Experiment name (the results file stem).
    pub experiment: String,
    /// Worker threads the sweep ran with.
    pub jobs: usize,
    /// Warm-up window, milliseconds of simulated time.
    pub warmup_ms: u64,
    /// Measurement window, milliseconds of simulated time.
    pub window_ms: u64,
    /// All runs, in declaration order (independent of execution order).
    pub runs: Vec<RunReport>,
    /// Wall-clock time of the whole experiment.
    pub wall: Duration,
    /// Experiment-specific derived data (e.g. a post-processed cache
    /// sweep), appended verbatim under `"extra"`.
    pub extra: Option<Json>,
}

impl SweepReport {
    /// The report as a `nicsim-exp/v1` JSON object. `git` is the
    /// source revision (see [`crate::git_describe`]).
    pub fn to_json(&self, git: Option<&str>) -> Json {
        let mut doc = Json::obj()
            .with("schema", SCHEMA)
            .with("experiment", self.experiment.as_str())
            .with("git", git)
            .with("jobs", self.jobs)
            .with("warmup_ms", self.warmup_ms)
            .with("window_ms", self.window_ms)
            .with("wall_s", self.wall.as_secs_f64())
            .with(
                "runs",
                Json::Arr(self.runs.iter().map(RunReport::to_json).collect()),
            );
        if let Some(extra) = &self.extra {
            doc.set("extra", extra.clone());
        }
        doc
    }
}

/// `FwMode` as its schema string.
pub fn mode_str(mode: FwMode) -> &'static str {
    match mode {
        FwMode::Ideal => "ideal",
        FwMode::SoftwareOnly => "software-only",
        FwMode::RmwEnhanced => "rmw-enhanced",
    }
}

/// A [`NicConfig`] as a `nicsim-exp/v1` JSON object.
pub fn config_to_json(cfg: &NicConfig) -> Json {
    Json::obj()
        .with("cores", cfg.cores)
        .with("cpu_mhz", cfg.cpu_mhz)
        .with("banks", cfg.banks)
        .with("scratchpad_bytes", cfg.scratchpad_bytes)
        .with(
            "icache",
            Json::obj()
                .with("bytes", cfg.icache.bytes)
                .with("ways", cfg.icache.ways)
                .with("line_bytes", cfg.icache.line_bytes),
        )
        .with(
            "frame_memory",
            Json::obj()
                .with("mhz", cfg.frame_memory.freq.as_mhz())
                .with("bytes_per_cycle", cfg.frame_memory.bytes_per_cycle)
                .with("banks", u64::from(cfg.frame_memory.banks))
                .with("row_bytes", u64::from(cfg.frame_memory.row_bytes))
                .with("row_miss_cycles", cfg.frame_memory.row_miss_cycles)
                .with(
                    "access_latency_cycles",
                    cfg.frame_memory.access_latency_cycles,
                )
                .with("capacity", u64::from(cfg.frame_memory.capacity)),
        )
        .with("mode", mode_str(cfg.mode))
        .with("udp_payload", cfg.udp_payload)
        .with("send_enabled", cfg.send_enabled)
        .with("recv_enabled", cfg.recv_enabled)
        .with("offered_tx_fps", cfg.offered_tx_fps)
        .with("offered_rx_fps", cfg.offered_rx_fps)
        .with("driver_interval", cfg.driver_interval)
}

/// A [`RunStats`] as a `nicsim-exp/v1` JSON object.
pub fn stats_to_json(s: &RunStats) -> Json {
    let mut breakdown = Json::obj();
    for b in StallBucket::ALL {
        breakdown.set(b.label(), s.ipc_contribution(b));
    }
    let mut profile = Json::obj();
    for f in FwFunc::ALL {
        let p = s.profile.func(f);
        profile.set(
            f.label(),
            Json::obj()
                .with("instructions", p.instructions)
                .with("mem_accesses", p.mem_accesses)
                .with("cycles", p.cycles.to_vec()),
        );
    }
    Json::obj()
        .with("window_ps", s.window.0)
        .with("cores", s.cores)
        .with("cpu_mhz", s.cpu_mhz)
        .with("tx_frames", s.tx_frames)
        .with("rx_frames", s.rx_frames)
        .with("tx_udp_gbps", s.tx_udp_gbps)
        .with("rx_udp_gbps", s.rx_udp_gbps)
        .with("total_udp_gbps", s.total_udp_gbps())
        .with("total_fps", s.total_fps())
        .with("rx_mac_drops", s.rx_mac_drops)
        .with("tx_errors", s.tx_errors)
        .with("rx_corrupt", s.rx_corrupt)
        .with("rx_out_of_order", s.rx_out_of_order)
        .with("ipc", s.ipc())
        .with("ipc_breakdown", breakdown)
        .with("core_ticks", s.core_ticks)
        .with("core_sp_accesses", s.core_sp_accesses)
        .with("assist_sp_accesses", s.assist_sp_accesses)
        .with("scratchpad_gbps", s.scratchpad_gbps)
        .with("instr_mem_gbps", s.instr_mem_gbps)
        .with("instr_mem_utilization", s.instr_mem_utilization)
        .with("frame_mem_gbps", s.frame_mem_gbps)
        .with("frame_mem_wasted_bytes", s.frame_mem_wasted_bytes)
        .with("frame_mem_mean_latency_ps", s.frame_mem_mean_latency.0)
        .with("frame_mem_max_latency_ps", s.frame_mem_max_latency.0)
        .with("icache_hits", s.icache_hits)
        .with("icache_misses", s.icache_misses)
        .with("profile", profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn config_json_roundtrips_and_keeps_schema_keys() {
        let cfg = NicConfig::software_only_200();
        let doc = config_to_json(&cfg);
        let back = parse(&doc.pretty()).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("mode").unwrap().as_str(), Some("software-only"));
        assert_eq!(back.get("cpu_mhz").unwrap().as_f64(), Some(200.0));
        assert_eq!(
            back.get("icache").unwrap().get("bytes").unwrap().as_f64(),
            Some(8192.0)
        );
        assert_eq!(back.get("offered_tx_fps"), Some(&Json::Null));
    }

    #[test]
    fn mode_strings_are_stable() {
        assert_eq!(mode_str(FwMode::Ideal), "ideal");
        assert_eq!(mode_str(FwMode::SoftwareOnly), "software-only");
        assert_eq!(mode_str(FwMode::RmwEnhanced), "rmw-enhanced");
    }
}
