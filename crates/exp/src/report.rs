//! Structured results: one run's config + stats + wall-clock, a whole
//! sweep's report, and their stable JSON schema (`nicsim-exp/v1`).
//!
//! The schema is documented in the repository's `EXPERIMENTS.md`; the
//! golden/round-trip tests in this module pin it. Every numeric field
//! is serialized with shortest-roundtrip formatting, so two reports
//! built from bit-identical `RunStats` produce byte-identical JSON.

use crate::json::Json;
use nicsim::{FwMode, NicConfig, RunStats, StatValue};
use nicsim_cpu::FwFunc;
use std::time::Duration;

/// Version tag written into every results file.
pub const SCHEMA: &str = "nicsim-exp/v1";

/// The result of one simulated run: the configuration that produced
/// it, the measured statistics, and the host wall-clock cost.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Run label (`"axis=value,..."` within a sweep).
    pub label: String,
    /// `(axis name, point label)` coordinates within the sweep.
    pub axes: Vec<(String, String)>,
    /// The configuration simulated.
    pub config: NicConfig,
    /// Statistics of the measurement window.
    pub stats: RunStats,
    /// Per-frame latency stage breakdown, when the run was observed
    /// with a [`nicsim::FrameTracker`] probe (see
    /// [`latency_to_json`]); serialized under `"latency"` only when
    /// present, so unobserved runs keep their exact schema.
    pub latency: Option<Json>,
    /// Host wall-clock time the run took.
    pub wall: Duration,
}

impl RunReport {
    /// The run as a `nicsim-exp/v1` JSON object.
    pub fn to_json(&self) -> Json {
        let mut axes = Json::obj();
        for (name, value) in &self.axes {
            axes.set(name, value.as_str());
        }
        let mut doc = Json::obj()
            .with("label", self.label.as_str())
            .with("axes", axes)
            .with("config", config_to_json(&self.config))
            .with("stats", stats_to_json(&self.stats));
        if let Some(latency) = &self.latency {
            doc.set("latency", latency.clone());
        }
        doc.with("wall_s", self.wall.as_secs_f64())
    }
}

/// A [`nicsim::LatencySummary`] as a `nicsim-exp/v1` JSON object: frame
/// counts plus per-stage count/mean/p50/p99/max in picoseconds, for the
/// transmit and receive paths.
pub fn latency_to_json(summary: &nicsim::LatencySummary) -> Json {
    fn stages(list: &[nicsim::StageStats]) -> Json {
        let mut obj = Json::obj();
        for s in list {
            obj.set(
                s.name,
                Json::obj()
                    .with("count", s.count)
                    .with("mean_ps", s.mean_ps)
                    .with("p50_ps", s.p50_ps)
                    .with("p99_ps", s.p99_ps)
                    .with("max_ps", s.max_ps),
            );
        }
        obj
    }
    Json::obj()
        .with("tx_frames", summary.tx_frames)
        .with("rx_frames", summary.rx_frames)
        .with("tx_stages", stages(&summary.tx_stages))
        .with("rx_stages", stages(&summary.rx_stages))
}

/// The result of a whole experiment: every run plus methodology
/// metadata, writable as `results/<experiment>.json`.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Experiment name (the results file stem).
    pub experiment: String,
    /// Worker threads the sweep ran with.
    pub jobs: usize,
    /// Warm-up window, milliseconds of simulated time.
    pub warmup_ms: u64,
    /// Measurement window, milliseconds of simulated time.
    pub window_ms: u64,
    /// All runs, in declaration order (independent of execution order).
    pub runs: Vec<RunReport>,
    /// Wall-clock time of the whole experiment.
    pub wall: Duration,
    /// Experiment-specific derived data (e.g. a post-processed cache
    /// sweep), appended verbatim under `"extra"`.
    pub extra: Option<Json>,
}

impl SweepReport {
    /// The report as a `nicsim-exp/v1` JSON object. `git` is the
    /// source revision (see [`crate::git_describe`]).
    pub fn to_json(&self, git: Option<&str>) -> Json {
        let mut doc = Json::obj()
            .with("schema", SCHEMA)
            .with("experiment", self.experiment.as_str())
            .with("git", git)
            .with("jobs", self.jobs)
            .with("warmup_ms", self.warmup_ms)
            .with("window_ms", self.window_ms)
            .with("wall_s", self.wall.as_secs_f64())
            .with(
                "runs",
                Json::Arr(self.runs.iter().map(RunReport::to_json).collect()),
            );
        if let Some(extra) = &self.extra {
            doc.set("extra", extra.clone());
        }
        doc
    }
}

/// `FwMode` as its schema string.
pub fn mode_str(mode: FwMode) -> &'static str {
    match mode {
        FwMode::Ideal => "ideal",
        FwMode::SoftwareOnly => "software-only",
        FwMode::RmwEnhanced => "rmw-enhanced",
    }
}

/// A [`NicConfig`] as a `nicsim-exp/v1` JSON object, carrying the full
/// resolved configuration — including the frame-side `"topology"` — so
/// every result row can be rebuilt and re-run exactly (see
/// [`config_from_json`]). The `"faults"` key (the fault plan's spec
/// string) appears only when a plan is configured, and the
/// `"dispatch"` / `"capture_ilp"` keys only under their non-default
/// settings, so pre-existing reports keep their exact schema.
pub fn config_to_json(cfg: &NicConfig) -> Json {
    let mut doc = Json::obj()
        .with("cores", cfg.cores)
        .with("cpu_mhz", cfg.cpu_mhz)
        .with("banks", cfg.banks)
        .with("scratchpad_bytes", cfg.scratchpad_bytes)
        .with(
            "icache",
            Json::obj()
                .with("bytes", cfg.icache.bytes)
                .with("ways", cfg.icache.ways)
                .with("line_bytes", cfg.icache.line_bytes),
        )
        .with(
            "frame_memory",
            Json::obj()
                .with("mhz", cfg.frame_memory.freq.as_mhz())
                .with("bytes_per_cycle", cfg.frame_memory.bytes_per_cycle)
                .with("banks", u64::from(cfg.frame_memory.banks))
                .with("row_bytes", u64::from(cfg.frame_memory.row_bytes))
                .with("row_miss_cycles", cfg.frame_memory.row_miss_cycles)
                .with(
                    "access_latency_cycles",
                    cfg.frame_memory.access_latency_cycles,
                )
                .with("capacity", u64::from(cfg.frame_memory.capacity)),
        )
        .with("mode", mode_str(cfg.mode))
        .with("udp_payload", cfg.udp_payload)
        .with("send_enabled", cfg.send_enabled)
        .with("recv_enabled", cfg.recv_enabled)
        .with("offered_tx_fps", cfg.offered_tx_fps)
        .with("offered_rx_fps", cfg.offered_rx_fps)
        .with("driver_interval", cfg.driver_interval)
        .with(
            "topology",
            Json::obj()
                .with("dma_engines", cfg.topology.dma_engines)
                .with("macs", cfg.topology.macs),
        );
    if let Some(plan) = &cfg.faults {
        doc.set("faults", plan.spec().as_str());
    }
    if cfg.dispatch == nicsim::DispatchMode::Interrupt {
        doc.set("dispatch", "interrupt");
    }
    if cfg.capture_ilp {
        doc.set("capture_ilp", true);
    }
    doc
}

/// Rebuild a [`NicConfig`] from its `nicsim-exp/v1` JSON object — the
/// inverse of [`config_to_json`]. Goes through
/// [`NicConfig::builder`], so a reconstructed configuration is always
/// validated; any missing key, malformed value, or invalid combination
/// is reported as an error string.
pub fn config_from_json(doc: &Json) -> Result<NicConfig, String> {
    fn int(doc: &Json, key: &str) -> Result<u64, String> {
        doc.get(key)
            .and_then(Json::as_f64)
            .map(|v| v as u64)
            .ok_or_else(|| format!("missing numeric config key `{key}`"))
    }
    fn flag(doc: &Json, key: &str) -> Result<bool, String> {
        match doc.get(key) {
            Some(Json::Bool(b)) => Ok(*b),
            _ => Err(format!("missing boolean config key `{key}`")),
        }
    }
    fn rate(doc: &Json, key: &str) -> Option<f64> {
        match doc.get(key) {
            Some(Json::Num(v)) => Some(*v),
            _ => None,
        }
    }
    let icache = doc.get("icache").ok_or("missing `icache` object")?;
    let fm = doc
        .get("frame_memory")
        .ok_or("missing `frame_memory` object")?;
    let mode = match doc.get("mode").and_then(Json::as_str) {
        Some("ideal") => FwMode::Ideal,
        Some("software-only") => FwMode::SoftwareOnly,
        Some("rmw-enhanced") => FwMode::RmwEnhanced,
        other => return Err(format!("unknown firmware mode {other:?}")),
    };
    let mut b = NicConfig::builder()
        .cores(int(doc, "cores")? as usize)
        .cpu_mhz(int(doc, "cpu_mhz")?)
        .banks(int(doc, "banks")? as usize)
        .scratchpad_bytes(int(doc, "scratchpad_bytes")? as usize)
        .icache(nicsim_mem::ICacheConfig {
            bytes: int(icache, "bytes")? as usize,
            ways: int(icache, "ways")? as usize,
            line_bytes: int(icache, "line_bytes")? as usize,
        })
        .frame_memory(nicsim_mem::FrameMemoryConfig {
            freq: nicsim_sim::Freq::from_mhz(int(fm, "mhz")?),
            bytes_per_cycle: int(fm, "bytes_per_cycle")?,
            banks: int(fm, "banks")? as u32,
            row_bytes: int(fm, "row_bytes")? as u32,
            row_miss_cycles: int(fm, "row_miss_cycles")?,
            access_latency_cycles: int(fm, "access_latency_cycles")?,
            capacity: int(fm, "capacity")? as u32,
        })
        .mode(mode)
        .udp_payload(int(doc, "udp_payload")? as usize)
        .send_enabled(flag(doc, "send_enabled")?)
        .recv_enabled(flag(doc, "recv_enabled")?)
        .offered_tx_fps(rate(doc, "offered_tx_fps"))
        .offered_rx_fps(rate(doc, "offered_rx_fps"))
        .driver_interval(int(doc, "driver_interval")?);
    if let Some(t) = doc.get("topology") {
        b = b
            .dma_engines(int(t, "dma_engines")? as usize)
            .macs(int(t, "macs")? as usize);
    }
    if let Some(spec) = doc.get("faults").and_then(Json::as_str) {
        b = b.faults_spec(spec).map_err(|e| e.to_string())?;
    }
    if doc.get("dispatch").and_then(Json::as_str) == Some("interrupt") {
        b = b.dispatch(nicsim::DispatchMode::Interrupt);
    }
    if matches!(doc.get("capture_ilp"), Some(Json::Bool(true))) {
        b = b.capture_ilp(true);
    }
    b.build().map_err(|e| e.to_string())
}

/// A [`RunStats`] as a `nicsim-exp/v1` JSON object.
///
/// Scalar fields come from [`RunStats::summary`] — names, order, and
/// values are whatever that versioned surface reports — with the two
/// structured members spliced in at their schema positions: the
/// per-bucket IPC breakdown right after `ipc`, the per-function
/// profile last.
pub fn stats_to_json(s: &RunStats) -> Json {
    let mut breakdown = Json::obj();
    for (label, share) in s.stall_shares() {
        breakdown.set(label, share);
    }
    let mut profile = Json::obj();
    for f in FwFunc::ALL {
        let p = s.profile.func(f);
        profile.set(
            f.label(),
            Json::obj()
                .with("instructions", p.instructions)
                .with("mem_accesses", p.mem_accesses)
                .with("cycles", p.cycles.to_vec()),
        );
    }
    let mut doc = Json::obj();
    for (name, value) in s.summary() {
        match value {
            StatValue::Int(v) => doc.set(name, v),
            StatValue::Float(v) => doc.set(name, v),
        };
        if name == "ipc" {
            doc.set("ipc_breakdown", breakdown.clone());
        }
    }
    doc.with("profile", profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn config_json_roundtrips_and_keeps_schema_keys() {
        let cfg = NicConfig::software_only_200();
        let doc = config_to_json(&cfg);
        let back = parse(&doc.pretty()).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("mode").unwrap().as_str(), Some("software-only"));
        assert_eq!(back.get("cpu_mhz").unwrap().as_f64(), Some(200.0));
        assert_eq!(
            back.get("icache").unwrap().get("bytes").unwrap().as_f64(),
            Some(8192.0)
        );
        assert_eq!(back.get("offered_tx_fps"), Some(&Json::Null));
        assert_eq!(back.get("faults"), None, "clean configs carry no key");
        assert_eq!(back.get("dispatch"), None, "polling configs carry no key");
    }

    #[test]
    fn interrupt_dispatch_serializes_its_key() {
        use nicsim::DispatchMode;
        let cfg = NicConfig::builder()
            .dispatch(DispatchMode::Interrupt)
            .build()
            .unwrap();
        let doc = config_to_json(&cfg);
        assert_eq!(doc.get("dispatch").unwrap().as_str(), Some("interrupt"));
    }

    #[test]
    fn fault_plan_serializes_as_its_spec_string() {
        use nicsim::FaultPlan;
        let plan = FaultPlan::with_rate(7, 1e-4);
        let cfg = NicConfig::builder().faults(Some(plan)).build().unwrap();
        let doc = config_to_json(&cfg);
        let spec = doc.get("faults").unwrap().as_str().unwrap();
        assert_eq!(FaultPlan::parse(spec), Ok(plan), "spec must round-trip");
    }

    #[test]
    fn config_round_trips_through_from_json() {
        use nicsim::{DispatchMode, FaultPlan};
        // Default configuration: every field recovered exactly.
        let default = NicConfig::default();
        assert_eq!(
            config_from_json(&config_to_json(&default)),
            Ok(default),
            "default config must round-trip"
        );
        // A maximally non-default configuration, topology included.
        let cfg = NicConfig::builder()
            .cores(4)
            .cpu_mhz(200)
            .banks(8)
            .udp_payload(512)
            .mode(FwMode::SoftwareOnly)
            .dispatch(DispatchMode::Interrupt)
            .offered_tx_fps(Some(250_000.0))
            .capture_ilp(false)
            .faults(Some(FaultPlan::with_rate(7, 1e-4)))
            .dma_engines(2)
            .macs(2)
            .build()
            .unwrap();
        let doc = config_to_json(&cfg);
        assert_eq!(
            doc.get("topology")
                .and_then(|t| t.get("dma_engines"))
                .and_then(Json::as_f64),
            Some(2.0)
        );
        assert_eq!(config_from_json(&doc), Ok(cfg), "sweep config round-trip");
        // A mangled document fails loudly instead of defaulting.
        let broken = Json::obj().with("mode", "no-such-mode");
        assert!(config_from_json(&broken).is_err());
    }

    #[test]
    fn mode_strings_are_stable() {
        assert_eq!(mode_str(FwMode::Ideal), "ideal");
        assert_eq!(mode_str(FwMode::SoftwareOnly), "software-only");
        assert_eq!(mode_str(FwMode::RmwEnhanced), "rmw-enhanced");
    }
}
