//! Declarative sweep descriptions: named axes over a base
//! configuration, expanded into the cartesian product of labeled runs.
//!
//! A sweep is *declared*, not hand-looped, so every bench binary states
//! what it varies and the engine handles expansion, validation,
//! parallel execution, and results serialization uniformly:
//!
//! ```
//! use nicsim::{FwMode, NicConfig};
//! use nicsim_exp::Sweep;
//!
//! let base = NicConfig::builder()
//!     .mode(FwMode::SoftwareOnly)
//!     .build()
//!     .unwrap();
//! let sweep = Sweep::new(base)
//!     .axis("cpu_mhz", [100u64, 166, 200], |cfg, v| cfg.cpu_mhz = v)
//!     .axis("cores", [2usize, 4], |cfg, v| cfg.cores = v);
//! let runs = sweep.runs().unwrap();
//! assert_eq!(runs.len(), 6);
//! assert_eq!(runs[0].label, "cpu_mhz=100,cores=2");
//! assert_eq!(runs[5].cfg.cpu_mhz, 200);
//! ```

use nicsim::{ConfigError, NicConfig};
use std::fmt::Display;
use std::sync::Arc;

/// A configuration edit applied by one axis point.
type Apply = Arc<dyn Fn(&mut NicConfig) + Send + Sync>;

/// One named dimension of a sweep.
struct Axis {
    name: String,
    points: Vec<(String, Apply)>,
}

/// A declared experiment sweep: a base configuration plus named axes.
///
/// Axes are applied in declaration order; the run order is the
/// cartesian product with the *last* axis varying fastest (row-major,
/// like nested `for` loops in declaration order).
pub struct Sweep {
    base: NicConfig,
    axes: Vec<Axis>,
}

/// One expanded run of a sweep: its label, its axis coordinates, and
/// the fully-applied configuration.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// `"axis=value,axis=value"`, or `"run"` for an axis-free sweep.
    pub label: String,
    /// `(axis name, point label)` pairs in axis order.
    pub axes: Vec<(String, String)>,
    /// The configuration this run simulates.
    pub cfg: NicConfig,
}

impl RunSpec {
    /// A single labeled run outside any sweep.
    pub fn single(label: &str, cfg: NicConfig) -> RunSpec {
        RunSpec {
            label: label.to_string(),
            axes: Vec::new(),
            cfg,
        }
    }
}

impl Sweep {
    /// Start a sweep from a base configuration.
    pub fn new(base: NicConfig) -> Sweep {
        Sweep {
            base,
            axes: Vec::new(),
        }
    }

    /// Add an axis whose points are `values`, each applied to the
    /// configuration by `apply` and labeled with its `Display` form.
    #[must_use]
    pub fn axis<T, I, F>(self, name: &str, values: I, apply: F) -> Sweep
    where
        T: Display + Copy + Send + Sync + 'static,
        I: IntoIterator<Item = T>,
        F: Fn(&mut NicConfig, T) + Send + Sync + Clone + 'static,
    {
        let points = values
            .into_iter()
            .map(|v| {
                let apply = apply.clone();
                let f: Apply = Arc::new(move |cfg: &mut NicConfig| apply(cfg, v));
                (v.to_string(), f)
            })
            .collect();
        self.push_axis(name, points)
    }

    /// Add an axis of arbitrarily-labeled configuration edits — for
    /// dimensions with no single scalar value, such as firmware
    /// variants or whole preset configurations.
    #[must_use]
    pub fn axis_labeled<F>(
        self,
        name: &str,
        points: impl IntoIterator<Item = (&'static str, F)>,
    ) -> Sweep
    where
        F: Fn(&mut NicConfig) + Send + Sync + 'static,
    {
        let points = points
            .into_iter()
            .map(|(label, f)| (label.to_string(), Arc::new(f) as Apply))
            .collect();
        self.push_axis(name, points)
    }

    /// Add an axis that replaces the whole configuration per point —
    /// for comparisons between presets (e.g. ideal vs software-only vs
    /// RMW). Usually the only axis, or the first one.
    #[must_use]
    pub fn axis_configs(
        self,
        name: &str,
        points: impl IntoIterator<Item = (&'static str, NicConfig)>,
    ) -> Sweep {
        let points = points
            .into_iter()
            .map(|(label, cfg)| {
                let f: Apply = Arc::new(move |c: &mut NicConfig| *c = cfg);
                (label.to_string(), f)
            })
            .collect();
        self.push_axis(name, points)
    }

    fn push_axis(mut self, name: &str, points: Vec<(String, Apply)>) -> Sweep {
        assert!(!points.is_empty(), "axis '{name}' has no points");
        self.axes.push(Axis {
            name: name.to_string(),
            points,
        });
        self
    }

    /// Number of runs in the cartesian product.
    pub fn len(&self) -> usize {
        self.axes.iter().map(|a| a.points.len()).product()
    }

    /// Whether the sweep expands to no runs (never true: an axis-free
    /// sweep is one run of the base configuration).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Expand the cartesian product into labeled, validated run specs.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] any expanded configuration
    /// violates, so an invalid sweep fails before any run starts.
    pub fn runs(&self) -> Result<Vec<RunSpec>, ConfigError> {
        let total = self.len();
        let mut specs = Vec::with_capacity(total);
        for mut idx in 0..total {
            // Decompose idx into per-axis indices, last axis fastest.
            let mut coords = vec![0usize; self.axes.len()];
            for (slot, axis) in self.axes.iter().enumerate().rev() {
                coords[slot] = idx % axis.points.len();
                idx /= axis.points.len();
            }
            let mut cfg = self.base;
            let mut axes = Vec::with_capacity(self.axes.len());
            for (axis, &i) in self.axes.iter().zip(&coords) {
                let (label, apply) = &axis.points[i];
                apply(&mut cfg);
                axes.push((axis.name.clone(), label.clone()));
            }
            cfg.validate()?;
            let label = if axes.is_empty() {
                "run".to_string()
            } else {
                axes.iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(",")
            };
            specs.push(RunSpec { label, axes, cfg });
        }
        Ok(specs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nicsim::FwMode;

    #[test]
    fn cartesian_product_is_row_major_and_labeled() {
        let sweep = Sweep::new(NicConfig::default())
            .axis("cores", [1usize, 2], |c, v| c.cores = v)
            .axis("cpu_mhz", [100u64, 200, 300], |c, v| c.cpu_mhz = v);
        let runs = sweep.runs().unwrap();
        assert_eq!(runs.len(), 6);
        assert_eq!(runs[0].label, "cores=1,cpu_mhz=100");
        assert_eq!(runs[1].label, "cores=1,cpu_mhz=200");
        assert_eq!(runs[3].label, "cores=2,cpu_mhz=100");
        assert_eq!((runs[4].cfg.cores, runs[4].cfg.cpu_mhz), (2, 200));
        assert_eq!(
            runs[4].axes,
            vec![
                ("cores".to_string(), "2".to_string()),
                ("cpu_mhz".to_string(), "200".to_string()),
            ]
        );
    }

    #[test]
    fn axis_free_sweep_is_one_base_run() {
        let runs = Sweep::new(NicConfig::default()).runs().unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].label, "run");
        assert!(runs[0].axes.is_empty());
    }

    #[test]
    fn invalid_point_fails_expansion_up_front() {
        let sweep = Sweep::new(NicConfig::default()).axis("cores", [1usize, 0], |c, v| c.cores = v);
        assert!(sweep.runs().is_err());
    }

    #[test]
    fn config_axis_replaces_whole_configuration() {
        let sweep = Sweep::new(NicConfig::default()).axis_configs(
            "firmware",
            [
                ("ideal", NicConfig::ideal()),
                ("software", NicConfig::software_only_200()),
                ("rmw", NicConfig::rmw_166()),
            ],
        );
        let runs = sweep.runs().unwrap();
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0].cfg.mode, FwMode::Ideal);
        assert_eq!(runs[1].label, "firmware=software");
        assert_eq!(runs[2].cfg.mode, FwMode::RmwEnhanced);
    }
}
