//! The experiment engine: run configurations — serially or across a
//! pool of work-stealing worker threads — with the standard measurement
//! methodology, and persist structured results.
//!
//! Each `NicSystem` is single-threaded and fully deterministic, so the
//! runs of a sweep are embarrassingly parallel: workers pull the next
//! un-started run off a shared counter, and results land in declaration
//! order regardless of completion order. A sweep therefore produces
//! bit-identical statistics whether it runs with `--jobs 1` or
//! `--jobs 32` (asserted by `tests/determinism`).

use crate::json::Json;
use crate::report::{RunReport, SweepReport};
use crate::sweep::{RunSpec, Sweep};
use nicsim::{ConfigError, FaultPlan, NicConfig, NicSystem, Probe, RunStats};
use nicsim_sim::Ps;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// A named experiment: measurement windows, worker count, and results
/// location. The single entry point for running configurations —
/// one-offs ([`run`](Experiment::run)) and declared sweeps
/// ([`sweep`](Experiment::sweep)) share the same methodology.
pub struct Experiment {
    name: String,
    warmup: Ps,
    window: Ps,
    jobs: usize,
    out_dir: PathBuf,
    quiet: bool,
    trace_path: Option<PathBuf>,
    faults: Option<FaultPlan>,
    started: Instant,
}

impl Experiment {
    /// Create an experiment from the environment:
    ///
    /// * `NICSIM_QUICK=1` shrinks the warm-up/measure windows from
    ///   2 ms/4 ms to 1 ms/1 ms of simulated time (smoke runs);
    /// * `NICSIM_JOBS=<n>` sets the worker count (default: available
    ///   hardware parallelism);
    /// * `NICSIM_RESULTS_DIR=<dir>` overrides the `results/` output
    ///   directory;
    /// * `NICSIM_QUIET=1` silences per-run progress on stderr.
    pub fn new(name: &str) -> Experiment {
        let (warmup_ms, window_ms) = if env_is("NICSIM_QUICK", "1") {
            (1, 1)
        } else {
            (2, 4)
        };
        let jobs = std::env::var("NICSIM_JOBS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(default_jobs);
        let out_dir = std::env::var("NICSIM_RESULTS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results"));
        Experiment {
            name: name.to_string(),
            warmup: Ps::from_ms(warmup_ms),
            window: Ps::from_ms(window_ms),
            jobs,
            out_dir,
            quiet: env_is("NICSIM_QUIET", "1"),
            trace_path: None,
            faults: None,
            started: Instant::now(),
        }
    }

    /// [`Experiment::new`] plus command-line overrides: `--jobs <n>`
    /// (or `--jobs=<n>`), `--quiet`, `--trace <path>` (or
    /// `--trace=<path>`: ask the binary to emit a Chrome `trace_event`
    /// JSON file there — binaries opt in via
    /// [`Experiment::trace_path`]), and `--faults <spec>` (or
    /// `--faults=<spec>`: a [`FaultPlan::parse`] spec such as
    /// `seed=7,rate=1e-4` — binaries opt in by applying
    /// [`Experiment::faults`] to their configurations). Unrecognized
    /// arguments are ignored so binaries can layer their own flags.
    pub fn from_args(name: &str) -> Experiment {
        let mut exp = Experiment::new(name);
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            if arg == "--quiet" {
                exp.quiet = true;
            } else if let Some(v) = arg.strip_prefix("--jobs=") {
                exp = exp.jobs(parse_jobs(v));
            } else if arg == "--jobs" {
                i += 1;
                let v = args.get(i).unwrap_or_else(|| usage_jobs());
                exp = exp.jobs(parse_jobs(v));
            } else if let Some(v) = arg.strip_prefix("--trace=") {
                exp.trace_path = Some(PathBuf::from(v));
            } else if arg == "--trace" {
                i += 1;
                let v = args.get(i).unwrap_or_else(|| usage_trace());
                exp.trace_path = Some(PathBuf::from(v));
            } else if let Some(v) = arg.strip_prefix("--faults=") {
                exp.faults = Some(parse_faults(v));
            } else if arg == "--faults" {
                i += 1;
                let v = args.get(i).unwrap_or_else(|| usage_faults());
                exp.faults = Some(parse_faults(v));
            }
            i += 1;
        }
        exp
    }

    /// Where `--trace <path>` asked for a Chrome `trace_event` JSON
    /// file, if it did. Binaries that support tracing check this and
    /// run their traced configuration through
    /// [`Experiment::run_with_probe`] with a
    /// [`nicsim::ChromeTrace`] sink.
    pub fn trace_path(&self) -> Option<&std::path::Path> {
        self.trace_path.as_deref()
    }

    /// The fault plan `--faults <spec>` asked for, if any. Binaries
    /// that support fault injection apply it to every configuration
    /// they run (`cfg.faults = exp.faults()`); under a plan the engine
    /// skips the end-to-end cleanliness assertions — drops and retries
    /// are the point — and the report carries `err_*` counters plus the
    /// plan's spec string.
    pub fn faults(&self) -> Option<FaultPlan> {
        self.faults
    }

    /// Set the fault plan programmatically (the `--faults` equivalent).
    #[must_use]
    pub fn with_faults(mut self, plan: Option<FaultPlan>) -> Experiment {
        self.faults = plan;
        self
    }

    /// Override the worker-thread count (clamped to at least 1).
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Experiment {
        self.jobs = jobs.max(1);
        self
    }

    /// Override the warm-up and measurement windows (milliseconds of
    /// simulated time).
    #[must_use]
    pub fn windows_ms(mut self, warmup_ms: u64, window_ms: u64) -> Experiment {
        self.warmup = Ps::from_ms(warmup_ms);
        self.window = Ps::from_ms(window_ms);
        self
    }

    /// Override the results directory.
    #[must_use]
    pub fn out_dir(mut self, dir: impl Into<PathBuf>) -> Experiment {
        self.out_dir = dir.into();
        self
    }

    /// Silence per-run progress reporting.
    #[must_use]
    pub fn quiet(mut self) -> Experiment {
        self.quiet = true;
        self
    }

    /// The experiment name (and results file stem).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The configured worker count.
    pub fn jobs_configured(&self) -> usize {
        self.jobs
    }

    /// The configured warm-up window (simulated time).
    pub fn warmup(&self) -> Ps {
        self.warmup
    }

    /// The configured measurement window (simulated time).
    pub fn window(&self) -> Ps {
        self.window
    }

    /// Run one configuration with the standard methodology (warm up,
    /// measure, validate every frame) and return its report.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid ([`Experiment::try_run`]
    /// returns the error instead) or if end-to-end validation fails.
    pub fn run(&self, cfg: NicConfig) -> RunReport {
        self.run_spec(&RunSpec::single("run", cfg))
    }

    /// [`Experiment::run`] with a run label.
    ///
    /// # Panics
    ///
    /// Same contract as [`Experiment::run`].
    pub fn run_labeled(&self, label: &str, cfg: NicConfig) -> RunReport {
        self.run_spec(&RunSpec::single(label, cfg))
    }

    /// Fallible [`Experiment::run`].
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the configuration is invalid.
    pub fn try_run(&self, cfg: NicConfig) -> Result<RunReport, ConfigError> {
        cfg.validate()?;
        Ok(self.run(cfg))
    }

    /// Run one configuration and also return the simulated system for
    /// post-run inspection (trace extraction for the coherence and ILP
    /// studies).
    ///
    /// # Panics
    ///
    /// Same contract as [`Experiment::run`].
    pub fn run_with_system(&self, label: &str, cfg: NicConfig) -> (RunReport, NicSystem) {
        self.run_with_probe(label, cfg, nicsim::NullProbe)
    }

    /// Run one configuration with an observability probe attached —
    /// every frame-lifecycle event of warmup and window goes to
    /// `probe` — and return the report plus the probed system (extract
    /// the probe with [`NicSystem::unwrap_probe`] or inspect it via
    /// [`NicSystem::probe`]).
    ///
    /// # Panics
    ///
    /// Same contract as [`Experiment::run`].
    pub fn run_with_probe<P: Probe>(
        &self,
        label: &str,
        cfg: NicConfig,
        probe: P,
    ) -> (RunReport, NicSystem<P>) {
        let start = Instant::now();
        let mut sys = match NicSystem::build(cfg).probe(probe).finish() {
            Ok(sys) => sys,
            Err(e) => panic!("run '{label}': invalid NicConfig: {e}"),
        };
        let stats = sys.run_measured(self.warmup, self.window);
        if cfg.faults.is_none() {
            stats.assert_clean();
        }
        let report = RunReport {
            label: label.to_string(),
            axes: Vec::new(),
            config: cfg,
            stats,
            latency: None,
            wall: start.elapsed(),
        };
        self.progress(1, 1, &report);
        (report, sys)
    }

    /// Expand and run a declared sweep across the worker pool, in
    /// parallel, returning reports in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if any expanded configuration is invalid (use
    /// [`Experiment::try_sweep`]) or any run fails validation.
    pub fn sweep(&self, sweep: &Sweep) -> SweepReport {
        match self.try_sweep(sweep) {
            Ok(report) => report,
            Err(e) => panic!("experiment '{}': invalid sweep: {e}", self.name),
        }
    }

    /// Fallible [`Experiment::sweep`].
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when any expanded configuration is
    /// invalid; nothing runs in that case.
    pub fn try_sweep(&self, sweep: &Sweep) -> Result<SweepReport, ConfigError> {
        let specs = sweep.runs()?;
        Ok(self.run_specs(specs))
    }

    /// Run an explicit list of specs across the worker pool and collect
    /// a report (the lower-level form of [`Experiment::sweep`]).
    ///
    /// # Panics
    ///
    /// Panics if any configuration is invalid or fails validation.
    pub fn run_specs(&self, specs: Vec<RunSpec>) -> SweepReport {
        let total = specs.len();
        let jobs = self.jobs.min(total).max(1);
        let runs: Vec<RunReport> = if jobs == 1 {
            // Serial fast path: no threads, same run order.
            specs
                .iter()
                .enumerate()
                .map(|(i, spec)| {
                    let r = self.run_spec_silent(spec);
                    self.progress(i + 1, total, &r);
                    r
                })
                .collect()
        } else {
            self.run_parallel(&specs, jobs)
        };
        self.report(runs)
    }

    /// Work-stealing parallel execution: `jobs` scoped workers pull the
    /// next un-started spec from a shared counter until none remain.
    fn run_parallel(&self, specs: &[RunSpec], jobs: usize) -> Vec<RunReport> {
        let total = specs.len();
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<RunReport>>> = (0..total).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let report = self.run_spec_silent(&specs[i]);
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    self.progress(finished, total, &report);
                    *slots[i].lock().expect("result slot") = Some(report);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot")
                    .expect("every spec ran to completion")
            })
            .collect()
    }

    /// Wrap finished runs into a [`SweepReport`] carrying this
    /// experiment's methodology metadata.
    pub fn report(&self, runs: Vec<RunReport>) -> SweepReport {
        SweepReport {
            experiment: self.name.clone(),
            jobs: self.jobs,
            warmup_ms: ps_to_ms(self.warmup),
            window_ms: ps_to_ms(self.window),
            runs,
            wall: self.started.elapsed(),
            extra: None,
        }
    }

    /// Serialize a report to `<out_dir>/<experiment>.json` and return
    /// the path.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or writing
    /// the file.
    pub fn write(&self, report: &SweepReport) -> io::Result<PathBuf> {
        std::fs::create_dir_all(&self.out_dir)?;
        let path = self.out_dir.join(format!("{}.json", report.experiment));
        std::fs::write(&path, report.to_json(git_describe()).pretty())?;
        if !self.quiet {
            eprintln!("wrote {}", path.display());
        }
        Ok(path)
    }

    /// Run a report through [`Experiment::report`] + [`Experiment::write`]
    /// in one call: the common tail of every bench binary.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from [`Experiment::write`].
    pub fn finish(&self, runs: Vec<RunReport>, extra: Option<Json>) -> io::Result<SweepReport> {
        let mut report = self.report(runs);
        report.extra = extra;
        self.write(&report)?;
        Ok(report)
    }

    fn run_spec(&self, spec: &RunSpec) -> RunReport {
        let report = self.run_spec_silent(spec);
        self.progress(1, 1, &report);
        report
    }

    /// Execute one spec without progress output (workers report on
    /// completion themselves so counters stay monotone).
    fn run_spec_silent(&self, spec: &RunSpec) -> RunReport {
        let start = Instant::now();
        let mut sys = match NicSystem::build(spec.cfg).finish() {
            Ok(sys) => sys,
            Err(e) => panic!("run '{}': invalid NicConfig: {e}", spec.label),
        };
        let stats = sys.run_measured(self.warmup, self.window);
        if spec.cfg.faults.is_none() {
            assert_run_clean(&spec.label, &stats);
        }
        RunReport {
            label: spec.label.clone(),
            axes: spec.axes.clone(),
            config: spec.cfg,
            stats,
            latency: None,
            wall: start.elapsed(),
        }
    }

    fn progress(&self, finished: usize, total: usize, report: &RunReport) {
        if !self.quiet {
            eprintln!(
                "[{}] [{finished}/{total}] {}: {:.2} Gb/s duplex ({:.1}s)",
                self.name,
                report.label,
                report.stats.total_udp_gbps(),
                report.wall.as_secs_f64()
            );
        }
    }
}

fn assert_run_clean(label: &str, stats: &RunStats) {
    assert!(
        stats.tx_errors == 0 && stats.rx_corrupt == 0 && stats.rx_out_of_order == 0,
        "run '{label}' failed end-to-end validation: {} tx errors, {} corrupt, {} out of order",
        stats.tx_errors,
        stats.rx_corrupt,
        stats.rx_out_of_order
    );
}

fn ps_to_ms(ps: Ps) -> u64 {
    ps.0 / 1_000_000_000
}

fn env_is(key: &str, value: &str) -> bool {
    std::env::var(key).is_ok_and(|v| v == value)
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn parse_jobs(v: &str) -> usize {
    v.parse()
        .ok()
        .filter(|&n| n > 0)
        .unwrap_or_else(|| usage_jobs())
}

fn usage_jobs() -> ! {
    eprintln!("usage: --jobs <positive integer>");
    std::process::exit(2)
}

fn usage_trace() -> ! {
    eprintln!("usage: --trace <output path>");
    std::process::exit(2)
}

fn parse_faults(v: &str) -> FaultPlan {
    // Validated through the same builder path configurations take, so
    // `--faults` and `NicConfigBuilder::faults_spec` share one grammar
    // and one error surface.
    let built = NicConfig::builder()
        .faults_spec(v)
        .and_then(|b| b.build())
        .unwrap_or_else(|e| {
            eprintln!("--faults {v}: {e}");
            std::process::exit(2)
        });
    built.faults.expect("faults_spec installs a plan")
}

fn usage_faults() -> ! {
    eprintln!("usage: --faults <spec>, e.g. --faults seed=7,rate=1e-4");
    std::process::exit(2)
}

/// `git describe --always --dirty` of the working tree, cached for the
/// process; `None` when git or the repository is unavailable.
pub fn git_describe() -> Option<&'static str> {
    static GIT: OnceLock<Option<String>> = OnceLock::new();
    GIT.get_or_init(|| {
        let out = std::process::Command::new("git")
            .args(["describe", "--always", "--dirty", "--tags"])
            .output()
            .ok()?;
        if !out.status.success() {
            return None;
        }
        let s = String::from_utf8(out.stdout).ok()?.trim().to_string();
        (!s.is_empty()).then_some(s)
    })
    .as_deref()
}
