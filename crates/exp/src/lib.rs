//! # nicsim-exp — the experiment engine
//!
//! Declarative, parallel, reproducible experiments over the `nicsim`
//! full-system simulator:
//!
//! * [`Sweep`] describes an experiment as named axes over a base
//!   [`NicConfig`](nicsim::NicConfig); the engine expands the cartesian
//!   product into labeled runs and validates every configuration before
//!   anything executes.
//! * [`Experiment`] runs configurations with the paper's standard
//!   methodology (warm up, measure a steady-state window, validate every
//!   frame end to end). Sweeps run across a pool of work-stealing
//!   worker threads — each `NicSystem` is single-threaded and
//!   deterministic, so runs are embarrassingly parallel and results are
//!   bit-identical at any `--jobs` count.
//! * [`RunReport`] / [`SweepReport`] carry config + stats + wall-clock
//!   for every run, and serialize to `results/<experiment>.json` in the
//!   stable, dependency-free `nicsim-exp/v1` schema ([`json::Json`] is
//!   a hand-rolled writer/parser; see `EXPERIMENTS.md` for the schema).
//!
//! ```no_run
//! use nicsim::{FwMode, NicConfig};
//! use nicsim_exp::{Experiment, Sweep};
//!
//! let exp = Experiment::from_args("freq_scan"); // honors --jobs N
//! let sweep = Sweep::new(NicConfig::default())
//!     .axis("cpu_mhz", [100u64, 166, 200], |cfg, v| cfg.cpu_mhz = v);
//! let report = exp.sweep(&sweep);
//! for run in &report.runs {
//!     println!("{}: {:.2} Gb/s", run.label, run.stats.total_udp_gbps());
//! }
//! exp.write(&report).unwrap(); // results/freq_scan.json
//! ```

pub mod engine;
pub mod json;
pub mod report;
pub mod sweep;

pub use engine::{git_describe, Experiment};
pub use json::Json;
pub use report::{
    config_from_json, config_to_json, latency_to_json, mode_str, stats_to_json, RunReport,
    SweepReport, SCHEMA,
};
pub use sweep::{RunSpec, Sweep};
