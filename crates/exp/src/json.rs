//! A minimal, dependency-free JSON document model with a writer and a
//! parser.
//!
//! The experiment engine runs in a container with no access to
//! crates.io, so results serialization is hand-rolled. The subset is
//! full JSON with two deliberate choices:
//!
//! * objects preserve insertion order (results files diff cleanly), and
//! * non-finite numbers serialize as `null` (JSON has no NaN/Inf).
//!
//! Serialization of `f64` uses Rust's shortest-roundtrip formatting, so
//! identical bit patterns always produce identical text — the property
//! the sweep-determinism test relies on.

use std::fmt::Write as _;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Serialized as an integer when it is one.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, keys assumed unique.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Parse a JSON document (associated-function form of [`parse`]).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed input or trailing garbage.
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        parse(input)
    }

    /// Insert `key: value` into an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Builder-style [`set`](Json::set).
    #[must_use]
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.set(key, value);
        self
    }

    /// Look a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize with 2-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serialize compactly (no whitespace).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, usize::MAX);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let compact = indent == usize::MAX;
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if !compact {
                        newline(out, indent + 1);
                    }
                    item.write(out, if compact { indent } else { indent + 1 });
                }
                if !compact {
                    newline(out, indent);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if !compact {
                        newline(out, indent + 1);
                    }
                    write_str(out, k);
                    out.push(':');
                    if !compact {
                        out.push(' ');
                    }
                    v.write(out, if compact { indent } else { indent + 1 });
                }
                if !compact {
                    newline(out, indent);
                }
                out.push('}');
            }
        }
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 9_007_199_254_740_992.0 {
        // Integral and exactly representable: print without the ".0".
        let _ = write!(out, "{}", v as i64);
    } else if v.abs() >= 1e21 || v.abs() < 1e-6 {
        // Display never uses exponent notation, which would expand
        // extreme magnitudes into hundreds of digits.
        let _ = write!(out, "{v:e}");
    } else {
        // Rust's shortest round-trip float formatting.
        let _ = write!(out, "{v}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        match v {
            Some(v) => v.into(),
            None => Json::Null,
        }
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a JSON document.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain UTF-8 bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("surrogate \\u escape"))?;
                            s.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let doc = Json::obj()
            .with("name", "fig7")
            .with("jobs", 4u64)
            .with("ratio", 0.1 + 0.2)
            .with("ok", true)
            .with("none", Json::Null)
            .with("axes", vec!["cores", "cpu_mhz"])
            .with(
                "nested",
                Json::obj()
                    .with("quoted \"x\"\n", 1u64)
                    .with("empty", Json::obj()),
            );
        for text in [doc.pretty(), doc.compact()] {
            assert_eq!(parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn golden_pretty_format() {
        let doc = Json::obj()
            .with("a", 1u64)
            .with("b", vec![1u64, 2])
            .with("c", Json::obj().with("d", "e"));
        assert_eq!(
            doc.pretty(),
            "{\n  \"a\": 1,\n  \"b\": [\n    1,\n    2\n  ],\n  \"c\": {\n    \"d\": \"e\"\n  }\n}\n"
        );
    }

    #[test]
    fn numbers_print_integers_without_fraction() {
        assert_eq!(Json::Num(4.0).compact(), "4");
        assert_eq!(Json::Num(-0.5).compact(), "-0.5");
        assert_eq!(Json::Num(f64::NAN).compact(), "null");
        assert_eq!(Json::Num(1e300).compact(), "1e300");
        assert_eq!(parse("1e300").unwrap(), Json::Num(1e300));
    }

    #[test]
    fn float_formatting_roundtrips_bits() {
        for v in [0.1, 19.148_3, 1.0 / 3.0, 812_744.0 / 7.0] {
            let Json::Num(back) = parse(&Json::Num(v).compact()).unwrap() else {
                panic!("not a number");
            };
            assert_eq!(v.to_bits(), back.to_bits());
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("\"\\q\"").is_err());
    }
}
