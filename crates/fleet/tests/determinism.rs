//! The fleet engine's determinism contract: per-NIC statistics and the
//! fabric's order-sensitive delivery/drop digest are bit-identical at
//! any shard count and across repeated runs at the same seed, in both
//! dispatch modes. This is the property that makes sharded fleet runs
//! trustworthy — parallelism changes wall-clock time and nothing else.

use nicsim::{DispatchMode, NicConfig};
use nicsim_fleet::{Fleet, FleetConfig, FleetStats};
use nicsim_net::workload::{Arrivals, Pattern, SizeMix, Workload};
use nicsim_net::FabricConfig;
use nicsim_sim::Ps;

fn run(cfg: FleetConfig) -> FleetStats {
    let (warmup, window) = (Ps::from_us(150), Ps::from_us(300));
    let mut fleet = Fleet::new(cfg, warmup + window).expect("valid fleet config");
    fleet.run_measured(warmup, window)
}

fn base_cfg(dispatch: DispatchMode, shards: usize) -> FleetConfig {
    FleetConfig {
        nics: 5,
        shards,
        nic: NicConfig::builder()
            .cores(2)
            .cpu_mhz(500)
            .dispatch(dispatch)
            .build()
            .expect("valid NIC config"),
        fabric: FabricConfig::default(),
        workload: Workload {
            pattern: Pattern::Uniform,
            sizes: SizeMix::Bimodal {
                small: 90,
                large: 1200,
                small_frac: 0.6,
            },
            arrivals: Arrivals::Poisson,
            fps: 80_000.0,
            seed: 42,
            ..Workload::default()
        },
    }
}

/// Field-by-field equality of two fleet results, with a label naming
/// the pair under comparison. `RunStats` is `PartialEq`, so per-NIC
/// equality is exact bit-identity of every counter and rate.
fn assert_identical(a: &FleetStats, b: &FleetStats, label: &str) {
    assert_eq!(a.per_nic.len(), b.per_nic.len(), "{label}: NIC counts");
    for (i, (x, y)) in a.per_nic.iter().zip(&b.per_nic).enumerate() {
        assert_eq!(x, y, "{label}: NIC {i} stats diverged");
    }
    assert_eq!(a.fabric, b.fabric, "{label}: fabric stats/digest diverged");
    assert_eq!(a.ports, b.ports, "{label}: per-port stats diverged");
    assert_eq!(a.epochs, b.epochs, "{label}: epoch counts diverged");
    assert_eq!(
        a.nic_epochs_skipped, b.nic_epochs_skipped,
        "{label}: skip decisions diverged"
    );
}

#[test]
fn shard_count_is_unobservable() {
    for dispatch in [DispatchMode::Polling, DispatchMode::Interrupt] {
        let reference = run(base_cfg(dispatch, 1));
        assert!(
            reference.fabric.delivered > 0,
            "{dispatch:?}: no fabric traffic — the identity check is vacuous"
        );
        for shards in [2usize, 4] {
            let sharded = run(base_cfg(dispatch, shards));
            assert_identical(
                &reference,
                &sharded,
                &format!("{dispatch:?}, {shards} shards vs 1"),
            );
        }
    }
}

#[test]
fn same_seed_replays_exactly() {
    for dispatch in [DispatchMode::Polling, DispatchMode::Interrupt] {
        let first = run(base_cfg(dispatch, 2));
        let second = run(base_cfg(dispatch, 2));
        assert_identical(&first, &second, &format!("{dispatch:?}, repeated seed"));
    }
}

#[test]
fn different_seeds_diverge() {
    // Non-vacuity for the replay test: the digest must actually depend
    // on the traffic, not collapse to a constant.
    let a = run(base_cfg(DispatchMode::Polling, 1));
    let mut cfg = base_cfg(DispatchMode::Polling, 1);
    cfg.workload.seed = 43;
    let b = run(cfg);
    assert_ne!(
        a.fabric.digest, b.fabric.digest,
        "digest is insensitive to the workload seed"
    );
}

#[test]
fn incast_drop_behavior_is_shard_invariant() {
    // Dropping frames exercises the fabric's queue-overflow path; the
    // digest folds drops in order, so identical digests mean identical
    // drop decisions, not just identical counts.
    let mut small_buf = base_cfg(DispatchMode::Polling, 1);
    small_buf.workload.pattern = Pattern::Incast { target: 2 };
    small_buf.workload.sizes = SizeMix::Fixed(1472);
    small_buf.workload.fps = 400_000.0;
    small_buf.fabric = FabricConfig {
        port_buffer_bytes: 4_000,
        ..FabricConfig::default()
    };
    let reference = run(small_buf);
    assert!(
        reference.fabric.dropped > 0,
        "incast never overflowed the egress buffer — drop identity is vacuous"
    );
    let mut sharded_cfg = small_buf;
    sharded_cfg.shards = 4;
    let sharded = run(sharded_cfg);
    assert_identical(&reference, &sharded, "incast drops, 4 shards vs 1");
}
