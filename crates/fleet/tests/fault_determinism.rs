//! The fleet fault plane's determinism and recovery contracts.
//!
//! A faulted fleet — fabric corruption, link flaps, port-buffer
//! squeezes, NIC crash/reset lifecycles, per-NIC DMA/link/ECC faults,
//! reliable-delivery retransmission — must be bit-identical at any
//! shard count and in both dispatch modes: every injection draw,
//! every crash and reset, every retransmit decision happens on
//! simulated time or at the coordinator's epoch barrier, never on
//! wall-clock scheduling. And the recovery machinery must actually
//! recover: reliable mode re-delivers everything the faults destroy
//! (where retransmit capacity suffices), and a crashed NIC comes back
//! and moves traffic again.

use nicsim::{DispatchMode, FaultPlan, NicConfig};
use nicsim_fleet::{Fleet, FleetConfig, FleetStats};
use nicsim_net::workload::{Arrivals, Pattern, SizeMix, Workload};
use nicsim_net::FabricConfig;
use nicsim_sim::Ps;

fn base_cfg(dispatch: DispatchMode, shards: usize) -> FleetConfig {
    FleetConfig {
        nics: 4,
        shards,
        nic: NicConfig::builder()
            .cores(2)
            .cpu_mhz(500)
            .dispatch(dispatch)
            .build()
            .expect("valid NIC config"),
        fabric: FabricConfig::default(),
        workload: Workload {
            pattern: Pattern::Uniform,
            sizes: SizeMix::Fixed(256),
            arrivals: Arrivals::Poisson,
            fps: 60_000.0,
            seed: 11,
            ..Workload::default()
        },
    }
}

fn run(cfg: FleetConfig, warmup: Ps, window: Ps, horizon: Ps) -> FleetStats {
    let mut fleet = Fleet::new(cfg, horizon).expect("valid fleet config");
    fleet.run_measured(warmup, window)
}

/// Field-by-field equality of two fleet results. `RunStats` is
/// `PartialEq` including its error table, so per-NIC equality is exact
/// bit-identity of every counter, rate, and injected-fault count.
fn assert_identical(a: &FleetStats, b: &FleetStats, label: &str) {
    assert_eq!(a.per_nic.len(), b.per_nic.len(), "{label}: NIC counts");
    for (i, (x, y)) in a.per_nic.iter().zip(&b.per_nic).enumerate() {
        assert_eq!(x, y, "{label}: NIC {i} stats diverged");
    }
    assert_eq!(a.fabric, b.fabric, "{label}: fabric stats/digest diverged");
    assert_eq!(a.ports, b.ports, "{label}: per-port stats diverged");
    assert_eq!(
        a.nic_epochs_skipped, b.nic_epochs_skipped,
        "{label}: skip decisions diverged"
    );
}

/// Every fault class at once — fabric and NIC sites, crashes, reliable
/// retransmission — and the result is still bit-identical across shard
/// counts {1, 2, 4} and both dispatch modes.
#[test]
fn faulted_fleet_is_shard_invariant() {
    let plan = FaultPlan::parse(
        "seed=23,rate=0.002,fab_crc=0.01,flap_us=200,flap_down_us=20,\
         squeeze=0.005,crash_us=180,watchdog_us=60,poison=0.002,fw=0.001,\
         stall_alpha=1.5",
    )
    .expect("valid fault spec");
    let (warmup, window) = (Ps::ZERO, Ps::from_us(400));
    for dispatch in [DispatchMode::Polling, DispatchMode::Interrupt] {
        let mut cfg = base_cfg(dispatch, 1);
        cfg.workload.reliable = true;
        cfg.workload.rto_us = 40;
        cfg.nic.faults = Some(plan);
        let reference = run(cfg, warmup, window, window);
        let errors = reference.errors_total().expect("faulted run has errors");
        assert!(
            errors.injected() > 0,
            "{dispatch:?}: no faults injected — shard invariance is vacuous"
        );
        for shards in [2usize, 4] {
            let mut cfg = base_cfg(dispatch, shards);
            cfg.workload.reliable = true;
            cfg.workload.rto_us = 40;
            cfg.nic.faults = Some(plan);
            let sharded = run(cfg, warmup, window, window);
            assert_identical(
                &reference,
                &sharded,
                &format!("{dispatch:?}, {shards} shards vs 1"),
            );
        }
    }
}

/// The crash/reset lifecycle end to end: a seeded whole-NIC crash is
/// detected by the fleet watchdog, the NIC comes back as a fresh
/// system, the in-flight frames it took down are accounted, and the
/// fleet keeps moving traffic throughout.
#[test]
fn crashed_nics_reset_and_recover() {
    let plan = FaultPlan::parse("seed=5,crash_us=120,watchdog_us=50").expect("valid fault spec");
    let mut cfg = base_cfg(DispatchMode::Polling, 2);
    cfg.nic.faults = Some(plan);
    let window = Ps::from_us(600);
    let stats = run(cfg, Ps::ZERO, window, window);
    let errors = stats.errors_total().expect("faulted run has errors");
    assert!(
        errors.nic_resets >= 1,
        "no NIC ever crashed and reset (period 120us over 600us)"
    );
    assert!(
        errors.nic_reset_lost_frames > 0,
        "resets lost no frames — the accounting is vacuous"
    );
    assert!(
        stats.delivered_frames() > 0,
        "the fleet stopped moving traffic"
    );
    // Resets appear in the per-NIC tables of the NICs that crashed,
    // not smeared across the fleet.
    let with_resets = stats
        .per_nic
        .iter()
        .filter(|s| s.errors.as_ref().is_some_and(|e| e.nic_resets > 0))
        .count();
    assert!(with_resets >= 1, "no per-NIC table records its reset");
}

/// Reliable delivery under loss: with fabric corruption destroying
/// frames (and nothing else failing), retransmission recovers every
/// one — delivered-exactly-once equals offered — and the dedup side
/// never double-counts.
#[test]
fn reliable_mode_delivers_exactly_once_under_loss() {
    let plan = FaultPlan::parse("seed=31,fab_crc=0.02").expect("valid fault spec");
    let mut cfg = base_cfg(DispatchMode::Polling, 2);
    cfg.workload.reliable = true;
    cfg.workload.rto_us = 30;
    cfg.nic.faults = Some(plan);
    // Schedule over 300us, run 600us: the tail is drain margin for the
    // last retransmission round-trips.
    let horizon = Ps::from_us(300);
    let window = Ps::from_us(600);
    let offered: u64 = (0..cfg.nics)
        .map(|i| cfg.workload.schedule(i, cfg.nics, horizon).len() as u64)
        .sum();
    let stats = run(cfg, Ps::ZERO, window, horizon);
    let errors = stats.errors_total().expect("faulted run has errors");
    assert!(
        errors.crc_dropped > 0,
        "corruption destroyed nothing — recovery is vacuous"
    );
    assert!(
        errors.tx_retransmits > 0,
        "losses happened but nothing was retransmitted"
    );
    assert_eq!(
        stats.delivered_frames(),
        offered,
        "reliable mode failed to deliver every offered frame exactly once \
         ({} retransmits, {} crc drops)",
        errors.tx_retransmits,
        errors.crc_dropped
    );
}

/// An all-zeros fault plan is free: the run is bit-identical to one
/// with no plan at all — same per-NIC counters, same fabric digest —
/// apart from the zeroed error tables it reports.
#[test]
fn zero_rate_plan_is_identical_to_clean() {
    let (warmup, window) = (Ps::from_us(100), Ps::from_us(300));
    let clean = run(
        base_cfg(DispatchMode::Polling, 2),
        warmup,
        window,
        warmup + window,
    );
    let mut cfg = base_cfg(DispatchMode::Polling, 2);
    cfg.nic.faults = Some(FaultPlan::parse("seed=99,rate=0").expect("valid spec"));
    let zero = run(cfg, warmup, window, warmup + window);
    assert_eq!(
        a_stripped(&zero),
        a_stripped(&clean),
        "zero-rate run diverged"
    );
    assert_eq!(
        zero.fabric, clean.fabric,
        "zero-rate fabric digest diverged from clean"
    );
    for s in &zero.per_nic {
        let e = s.errors.as_ref().expect("plan configured: table present");
        assert_eq!(e.injected(), 0, "zero-rate plan injected something");
    }
}

/// Per-NIC stats with the error tables stripped, for clean-vs-zero-rate
/// comparison (the zero-rate run reports `Some(zeroed)`, the clean run
/// `None`; everything else must match exactly).
fn a_stripped(s: &FleetStats) -> Vec<nicsim::RunStats> {
    s.per_nic
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r.errors = None;
            r
        })
        .collect()
}
