//! Deterministic sharded multi-NIC fleet simulation.
//!
//! The paper evaluates one NIC against a synthetic full-duplex stream;
//! this crate scales the reproduction out: `N` complete [`NicSystem`]s
//! (firmware, assists, host driver and all) exchange real frames
//! through a switch [`Fabric`] — per-egress-port output queues, link
//! bandwidth and latency, finite buffers with drops — driven by a
//! flow-level [`Workload`] (traffic matrices, packet-size mixes,
//! bursty arrivals, incast) instead of the fixed-size generators.
//!
//! # The epoch engine
//!
//! The fleet advances in global **epochs** of length `E = link
//! latency`. Within an epoch every NIC runs independently on the
//! sequential event kernel ([`NicSystem::run_until`]); at the epoch
//! barrier the engine drains each NIC's wire-completed egress frames,
//! feeds them through the fabric in canonical `(wire-done time, source
//! NIC)` order, and appends the resulting deliveries to the
//! destination NICs' arrival queues. This conservative schedule is
//! exact, not approximate: a frame leaving NIC `i`'s wire at time `w`
//! traverses two links (`i → switch → j`) plus the egress queue, so it
//! cannot arrive before `w + 2E` — strictly after the end of the epoch
//! in which it is drained. No NIC can ever observe a frame earlier
//! than the barrier hands it over, so epoch-sliced execution is
//! bit-identical to a global event-ordered co-simulation.
//!
//! # Sharding
//!
//! With `shards > 1` the NICs split into contiguous chunks, one per
//! persistent worker thread, synchronized by an
//! [`EpochBarrier`](nicsim_sim::EpochBarrier) generation per epoch;
//! the frame exchange runs on the coordinator between generations.
//! Because epochs are global and the fabric ordering is canonical,
//! results are bit-identical at any shard count — per-NIC [`RunStats`]
//! and the fabric's order-sensitive delivery digest alike, which the
//! engine's tests assert across shard counts and dispatch modes.
//!
//! Quiet NICs skip whole epochs: the engine consults
//! [`NicSystem::next_activity`] (the event kernel's own wake bound)
//! and elides the `run_until` call when the NIC provably cannot act
//! before the epoch ends — an incast victim or a NIC with an exhausted
//! schedule costs one wake computation per epoch, not a kernel entry.

use nicsim::{ErrorStats, NicConfig, NicSystem, RunStats};
use nicsim_net::workload::Workload;
use nicsim_net::{Fabric, FabricConfig, FabricFaults, FabricStats, PortStats};
use nicsim_obs::{FrameTracker, LatencySummary};
use nicsim_sim::{EpochBarrier, Ps};

/// Fleet-level configuration: how many NICs, how they are sharded,
/// what fabric connects them, and what traffic they offer.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of NIC + host systems (2..=256; sequence numbers carry
    /// the source id in their top byte).
    pub nics: usize,
    /// Worker threads to shard the NICs across (1 = run on the calling
    /// thread, no barrier). Results are identical at any value.
    pub shards: usize,
    /// Per-NIC configuration (all NICs identical; `send_enabled` and
    /// `recv_enabled` must both be set so the driver posts the fleet
    /// schedule and MAC 0 accepts injected arrivals).
    pub nic: NicConfig,
    /// The switch model between the NICs.
    pub fabric: FabricConfig,
    /// The offered traffic.
    pub workload: Workload,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            nics: 4,
            shards: 1,
            nic: NicConfig::default(),
            fabric: FabricConfig::default(),
            workload: Workload::default(),
        }
    }
}

/// What went wrong assembling a fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetError(pub String);

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fleet configuration: {}", self.0)
    }
}

impl std::error::Error for FleetError {}

/// Results of one measured fleet run.
#[derive(Debug, Clone)]
pub struct FleetStats {
    /// Per-NIC statistics for the measurement window, in NIC order.
    /// Bit-comparable across runs and shard counts ([`RunStats`] is
    /// `PartialEq`).
    pub per_nic: Vec<RunStats>,
    /// Fabric totals for the window, including the order-sensitive
    /// delivery/drop digest.
    pub fabric: FabricStats,
    /// Per-egress-port fabric statistics, in NIC order.
    pub ports: Vec<PortStats>,
    /// Frame-lifecycle latency percentiles over the whole fleet: every
    /// NIC's [`FrameTracker`] merged, so a frame's TX half (source
    /// NIC) and RX half (destination NIC) combine into one timeline.
    pub latency: LatencySummary,
    /// Epochs executed (warmup + window).
    pub epochs: u64,
    /// NIC-epochs elided because the NIC provably could not act before
    /// the epoch boundary.
    pub nic_epochs_skipped: u64,
    /// Simulated CPU cycles per NIC (identical for all NICs).
    pub cycles_per_nic: u64,
}

impl FleetStats {
    /// Aggregate delivered UDP goodput over the window, summed over
    /// every NIC's receive side.
    pub fn goodput_gbps(&self) -> f64 {
        self.per_nic.iter().map(|s| s.rx_udp_gbps).sum()
    }

    /// Frames the fabric dropped on full egress buffers.
    pub fn fabric_drops(&self) -> u64 {
        self.fabric.dropped
    }

    /// Fleet-total error table: every NIC's [`ErrorStats`] merged
    /// (including counters carried across crash/reset lifecycles).
    /// `None` when the fleet ran without a fault plan.
    pub fn errors_total(&self) -> Option<ErrorStats> {
        let mut any = false;
        let mut total = ErrorStats::default();
        for s in &self.per_nic {
            if let Some(e) = &s.errors {
                any = true;
                total.merge(e);
            }
        }
        any.then_some(total)
    }

    /// Frames delivered exactly once to host memory, summed over every
    /// NIC's receive side (reliable mode counts a deduplicated frame
    /// once however many times it arrives).
    pub fn delivered_frames(&self) -> u64 {
        self.per_nic.iter().map(|s| s.rx_frames).sum()
    }
}

/// The assembled fleet: `N` systems, the fabric, and the epoch clock.
pub struct Fleet {
    cfg: FleetConfig,
    systems: Vec<NicSystem<FrameTracker>>,
    fabric: Fabric,
    /// Epoch length: the fabric's per-link latency.
    epoch: Ps,
    /// Schedule horizon the workload was generated over; replacements
    /// built by the crash/reset lifecycle regenerate their remaining
    /// schedule from it.
    horizon: Ps,
    /// NIC-epochs elided so far.
    skipped: u64,
    /// Guards against reusing a consumed fleet.
    ran: bool,
    /// Whether the workload runs in reliable-delivery mode (the epoch
    /// exchange then conveys acknowledgments between the NICs).
    reliable: bool,
    /// Per-NIC time of the next seeded whole-NIC crash; `Ps::MAX` when
    /// crash injection is off. Crashes take effect at the first epoch
    /// boundary at or after the drawn onset (coordinator-only state, so
    /// the lifecycle is shard-invariant by construction).
    crash_next: Vec<Ps>,
    /// Per-NIC recovery time: `Ps::ZERO` means the NIC is up; anything
    /// else means it is down (frozen — the run loops skip it) until the
    /// fleet watchdog resets it at that boundary.
    up_at: Vec<Ps>,
    /// Fabric deliveries addressed to a NIC while it was down, folded
    /// into `err_nic_reset_lost` when the watchdog resets it.
    pending_lost: Vec<u64>,
    /// Frame-lifecycle records inherited from dead NIC incarnations,
    /// merged into the fleet latency summary at collection.
    carry_probe: FrameTracker,
}

impl Fleet {
    /// Assemble a fleet: validate the configuration, build every NIC
    /// system, and switch each into fleet mode with its share of the
    /// workload schedule generated over `horizon` (which must cover
    /// the whole warmup + window the fleet will run).
    pub fn new(cfg: FleetConfig, horizon: Ps) -> Result<Fleet, FleetError> {
        if !(2..=256).contains(&cfg.nics) {
            return Err(FleetError(format!(
                "nics must be in 2..=256, got {}",
                cfg.nics
            )));
        }
        if cfg.shards == 0 || cfg.shards > cfg.nics {
            return Err(FleetError(format!(
                "shards must be in 1..={}, got {}",
                cfg.nics, cfg.shards
            )));
        }
        if !cfg.nic.send_enabled || !cfg.nic.recv_enabled {
            return Err(FleetError(
                "fleet NICs need send_enabled and recv_enabled".into(),
            ));
        }
        if cfg.nic.offered_tx_fps.is_some() || cfg.nic.offered_rx_fps.is_some() {
            return Err(FleetError(
                "offered-load pacing conflicts with the fleet schedule".into(),
            ));
        }
        cfg.workload.check(cfg.nics).map_err(FleetError)?;
        let mut fabric = Fabric::new(cfg.nics, cfg.fabric);
        let epoch = cfg.fabric.link_latency;
        let period = nicsim_sim::Freq::from_mhz(cfg.nic.cpu_mhz).period();
        if epoch.0 < 2 * period.0 {
            return Err(FleetError(format!(
                "link latency {} ps must be at least two CPU periods ({} ps): \
                 the epoch engine needs one clock cycle of conservative slack",
                epoch.0,
                2 * period.0
            )));
        }
        // The fault plane. Each NIC gets its own derived plan (same
        // rates, decorrelated per-site streams) so faults don't strike
        // every NIC in lockstep; the fabric's sites run off the fleet
        // plan's own seed. An all-zeros plan arms nothing anywhere —
        // the systems stay on their clean fast paths and the run is
        // bit-identical to one with no plan at all (apart from the
        // zeroed error tables in the results).
        let plan = cfg.nic.faults.filter(|p| !p.is_noop());
        if let Some(p) = &plan {
            fabric.set_faults(FabricFaults::new(p, cfg.nics));
        }
        let crash_next: Vec<Ps> = (0..cfg.nics)
            .map(|i| {
                plan.as_ref()
                    .and_then(|p| p.crash_onset(i as u64))
                    .unwrap_or(Ps::MAX)
            })
            .collect();
        let mut systems = Vec::with_capacity(cfg.nics);
        for i in 0..cfg.nics {
            let mut nic = cfg.nic;
            nic.faults = cfg.nic.faults.map(|p| p.derive_nic(i as u64));
            let mut sys = NicSystem::build(nic)
                .probe(FrameTracker::new())
                .finish()
                .map_err(|e| FleetError(e.to_string()))?;
            let schedule = cfg.workload.schedule(i, cfg.nics, horizon);
            sys.enable_fleet(i as u16, schedule);
            if cfg.workload.reliable {
                sys.enable_reliable(Ps::from_us(cfg.workload.rto_us));
            }
            systems.push(sys);
        }
        Ok(Fleet {
            systems,
            fabric,
            epoch,
            horizon,
            skipped: 0,
            ran: false,
            reliable: cfg.workload.reliable,
            crash_next,
            up_at: vec![Ps::ZERO; cfg.nics],
            pending_lost: vec![0; cfg.nics],
            carry_probe: FrameTracker::new(),
            cfg,
        })
    }

    /// Whether NIC `i` is currently down (crashed, awaiting the fleet
    /// watchdog's reset).
    fn is_down(&self, i: usize) -> bool {
        self.up_at[i] != Ps::ZERO
    }

    /// The configuration this fleet was assembled from.
    pub fn config(&self) -> FleetConfig {
        self.cfg
    }

    /// Warm the fleet up, then measure a steady-state window; both
    /// spans are rounded up to whole epochs. Single-shot: a fleet's
    /// schedules and queues are consumed by the run.
    pub fn run_measured(&mut self, warmup: Ps, window: Ps) -> FleetStats {
        assert!(!self.ran, "a fleet runs once; build a new one");
        self.ran = true;
        let warm_epochs = warmup.0.div_ceil(self.epoch.0);
        let total_epochs = warm_epochs + window.0.div_ceil(self.epoch.0).max(1);

        if self.cfg.shards == 1 {
            self.run_epochs_sequential(warm_epochs, total_epochs);
        } else {
            self.run_epochs_sharded(warm_epochs, total_epochs);
        }

        let final_end = Ps(total_epochs * self.epoch.0);
        for (i, sys) in self.systems.iter_mut().enumerate() {
            if self.up_at[i] == Ps::ZERO {
                sys.run_until(final_end);
            }
        }
        // A NIC still down at the end of the run: its reset never
        // completed, so fold the deliveries it missed into its error
        // table directly (the reset itself is not counted — it never
        // happened).
        for i in 0..self.cfg.nics {
            if self.is_down(i) && self.pending_lost[i] > 0 {
                self.systems[i].carry_errors(ErrorStats {
                    nic_reset_lost_frames: self.pending_lost[i],
                    ..ErrorStats::default()
                });
                self.pending_lost[i] = 0;
            }
        }
        let mut merged = FrameTracker::new();
        merged.merge(&self.carry_probe);
        for sys in &self.systems {
            merged.merge(sys.probe());
        }
        let per_nic: Vec<RunStats> = self.systems.iter().map(|s| s.collect()).collect();
        let cycles_per_nic = per_nic[0].core_ticks;
        FleetStats {
            per_nic,
            fabric: self.fabric.stats(),
            ports: self.fabric.port_stats(),
            latency: merged.summary(),
            epochs: total_epochs,
            nic_epochs_skipped: self.skipped,
            cycles_per_nic,
        }
    }

    /// The epoch loop on the calling thread: advance every NIC to each
    /// boundary in turn, then exchange frames.
    fn run_epochs_sequential(&mut self, warm_epochs: u64, total_epochs: u64) {
        for k in 1..=total_epochs {
            let end = Ps(k * self.epoch.0);
            for (i, sys) in self.systems.iter_mut().enumerate() {
                if self.up_at[i] != Ps::ZERO {
                    // Crashed: frozen until the watchdog resets it.
                    self.skipped += 1;
                } else if sys.next_activity() <= end {
                    sys.run_until(end);
                } else {
                    self.skipped += 1;
                }
            }
            self.exchange(k, warm_epochs);
        }
    }

    /// The epoch loop across `shards` persistent worker threads, one
    /// contiguous chunk of NICs each, in lockstep on an
    /// [`EpochBarrier`] generation per epoch. The coordinator touches
    /// the systems only between `wait_done` and the next `open`, when
    /// every worker is parked at the barrier.
    fn run_epochs_sharded(&mut self, warm_epochs: u64, total_epochs: u64) {
        let shards = self.cfg.shards;
        let epoch = self.epoch;
        let mut worker_skipped = vec![0u64; shards];

        /// One worker's view: a raw chunk of the systems vector, its
        /// skip counter, and a read-only view of the fleet's down-state
        /// vector (indexed by `base + chunk offset`). Dereferenced only
        /// while a generation is open (see the disjointness argument at
        /// the spawn site).
        struct Shard {
            systems: *mut [NicSystem<FrameTracker>],
            skipped: *mut u64,
            up_at: *const [Ps],
            base: usize,
        }
        // SAFETY: the pointers are dereferenced only between
        // `wait_open` and `finish`, when the coordinator touches
        // neither the chunk nor the counter; chunks are disjoint
        // sub-slices, so no two workers alias. The NIC systems contain
        // thread-unsafe internals (`Rc` core slots), but each system's
        // are reachable only through that system, and a system is only
        // ever touched by the one thread holding its chunk while a
        // generation is open — accesses hand over at the barrier's
        // Release/Acquire edges, never overlap. The down-state vector
        // is written by the coordinator only between generations and
        // only read by workers while one is open, under the same
        // Release/Acquire edges.
        unsafe impl Send for Shard {}

        let up_at_view: *const [Ps] = self.up_at.as_slice();
        let mut shards_vec = Vec::with_capacity(shards);
        {
            let mut rest: &mut [NicSystem<FrameTracker>] = &mut self.systems;
            let mut counters = worker_skipped.iter_mut();
            let base = rest.len() / shards;
            let extra = rest.len() % shards;
            let mut start = 0;
            for w in 0..shards {
                let take = base + usize::from(w < extra);
                let (chunk, tail) = rest.split_at_mut(take);
                rest = tail;
                shards_vec.push(Shard {
                    systems: chunk,
                    skipped: counters.next().expect("one counter per shard"),
                    up_at: up_at_view,
                    base: start,
                });
                start += take;
            }
        }

        let barrier = EpochBarrier::new(shards);
        std::thread::scope(|scope| {
            let b = &barrier;
            let handles: Vec<_> = shards_vec
                .into_iter()
                .enumerate()
                .map(|(idx, shard)| {
                    scope.spawn(move || {
                        // Capture the Shard wrapper whole: disjoint
                        // field capture would otherwise move the raw
                        // pointers individually, bypassing its Send.
                        let shard = shard;
                        // Poison the barrier if a NIC panics so the
                        // coordinator fails fast instead of spinning.
                        struct Guard<'a>(&'a EpochBarrier);
                        impl Drop for Guard<'_> {
                            fn drop(&mut self) {
                                if std::thread::panicking() {
                                    self.0.poison();
                                }
                            }
                        }
                        let _guard = Guard(b);
                        let mut last = 0;
                        while let Some(g) = b.wait_open(last) {
                            last = g;
                            let end = Ps(g * epoch.0);
                            // SAFETY: generation `g` is open — the
                            // coordinator is blocked in wait_done and
                            // the chunk is exclusively this worker's;
                            // the down-state vector is frozen for the
                            // generation.
                            let systems = unsafe { &mut *shard.systems };
                            let up_at = unsafe { &*shard.up_at };
                            let mut skipped = 0u64;
                            for (j, sys) in systems.iter_mut().enumerate() {
                                if up_at[shard.base + j] != Ps::ZERO {
                                    // Crashed: frozen until reset.
                                    skipped += 1;
                                } else if sys.next_activity() <= end {
                                    sys.run_until(end);
                                } else {
                                    skipped += 1;
                                }
                            }
                            unsafe { *shard.skipped += skipped };
                            b.finish(idx, g);
                        }
                    })
                })
                .collect();
            for h in &handles {
                barrier.register_worker(h.thread().clone());
            }
            for k in 1..=total_epochs {
                barrier.open(k);
                barrier.wait_done(k);
                // Exclusive section: all workers parked, all shard
                // writes acquired.
                self.exchange(k, warm_epochs);
            }
            barrier.shutdown();
        });
        self.skipped += worker_skipped.iter().sum::<u64>();
    }

    /// The epoch-barrier frame exchange: complete due NIC resets, drain
    /// every NIC's egress, present the union to the fabric in canonical
    /// `(wire-done time, source NIC)` order, inject the deliveries
    /// (dropping those addressed to down NICs), convey reliable-mode
    /// acknowledgments, take due crashes, and reset the measurement
    /// window at the warmup boundary.
    ///
    /// Every crash/reset transition happens here, on the coordinator,
    /// at an epoch boundary — never inside a worker's epoch — so the
    /// whole lifecycle is shard-invariant by construction.
    fn exchange(&mut self, k: u64, warm_epochs: u64) {
        let boundary = Ps(k * self.epoch.0);
        // Resets due: the watchdog detected the crash and the recovery
        // delay has elapsed — bring the NIC back as a fresh system.
        for i in 0..self.cfg.nics {
            if self.is_down(i) && boundary >= self.up_at[i] {
                self.reset_nic(i, boundary);
                self.up_at[i] = Ps::ZERO;
            }
        }
        let mut offers: Vec<(Ps, usize, Vec<u8>)> = Vec::new();
        for (src, sys) in self.systems.iter_mut().enumerate() {
            for (w, frame) in sys.take_egress() {
                offers.push((w, src, frame));
            }
        }
        // Wire-done times are unique per source (one serialized wire),
        // so the key is total and unstable sorting is deterministic.
        offers.sort_unstable_by_key(|(w, src, _)| (w.0, *src));
        for (w, src, frame) in offers {
            if let Some(d) = self.fabric.offer(w, src, frame) {
                if self.is_down(d.dst) {
                    // The fabric delivered to a dead port: the frame is
                    // lost with the NIC, accounted when it resets.
                    self.pending_lost[d.dst] += 1;
                } else {
                    self.systems[d.dst].inject_rx(d.at, d.frame);
                }
            }
        }
        if self.reliable {
            // Acknowledgments ride out of band but pay the wire's
            // round-trip: a frame received at `t` is acknowledged to
            // its source at `t + 2E` (receiver → switch → sender),
            // which is strictly after this boundary — causal, so the
            // conveyance is shard-invariant. Acks to a down NIC are
            // lost with it (its unacked state died anyway).
            let mut acks: Vec<(usize, u32, Ps)> = Vec::new();
            for (i, sys) in self.systems.iter_mut().enumerate() {
                if self.up_at[i] != Ps::ZERO {
                    continue;
                }
                for (src, seq, t) in sys.take_acks() {
                    acks.push((src as usize, seq, Ps(t.0 + 2 * self.epoch.0)));
                }
            }
            for (src, seq, at) in acks {
                if !self.is_down(src) {
                    self.systems[src].deliver_ack(at, seq);
                }
            }
        }
        // Crashes due: the NIC hangs whole at this boundary (onset
        // rounded up to the epoch grid). The watchdog's detection plus
        // recovery takes `watchdog_us`, rounded up to whole epochs.
        for i in 0..self.cfg.nics {
            if !self.is_down(i) && boundary >= self.crash_next[i] {
                let plan = self.cfg.nic.faults.expect("crash schedule implies a plan");
                let down = Ps::from_us(plan.watchdog_us.max(1));
                let down_epochs = down.0.div_ceil(self.epoch.0).max(1);
                self.up_at[i] = Ps(boundary.0 + down_epochs * self.epoch.0);
                self.crash_next[i] = Ps(self.crash_next[i]
                    .0
                    .saturating_add(Ps::from_us(plan.crash_period_us).0));
            }
        }
        if k == warm_epochs {
            for (i, sys) in self.systems.iter_mut().enumerate() {
                if self.up_at[i] != Ps::ZERO {
                    // Down NICs are frozen mid-crash; their replacement
                    // opens its own window at reset time.
                    continue;
                }
                // Quiet NICs may have skipped up to this boundary:
                // bring every clock to it so all windows are equal
                // (a provable no-op for the skipped ones).
                sys.run_until(boundary);
                sys.reset_window();
            }
            self.fabric.reset_stats();
        }
    }

    /// Replace crashed NIC `i` with a fresh system at time `at` — the
    /// crash/reset lifecycle's recovery half. The firmware re-boots
    /// from scratch, the driver re-posts its rings and resumes the
    /// remaining workload schedule under the predecessor's sequence
    /// numbering (receivers see a gap, never a regression), and the
    /// dead incarnation's error table — plus this reset and every frame
    /// it lost — carries into the replacement so per-NIC accounting
    /// survives.
    fn reset_nic(&mut self, i: usize, at: Ps) {
        let old = &self.systems[i];
        // Frames that died with the NIC: driver-posted transmits not
        // yet completed, arrivals still queued on the wire, and
        // fabric deliveries dropped while it was down.
        let lost = old.tx_in_flight() as u64
            + old.pending_rx() as u64
            + std::mem::take(&mut self.pending_lost[i]);
        let mut carry = old.collect().errors.unwrap_or_default();
        carry.nic_resets += 1;
        carry.nic_reset_lost_frames += lost;
        let posted = old.fleet_seq_next();

        let mut nic = self.cfg.nic;
        nic.faults = self.cfg.nic.faults.map(|p| p.derive_nic(i as u64));
        let mut sys = NicSystem::build(nic)
            .probe(FrameTracker::new())
            .finish()
            .expect("replacement NIC build (config already validated)");
        sys.restart_at(at);
        let full = self.cfg.workload.schedule(i, self.cfg.nics, self.horizon);
        let remaining = full
            .get(posted as usize..)
            .map_or(Vec::new(), |s| s.to_vec());
        sys.enable_fleet(i as u16, remaining);
        sys.resume_fleet_seq(posted);
        if self.reliable {
            sys.enable_reliable(Ps::from_us(self.cfg.workload.rto_us));
        }
        sys.carry_errors(carry);
        let old = std::mem::replace(&mut self.systems[i], sys);
        self.carry_probe.merge(old.probe());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nicsim_net::workload::{Arrivals, Pattern, SizeMix};

    fn small_cfg() -> FleetConfig {
        FleetConfig {
            nics: 4,
            shards: 1,
            nic: NicConfig::builder()
                .cores(2)
                .cpu_mhz(500)
                .build()
                .expect("valid test config"),
            fabric: FabricConfig::default(),
            workload: Workload {
                pattern: Pattern::Uniform,
                sizes: SizeMix::Fixed(256),
                arrivals: Arrivals::Cbr,
                fps: 50_000.0,
                seed: 7,
                ..Workload::default()
            },
        }
    }

    #[test]
    fn rejects_bad_configs() {
        let horizon = Ps::from_us(100);
        let mut cfg = small_cfg();
        cfg.nics = 1;
        assert!(Fleet::new(cfg, horizon).is_err());
        let mut cfg = small_cfg();
        cfg.shards = 9;
        assert!(Fleet::new(cfg, horizon).is_err());
        let mut cfg = small_cfg();
        cfg.nic.send_enabled = false;
        assert!(Fleet::new(cfg, horizon).is_err());
        let mut cfg = small_cfg();
        cfg.nic.offered_tx_fps = Some(1e6);
        assert!(Fleet::new(cfg, horizon).is_err());
        let mut cfg = small_cfg();
        cfg.fabric.link_latency = Ps(1_000);
        assert!(Fleet::new(cfg, horizon).is_err(), "epoch under one cycle");
    }

    #[test]
    fn fleet_moves_frames_end_to_end() {
        let warmup = Ps::from_us(200);
        let window = Ps::from_us(300);
        let mut fleet = Fleet::new(small_cfg(), Ps(warmup.0 + window.0)).unwrap();
        let stats = fleet.run_measured(warmup, window);
        assert_eq!(stats.per_nic.len(), 4);
        let tx: u64 = stats.per_nic.iter().map(|s| s.tx_frames).sum();
        let rx: u64 = stats.per_nic.iter().map(|s| s.rx_frames).sum();
        assert!(tx > 0, "no fleet transmit traffic");
        assert!(rx > 0, "no fleet receive traffic");
        assert!(stats.fabric.delivered > 0, "fabric delivered nothing");
        assert!(stats.goodput_gbps() > 0.0);
        for s in &stats.per_nic {
            assert_eq!(s.rx_corrupt, 0);
            assert_eq!(s.rx_out_of_order, 0);
            assert_eq!(s.tx_errors, 0);
        }
    }

    #[test]
    fn incast_victim_skips_epochs() {
        let mut cfg = small_cfg();
        cfg.workload.pattern = Pattern::Incast { target: 0 };
        // Whole-epoch elision needs an idle NIC: polling cores never
        // park (wake bound 1 every cycle), interrupt-dispatch cores do.
        cfg.nic.dispatch = nicsim::DispatchMode::Interrupt;
        let warmup = Ps::from_us(100);
        let window = Ps::from_us(200);
        let mut fleet = Fleet::new(cfg, Ps(warmup.0 + window.0)).unwrap();
        let stats = fleet.run_measured(warmup, window);
        assert!(
            stats.per_nic[0].rx_frames > 0,
            "incast target received nothing"
        );
        assert_eq!(stats.per_nic[0].tx_frames, 0, "incast victim transmitted");
        assert!(
            stats.nic_epochs_skipped > 0,
            "quiet-epoch skipping never engaged"
        );
    }
}
